#!/usr/bin/env python
"""Render the paper's key figures as terminal charts, at demo scale.

Regenerates miniature versions of Figures 7 (execution breakdown),
9 (directories per commit) and 13 (commit-latency comparison) and draws
them with the ASCII chart renderers — no plotting libraries required.

Run:  python examples/paper_figures.py [n_cores]
"""

import sys

from repro.config import ProtocolKind
from repro.harness.ascii_plots import (
    breakdown_chart, distribution_plot, grouped_bars, hbar_chart,
)
from repro.harness.experiments import (
    run_commit_latency, run_dirs_per_commit, run_execution_time_figure,
)

APPS = ["Radix", "LU", "Barnes"]
PROTOCOLS = (ProtocolKind.SCALABLEBULK, ProtocolKind.SEQ)


def main() -> None:
    n_cores = int(sys.argv[1]) if len(sys.argv) > 1 else 16

    print(f"=== Figure 7 (miniature): execution-time breakdown, "
          f"{n_cores} cores ===\n")
    fig = run_execution_time_figure(APPS, (n_cores,), PROTOCOLS,
                                    chunks_per_partition=2)
    print(breakdown_chart(fig.bars, width=46))
    print()

    print("=== Figure 9 (miniature): directories per chunk commit ===\n")
    rows = run_dirs_per_commit(APPS, (n_cores,), chunks_per_partition=2)
    print(grouped_bars(
        [r.app for r in rows],
        {"write group": [r.mean_write_dirs for r in rows],
         "read group": [r.mean_read_only_dirs for r in rows]},
        width=36))
    print()

    print("=== Figure 13 (miniature): mean commit latency ===\n")
    samples = run_commit_latency(APPS, n_cores, tuple(ProtocolKind),
                                 chunks_per_partition=2)
    means = {p.value: (sum(v) / len(v) if v else 0.0)
             for p, v in samples.items()}
    print(hbar_chart(means, width=46, unit=" cy"))


if __name__ == "__main__":
    main()
