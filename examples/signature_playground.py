#!/usr/bin/env python
"""Bulk signatures by hand: membership, disambiguation, aliasing.

Shows what the ScalableBulk hardware does with 2 Kbit signatures: builds
R/W signatures for two chunks, runs the disambiguation a processor
performs on a bulk invalidation, and measures the false-positive rate that
causes the paper's ~2% "aliasing squashes".

Run:  python examples/signature_playground.py
"""

from repro import SignatureFactory
from repro.engine.rng import DeterministicRng


def main() -> None:
    factory = SignatureFactory(total_bits=2048, n_banks=4, seed=42)
    rng = DeterministicRng(42, "demo")

    # two chunks with realistic footprints: ~60 distinct lines each
    chunk_a_writes = {rng.randint(0, 1 << 30) for _ in range(25)}
    chunk_b_reads = {rng.randint(0, 1 << 30) for _ in range(40)}
    chunk_b_reads.add(next(iter(chunk_a_writes)))  # one true conflict

    w_sig = factory.from_lines(chunk_a_writes)
    r_sig = factory.from_lines(chunk_b_reads)

    print(f"chunk A writes {len(chunk_a_writes)} lines "
          f"-> W signature density {w_sig.bit_count()}/2048 bits")
    print(f"chunk B reads  {len(chunk_b_reads)} lines "
          f"-> R signature density {r_sig.bit_count()}/2048 bits\n")

    # Disambiguation as the hardware does it: probe each invalidated line
    hits = [line for line in chunk_a_writes if r_sig.contains(line)]
    true_hits = chunk_a_writes & chunk_b_reads
    print(f"bulk invalidation of A's write-set against B's R signature:")
    print(f"  {len(hits)} probe hit(s); {len(true_hits)} genuine conflict(s)")
    print(f"  -> chunk B {'squashes' if hits else 'survives'} "
          f"(correct: it read a line A wrote)\n")

    # Membership false positives: the aliasing-squash mechanism
    probes = 200_000
    fp = sum(1 for i in range(probes)
             if w_sig.contains((1 << 40) + i))
    print(f"membership false-positive rate at this density: "
          f"{fp / probes:.2e} per probe")
    print("  (integrated over a chunk's invalidation traffic this yields "
          "the paper's ~2% aliasing squashes)\n")

    # No false negatives, ever
    assert all(w_sig.contains(line) for line in chunk_a_writes)
    print("no-false-negative check passed: every written line is in W")

    # Signature intersection emptiness per bank
    disjoint = factory.from_lines({(1 << 35) + i for i in range(10)})
    print(f"\nbanked AND test vs a disjoint 10-line signature: "
          f"{'overlap possible' if w_sig.intersects(disjoint) else 'provably disjoint'}")
    print("(whole-signature ANDs saturate at chunk densities — which is "
          "why the protocol probes per expanded line instead)")


if __name__ == "__main__":
    main()
