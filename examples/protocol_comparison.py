#!/usr/bin/env python
"""Compare the four chunk-commit protocols of Table 3 on one application.

Reproduces the shape of the paper's headline result in miniature: for an
application whose chunks span many directory modules (default Radix),
ScalableBulk overlaps commits that TCC and SEQ serialize and that BulkSC
funnels through a single arbiter.

Run:  python examples/protocol_comparison.py [app] [n_cores]
"""

import sys

from repro import ProtocolKind, run_app


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "Radix"
    n_cores = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    print(f"{app} on {n_cores} cores, all four protocols "
          f"(normalized to ScalableBulk):\n")
    header = (f"{'protocol':14s} {'cycles':>10s} {'rel.':>6s} "
              f"{'commit lat':>10s} {'commit%':>8s} {'squash%':>8s} "
              f"{'queue':>6s}")
    print(header)
    print("-" * len(header))

    baseline = None
    for proto in (ProtocolKind.SCALABLEBULK, ProtocolKind.TCC,
                  ProtocolKind.SEQ, ProtocolKind.BULKSC):
        r = run_app(app, n_cores=n_cores, protocol=proto,
                    chunks_per_partition=3)
        if baseline is None:
            baseline = r.total_cycles
        frac = r.breakdown_fractions()
        print(f"{proto.value:14s} {r.total_cycles:10,d} "
              f"{r.total_cycles / baseline:6.2f} "
              f"{r.mean_commit_latency:10.1f} "
              f"{frac['Commit'] * 100:7.1f}% "
              f"{frac['Squash'] * 100:7.1f}% "
              f"{r.mean_queue_length:6.2f}")

    print("\nReading the shape (paper Section 6):")
    print(" * ScalableBulk: overlapped commits, no queueing, no commit stall")
    print(" * TCC: TID-ordered per-directory service -> queues form")
    print(" * SEQ: sequential module occupation -> serialization on "
          "multi-directory chunks")
    print(" * BulkSC: one central arbiter -> collapses as cores scale")


if __name__ == "__main__":
    main()
