#!/usr/bin/env python
"""Trace a chunk's life through the protocol.

Attaches the chunk tracer to a small contended machine, runs it, and
prints (1) the machine-wide event summary and (2) the full timeline of one
chunk that lost a group-formation collision and retried — the debugging
workflow for protocol investigations.

Run:  python examples/debug_timeline.py
"""

from repro import Machine, ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.tracing import attach_tracer


def main() -> None:
    config = SystemConfig(n_cores=9, seed=11,
                          protocol=ProtocolKind.SCALABLEBULK)
    # every core hammers the same two pages: guaranteed collisions
    pages = (32 * 128 * 300, 32 * 128 * 460)

    def specs(core):
        return [ChunkSpec(250, [
            ChunkAccess(1, pages[0] + 32 * core, True),
            ChunkAccess(1, pages[1] + 32 * core, True),
            ChunkAccess(1, pages[0] + 32 * ((core + 1) % 9), False),
        ]) for _ in range(3)]

    remaining = {c: specs(c) for c in range(9)}
    machine = Machine(config, next_spec=lambda c: (
        remaining.get(c).pop(0) if remaining.get(c) else None))
    tracer = attach_tracer(machine)
    machine.run()

    print("machine-wide event summary:")
    for kind, count in sorted(tracer.summary().items()):
        print(f"  {kind:16s} {count}")

    failures = tracer.of_kind("group_failed")
    print(f"\n{len(failures)} group-formation failures; "
          f"{machine.protocol.stats.commit_recalls} OCI recalls")

    interesting = failures[0].tag if failures else \
        tracer.of_kind("commit_success")[0].tag
    print("\n" + tracer.timeline(interesting))

    squashes = tracer.of_kind("squash")
    if squashes:
        print("\n" + tracer.timeline(squashes[0].tag))


if __name__ == "__main__":
    main()
