#!/usr/bin/env python
"""Radix's commit storm: the workload that stresses every protocol.

Radix sort scatters writes across random bucket pages with no spatial
locality, so each 2000-instruction chunk commits through ~a dozen
directory modules, nearly all of them recording writes (paper Fig. 9).
This example characterizes that behaviour: the directory-spread
distribution (Fig. 11), and how group formation behaves as core count
grows.

Run:  python examples/radix_commit_storm.py
"""

from repro import ProtocolKind, SimulationRunner, SystemConfig


def main() -> None:
    print("=== Radix directory spread (paper Figs. 9/11) ===\n")
    for n_cores in (16, 36):
        config = SystemConfig(n_cores=n_cores,
                              protocol=ProtocolKind.SCALABLEBULK)
        runner = SimulationRunner("Radix", config, chunks_per_partition=3)
        result = runner.run(keep_machine=True)
        stats = result.machine.protocol.stats

        print(f"{n_cores} cores: {result.mean_dirs_per_commit:.2f} "
              f"directories per commit "
              f"({result.mean_write_dirs_per_commit:.2f} in the write group)")
        pct = stats.dirs_per_commit_hist.percentages(upper=14)
        print("  dirs:  " + " ".join(f"{d:>4}" for d in range(15)) + " more")
        print("  pct :  " + " ".join(
            f"{pct.get(d, 0):4.0f}" for d in range(15))
            + f" {pct['more']:4.0f}")

        print(f"  group formation: {stats.group_collisions} collisions, "
              f"{stats.commit_failures} formation failures, "
              f"{stats.commit_recalls} OCI recalls")
        print(f"  bottleneck ratio {result.bottleneck_ratio:.2f}, "
              f"commit latency {result.mean_commit_latency:.0f} cycles\n")

    print("=== Who survives the storm? (16 cores) ===\n")
    for proto in (ProtocolKind.SCALABLEBULK, ProtocolKind.SEQ):
        config = SystemConfig(n_cores=16, protocol=proto)
        result = SimulationRunner("Radix", config,
                                  chunks_per_partition=3).run()
        frac = result.breakdown_fractions()
        print(f"{proto.value:14s} total {result.total_cycles:8,d} cycles | "
              f"commit stall {frac['Commit'] * 100:5.1f}% | "
              f"queue {result.mean_queue_length:5.2f}")
    print("\nSEQ must occupy ~a dozen modules one by one per commit; "
          "ScalableBulk forms the whole group in parallel and overlaps "
          "non-conflicting groups on the same modules.")


if __name__ == "__main__":
    main()
