#!/usr/bin/env python
"""Quickstart: simulate one application under ScalableBulk.

Builds the paper's Table 2 machine (scaled to 16 cores so it runs in a few
seconds), executes a synthetic Barnes-Hut workload, and prints the
execution-time breakdown and commit statistics the paper reports.

Run:  python examples/quickstart.py [app] [n_cores]
"""

import sys

from repro import ProtocolKind, run_app


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "Barnes"
    n_cores = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    print(f"Simulating {app} on a {n_cores}-core ScalableBulk machine ...")
    result = run_app(app, n_cores=n_cores,
                     protocol=ProtocolKind.SCALABLEBULK,
                     chunks_per_partition=3)

    print(f"\n{app}: {result.chunks_committed} chunks committed in "
          f"{result.total_cycles:,} cycles")
    print("\nExecution-time breakdown (the paper's Fig. 7/8 categories):")
    for category, fraction in result.breakdown_fractions().items():
        bar = "#" * int(fraction * 50)
        print(f"  {category:10s} {fraction * 100:5.1f}%  {bar}")

    print("\nCommit behaviour:")
    print(f"  mean commit latency        {result.mean_commit_latency:8.1f} cycles")
    print(f"  directories per commit     {result.mean_dirs_per_commit:8.2f} "
          f"({result.mean_write_dirs_per_commit:.2f} recording writes)")
    print(f"  squashes (conflict/alias)  "
          f"{result.squashes_conflict}/{result.squashes_alias}")
    print(f"  bottleneck ratio           {result.bottleneck_ratio:8.2f}")

    print("\nNetwork traffic by class (Fig. 18/19 categories):")
    for cls, count in sorted(result.traffic_by_class.items()):
        print(f"  {cls:16s} {count:8d}")


if __name__ == "__main__":
    main()
