#!/usr/bin/env python
"""Optimistic Commit Initiation on vs off (paper Section 3.3).

With OCI a committing processor keeps consuming bulk invalidations while
its own commit is in flight; if one kills the in-flight chunk, a commit
recall cancels the group.  Without OCI (the conservative BulkSC-style
behaviour of Fig. 4(c)) the processor nacks invalidations until its own
outcome arrives, lengthening everyone's critical path.

Run:  python examples/oci_ablation.py [app] [n_cores]
"""

import sys

from repro import ProtocolKind, SimulationRunner, SystemConfig


def run(app: str, n_cores: int, oci: bool):
    config = SystemConfig(n_cores=n_cores, oci=oci,
                          protocol=ProtocolKind.SCALABLEBULK)
    result = SimulationRunner(app, config, chunks_per_partition=4).run(
        keep_machine=True)
    return result


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "Canneal"
    n_cores = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    print(f"OCI ablation: {app} on {n_cores} cores\n")
    rows = []
    for oci in (True, False):
        r = run(app, n_cores, oci)
        stats = r.machine.protocol.stats
        rows.append((oci, r, stats))
        mode = "OCI (optimistic)" if oci else "conservative"
        print(f"{mode:18s} cycles={r.total_cycles:9,d} "
              f"commit lat={r.mean_commit_latency:7.1f} "
              f"inv-nacks={stats.bulk_inv_nacks:5d} "
              f"recalls={stats.commit_recalls:3d} "
              f"squash={r.squashes_conflict + r.squashes_alias:3d}")

    with_oci, without = rows[0][1], rows[1][1]
    delta = (without.total_cycles - with_oci.total_cycles) \
        / without.total_cycles * 100
    print(f"\nOCI saves {delta:.1f}% of execution time here.")
    print("The conservative mode's invalidation nacks (retried by the "
          "winning leader) are the latency OCI removes from the critical "
          "path of successful commits.")


if __name__ == "__main__":
    main()
