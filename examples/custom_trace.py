#!/usr/bin/env python
"""Drive the simulator with your own memory trace.

Writes a small JSON-Lines trace (two producer cores writing a shared
buffer, two consumer cores reading it), replays it on a ScalableBulk
machine, and reports what the protocol did with it.  Replace the
generated file with a trace captured from a real program to study your
own workload.

Run:  python examples/custom_trace.py
"""

import json
import tempfile
from pathlib import Path

from repro import Machine, ProtocolKind, SystemConfig, TraceFileWorkload


def make_trace(path: Path, n_rounds: int = 4) -> None:
    """Producer/consumer rounds over a shared 4-page buffer."""
    buffer_base = 4096 * 1000
    with open(path, "w") as fh:
        for rnd in range(n_rounds):
            for producer in (0, 1):
                page = buffer_base + 4096 * (2 * rnd + producer)
                accesses = [[3, page + 32 * i, True] for i in range(8)]
                fh.write(json.dumps({"core": producer, "instructions": 400,
                                     "accesses": accesses}) + "\n")
            for consumer in (2, 3):
                page = buffer_base + 4096 * (2 * rnd + (consumer - 2))
                accesses = [[3, page + 32 * i, False] for i in range(8)]
                fh.write(json.dumps({"core": consumer, "instructions": 400,
                                     "accesses": accesses}) + "\n")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "producer_consumer.jsonl"
        make_trace(trace_path)
        print(f"wrote demo trace: {trace_path.name} "
              f"({trace_path.stat().st_size} bytes)")

        config = SystemConfig(n_cores=4,
                              protocol=ProtocolKind.SCALABLEBULK)
        workload = TraceFileWorkload.from_jsonl(trace_path, config)
        print(f"loaded {workload.total_chunks} chunks for cores "
              f"{workload.cores_with_work()}")

        machine = Machine(config, workload=workload)
        machine.run()

        result = machine.result("producer_consumer", active_cores=4)
        print(f"\nsimulated {result.total_cycles:,} cycles, "
              f"{result.chunks_committed} chunks committed")
        print(f"squashes: {result.squashes_conflict} conflict / "
              f"{result.squashes_alias} aliasing "
              "(consumers racing producers squash and retry)")
        print(f"mean commit latency: {result.mean_commit_latency:.1f} cycles")
        print("traffic:", dict(sorted(result.traffic_by_class.items())))


if __name__ == "__main__":
    main()
