"""Figure 7: SPLASH-2 execution-time breakdowns across the four protocols.

Shape checks (not absolute numbers): ScalableBulk carries essentially no
commit-stall time; SEQ pays heavy commit serialization on large-group
applications (Radix); overall, ScalableBulk's average speedup is at least
that of SEQ and BulkSC.
"""

from repro.config import ProtocolKind
from repro.harness.experiments import ALL_PROTOCOLS, run_execution_time_figure
from repro.harness.tables import render_breakdown

from conftest import CHUNKS, CORE_COUNTS, SPLASH2_SUBSET


def test_fig7_splash2_breakdown(once):
    fig = once(run_execution_time_figure, SPLASH2_SUBSET,
               CORE_COUNTS, ALL_PROTOCOLS, CHUNKS)
    print("\nFigure 7 (SPLASH-2 execution time, normalized to 1p "
          "ScalableBulk):")
    print(render_breakdown(fig, ALL_PROTOCOLS, CORE_COUNTS))

    big = max(CORE_COUNTS)
    sb = fig.average_speedup(ProtocolKind.SCALABLEBULK, big)
    seq = fig.average_speedup(ProtocolKind.SEQ, big)
    bsc = fig.average_speedup(ProtocolKind.BULKSC, big)
    assert sb > 0
    # ScalableBulk wins on average against the serializing protocols
    assert sb >= seq * 0.95
    assert sb >= bsc * 0.95

    # ScalableBulk shows practically no commit stalls (paper Section 6.1)
    sb_commit = fig.average_commit_fraction(ProtocolKind.SCALABLEBULK, big)
    assert sb_commit < 0.05

    # SEQ pays for Radix's large write groups; at the paper's 64-core
    # scale the commit component dominates its bar
    radix_seq = fig.bar("Radix", ProtocolKind.SEQ, big)
    radix_sb = fig.bar("Radix", ProtocolKind.SCALABLEBULK, big)
    if big >= 64:
        assert radix_seq.commit / max(radix_seq.normalized_time, 1e-12) > 0.3
    assert radix_seq.normalized_time >= radix_sb.normalized_time * 0.9

    # large-footprint apps beat linear scaling (aggregate L2 capacity)
    ocean = fig.bar("Ocean", ProtocolKind.SCALABLEBULK, big)
    assert ocean.speedup > big * 0.8
