"""Table 2: the simulated system configuration."""

from repro.config import ProtocolKind, SystemConfig, table2_config


def test_table2_defaults(once):
    config = once(table2_config, 64)
    # Processor & interconnect
    assert config.n_cores == 64
    assert config.signature_bits == 2048
    assert config.max_active_chunks_per_core == 2
    assert config.chunk_size_instructions == 2000
    assert config.mesh_shape == (8, 8)          # 2D torus
    assert config.link_latency_cycles == 7
    assert config.protocol is ProtocolKind.SCALABLEBULK
    # Memory subsystem
    assert config.l1.size_bytes == 32 * 1024
    assert config.l1.assoc == 4
    assert config.l1.line_bytes == 32
    assert config.l1.round_trip_cycles == 2
    assert config.l1.mshr_entries == 8
    assert config.l2.size_bytes == 512 * 1024
    assert config.l2.assoc == 8
    assert config.l2.round_trip_cycles == 8
    assert config.l2.mshr_entries == 64
    assert config.memory_round_trip_cycles == 300

    print("\nTable 2 (simulated system configuration):")
    print(f"  cores                {config.n_cores} "
          f"({config.mesh_shape[0]}x{config.mesh_shape[1]} torus)")
    print(f"  signature            {config.signature_bits} bits, "
          f"{config.signature_banks} banks")
    print(f"  chunk size           {config.chunk_size_instructions} instr, "
          f"max {config.max_active_chunks_per_core} active")
    print(f"  link latency         {config.link_latency_cycles} cycles")
    print(f"  L1                   {config.l1.size_bytes//1024}KB/"
          f"{config.l1.assoc}-way/{config.l1.line_bytes}B, "
          f"{config.l1.round_trip_cycles}cy")
    print(f"  L2                   {config.l2.size_bytes//1024}KB/"
          f"{config.l2.assoc}-way/{config.l2.line_bytes}B, "
          f"{config.l2.round_trip_cycles}cy")
    print(f"  memory round trip    {config.memory_round_trip_cycles} cycles")


def test_32_core_torus_shape(once):
    config = once(table2_config, 32)
    assert config.mesh_shape == (4, 8)
