"""Shared configuration for the figure-regeneration benchmarks.

Every benchmark regenerates one paper table/figure at a *shape-preserving*
reduced scale (16-core machine, a representative application subset, short
runs) so the whole suite finishes in minutes.  Set ``REPRO_BENCH_FULL=1``
to run at the paper's 64-core scale with all applications (slow; this is
what ``python -m repro.harness.sweep`` does to produce EXPERIMENTS.md).
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"

#: machine sizes standing in for the paper's 32/64
SMALL_CORES = 16
LARGE_CORES = 64 if FULL else 16
CORE_COUNTS = (32, 64) if FULL else (16,)
CHUNKS = 3 if FULL else 2

#: representative app subsets (full suites under REPRO_BENCH_FULL)
if FULL:
    from repro.workloads.profiles import PARSEC_APPS, SPLASH2_APPS
    SPLASH2_SUBSET = list(SPLASH2_APPS)
    PARSEC_SUBSET = list(PARSEC_APPS)
else:
    SPLASH2_SUBSET = ["Radix", "LU", "Barnes", "Ocean"]
    PARSEC_SUBSET = ["Blackscholes", "Canneal", "Swaptions"]


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
    return runner
