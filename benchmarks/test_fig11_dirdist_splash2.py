"""Figure 11: distribution of directories per commit, SPLASH-2 at scale."""

from repro.harness.experiments import run_dirs_distribution
from repro.harness.tables import render_distribution

from conftest import CHUNKS, LARGE_CORES, SPLASH2_SUBSET


def test_fig11_distribution_splash2(once):
    dist = once(run_dirs_distribution, SPLASH2_SUBSET, LARGE_CORES, CHUNKS)
    print(f"\nFigure 11 (distribution of dirs/commit, SPLASH-2, "
          f"{LARGE_CORES}p):")
    print(render_distribution(dist))

    for app, pct in dist.items():
        total = sum(pct.values())
        assert abs(total - 100.0) < 1e-6, app

    # Radix's mass sits at high directory counts; LU's at low counts
    radix_low = sum(v for k, v in dist["Radix"].items()
                    if isinstance(k, int) and k <= 3)
    lu_low = sum(v for k, v in dist["LU"].items()
                 if isinstance(k, int) and k <= 3)
    assert lu_low > 80
    assert radix_low < 40
