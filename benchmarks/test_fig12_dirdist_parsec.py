"""Figure 12: distribution of directories per commit, PARSEC at scale."""

from repro.harness.experiments import run_dirs_distribution
from repro.harness.tables import render_distribution

from conftest import CHUNKS, LARGE_CORES, PARSEC_SUBSET


def test_fig12_distribution_parsec(once):
    dist = once(run_dirs_distribution, PARSEC_SUBSET, LARGE_CORES, CHUNKS)
    print(f"\nFigure 12 (distribution of dirs/commit, PARSEC, "
          f"{LARGE_CORES}p):")
    print(render_distribution(dist))

    for pct in dist.values():
        assert abs(sum(pct.values()) - 100.0) < 1e-6

    # Canneal has the significant tail of large groups (Section 6.2)
    canneal_high = sum(v for k, v in dist["Canneal"].items()
                       if k == "more" or (isinstance(k, int) and k >= 5))
    swaptions_high = sum(v for k, v in dist["Swaptions"].items()
                         if k == "more" or (isinstance(k, int) and k >= 5))
    assert canneal_high > swaptions_high
