"""Figure 10: directories accessed per chunk commit, PARSEC."""

from repro.harness.experiments import run_dirs_per_commit
from repro.harness.tables import render_dirs_per_commit

from conftest import CHUNKS, CORE_COUNTS, PARSEC_SUBSET


def test_fig10_dirs_per_commit_parsec(once):
    rows = once(run_dirs_per_commit, PARSEC_SUBSET, CORE_COUNTS, CHUNKS)
    print("\nFigure 10 (directories per chunk commit, PARSEC):")
    print(render_dirs_per_commit(rows))

    big = max(CORE_COUNTS)
    by_app = {r.app: r for r in rows if r.n_cores == big}

    # Canneal and Blackscholes have the large groups (Section 6.2)
    assert by_app["Canneal"].mean_dirs > by_app["Swaptions"].mean_dirs
    assert by_app["Blackscholes"].mean_dirs > by_app["Swaptions"].mean_dirs
    # every app engages at least its own directory
    for r in rows:
        assert r.mean_dirs >= 1.0
        assert 0 <= r.mean_write_dirs <= r.mean_dirs
