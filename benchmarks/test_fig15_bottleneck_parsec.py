"""Figure 15: bottleneck ratio, PARSEC (ScalableBulk / TCC / SEQ)."""

from repro.config import ProtocolKind
from repro.harness.experiments import GROUPING_PROTOCOLS, run_bottleneck_ratio
from repro.harness.tables import render_ratio_table

from conftest import CHUNKS, LARGE_CORES, PARSEC_SUBSET


def test_fig15_bottleneck_parsec(once):
    data = once(run_bottleneck_ratio, PARSEC_SUBSET, LARGE_CORES,
                GROUPING_PROTOCOLS, CHUNKS)
    print(f"\nFigure 15 (bottleneck ratio, PARSEC, {LARGE_CORES}p):")
    print(render_ratio_table(data, "bottleneck ratio"))

    for per_proto in data.values():
        for ratio in per_proto.values():
            assert ratio >= 0.0

    # the large-group app pays more in SEQ than the parallel one
    assert data["Canneal"][ProtocolKind.SEQ] >= \
        data["Swaptions"][ProtocolKind.SEQ] * 0.5
