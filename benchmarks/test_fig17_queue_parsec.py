"""Figure 17: chunk queue lengths, PARSEC (TCC and SEQ only)."""

from repro.config import ProtocolKind
from repro.harness.experiments import QUEUEING_PROTOCOLS, run_queue_length
from repro.harness.tables import render_ratio_table

from conftest import CHUNKS, LARGE_CORES, PARSEC_SUBSET


def test_fig17_queue_parsec(once):
    data = once(run_queue_length, PARSEC_SUBSET, LARGE_CORES,
                QUEUEING_PROTOCOLS, CHUNKS)
    print(f"\nFigure 17 (chunk queue length, PARSEC, {LARGE_CORES}p):")
    print(render_ratio_table(data, "mean chunk queue length"))

    for per in data.values():
        for v in per.values():
            assert v >= 0.0

    # the high-commit-pressure app queues more than the parallel one
    assert data["Canneal"][ProtocolKind.SEQ] >= \
        data["Swaptions"][ProtocolKind.SEQ]
