"""Figure 8: PARSEC execution-time breakdowns across the four protocols."""

from repro.config import ProtocolKind
from repro.harness.experiments import ALL_PROTOCOLS, run_execution_time_figure
from repro.harness.tables import render_breakdown

from conftest import CHUNKS, CORE_COUNTS, PARSEC_SUBSET


def test_fig8_parsec_breakdown(once):
    fig = once(run_execution_time_figure, PARSEC_SUBSET,
               CORE_COUNTS, ALL_PROTOCOLS, CHUNKS)
    print("\nFigure 8 (PARSEC execution time, normalized to 1p "
          "ScalableBulk):")
    print(render_breakdown(fig, ALL_PROTOCOLS, CORE_COUNTS))

    big = max(CORE_COUNTS)
    sb = fig.average_speedup(ProtocolKind.SCALABLEBULK, big)
    seq = fig.average_speedup(ProtocolKind.SEQ, big)
    assert sb > 0 and sb >= seq * 0.95

    # ScalableBulk: no commit stalls on PARSEC either
    assert fig.average_commit_fraction(ProtocolKind.SCALABLEBULK, big) < 0.05

    # Canneal's scattered shared writes produce large groups -> SEQ pays
    canneal_seq = fig.bar("Canneal", ProtocolKind.SEQ, big)
    canneal_sb = fig.bar("Canneal", ProtocolKind.SCALABLEBULK, big)
    assert canneal_seq.normalized_time >= canneal_sb.normalized_time

    # the embarrassingly parallel app is insensitive to the protocol
    swap = [fig.bar("Swaptions", p, big).normalized_time
            for p in (ProtocolKind.SCALABLEBULK, ProtocolKind.TCC)]
    assert max(swap) / min(swap) < 1.6
