"""Scalability shape check: the paper's headline claim.

Going from a small to a large machine, ScalableBulk's commit latency grows
modestly and its commit-stall fraction stays ~0, while BulkSC's central
arbiter degrades sharply (paper: mean latency 98 -> 2954 cycles from 32p
to 64p) and SEQ's occupation latency grows with group size.
"""

from repro.config import ProtocolKind
from repro.harness.runner import run_app

from conftest import CHUNKS, FULL

SIZES = (16, 64) if FULL else (16, 36)
APP = "Radix"  # the large-group stressor


def test_scalablebulk_scales(once):
    def sweep():
        return {n: run_app(APP, n_cores=n, chunks_per_partition=CHUNKS)
                for n in SIZES}

    results = once(sweep)
    print(f"\nScalability ({APP}):")
    for n, r in results.items():
        frac = r.breakdown_fractions()
        print(f"  {n:3d} cores: commit latency {r.mean_commit_latency:7.1f} "
              f"commit stall {frac['Commit'] * 100:4.1f}% "
              f"dirs/commit {r.mean_dirs_per_commit:.2f}")
    small, big = (results[n] for n in SIZES)
    # no commit stalls at either scale
    for r in (small, big):
        assert r.breakdown_fractions()["Commit"] < 0.05
    # group size grows with machine size (more homes to spread over)
    assert big.mean_dirs_per_commit >= small.mean_dirs_per_commit


def test_bulksc_arbiter_degrades(once):
    def sweep():
        return {n: run_app(APP, n_cores=n, protocol=ProtocolKind.BULKSC,
                           chunks_per_partition=CHUNKS)
                for n in SIZES}

    results = once(sweep)
    small, big = (results[n] for n in SIZES)
    print(f"\nBulkSC arbiter ({APP}): "
          + ", ".join(f"{n}p lat={results[n].mean_commit_latency:.0f}"
                      for n in SIZES))
    # the centralized arbiter's latency grows super-proportionally
    assert big.mean_commit_latency > small.mean_commit_latency * 1.5


def test_seq_occupation_grows_with_group(once):
    def sweep():
        return {n: run_app(APP, n_cores=n, protocol=ProtocolKind.SEQ,
                           chunks_per_partition=CHUNKS)
                for n in SIZES}

    results = once(sweep)
    small, big = (results[n] for n in SIZES)
    print(f"\nSEQ occupation ({APP}): "
          + ", ".join(f"{n}p lat={results[n].mean_commit_latency:.0f}"
                      for n in SIZES))
    assert big.mean_commit_latency > small.mean_commit_latency
