"""Table 3: the four simulated cache-coherence protocols."""

from repro.config import ProtocolKind
from repro.harness.runner import run_app

from conftest import CHUNKS, SMALL_CORES


def test_table3_all_protocols_complete(once):
    def run_all():
        return {proto: run_app("LU", n_cores=SMALL_CORES, protocol=proto,
                               chunks_per_partition=CHUNKS)
                for proto in ProtocolKind}

    results = once(run_all)
    print("\nTable 3 (simulated protocols):")
    for proto, r in results.items():
        assert r.chunks_committed == r.active_cores * CHUNKS
        print(f"  {proto.value:14s} commits={r.chunks_committed:4d} "
              f"cycles={r.total_cycles:8d} "
              f"mean commit latency={r.mean_commit_latency:7.1f}")
    # the four protocols are genuinely different machines
    cycles = {r.total_cycles for r in results.values()}
    assert len(cycles) >= 2
