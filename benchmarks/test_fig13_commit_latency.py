"""Figure 13: chunk-commit latency distribution per protocol.

Shape (paper, 64p): ScalableBulk has the lowest mean latency; BulkSC's
centralized arbiter queues catastrophically at scale; SEQ pays sequential
occupation on large-group applications.
"""

from repro.config import ProtocolKind
from repro.harness.experiments import ALL_PROTOCOLS, run_commit_latency
from repro.harness.tables import render_commit_latency

from conftest import CHUNKS, LARGE_CORES, PARSEC_SUBSET, SPLASH2_SUBSET

APPS = SPLASH2_SUBSET[:3] + PARSEC_SUBSET[:1]


def test_fig13_commit_latency(once):
    samples = once(run_commit_latency, APPS, LARGE_CORES, ALL_PROTOCOLS,
                   CHUNKS)
    print(f"\nFigure 13 (commit latency, {LARGE_CORES}p, apps={APPS}):")
    print(render_commit_latency(samples))

    means = {p: (sum(v) / len(v) if v else 0.0)
             for p, v in samples.items()}
    sb = means[ProtocolKind.SCALABLEBULK]
    assert sb > 0
    # the serializing protocols pay more than ScalableBulk
    assert means[ProtocolKind.SEQ] > sb
    # latency distributions are non-degenerate
    for proto, values in samples.items():
        assert len(values) == len(APPS) * LARGE_CORES * CHUNKS, proto
