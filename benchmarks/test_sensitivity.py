"""Sensitivity benches around the paper's design arguments (Section 2.2/2.3).

The chunk-size sweep reproduces the paper's explanation of why Scalable
TCC's own evaluation saw no commit bottleneck: with 10k+-instruction
transactions, commits are rare enough to hide; at 2k-instruction chunks
they are not.
"""

from repro.config import ProtocolKind
from repro.harness.sensitivity import (
    backoff_sweep, chunk_size_sweep, render_sweep, signature_sweep,
)

from conftest import SMALL_CORES


def test_commit_criticality_vs_chunk_size(once):
    points = once(chunk_size_sweep, "Radix", SMALL_CORES,
                  (1000, 2000, 8000))
    print("\nChunk-size sweep (Section 2.2 argument):")
    print(render_sweep(points, "chunk_size"))

    seq = {p.x: p for p in points if p.protocol is ProtocolKind.SEQ}
    # commits per kilocycle must fall as chunks grow (fewer, bigger commits)
    assert seq[8000].commits_per_kcycle < seq[1000].commits_per_kcycle
    # and SEQ's commit latency is paid less often, so its relative commit
    # overhead shrinks with chunk size
    assert seq[8000].commit_fraction <= max(seq[1000].commit_fraction,
                                            seq[2000].commit_fraction) + 0.02


def test_signature_geometry_vs_aliasing(once):
    points = once(signature_sweep, "Barnes", SMALL_CORES)
    print("\nSignature-geometry sweep:")
    print(render_sweep(points, "sig_bits"))
    tiny = [p for p in points if p.x == 512][0]
    big = [p for p in points if p.x == 2048][-1]
    assert tiny.squashes_alias >= big.squashes_alias


def test_backoff_sweep_completes(once):
    points = once(backoff_sweep, "Canneal", SMALL_CORES, (10, 100))
    print("\nRetry-backoff sweep:")
    print(render_sweep(points, "backoff"))
    assert all(p.total_cycles > 0 for p in points)
