"""Figure 19: traffic characterization, PARSEC."""

from repro.config import ProtocolKind
from repro.harness.experiments import ALL_PROTOCOLS, run_traffic
from repro.harness.tables import render_traffic

from conftest import CHUNKS, LARGE_CORES, PARSEC_SUBSET


def test_fig19_traffic_parsec(once):
    data = once(run_traffic, PARSEC_SUBSET, LARGE_CORES, ALL_PROTOCOLS,
                CHUNKS)
    print(f"\nFigure 19 (message mix, PARSEC, {LARGE_CORES}p, "
          f"normalized to TCC):")
    print(render_traffic(data))

    for app, per_proto in data.items():
        totals = {p: sum(c.values()) for p, c in per_proto.items()}
        assert totals[ProtocolKind.TCC] == max(totals.values()), app
        # BulkSC funnels everything through the arbiter but sends far
        # fewer messages than TCC's broadcast storm
        assert totals[ProtocolKind.BULKSC] < totals[ProtocolKind.TCC], app
