"""Figure 18: traffic characterization, SPLASH-2.

Shape: TCC generates the most messages (probe/skip broadcast + per-line
marks), dominated by small commit messages; ScalableBulk's commit traffic
is point-to-point and far lighter.
"""

from repro.config import ProtocolKind
from repro.harness.experiments import ALL_PROTOCOLS, run_traffic
from repro.harness.tables import normalize_traffic, render_traffic

from conftest import CHUNKS, LARGE_CORES, SPLASH2_SUBSET


def test_fig18_traffic_splash2(once):
    data = once(run_traffic, SPLASH2_SUBSET, LARGE_CORES, ALL_PROTOCOLS,
                CHUNKS)
    print(f"\nFigure 18 (message mix, SPLASH-2, {LARGE_CORES}p, "
          f"normalized to TCC):")
    print(render_traffic(data))

    for app, per_proto in data.items():
        totals = {p: sum(counts.values())
                  for p, counts in per_proto.items()}
        # TCC sends the most messages of all protocols (Section 6.5)
        assert totals[ProtocolKind.TCC] == max(totals.values()), app
        # TCC's commit traffic is dominated by small messages (skip/probe)
        tcc = per_proto[ProtocolKind.TCC]
        assert tcc.get("SmallCMessage", 0) > tcc.get("LargeCMessage", 0)
        # ScalableBulk commit messages: fewer than TCC's
        sb = per_proto[ProtocolKind.SCALABLEBULK]
        tcc_commit = tcc.get("SmallCMessage", 0) + tcc.get("LargeCMessage", 0)
        sb_commit = sb.get("SmallCMessage", 0) + sb.get("LargeCMessage", 0)
        assert sb_commit < tcc_commit, app
