"""Figure 9: directories accessed per chunk commit, SPLASH-2.

Shape: applications average 2-6 directories; Radix is the outlier with a
large group in which nearly every module records writes.
"""

from repro.harness.experiments import run_dirs_per_commit
from repro.harness.tables import render_dirs_per_commit

from conftest import CHUNKS, CORE_COUNTS, SPLASH2_SUBSET


def test_fig9_dirs_per_commit_splash2(once):
    rows = once(run_dirs_per_commit, SPLASH2_SUBSET, CORE_COUNTS, CHUNKS)
    print("\nFigure 9 (directories per chunk commit, SPLASH-2):")
    print(render_dirs_per_commit(rows))

    big = max(CORE_COUNTS)
    by_app = {r.app: r for r in rows if r.n_cores == big}

    radix = by_app["Radix"]
    assert radix.mean_dirs >= 7, "Radix must access many directories"
    # nearly all of Radix's group records writes (Section 6.2)
    assert radix.mean_write_dirs / radix.mean_dirs > 0.8

    lu = by_app["LU"]
    assert lu.mean_dirs < 4, "blocked LU has small groups"

    assert radix.mean_dirs > 2 * lu.mean_dirs
