"""Table 1: the ten ScalableBulk message types, exercised in a live run."""

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine
from repro.network.message import SCALABLEBULK_TABLE1_TYPES, MessageType

from conftest import SMALL_CORES


def conflict_heavy_machine():
    """Cores hammer overlapping lines so every protocol path fires."""
    config = SystemConfig(n_cores=SMALL_CORES, seed=5,
                          protocol=ProtocolKind.SCALABLEBULK)
    # four lines on four different pages -> multi-directory groups
    lines = [32 * 128 * (50_000 + i) for i in range(4)]

    def specs():
        return [ChunkSpec(300, [ChunkAccess(1, lines[i % 4], True),
                                ChunkAccess(1, lines[(i + 1) % 4], False),
                                ChunkAccess(1, lines[(i + 2) % 4], True)])
                for i in range(5)]

    remaining = {c: specs() for c in range(8)}

    def next_spec(core_id):
        lst = remaining.get(core_id)
        return lst.pop(0) if lst else None

    return Machine(config, next_spec=next_spec)


def test_table1_all_message_types_exercised(once):
    machine = once(lambda: (lambda m: (m.run(), m)[1])(conflict_heavy_machine()))
    seen = set(machine.network.stats.messages_by_type)
    wire_types = {
        MessageType.COMMIT_REQUEST, MessageType.G, MessageType.G_FAILURE,
        MessageType.G_SUCCESS, MessageType.COMMIT_FAILURE,
        MessageType.COMMIT_SUCCESS, MessageType.BULK_INV,
        MessageType.BULK_INV_ACK, MessageType.COMMIT_DONE,
    }
    missing = wire_types - seen
    assert not missing, f"message types never sent: {missing}"
    # commit_recall is piggy-backed, never a standalone packet; it is
    # exercised through the recall counter when an in-flight commit dies
    assert machine.protocol.stats.commit_recalls >= 0
    assert len(SCALABLEBULK_TABLE1_TYPES) == 10

    print("\nTable 1 message counts (live run):")
    for mtype in SCALABLEBULK_TABLE1_TYPES:
        if mtype is MessageType.COMMIT_RECALL:
            count = machine.protocol.stats.commit_recalls
            print(f"  {mtype.value:16s} {count:6d} (piggy-backed)")
        else:
            print(f"  {mtype.value:16s} "
                  f"{machine.network.stats.messages_by_type.get(mtype, 0):6d}")
