"""Figure 14: bottleneck ratio, SPLASH-2 (ScalableBulk / TCC / SEQ).

Shape: SEQ's sequential occupation makes group acquisition dwarf commit
completion on large-group apps; ScalableBulk stays moderate.
"""

from repro.config import ProtocolKind
from repro.harness.experiments import GROUPING_PROTOCOLS, run_bottleneck_ratio
from repro.harness.tables import render_ratio_table

from conftest import CHUNKS, LARGE_CORES, SPLASH2_SUBSET


def test_fig14_bottleneck_splash2(once):
    data = once(run_bottleneck_ratio, SPLASH2_SUBSET, LARGE_CORES,
                GROUPING_PROTOCOLS, CHUNKS)
    print(f"\nFigure 14 (bottleneck ratio, SPLASH-2, {LARGE_CORES}p):")
    print(render_ratio_table(data, "bottleneck ratio"))

    for app, per_proto in data.items():
        for proto, ratio in per_proto.items():
            assert ratio >= 0.0, (app, proto)

    # SEQ on Radix: formation (occupation) dominates completion
    assert data["Radix"][ProtocolKind.SEQ] > \
        data["Radix"][ProtocolKind.SCALABLEBULK]
