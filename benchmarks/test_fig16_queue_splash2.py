"""Figure 16: chunk queue lengths, SPLASH-2 (TCC and SEQ only).

ScalableBulk chunks never queue (full overlap); TCC and SEQ queue chunks
behind earlier commits at shared directories.
"""

from repro.config import ProtocolKind
from repro.harness.experiments import (
    QUEUEING_PROTOCOLS, run_queue_length,
)
from repro.harness.tables import render_ratio_table

from conftest import CHUNKS, LARGE_CORES, SPLASH2_SUBSET


def test_fig16_queue_splash2(once):
    data = once(run_queue_length, SPLASH2_SUBSET, LARGE_CORES,
                QUEUEING_PROTOCOLS, CHUNKS)
    print(f"\nFigure 16 (chunk queue length, SPLASH-2, {LARGE_CORES}p):")
    print(render_ratio_table(data, "mean chunk queue length"))

    # queues exist somewhere for both serializing protocols
    assert any(per[ProtocolKind.SEQ] > 0.5 for per in data.values())
    # Radix queues hardest under SEQ (large write groups)
    assert data["Radix"][ProtocolKind.SEQ] >= \
        max(per[ProtocolKind.SEQ] for app, per in data.items()
            if app != "Radix") * 0.8


def test_scalablebulk_queues_nothing(once):
    data = once(run_queue_length, ["Radix"], LARGE_CORES,
                (ProtocolKind.SCALABLEBULK,), CHUNKS)
    assert data["Radix"][ProtocolKind.SCALABLEBULK] == 0.0
