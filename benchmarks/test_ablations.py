"""Ablation benches for the design choices DESIGN.md calls out.

* OCI on/off (Section 3.3): optimistic initiation must not hurt, and under
  commit pressure it shortens the critical path.
* Signature geometry: fewer banks -> denser banks -> more aliasing
  squashes (the paper's 2.3% figure is a design point, not a law).
* Leader-priority rotation (Section 3.2.2): fairness knob, must preserve
  correctness and roughly preserve performance.
* Network contention on/off: isolates protocol serialization from NoC
  queueing.
"""

from repro.config import ProtocolKind
from repro.harness.runner import run_app

from conftest import CHUNKS, SMALL_CORES

APP = "Barnes"  # moderate sharing: sensitive to all four knobs


def run_with(once, **overrides):
    return once(lambda: run_app(APP, n_cores=SMALL_CORES,
                                protocol=ProtocolKind.SCALABLEBULK,
                                chunks_per_partition=CHUNKS, **overrides))


class TestOciAblation:
    def test_oci_does_not_slow_down(self, once):
        with_oci = run_app(APP, n_cores=SMALL_CORES,
                           chunks_per_partition=CHUNKS, oci=True)
        without = run_with(once, oci=False)
        print(f"\nOCI ablation ({APP}): with={with_oci.total_cycles} "
              f"without={without.total_cycles} "
              f"inv-nacks without OCI={0 if with_oci else 0}")
        assert with_oci.total_cycles <= without.total_cycles * 1.15
        assert with_oci.chunks_committed == without.chunks_committed


class TestSignatureAblation:
    def test_fewer_banks_more_aliasing(self, once):
        dense = run_with(once, signature_bits=512, signature_banks=2)
        precise = run_app(APP, n_cores=SMALL_CORES,
                          chunks_per_partition=CHUNKS,
                          signature_bits=2048, signature_banks=8)
        print(f"\nSignature ablation ({APP}): "
              f"512b/2banks aliasing={dense.squashes_alias} "
              f"2048b/8banks aliasing={precise.squashes_alias}")
        assert dense.squashes_alias >= precise.squashes_alias
        # correctness is untouched: everything still commits
        assert dense.chunks_committed == precise.chunks_committed


class TestRotationAblation:
    def test_rotation_preserves_correctness(self, once):
        rotated = run_with(once, priority_rotation_interval=500)
        fixed = run_app(APP, n_cores=SMALL_CORES,
                        chunks_per_partition=CHUNKS,
                        priority_rotation_interval=0)
        print(f"\nRotation ablation ({APP}): rotated={rotated.total_cycles} "
              f"fixed={fixed.total_cycles}")
        assert rotated.chunks_committed == fixed.chunks_committed
        assert rotated.total_cycles <= fixed.total_cycles * 1.5


class TestContentionAblation:
    def test_contention_costs_cycles(self, once):
        contended = run_with(once, network_contention=True)
        ideal = run_app(APP, n_cores=SMALL_CORES,
                        chunks_per_partition=CHUNKS,
                        network_contention=False)
        print(f"\nNoC contention ablation ({APP}): "
              f"contended={contended.total_cycles} ideal={ideal.total_cycles}")
        assert ideal.total_cycles <= contended.total_cycles
        assert contended.chunks_committed == ideal.chunks_committed


class TestStarvationAblation:
    def test_reservation_threshold_liveness(self, once):
        eager = run_with(once, starvation_max_squashes=2)
        assert eager.chunks_committed == SMALL_CORES * CHUNKS
