"""AccessSanitizer: opt-in, zero-cost when off, faithful when on."""

import dataclasses
import subprocess
import sys

import pytest

from repro.analysis.explore.mutations import Mutation
from repro.analysis.explore.scenarios import SCENARIOS
from repro.analysis.explore.driver import run_schedule
from repro.analysis.races.sanitizer import AccessSanitizer, _classify, _probe
from repro.obs import NULL_BUS, InstrumentationBus
from repro.obs.bus import STATE_ACCESS

#: one scenario per protocol family (acceptance: all four unperturbed)
ALL_PROTOCOL_SCENARIOS = ("cross3", "tcc3", "bulksc3", "seq3")


def result_fields(result):
    d = dataclasses.asdict(result)
    d.pop("scenario")
    d.pop("mutation")  # the attach hook rides the mutation slot: name-only
    return d


def sanitized_run(name, bus=None, keep=None):
    """Run one scenario with the sanitizer attached at build time."""
    def _apply(machine):
        san = AccessSanitizer(machine, bus)
        if keep is not None:
            keep.append(san)
    mut = Mutation(name="sanitize", description="", scenario=name,
                   expected="", apply=_apply)
    return run_schedule(SCENARIOS[name], None, mut)


class TestZeroCostDefault:
    """Acceptance: default runs are byte-identical with the sanitizer off,
    and attaching it must not perturb the simulation either."""

    def test_default_run_path_never_imports_sanitizer(self):
        """`repro run` must not even import the races package."""
        proc = subprocess.run(
            [sys.executable, "-c",
             "import sys\n"
             "from repro.harness.runner import run_app\n"
             "run_app('Radix', n_cores=4, chunks_per_partition=2)\n"
             "bad = [m for m in sys.modules if 'analysis.races' in m]\n"
             "assert not bad, bad\n"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr

    @pytest.mark.parametrize("name", ALL_PROTOCOL_SCENARIOS)
    def test_all_protocols_unperturbed_by_sanitizer(self, name):
        plain = run_schedule(SCENARIOS[name], None, None)
        traced = sanitized_run(name, bus=InstrumentationBus())
        assert result_fields(plain) == result_fields(traced)

    def test_null_bus_discipline(self):
        """With no bus the sanitizer records locally through NULL_BUS,
        which stays disabled and swallows state_access events."""
        assert not NULL_BUS.enabled
        assert NULL_BUS.state_access(0, "d0", "X", "h", "a", "write",
                                     None) is None
        keep = []
        sanitized_run("cross3", bus=None, keep=keep)
        keep[0].flush()
        assert keep[0].spans, "sanitizer should still record spans"


class TestRecording:
    def test_spans_and_bus_events_flow(self):
        bus = InstrumentationBus()
        keep = []
        sanitized_run("cross3", bus=bus, keep=keep)
        san = keep[0]
        san.flush()
        spans = [s for s in san.spans if s.records]
        assert spans, "expected state-access records on cross3"
        emitted = [e for e in bus.events if e.kind == STATE_ACCESS]
        assert len(emitted) == sum(len(s.records) for s in san.spans)
        for s in spans:
            for r in s.records:
                assert r.op in ("grow", "release", "write")
                assert r.cls and r.attr and r.handler

    def test_leak_queries_match_cross3_tombstones(self):
        """failed_cids is the intentional tombstone: it grows and is never
        released, which is exactly what SB504 confirmation keys on."""
        keep = []
        sanitized_run("cross3", keep=keep)
        san = keep[0]
        san.flush()
        assert san.grew("ScalableBulkDirectory", "failed_cids")
        assert san.leaked_at("ScalableBulkDirectory", "failed_cids")
        # cst entries come and go: grown but reconciled
        assert not san.leaked_at("ScalableBulkDirectory", "cst")

    def test_detach_restores_original_handlers(self):
        from repro.analysis.explore.driver import build_machine
        machine = build_machine(SCENARIOS["cross3"])
        before = dict(machine.network._handlers)
        san = AccessSanitizer(machine)
        wrapped = dict(machine.network._handlers)
        assert any(before[k] is not wrapped[k] for k in before)
        san.detach()
        after = dict(machine.network._handlers)
        assert all(before[k] is after[k] for k in before)


class TestFingerprints:
    def test_probe_sees_inplace_mutation(self):
        """Structural digests catch entries mutated without changing the
        container's length or identity (the CST failure mode)."""
        class Entry:
            def __init__(self):
                self.acks = 0
        table = {7: Entry()}
        before = _probe(table)
        table[7].acks = 3
        assert _probe(table) != before

    def test_classify_polarity(self):
        empty, one = _probe(set()), _probe({1})
        assert _classify(empty, one) == "grow"
        assert _classify(one, empty) == "release"
        assert _classify(_probe({1}), _probe({2})) == "write"
