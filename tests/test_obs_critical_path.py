"""Tests for the commit critical-path analyzer.

Synthetic event streams pin the phase arithmetic and the outcome
classification; one real run cross-checks the analyzer's mean total
latency against the independently collected protocol statistics.
"""

import pytest

from repro.harness.runner import run_app
from repro.obs.bus import (
    COMMIT_COMPLETE,
    COMMIT_REQUEST,
    COMMIT_RETRY,
    GRAB_ADMIT,
    GROUP_FAILED,
    GROUP_FORMED,
    SQUASH,
    InstrumentationBus,
    ObsEvent,
)
from repro.obs.critical_path import (
    COMMITTED,
    FAILED,
    SQUASHED,
    UNRESOLVED,
    analyze_commit_paths,
    analyze_events,
)


def ev(time, kind, src, ctag, **fields):
    return ObsEvent(time, kind, src, ctag, fields)


def committed_stream(tag="T0", cid=None):
    """request@10 -> d0 admits@22 -> d1 admits@30 -> formed@35 -> done@50."""
    cid = cid or (tag, 0)
    return [
        ev(10, COMMIT_REQUEST, "core0", cid, core=0, dirs=[0, 1]),
        ev(22, GRAB_ADMIT, "dir0", cid, dir=0, next_dir=1),
        ev(30, GRAB_ADMIT, "dir1", cid, dir=1, next_dir=None),
        ev(35, GROUP_FORMED, "dir1", cid, dir=1, proc=0, order=[0, 1]),
        ev(50, COMMIT_COMPLETE, "core0", tag, core=0, n_dirs=2),
    ]


class TestPhaseArithmetic:
    def test_committed_path_phases(self):
        report = analyze_events(committed_stream())
        (p,) = report.paths
        assert p.outcome == COMMITTED
        assert p.request_latency == 12       # 10 -> first admit @22
        assert p.circulation_latency == 13   # 22 -> formed @35
        assert p.completion_latency == 15    # 35 -> done @50
        assert p.total_latency == 40
        assert [(h.dir_id, h.dwell) for h in p.hops] == [(0, 12), (1, 8)]
        assert p.formed_dir == 1

    def test_phases_sum_to_total(self):
        (p,) = analyze_events(committed_stream()).paths
        assert (p.request_latency + p.circulation_latency
                + p.completion_latency) == p.total_latency

    def test_baseline_attempt_has_no_hops(self):
        cid = ("T0", 0)
        report = analyze_events([
            ev(10, COMMIT_REQUEST, "core0", cid, core=0, dirs=[0]),
            ev(40, GROUP_FORMED, "arbiter", cid, dir=None, proc=0, order=[0]),
            ev(55, COMMIT_COMPLETE, "core0", "T0", core=0, n_dirs=1),
        ])
        (p,) = report.paths
        assert p.outcome == COMMITTED
        assert p.hops == []
        assert p.request_latency == 30       # runs to group formation
        assert p.circulation_latency is None
        assert p.completion_latency == 15
        assert p.formed_dir is None


class TestOutcomes:
    def test_failed_then_retried_attempt(self):
        first, second = ("T0", 0), ("T0", 1)
        events = [
            ev(10, COMMIT_REQUEST, "core0", first, core=0, dirs=[0, 1]),
            ev(20, GRAB_ADMIT, "dir0", first, dir=0, next_dir=1),
            ev(25, GROUP_FAILED, "dir1", first, dir=1, proc=0, genuine=True,
               leader_here=False),
            ev(28, COMMIT_RETRY, "core0", first, core=0),
        ] + committed_stream(cid=second)[:]
        report = analyze_events(events)
        by_cid = {p.cid: p for p in report.paths}
        assert by_cid[first].outcome == FAILED
        assert by_cid[second].outcome == COMMITTED

    def test_squashed_attempt(self):
        cid = ("T0", 0)
        report = analyze_events([
            ev(10, COMMIT_REQUEST, "core0", cid, core=0, dirs=[0]),
            ev(30, SQUASH, "core0", "T0", core=0, reason="conflict"),
        ])
        assert report.paths[0].outcome == SQUASHED

    def test_unresolved_attempt(self):
        cid = ("T0", 0)
        report = analyze_events([
            ev(10, COMMIT_REQUEST, "core0", cid, core=0, dirs=[0]),
        ])
        (p,) = report.paths
        assert p.outcome == UNRESOLVED
        assert p.total_latency is None


class TestReport:
    def test_summary_aggregates(self):
        events = committed_stream("T0") + [
            ObsEvent(e.time + 100, e.kind, e.src,
                     ("T1", 0) if isinstance(e.ctag, tuple) else "T1",
                     dict(e.fields))
            for e in committed_stream("T1")
        ]
        s = analyze_events(events).summary()
        assert s["attempts"] == 2
        assert s["outcomes"] == {COMMITTED: 2}
        assert s["mean_total"] == pytest.approx(40.0)
        assert (s["mean_request"] + s["mean_circulation"]
                + s["mean_completion"]) == pytest.approx(s["mean_total"])
        # hop 0's dwell belongs to the request phase, so only dir1 shows
        assert s["mean_hop_dwell_by_dir"] == {"dir1": pytest.approx(8.0)}

    def test_render_mentions_every_attempt(self):
        text = analyze_events(committed_stream()).render()
        assert "T0#0" in text
        assert "committed" in text

    def test_to_json_round_trips_through_summary(self):
        doc = analyze_events(committed_stream()).to_json()
        assert doc["summary"]["attempts"] == 1
        assert doc["paths"][0]["outcome"] == COMMITTED


class TestAgainstRealRun:
    def test_analyzer_matches_protocol_stats(self):
        bus = InstrumentationBus(record_messages=False)
        result = run_app("Radix", n_cores=4, chunks_per_partition=2, bus=bus)
        report = analyze_commit_paths(bus)
        s = report.summary()
        assert s["outcomes"].get(COMMITTED, 0) == result.chunks_committed
        # the phase decomposition must reproduce the stats-side mean
        assert s["mean_total"] == pytest.approx(result.mean_commit_latency)
