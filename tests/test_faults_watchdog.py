"""Liveness watchdog: fires on stalls, stays silent on progress."""

import pytest

from repro.analysis.explore.mutations import MUTATIONS
from repro.analysis.explore.scenarios import SCENARIOS, build_machine
from repro.faults.campaign import run_plan, stress_plan
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import (LivenessWatchdog, attach_watchdog,
                                   machine_snapshot)
from repro.obs.bus import WATCHDOG_FIRE, InstrumentationBus, attach_bus


def _run(machine, max_events=150_000):
    try:
        machine.run(max_events=max_events, prewarm=False)
    except RuntimeError:
        pass


class TestQuietOnProgress:
    def test_no_fires_on_clean_run(self):
        machine = build_machine(SCENARIOS["mixed3"])
        dog = attach_watchdog(machine, window=500)
        _run(machine)
        assert dog.fires == []
        assert dog.checks >= 1

    def test_watchdog_rejects_nonpositive_window(self):
        machine = build_machine(SCENARIOS["mixed3"])
        with pytest.raises(ValueError):
            LivenessWatchdog(machine, window=0)


class TestFiresOnStall:
    def _wedged_machine(self):
        """reservation-leak + a forced permanent reservation: directory 2
        defers every group for an identity that committed long ago."""
        scenario = SCENARIOS["cross3"]
        machine = build_machine(scenario)
        MUTATIONS["reservation-leak"].apply(machine)
        from repro.core.directory_engine import ScalableBulkDirectory
        for directory in machine.directories:
            if isinstance(directory, ScalableBulkDirectory):
                directory.reserved_for = (99, 99)  # never matches, never fails
        return machine

    def test_fires_are_bounded_and_run_terminates(self):
        # The deferred groups keep the cores' retry loop alive, so this
        # wedge surfaces as livelock (max_events) rather than a drained
        # heap; either way the watchdog stops at max_fires.
        machine = self._wedged_machine()
        dog = attach_watchdog(machine, window=2_000, max_fires=3)
        with pytest.raises(RuntimeError,
                           match="max_events|unfinished cores"):
            machine.run(max_events=200_000, prewarm=False)
        assert len(dog.fires) == 3
        # Fires carry the live CST state for post-mortem debugging.
        snap = dog.fires[-1].snapshot
        assert snap["dirs"], snap
        assert any(d["reserved_for"] == [99, 99] for d in snap["dirs"])
        assert any(not c["finished"] for c in snap["cores"])

    def test_fire_json_round_trips(self):
        machine = self._wedged_machine()
        dog = attach_watchdog(machine, window=2_000, max_fires=1)
        with pytest.raises(RuntimeError):
            machine.run(max_events=10**6, prewarm=False)
        import json
        blob = json.dumps([f.to_json() for f in dog.fires], sort_keys=True)
        assert json.loads(blob)[0]["commits"] == dog.fires[0].commits

    def test_fires_reach_the_obs_bus(self):
        machine = self._wedged_machine()
        bus = InstrumentationBus()
        attach_bus(machine, bus)
        attach_watchdog(machine, window=2_000, max_fires=2, bus=bus)
        with pytest.raises(RuntimeError):
            machine.run(max_events=10**6, prewarm=False)
        hooks = [e for e in bus.events if e.kind == WATCHDOG_FIRE]
        assert len(hooks) == 2
        assert hooks[0].fields["snapshot"]["dirs"]


class TestSnapshot:
    def test_snapshot_is_read_only_and_jsonable(self):
        import json
        machine = build_machine(SCENARIOS["cross3"])
        machine.run(max_events=150_000, prewarm=False)
        snap = machine_snapshot(machine)
        json.dumps(snap)  # must not raise
        assert snap["time"] == int(machine.sim.now)
        assert len(snap["cores"]) == 3
        assert all(c["finished"] for c in snap["cores"])

    def test_run_plan_surfaces_watchdog_fires(self):
        """run_plan wires the watchdog verdict into the chaos result."""
        scenario = SCENARIOS["cross3"]
        result = run_plan(scenario, FaultPlan.empty(), watchdog_window=500)
        assert result.watchdog_fires == []
        assert result.ok

    def test_run_plan_detects_leak_under_storm(self):
        """The headline behaviour: reservation-leak wedges the machine
        under a squash storm, and both the watchdog and the liveness
        invariants see it."""
        scenario = SCENARIOS["cross3"]
        result = run_plan(scenario, stress_plan(0),
                          mutation=MUTATIONS["reservation-leak"],
                          watchdog_window=5_000)
        assert set(result.codes) & {"SB403", "SB404"}, result.codes
        assert result.watchdog_fires
