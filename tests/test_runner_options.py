"""Tests for runner options and the ScalableBulk protocol object."""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.harness.runner import Machine, SimulationRunner, run_app
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import get_profile


class TestPriorityOffsetClock:
    def _protocol(self, interval):
        config = SystemConfig(n_cores=9, seed=3,
                              priority_rotation_interval=interval)
        machine = Machine(config, next_spec=lambda c: None)
        return machine

    def test_offset_zero_without_rotation(self):
        m = self._protocol(0)
        m.sim.schedule(5000, lambda: None)
        m.sim.run()
        assert m.protocol.priority_offset() == 0

    def test_offset_advances_with_time(self):
        m = self._protocol(100)
        assert m.protocol.priority_offset() == 0
        m.sim.schedule(250, lambda: None)
        m.sim.run()
        assert m.protocol.priority_offset() == 2

    def test_offset_wraps_at_module_count(self):
        m = self._protocol(10)
        m.sim.schedule(10 * 9 + 5, lambda: None)
        m.sim.run()
        assert m.protocol.priority_offset() == 0


class TestPrewarmToggle:
    def test_cold_run_slower_than_prewarmed(self):
        def run(prewarm):
            config = SystemConfig(n_cores=4, seed=3)
            w = SyntheticWorkload(get_profile("LU"), config, active_cores=4,
                                  chunks_per_partition=2)
            m = Machine(config, workload=w)
            m.run(prewarm=prewarm)
            return m.sim.now

        assert run(prewarm=False) > run(prewarm=True)

    def test_prewarm_returns_fill_count(self):
        config = SystemConfig(n_cores=4, seed=3)
        w = SyntheticWorkload(get_profile("LU"), config, active_cores=4,
                              chunks_per_partition=1)
        m = Machine(config, workload=w)
        assert m.prewarm() > 0

    def test_prewarm_without_workload_is_zero(self):
        config = SystemConfig(n_cores=4, seed=3)
        m = Machine(config, next_spec=lambda c: None)
        assert m.prewarm() == 0


class TestRunnerValidation:
    def test_machine_needs_a_source(self):
        with pytest.raises(ValueError):
            Machine(SystemConfig(n_cores=4))

    def test_unfinished_machine_raises(self):
        config = SystemConfig(n_cores=4, seed=3)
        m = Machine(config, next_spec=lambda c: None)
        # wedge core 0: replace its finish check so it never completes
        m.cores[0]._maybe_finish = lambda: None
        with pytest.raises(RuntimeError, match="unfinished"):
            m.run()

    def test_run_app_rejects_unknown_app(self):
        with pytest.raises(KeyError):
            run_app("Quake", n_cores=4)

    def test_runner_respects_access_scale(self):
        config = SystemConfig(n_cores=4, seed=3)
        small = SimulationRunner("LU", config, chunks_per_partition=1,
                                 access_scale=0.5)
        big = SimulationRunner("LU", config, chunks_per_partition=1,
                               access_scale=1.0)
        s_spec = small.workload.generate_chunk(0, 0)
        b_spec = big.workload.generate_chunk(0, 0)
        assert s_spec.n_accesses < b_spec.n_accesses


class TestResultAggregation:
    def test_inactive_cores_excluded_from_breakdown(self):
        r = run_app("LU", n_cores=4, active_cores=2, chunks_per_partition=1)
        # the idle cores contribute no useful cycles; fractions still sum
        assert sum(r.breakdown_fractions().values()) == pytest.approx(1.0)
        assert r.chunks_committed == 4

    def test_traffic_dict_is_plain(self):
        r = run_app("LU", n_cores=4, chunks_per_partition=1)
        assert all(isinstance(k, str) for k in r.traffic_by_class)


class TestOracleOption:
    def test_oracle_run_is_clean_on_small_app(self):
        r = run_app("LU", n_cores=4, chunks_per_partition=1, oracle=True)
        assert r.chunks_committed > 0

    def test_oracle_default_off_matches_oracle_on(self):
        """The oracle is an observer: enabling it must not change the run."""
        plain = run_app("LU", n_cores=4, chunks_per_partition=1)
        checked = run_app("LU", n_cores=4, chunks_per_partition=1,
                          oracle=True)
        assert plain.total_cycles == checked.total_cycles
        assert plain.chunks_committed == checked.chunks_committed

    def test_oracle_applies_to_baseline_protocols_without_error(self):
        r = run_app("LU", n_cores=4, chunks_per_partition=1,
                    protocol=ProtocolKind.BULKSC, oracle=True)
        assert r.chunks_committed > 0
