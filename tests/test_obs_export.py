"""Tests for the trace exporters: JSONL, CSV and Perfetto round-trip."""

import csv
import json

from repro.harness.runner import run_app
from repro.obs.bus import InstrumentationBus
from repro.obs.export import (
    PID_COMMIT,
    PID_DIRS,
    PID_EXEC,
    PID_GAUGES,
    PID_PROFILE,
    profile_track_events,
    to_csv,
    to_jsonl,
    to_perfetto,
    to_perfetto_profile,
    validate_perfetto,
)

import pytest


@pytest.fixture(scope="module")
def traced_run():
    bus = InstrumentationBus()
    result = run_app("Radix", n_cores=4, chunks_per_partition=2, bus=bus)
    return bus, result


class TestFlatExports:
    def test_jsonl_accepts_path_and_sorts_keys(self, traced_run, tmp_path):
        bus, _ = traced_run
        out = tmp_path / "events.jsonl"      # pathlib.Path, not str
        n = to_jsonl(bus, out)
        lines = out.read_text(encoding="utf-8").splitlines()
        assert len(lines) == n == len(bus.events)
        for line in lines[:50]:
            parsed = json.loads(line)
            assert line == json.dumps(parsed, sort_keys=True)
            assert {"time", "kind", "src"} <= set(parsed)

    def test_csv_columns(self, traced_run, tmp_path):
        bus, _ = traced_run
        out = tmp_path / "events.csv"
        n = to_csv(bus, out)
        with open(out, newline="", encoding="utf-8") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["time", "kind", "src", "ctag", "fields"]
        assert len(rows) == n + 1
        json.loads(rows[1][4])  # payload column is valid JSON


class TestPerfettoRoundTrip:
    def test_written_file_reparses_and_validates(self, traced_run, tmp_path):
        bus, _ = traced_run
        out = tmp_path / "trace.json"
        doc = to_perfetto(bus, out)
        reread = json.loads(out.read_text(encoding="utf-8"))
        assert reread["traceEvents"] == doc["traceEvents"]
        assert validate_perfetto(reread) == []

    def test_ts_monotone_per_track(self, traced_run):
        bus, _ = traced_run
        doc = to_perfetto(bus)
        last = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "M":
                continue
            key = (ev["pid"], ev["tid"])
            assert ev["ts"] >= last.get(key, 0), key
            last[key] = ev["ts"]

    def test_per_core_and_per_directory_tracks(self, traced_run):
        bus, result = traced_run
        doc = to_perfetto(bus)
        threads = {(e["pid"], e["tid"]): e["args"]["name"]
                   for e in doc["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        for core in range(result.n_cores):
            assert threads.get((PID_EXEC, core)) == f"core{core}"
            assert threads.get((PID_COMMIT, core)) == f"core{core}"
        dir_tracks = {tid for pid, tid in threads if pid == PID_DIRS}
        assert dir_tracks  # at least one directory was active

    def test_commit_slices_cover_every_commit(self, traced_run):
        bus, result = traced_run
        doc = to_perfetto(bus)
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["pid"] == PID_COMMIT
                  and e["args"].get("outcome") == "committed"]
        assert len(slices) == result.chunks_committed
        assert all(e["dur"] >= 0 for e in slices)

    def test_empty_bus_exports_valid_doc(self):
        doc = to_perfetto(InstrumentationBus())
        assert doc["traceEvents"] == []
        assert validate_perfetto(doc) == []


def _wrapped_bus(capacity=4, samples=10):
    """A bus whose one gauge ring wrapped (dropped samples)."""
    bus = InstrumentationBus(gauge_capacity=capacity)
    for t in range(samples):
        bus.gauges.sample("sim_queue", t * 10, float(t))
    return bus


def _snapshots(n=3, scopes=("engine.dispatch", "noc.transit")):
    """Synthetic kept metrics snapshots (MetricsStream keep=True shape)."""
    return [{"kind": "snapshot", "seq": i, "sim_time": 1000 * (i + 1),
             "host_elapsed_ns": 5_000_000 * i,
             "profile": {name: {"count": 10 * (i + 1),
                                "total_ns": 2_000_000 * (i + 1),
                                "self_ns": 1_000_000 * (i + 1)}
                         for name in scopes}}
            for i in range(n)]


class TestGaugeTruncation:
    def test_wrapped_ring_announces_truncation_in_perfetto(self):
        bus = _wrapped_bus(capacity=4, samples=10)
        doc = to_perfetto(bus)
        assert validate_perfetto(doc) == []
        instants = [e for e in doc["traceEvents"]
                    if e["ph"] == "i" and e["pid"] == PID_GAUGES]
        assert len(instants) == 1
        ev = instants[0]
        assert ev["name"] == "TRUNCATED sim_queue"
        assert ev["args"]["dropped_samples"] == 6
        assert ev["args"]["total_samples"] == 10
        # the marker sits at the first retained sample, not before it
        first_c = next(e for e in doc["traceEvents"]
                       if e["ph"] == "C" and e["pid"] == PID_GAUGES)
        assert ev["ts"] == first_c["ts"]
        assert (doc["traceEvents"].index(ev)
                < doc["traceEvents"].index(first_c))

    def test_unwrapped_ring_has_no_truncation_marker(self):
        bus = _wrapped_bus(capacity=16, samples=10)
        assert not [e for e in to_perfetto(bus)["traceEvents"]
                    if e["ph"] == "i" and e["pid"] == PID_GAUGES]

    def test_csv_appends_gauge_truncated_rows(self, tmp_path):
        bus = _wrapped_bus(capacity=4, samples=10)
        out = tmp_path / "events.csv"
        n = to_csv(bus, out)
        assert n == len(bus.events)      # return value stays event count
        with open(out, newline="", encoding="utf-8") as fh:
            rows = [r for r in csv.reader(fh) if r[1] == "gauge_truncated"]
        assert len(rows) == 1
        fields = json.loads(rows[0][4])
        assert fields == {"capacity": 4, "dropped_samples": 6,
                          "total_samples": 10}


class TestProfileTracks:
    def test_tracks_and_interval_slices(self):
        events, tracks = profile_track_events(_snapshots())
        assert tracks[(PID_PROFILE, 0)] == "intervals"
        assert tracks[(PID_PROFILE, 1)] == "self ms: engine.dispatch"
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 2          # N snapshots -> N-1 intervals
        assert slices[0]["args"]["cycles_per_sec"] > 0
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 6        # 3 snapshots x 2 scopes

    def test_empty_and_headerless_snapshots(self):
        assert profile_track_events([]) == ([], {})
        # header lines (kind != snapshot) must be ignored
        events, tracks = profile_track_events([{"kind": "header"}])
        assert (events, tracks) == ([], {})

    def test_standalone_doc_validates_and_writes(self, tmp_path):
        out = tmp_path / "profile.json"
        doc = to_perfetto_profile(_snapshots(), out)
        assert validate_perfetto(doc) == []
        assert json.loads(out.read_text(encoding="utf-8")) == doc

    def test_to_perfetto_merges_profile_snapshots(self, traced_run):
        bus, _ = traced_run
        doc = to_perfetto(bus, profile_snapshots=_snapshots())
        assert validate_perfetto(doc) == []
        assert any(e["pid"] == PID_PROFILE and e["ph"] != "M"
                   for e in doc["traceEvents"])


class TestValidator:
    def test_rejects_missing_trace_events(self):
        assert validate_perfetto({}) == ["traceEvents missing or not a list"]

    def test_rejects_bad_ph_and_ts(self):
        doc = {"traceEvents": [
            {"ph": "Z", "pid": 1, "tid": 0, "name": "x", "ts": 0},
            {"ph": "i", "pid": 1, "tid": 0, "name": "x", "ts": -1},
        ]}
        errors = validate_perfetto(doc)
        assert any("bad ph" in e for e in errors)
        assert any("bad ts" in e for e in errors)

    def test_rejects_non_monotone_track(self):
        doc = {"traceEvents": [
            {"ph": "i", "pid": 1, "tid": 0, "name": "a", "ts": 10, "s": "t"},
            {"ph": "i", "pid": 1, "tid": 0, "name": "b", "ts": 5, "s": "t"},
        ]}
        assert any("not monotone" in e for e in validate_perfetto(doc))
