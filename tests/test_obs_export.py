"""Tests for the trace exporters: JSONL, CSV and Perfetto round-trip."""

import csv
import json

from repro.harness.runner import run_app
from repro.obs.bus import InstrumentationBus
from repro.obs.export import (
    PID_COMMIT,
    PID_DIRS,
    PID_EXEC,
    to_csv,
    to_jsonl,
    to_perfetto,
    validate_perfetto,
)

import pytest


@pytest.fixture(scope="module")
def traced_run():
    bus = InstrumentationBus()
    result = run_app("Radix", n_cores=4, chunks_per_partition=2, bus=bus)
    return bus, result


class TestFlatExports:
    def test_jsonl_accepts_path_and_sorts_keys(self, traced_run, tmp_path):
        bus, _ = traced_run
        out = tmp_path / "events.jsonl"      # pathlib.Path, not str
        n = to_jsonl(bus, out)
        lines = out.read_text(encoding="utf-8").splitlines()
        assert len(lines) == n == len(bus.events)
        for line in lines[:50]:
            parsed = json.loads(line)
            assert line == json.dumps(parsed, sort_keys=True)
            assert {"time", "kind", "src"} <= set(parsed)

    def test_csv_columns(self, traced_run, tmp_path):
        bus, _ = traced_run
        out = tmp_path / "events.csv"
        n = to_csv(bus, out)
        with open(out, newline="", encoding="utf-8") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["time", "kind", "src", "ctag", "fields"]
        assert len(rows) == n + 1
        json.loads(rows[1][4])  # payload column is valid JSON


class TestPerfettoRoundTrip:
    def test_written_file_reparses_and_validates(self, traced_run, tmp_path):
        bus, _ = traced_run
        out = tmp_path / "trace.json"
        doc = to_perfetto(bus, out)
        reread = json.loads(out.read_text(encoding="utf-8"))
        assert reread["traceEvents"] == doc["traceEvents"]
        assert validate_perfetto(reread) == []

    def test_ts_monotone_per_track(self, traced_run):
        bus, _ = traced_run
        doc = to_perfetto(bus)
        last = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "M":
                continue
            key = (ev["pid"], ev["tid"])
            assert ev["ts"] >= last.get(key, 0), key
            last[key] = ev["ts"]

    def test_per_core_and_per_directory_tracks(self, traced_run):
        bus, result = traced_run
        doc = to_perfetto(bus)
        threads = {(e["pid"], e["tid"]): e["args"]["name"]
                   for e in doc["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        for core in range(result.n_cores):
            assert threads.get((PID_EXEC, core)) == f"core{core}"
            assert threads.get((PID_COMMIT, core)) == f"core{core}"
        dir_tracks = {tid for pid, tid in threads if pid == PID_DIRS}
        assert dir_tracks  # at least one directory was active

    def test_commit_slices_cover_every_commit(self, traced_run):
        bus, result = traced_run
        doc = to_perfetto(bus)
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["pid"] == PID_COMMIT
                  and e["args"].get("outcome") == "committed"]
        assert len(slices) == result.chunks_committed
        assert all(e["dur"] >= 0 for e in slices)

    def test_empty_bus_exports_valid_doc(self):
        doc = to_perfetto(InstrumentationBus())
        assert doc["traceEvents"] == []
        assert validate_perfetto(doc) == []


class TestValidator:
    def test_rejects_missing_trace_events(self):
        assert validate_perfetto({}) == ["traceEvents missing or not a list"]

    def test_rejects_bad_ph_and_ts(self):
        doc = {"traceEvents": [
            {"ph": "Z", "pid": 1, "tid": 0, "name": "x", "ts": 0},
            {"ph": "i", "pid": 1, "tid": 0, "name": "x", "ts": -1},
        ]}
        errors = validate_perfetto(doc)
        assert any("bad ph" in e for e in errors)
        assert any("bad ts" in e for e in errors)

    def test_rejects_non_monotone_track(self):
        doc = {"traceEvents": [
            {"ph": "i", "pid": 1, "tid": 0, "name": "a", "ts": 10, "s": "t"},
            {"ph": "i", "pid": 1, "tid": 0, "name": "b", "ts": 5, "s": "t"},
        ]}
        assert any("not monotone" in e for e in validate_perfetto(doc))
