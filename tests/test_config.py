"""Tests for system configuration validation and derived geometry."""

import pytest

from repro.config import (
    CacheConfig, ProtocolKind, SystemConfig, TABLE2_CONFIGS, table2_config,
)


class TestDefaults:
    def test_table2_defaults(self):
        c = SystemConfig()
        assert c.n_cores == 64
        assert c.chunk_size_instructions == 2000
        assert c.signature_bits == 2048
        assert c.l1.n_sets == 256
        assert c.l2.n_sets == 2048
        assert c.lines_per_page == 128

    def test_table2_registry(self):
        assert TABLE2_CONFIGS[32].n_cores == 32
        assert TABLE2_CONFIGS[64].n_cores == 64

    def test_protocol_str(self):
        assert str(ProtocolKind.SCALABLEBULK) == "ScalableBulk"


class TestValidation:
    def test_signature_bits_divisible(self):
        with pytest.raises(ValueError):
            SystemConfig(signature_bits=100, signature_banks=3)

    def test_page_multiple_of_line(self):
        bad_l2 = CacheConfig(512 * 1024, 8, 24, 8, 64)
        with pytest.raises(ValueError):
            SystemConfig(l2=bad_l2, page_bytes=4096)

    def test_min_active_chunks(self):
        with pytest.raises(ValueError):
            SystemConfig(max_active_chunks_per_core=0)

    def test_bad_cache_geometry(self):
        bad = CacheConfig(size_bytes=1000, assoc=3, line_bytes=32,
                          round_trip_cycles=2, mshr_entries=8)
        with pytest.raises(ValueError):
            bad.n_sets


class TestDerived:
    def test_mesh_shapes(self):
        assert SystemConfig(n_cores=64).mesh_shape == (8, 8)
        assert SystemConfig(n_cores=32).mesh_shape == (4, 8)
        assert SystemConfig(n_cores=16).mesh_shape == (4, 4)

    def test_one_directory_per_tile(self):
        assert SystemConfig(n_cores=36).n_directories == 36

    def test_with_override(self):
        c = SystemConfig().with_(n_cores=16, oci=False)
        assert c.n_cores == 16 and not c.oci
        assert SystemConfig().oci  # original untouched (frozen)

    def test_table2_config_passthrough(self):
        c = table2_config(32, protocol=ProtocolKind.SEQ, oci=False)
        assert c.protocol is ProtocolKind.SEQ and not c.oci
