"""Unit tests for the Chunk State Table entries (Fig. 6)."""

import pytest

from repro.core.cst import ChunkCommitState, CstEntry
from repro.cpu.chunk import ChunkTag
from repro.signatures.bulk_signature import SignatureFactory


@pytest.fixture
def factory():
    return SignatureFactory(seed=4)


def entry(factory, dir_id=1, order=(1, 2, 5), writes=(), reads=(),
          cid=None):
    e = CstEntry(cid=cid or (ChunkTag(0, 0, 0), 0), dir_id=dir_id)
    e.order = tuple(order)
    e.r_sig = factory.from_lines(reads)
    e.w_sig = factory.from_lines(writes)
    e.write_lines = frozenset(writes)
    e.got_request = True
    e.expanded = True
    return e


class TestStatusBits:
    def test_leader_bit(self, factory):
        assert entry(factory, dir_id=1).leader_here
        assert not entry(factory, dir_id=2).leader_here

    def test_hold_and_confirm_bits(self, factory):
        e = entry(factory)
        assert not e.held and not e.confirmed
        e.state = ChunkCommitState.HELD
        assert e.held and not e.confirmed
        e.state = ChunkCommitState.CONFIRMED
        assert e.held and e.confirmed


class TestReadiness:
    def test_leader_ready_without_g(self, factory):
        assert entry(factory, dir_id=1).ready()

    def test_member_needs_g(self, factory):
        e = entry(factory, dir_id=2)
        assert not e.ready()
        e.got_g = True
        assert e.ready()

    def test_not_ready_before_expansion(self, factory):
        e = entry(factory, dir_id=1)
        e.expanded = False
        assert not e.ready()

    def test_not_ready_before_request(self, factory):
        e = entry(factory, dir_id=1)
        e.got_request = False
        assert not e.ready()


class TestIncompatibility:
    def test_ww_overlap(self, factory):
        a = entry(factory, writes=[10, 11])
        b = entry(factory, writes=[11, 12], cid=(ChunkTag(1, 0, 0), 0))
        assert a.incompatible_with(b)
        assert b.incompatible_with(a)

    def test_rw_overlap(self, factory):
        a = entry(factory, writes=[10])
        b = entry(factory, reads=[10], cid=(ChunkTag(1, 0, 0), 0))
        assert a.incompatible_with(b)
        assert b.incompatible_with(a)

    def test_disjoint_compatible(self, factory):
        a = entry(factory, writes=[10], reads=[20])
        b = entry(factory, writes=[30], reads=[40],
                  cid=(ChunkTag(1, 0, 0), 0))
        assert not a.incompatible_with(b)

    def test_read_read_compatible(self, factory):
        a = entry(factory, reads=[10])
        b = entry(factory, reads=[10], cid=(ChunkTag(1, 0, 0), 0))
        assert not a.incompatible_with(b)

    def test_missing_sigs_compatible(self, factory):
        a = entry(factory, writes=[10])
        b = CstEntry(cid=(ChunkTag(1, 0, 0), 0), dir_id=1)
        assert not a.incompatible_with(b)
