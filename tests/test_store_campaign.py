"""Campaign runner tests: spec handling, sweep parity, crash-safe resume."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness import sweep
from repro.store import campaign
from repro.store.db import ResultStore, StoreError
from repro.store.schema import KIND_SWEEP, STATUS_FAILED, STATUS_OK

REPO = Path(__file__).resolve().parent.parent

#: Fields a campaign record may legitimately differ from a serial sweep's
#: (host wall-clock; everything else must be byte-identical).
WALL_FIELDS = ("wall_seconds", "wall_seconds_raw")


class TestSpec:
    def test_from_json_defaults(self):
        spec = campaign.CampaignSpec.from_json(
            {"name": "s", "apps": ["LU"], "cores": [4]})
        assert spec.chunks == 2
        assert spec.seeds == (None,)
        assert spec.baseline1p is True
        assert len(spec.protocols) == 4

    def test_round_trip(self, tmp_path):
        spec = campaign.CampaignSpec.from_json(
            {"name": "s", "apps": ["LU"], "cores": [4, 8],
             "protocols": ["TCC"], "chunks": 1, "seeds": [7, 9],
             "baseline1p": False})
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_json()))
        assert campaign.CampaignSpec.load(path) == spec

    def test_unknown_key_rejected(self):
        with pytest.raises(StoreError, match="unknown campaign spec key"):
            campaign.CampaignSpec.from_json(
                {"name": "s", "apps": ["LU"], "cores": [4], "bogus": 1})

    def test_unknown_protocol_rejected(self):
        with pytest.raises(StoreError, match="unknown protocol"):
            campaign.CampaignSpec.from_json(
                {"name": "s", "apps": ["LU"], "cores": [4],
                 "protocols": ["MESI"]})

    def test_missing_required_key_rejected(self):
        with pytest.raises(StoreError, match="needs 'cores'"):
            campaign.CampaignSpec.from_json({"name": "s", "apps": ["LU"]})


class TestExpand:
    def test_matrix_mirrors_serial_sweep_order(self):
        spec = campaign.CampaignSpec(name="s", apps=("LU", "Radix"),
                                     cores=(4, 8), chunks=1)
        cells = campaign.expand(spec)
        # per app: one baseline1p cell + cores x protocols
        assert len(cells) == 2 * (1 + 2 * 4)
        serial = [key for key, _task in
                  sweep._matrix(["LU", "Radix"], [4, 8], 1, False)]
        assert [c.sweep_key for c in cells] == serial

    def test_seed_multiplies_the_matrix(self):
        spec = campaign.CampaignSpec(name="s", apps=("LU",), cores=(4,),
                                     protocols=("TCC",), chunks=1,
                                     seeds=(7, 9), baseline1p=False)
        cells = campaign.expand(spec)
        assert [c.seed for c in cells] == [7, 9]
        assert len({c.cell_key for c in cells}) == 2

    def test_cell_keys_distinguish_chunks(self):
        kw = dict(app="LU", n_cores=4, protocol="TCC", active_cores=None,
                  n_partitions=4, seed=None)
        a = campaign.CampaignCell(chunks=1, **kw)
        b = campaign.CampaignCell(chunks=2, **kw)
        assert a.sweep_key == b.sweep_key
        assert a.cell_key != b.cell_key


class TestRunParity:
    def test_campaign_records_match_serial_sweep(self, tmp_path):
        """The acceptance criterion: campaign cells == serial sweep cells
        byte-for-byte, modulo wall-clock fields."""
        spec = campaign.CampaignSpec(name="parity", apps=("LU",),
                                     cores=(4,), chunks=1)
        with ResultStore(tmp_path / "r.db") as store:
            report = campaign.run_campaign(spec, store,
                                           log=lambda *_: None)
            assert not report.failed and not report.skipped
            rows = {r.series: r for r in store.query(KIND_SWEEP)}
        serial = sweep.collect(["LU"], [4], 1, log=lambda *_: None)
        assert set(rows) == set(serial)
        for key, rec in serial.items():
            stored = dict(rows[key].payload)
            for field in WALL_FIELDS:
                stored.pop(field, None)
                rec = {k: v for k, v in rec.items() if k not in WALL_FIELDS}
            assert json.dumps(stored, sort_keys=True) \
                == json.dumps(rec, sort_keys=True), key

    def test_second_run_skips_everything(self, tmp_path):
        spec = campaign.CampaignSpec(name="s", apps=("LU",), cores=(4,),
                                     protocols=("TCC",), chunks=1,
                                     baseline1p=False)
        with ResultStore(tmp_path / "r.db") as store:
            first = campaign.run_campaign(spec, store, log=lambda *_: None)
            assert len(first.ran) == 1
            second = campaign.run_campaign(spec, store, log=lambda *_: None)
            assert second.ran == []
            assert len(second.skipped) == 1

    def test_failed_cell_is_stored_and_not_rerun(self, tmp_path):
        spec = campaign.CampaignSpec(name="s", apps=("NoSuchApp",),
                                     cores=(4,), protocols=("TCC",),
                                     chunks=1, baseline1p=False)
        with ResultStore(tmp_path / "r.db") as store:
            report = campaign.run_campaign(spec, store, log=lambda *_: None)
            assert len(report.failed) == 1
            row = store.query(KIND_SWEEP, status=STATUS_FAILED)[0]
            assert "NoSuchApp" in row.error or row.error
            assert "Traceback" in row.traceback
            assert row.payload["app"] == "NoSuchApp"
            # failed rows dedupe too, unless rerun is requested
            again = campaign.run_campaign(spec, store, log=lambda *_: None)
            assert again.ran == [] and len(again.skipped) == 1
            rerun = campaign.run_campaign(spec, store, log=lambda *_: None,
                                          rerun_failed=True)
            assert len(rerun.failed) == 1


class TestCrashResume:
    def _completed(self, db: Path) -> set:
        with ResultStore(db, create=False) as store:
            return {r.cell_key for r in store.query(KIND_SWEEP,
                                                    status=STATUS_OK)}

    def test_sigkill_mid_campaign_resumes_with_zero_reruns(self, tmp_path):
        """Kill a campaign process dead mid-flight; the resume must re-run
        zero completed cells and the database must pass integrity_check."""
        db = tmp_path / "r.db"
        spec_doc = {"name": "crash", "apps": ["LU", "Radix"],
                    "cores": [4, 8], "chunks": 1}
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec_doc))

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "store", "campaign",
             str(spec_path), "--store", str(db)],
            cwd=str(REPO), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # wait until at least two cells are durably checkpointed,
            # then kill the process without any chance to clean up
            deadline = time.time() + 120
            completed = set()
            while time.time() < deadline:
                if proc.poll() is not None:
                    pytest.fail("campaign finished before it was killed; "
                                "matrix too small for this host")
                if db.exists():
                    try:
                        completed = self._completed(db)
                    except StoreError:
                        completed = set()
                if len(completed) >= 2:
                    break
                time.sleep(0.05)
            assert len(completed) >= 2, "no checkpoints appeared in time"
            try:
                proc.send_signal(signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - lost the race
                pass
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        # the file a SIGKILL left behind must be a healthy database ...
        with ResultStore(db, create=False) as store:
            assert store.integrity_check() == "ok"
            survivors = {r.cell_key for r in store.query(KIND_SWEEP,
                                                         status=STATUS_OK)}
        # ... holding every checkpoint observed before the kill
        assert completed <= survivors

        # resume in-process: zero completed cells may re-run
        spec = campaign.CampaignSpec.from_json(spec_doc)
        with ResultStore(db) as store:
            report = campaign.run_campaign(spec, store, log=lambda *_: None)
            assert set(report.ran).isdisjoint(survivors)
            assert set(report.skipped) >= survivors
            assert not report.failed
            assert report.total == len(campaign.expand(spec))
            final = store.query(KIND_SWEEP, status=STATUS_OK)
            assert len(final) == report.total
            assert store.integrity_check() == "ok"
