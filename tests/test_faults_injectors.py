"""Fault injectors: empty-plan transparency, determinism, safety."""

import dataclasses

import pytest

from repro.config import ProtocolKind
from repro.faults.campaign import run_plan, stress_plan
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.watchdog import DEFAULT_WINDOW
from repro.harness.runner import run_app

ALL_PROTOCOLS = list(ProtocolKind)


def _result_fields(result):
    d = dataclasses.asdict(result)
    d.pop("machine")
    return d


class TestEmptyPlanIsTransparent:
    """Issue 5 satellite: an empty FaultPlan (with the watchdog attached)
    must produce a byte-identical RunResult to a plain run, for every
    protocol — chaos infrastructure has zero cost when it injects nothing.
    """

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS,
                             ids=[p.value for p in ALL_PROTOCOLS])
    def test_empty_plan_run_identical_to_plain_run(self, protocol):
        plain = run_app("Radix", n_cores=4, protocol=protocol,
                        chunks_per_partition=2)
        chaos = run_app("Radix", n_cores=4, protocol=protocol,
                        chunks_per_partition=2,
                        faults=FaultPlan.empty(), watchdog=DEFAULT_WINDOW)
        assert _result_fields(plain) == _result_fields(chaos)


class TestSeededPlanDeterminism:
    """Issue 5 satellite: two runs of the same seeded plan are identical —
    all injector randomness derives from the plan seed alone."""

    def _noisy_plan(self, seed):
        return FaultPlan(name="noisy", seed=seed, faults=(
            FaultSpec.make("latency-spike", start=0, duration=4_000,
                           extra=8, jitter=12),
            FaultSpec.make("core-jitter", core=1, start=0, duration=4_000,
                           max_extra=20),
        ))

    def test_same_plan_same_result(self):
        a = run_app("Radix", n_cores=4, chunks_per_partition=2,
                    faults=self._noisy_plan(11))
        b = run_app("Radix", n_cores=4, chunks_per_partition=2,
                    faults=self._noisy_plan(11))
        assert _result_fields(a) == _result_fields(b)

    def test_different_plan_seed_diverges(self):
        """The jittered injectors actually consume their substreams."""
        a = run_app("Radix", n_cores=4, chunks_per_partition=2,
                    faults=self._noisy_plan(11))
        b = run_app("Radix", n_cores=4, chunks_per_partition=2,
                    faults=self._noisy_plan(12))
        assert _result_fields(a) != _result_fields(b)

    def test_faults_actually_slow_the_run(self):
        plain = run_app("Radix", n_cores=4, chunks_per_partition=2)
        faulted = run_app(
            "Radix", n_cores=4, chunks_per_partition=2,
            faults=FaultPlan(name="slow", seed=0, faults=(
                FaultSpec.make("latency-spike", start=0, duration=10**9,
                               extra=30, jitter=0),)))
        assert faulted.total_cycles > plain.total_cycles


class TestSafetyUnderFaults:
    """Timing-level faults must never break the oracle or conformance:
    run_plan gates every chaos execution through the invariant monitor."""

    @pytest.mark.parametrize("scenario_name",
                             ["cross3", "mixed3", "tcc3", "bulksc3", "seq3"])
    def test_aggressive_plan_stays_safe(self, scenario_name):
        from repro.analysis.explore.scenarios import SCENARIOS
        scenario = SCENARIOS[scenario_name]
        faults = [
            FaultSpec.make("latency-spike", start=0, duration=8_000,
                           extra=15, jitter=25),
            FaultSpec.make("dir-stall", dir=scenario.n_cores - 1, start=100,
                           duration=5_000, extra=40),
            FaultSpec.make("core-jitter", core=0, start=0, duration=8_000,
                           max_extra=30),
        ]
        if scenario.protocol is ProtocolKind.SCALABLEBULK:
            faults.append(FaultSpec.make("squash-storm", start=0,
                                         duration=6_000, prob=0.6))
        plan = FaultPlan(name="aggressive", seed=9, faults=tuple(faults))
        result = run_plan(scenario, plan)
        assert result.safety_codes == [], result.violations
        assert result.commits == scenario.n_cores * scenario.chunks_per_core

    def test_stress_plan_nominal_protocol_survives(self):
        """The mutation check's storm plan is survivable when the
        reservation machinery works: starvation avoidance is exactly what
        guarantees progress under a squash storm."""
        from repro.analysis.explore.scenarios import SCENARIOS
        result = run_plan(SCENARIOS["cross3"], stress_plan(0))
        assert result.violations == [], result.violations

    def test_storm_counts_activations(self):
        from repro.analysis.explore.scenarios import SCENARIOS
        plan = FaultPlan(name="storm", seed=3, faults=(
            FaultSpec.make("squash-storm", start=0, duration=10_000,
                           prob=0.7),))
        result = run_plan(SCENARIOS["cross3"], plan)
        assert result.activations[0] > 0
