"""Cross-module invariants checked on full machine runs (DESIGN.md §6).

These are the correctness obligations of a lazy chunk protocol:
conservation (nothing leaks, everything commits), sharer-list
conservativeness (a cached line's core is always in the home directory's
sharer set), and write visibility (the directory's owner for a line is the
last chunk that committed a write to it).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import ProtocolKind, SystemConfig
from repro.harness.runner import Machine, SimulationRunner
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import get_profile

APPS = ["Radix", "LU", "Barnes", "Canneal"]
PROTOCOLS = list(ProtocolKind)


def run_machine(app: str, protocol: ProtocolKind, seed: int, n_cores: int = 4,
                chunks: int = 2) -> Machine:
    config = SystemConfig(n_cores=n_cores, protocol=protocol, seed=seed)
    workload = SyntheticWorkload(get_profile(app), config,
                                 active_cores=n_cores,
                                 chunks_per_partition=chunks)
    machine = Machine(config, workload=workload)
    machine.run()
    return machine


def check_conservation(machine: Machine) -> None:
    assert machine.sim.quiescent()
    total = machine.workload.total_chunks
    committed = sum(c.stats.chunks_committed for c in machine.cores)
    assert committed == total
    assert not machine.protocol.stats._live_by_ctag
    for d in machine.directories:
        if hasattr(d, "cst"):
            assert not d.cst
        if hasattr(d, "occupant"):
            assert d.occupant is None and not d.queue
        if hasattr(d, "busy_with"):
            assert d.busy_with is None
    if getattr(machine.protocol, "arbiter", None) is not None:
        assert not machine.protocol.arbiter.in_flight


def check_sharer_superset(machine: Machine) -> None:
    """Cached => listed as sharer (the invariant invalidation relies on)."""
    by_home = {d.dir_id: d for d in machine.directories}
    for core in machine.cores:
        for line in core.hierarchy.l2.resident_lines():
            page = line * machine.config.line_bytes // machine.config.page_bytes
            home = machine.page_mapper.lookup(page)
            if home is None:
                continue
            info = by_home[home].lines.get(line)
            assert info is not None, (core.core_id, line)
            assert (core.core_id in info.sharers
                    or info.owner == core.core_id), (core.core_id, line)


def check_write_visibility(machine: Machine) -> None:
    """The last committed writer of each line owns it at the directory."""
    last_writer = {}
    events = []
    for core in machine.cores:
        pass  # commit records carry what we need
    # reconstruct from protocol commit records is not line-grained; use
    # directory state consistency instead: every owner must have committed
    # at least one chunk.
    committed_cores = {rec.core for rec in machine.protocol.stats.commits}
    for d in machine.directories:
        for line, info in d.lines.items():
            if info.owner is not None:
                assert info.owner in committed_cores


class TestInvariantsAcrossProtocols:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("app", ["Radix", "LU"])
    def test_conservation(self, protocol, app):
        machine = run_machine(app, protocol, seed=21)
        check_conservation(machine)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_sharer_superset(self, protocol):
        machine = run_machine("Barnes", protocol, seed=22)
        check_sharer_superset(machine)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_write_visibility(self, protocol):
        machine = run_machine("Canneal", protocol, seed=23)
        check_write_visibility(machine)


class TestInvariantsRandomized:
    @given(seed=st.integers(0, 10**6), app=st.sampled_from(APPS),
           protocol=st.sampled_from(PROTOCOLS))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_configs_conserve(self, seed, app, protocol):
        machine = run_machine(app, protocol, seed=seed, chunks=1)
        check_conservation(machine)
        check_sharer_superset(machine)


class TestNoFalseNegativeSquash:
    """If two truly conflicting chunks overlap in time, at least one squash
    or serialization must have happened — never two overlapping commits of
    conflicting chunks."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_conflicting_commit_windows_disjoint(self, protocol):
        from repro.cpu.chunk import ChunkAccess, ChunkSpec
        line = 32 * 12345
        mk = lambda: [ChunkSpec(300, [ChunkAccess(1, line, True)])
                      for _ in range(3)]
        config = SystemConfig(n_cores=4, protocol=protocol, seed=9)
        remaining = {0: mk(), 1: mk()}

        def next_spec(core_id):
            lst = remaining.get(core_id)
            return lst.pop(0) if lst else None

        machine = Machine(config, next_spec=next_spec)
        machine.run()
        # the shared line's final owner must be the last committer of it
        byte_addr = line
        line_addr = byte_addr // 32
        page = byte_addr // config.page_bytes
        home = machine.page_mapper.lookup(page)
        info = machine.directories[home].lines[line_addr]
        assert info.owner in (0, 1)
        assert sum(c.stats.chunks_committed for c in machine.cores) == 6
