"""The schedule-exploration model checker (repro.analysis.explore).

Covers the two engine hooks (default path byte-identical to the seed
behaviour, perturbed path deterministic per explorer seed), the clean
sweep over unmutated scenarios, mutation detection with minimize/replay,
and the trace format round-trip.
"""

import json

import pytest

from repro.analysis.explore import (
    MUTATIONS,
    NOMINAL_MUTATIONS,
    SCENARIOS,
    Schedule,
    ScheduleController,
    build_machine,
    minimize_schedule,
    run_schedule,
)
from repro.analysis.explore.controller import reorder_candidates
from repro.analysis.explore.scenarios import SMOKE_SCENARIOS
from repro.analysis.explore.strategies import explore_exhaustive, explore_random
from repro.analysis.explore.trace import load_trace, replay_trace, save_trace
from repro.config import ProtocolKind, SystemConfig
from repro.engine.events import Event, Simulator
from repro.engine.rng import DeterministicRng
from repro.harness.runner import Machine
from repro.tracing import attach_tracer
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import get_profile


def _timeline(machine: Machine):
    tracer = attach_tracer(machine)
    machine.run()
    return [(e.time, e.kind, e.core, e.tag, e.detail)
            for e in tracer.of_kind("commit_request", "commit_success",
                                    "squash", "group_formed",
                                    "group_failed")], machine.sim.now


def _workload_machine(seed: int = 7) -> Machine:
    config = SystemConfig(n_cores=4, seed=seed,
                          protocol=ProtocolKind.SCALABLEBULK)
    workload = SyntheticWorkload(get_profile("Radix"), config,
                                 active_cores=4, chunks_per_partition=2)
    return Machine(config, workload=workload)


class TestHookDefaultPath:
    def test_empty_schedule_is_byte_identical(self):
        """Attached hooks with the empty schedule == no hooks at all."""
        bare, bare_cycles = _timeline(_workload_machine())
        hooked_machine = _workload_machine()
        ScheduleController(Schedule()).attach(hooked_machine)
        hooked, hooked_cycles = _timeline(hooked_machine)
        assert bare, "run produced no commit events"
        assert bare_cycles == hooked_cycles
        assert bare == hooked

    def test_all_default_picks_realize_to_empty_schedule(self):
        controller = ScheduleController(Schedule())
        machine = _workload_machine()
        controller.attach(machine)
        machine.run()
        assert controller.realized.trimmed().ties == []
        assert controller.realized.trimmed().delays == {}


class TestHookPerturbedPath:
    def _perturbed(self, seed: int):
        machine = _workload_machine()
        root = DeterministicRng(seed, "test/explore")
        controller = ScheduleController(
            None, tie_rng=root.split("ties"), delay_rng=root.split("delays"))
        controller.attach(machine)
        timeline, cycles = _timeline(machine)
        return timeline, cycles, controller.realized.trimmed()

    def test_same_explorer_seed_reproduces(self):
        one, cycles_a, sched_a = self._perturbed(3)
        two, cycles_b, sched_b = self._perturbed(3)
        assert cycles_a == cycles_b
        assert one == two
        assert sched_a.ties == sched_b.ties
        assert sched_a.delays == sched_b.delays

    def test_different_explorer_seed_diverges(self):
        _, _, sched_a = self._perturbed(3)
        _, _, sched_b = self._perturbed(4)
        assert (sched_a.ties, sched_a.delays) != (sched_b.ties, sched_b.delays)

    def test_realized_schedule_replays_identically(self):
        """A random run's realized schedule reproduces it without the RNG."""
        scenario = SCENARIOS["mixed3"]
        root = DeterministicRng(5, "test/replay")
        random_run = run_schedule(scenario, None,
                                  tie_rng=root.split("ties"),
                                  delay_rng=root.split("delays"))
        replayed = run_schedule(scenario, random_run.schedule)
        assert replayed.cycles == random_run.cycles
        assert replayed.schedule.ties == random_run.schedule.ties
        assert replayed.schedule.delays == random_run.schedule.delays


class TestReorderCandidates:
    def _ev(self, tag):
        return Event(time=0, seq=0, callback=lambda: None, tag=tag)

    def test_same_flow_deliveries_keep_fifo(self):
        batch = [self._ev(("deliver", "a", "b", 1)),
                 self._ev(("deliver", "a", "b", 2)),
                 self._ev(("deliver", "c", "b", 3))]
        assert reorder_candidates(batch) == [0, 2]

    def test_non_delivery_events_always_candidates(self):
        batch = [self._ev(None), self._ev(("deliver", "a", "b", 1)),
                 self._ev(None)]
        assert reorder_candidates(batch) == [0, 1, 2]

    def test_tie_breaker_defaults_to_seq_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(0, lambda: fired.append("first"))
        sim.schedule(0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["first", "second"]


class TestScheduleFormat:
    def test_json_round_trip(self):
        schedule = Schedule(ties=[0, 2, 1], delays={3: 7, 11: 2})
        again = Schedule.from_json(
            json.loads(json.dumps(schedule.to_json())))
        assert again.ties == schedule.ties
        assert again.delays == schedule.delays

    def test_trimmed_drops_defaults(self):
        schedule = Schedule(ties=[0, 1, 0, 0], delays={2: 0, 5: 4})
        trimmed = schedule.trimmed()
        assert trimmed.ties == [0, 1]
        assert trimmed.delays == {5: 4}

    def test_scenario_round_trip(self):
        for scenario in SCENARIOS.values():
            clone = type(scenario).from_json(scenario.to_json())
            assert clone == scenario


class TestUnmutatedClean:
    @pytest.mark.parametrize("name", SMOKE_SCENARIOS)
    def test_exhaustive_smoke_is_clean(self, name):
        report = explore_exhaustive(SCENARIOS[name], max_schedules=25,
                                    depth=8)
        assert report.clean, report.violation.violations

    def test_delay_sampling_is_clean(self):
        report = explore_random(SCENARIOS["nack3"], n_schedules=12, seed=7,
                                with_delays=True)
        assert report.clean, report.violation.violations


class TestMutationsCaught:
    @pytest.mark.parametrize("name", sorted(NOMINAL_MUTATIONS))
    def test_mutation_detected_and_replayable(self, name, tmp_path):
        mutation = MUTATIONS[name]
        scenario = SCENARIOS[mutation.scenario]
        report = explore_exhaustive(scenario, mutation, max_schedules=60,
                                    depth=8)
        assert not report.clean, f"{name} survived exploration"
        found = report.violation
        primary = found.codes[0]
        assert primary in mutation.expected

        minimized = minimize_schedule(scenario, found.schedule, mutation,
                                      target_code=primary, max_runs=40)
        assert primary in minimized.codes
        assert (minimized.schedule.decision_count()
                <= found.schedule.decision_count())

        path = tmp_path / f"{name}.json"
        save_trace(minimized, str(path))
        replay = replay_trace(load_trace(str(path)))
        assert primary in replay.codes

    def test_mutation_requires_scalablebulk(self):
        with pytest.raises(ValueError):
            MUTATIONS["drop-commit-nack"].apply(
                build_machine(SCENARIOS["tcc3"]))

    def test_chaos_only_mutation_survives_nominal_exploration(self):
        """reservation-leak is why the chaos campaign exists: without
        fault injection the reservation machinery never engages in these
        micro-scenarios, so nominal exploration cannot reach the bug.
        ``python -m repro chaos --mutation-check`` proves chaos catches
        it (see docs/robustness.md)."""
        mutation = MUTATIONS["reservation-leak"]
        assert mutation.chaos_only
        assert mutation.name not in NOMINAL_MUTATIONS
        report = explore_exhaustive(SCENARIOS[mutation.scenario], mutation,
                                    max_schedules=60, depth=8)
        assert report.clean, report.violation.violations


class TestTraceFormat:
    def test_version_gate(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_clean_run_round_trips(self, tmp_path):
        result = run_schedule(SCENARIOS["pair"])
        path = tmp_path / "clean.json"
        save_trace(result, str(path))
        replay = replay_trace(load_trace(str(path)))
        assert not replay.failed
        assert replay.cycles == result.cycles
