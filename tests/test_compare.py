"""Tests for the sweep-comparison (calibration drift) tool."""

import json

import pytest

from repro.harness.compare import (
    Drift, compare_records, main, missing_keys, render,
)


def rec(cycles=10000, lat=100.0, dirs=3.0, queue=0.0, sq=0):
    return {"total_cycles": cycles, "mean_commit_latency": lat,
            "mean_dirs": dirs, "mean_queue": queue, "squashes_conflict": sq}


class TestCompare:
    def test_identical_sweeps_clean(self):
        a = {"LU/64/ScalableBulk/64": rec()}
        assert compare_records(a, dict(a)) == []

    def test_cycle_drift_detected(self):
        old = {"k": rec(cycles=10000)}
        new = {"k": rec(cycles=13000)}
        drifts = compare_records(old, new)
        assert len(drifts) == 1
        assert drifts[0].metric == "total_cycles"
        assert drifts[0].relative == pytest.approx(0.3)

    def test_small_absolute_changes_ignored(self):
        old = {"k": rec(lat=10.0)}
        new = {"k": rec(lat=15.0)}  # +50% but only 5 cycles
        assert compare_records(old, new) == []

    def test_threshold_respected(self):
        old = {"k": rec(cycles=10000)}
        new = {"k": rec(cycles=10800)}  # +8%
        assert compare_records(old, new, threshold=0.10) == []
        assert compare_records(old, new, threshold=0.05)

    def test_zero_baseline_reported_as_new(self):
        old = {"k": rec(queue=0.0)}
        new = {"k": rec(queue=5.0)}
        drifts = compare_records(old, new)
        assert drifts and drifts[0].relative == float("inf")

    def test_missing_keys(self):
        gone, added = missing_keys({"a": rec()}, {"b": rec()})
        assert gone == ["a"] and added == ["b"]

    def test_render_mentions_everything(self):
        drifts = [Drift("k", "total_cycles", 1000, 2000)]
        text = render(drifts, ["old-only"], ["new-only"])
        assert "old-only" in text and "new-only" in text
        assert "+100.0%" in text

    def test_render_clean(self):
        assert "no significant drifts" in render([], [], [])


class TestCli:
    def test_main_exit_codes(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"k": rec(cycles=10000)}))
        b.write_text(json.dumps({"k": rec(cycles=10000)}))
        assert main([str(a), str(b)]) == 0
        b.write_text(json.dumps({"k": rec(cycles=20000)}))
        assert main([str(a), str(b)]) == 1
        assert "total_cycles" in capsys.readouterr().out
