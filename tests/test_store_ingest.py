"""Ingestion round-trips against the repo's committed result artifacts."""

import json
from pathlib import Path

import pytest

from repro.store import ingest
from repro.store.db import ResultStore, StoreError
from repro.store.schema import (KIND_BENCH_MACRO, KIND_BENCH_META,
                                KIND_BENCH_MICRO, KIND_CHAOS, KIND_PROFILE,
                                KIND_SWEEP, STATUS_FAILED, STATUS_OK)

REPO = Path(__file__).resolve().parent.parent
BENCH_DOCS = sorted(REPO.glob("BENCH_*.json"))
SWEEP_CACHE = REPO / "results" / "sweep.json"


@pytest.fixture()
def store(tmp_path):
    with ResultStore(tmp_path / "r.db") as s:
        yield s


def canonical(doc):
    return json.dumps(doc, sort_keys=True)


class TestBenchRoundTrip:
    @pytest.mark.skipif(not BENCH_DOCS, reason="no committed BENCH docs")
    def test_committed_docs_reexport_losslessly(self, store):
        # ingest every committed benchmark document, newest last
        for path in BENCH_DOCS:
            doc = json.loads(path.read_text())
            ingest.ingest_bench(store, doc, source=str(path))
        newest = json.loads(BENCH_DOCS[-1].read_text())
        assert canonical(ingest.export_bench(store)) == canonical(newest)
        # each document stays addressable by its date.docid prefix
        for path in BENCH_DOCS:
            doc = json.loads(path.read_text())
            prefix = f"{doc['date']}.{ingest._doc_id(doc)}"
            assert canonical(ingest.export_bench(store, prefix)) \
                == canonical(doc)

    @pytest.mark.skipif(not BENCH_DOCS, reason="no committed BENCH docs")
    def test_rows_carry_metrics_and_calibration(self, store):
        doc = json.loads(BENCH_DOCS[-1].read_text())
        ingest.ingest_bench(store, doc, source="x")
        micro = store.query(KIND_BENCH_MICRO)
        macro = store.query(KIND_BENCH_MACRO)
        assert len(micro) == len(doc["micro"])
        assert len(macro) == len(doc["macro"])
        cal = doc["calibration_ops_per_sec"]
        for row in micro + macro:
            assert row.metric("calibration") == pytest.approx(cal)
        assert all(r.metric("ops_per_sec") for r in micro)
        assert all(r.metric("cycles_per_sec") for r in macro)
        meta = store.query(KIND_BENCH_META)[0]
        assert meta.git_rev == (doc.get("git_rev") or "")

    @pytest.mark.skipif(not BENCH_DOCS, reason="no committed BENCH docs")
    def test_reingest_is_idempotent(self, store):
        doc = json.loads(BENCH_DOCS[-1].read_text())
        ingest.ingest_bench(store, doc, source="x")
        first = len(store.query())
        ingest.ingest_bench(store, doc, source="x")
        assert len(store.query()) == first


class TestSweepRoundTrip:
    @pytest.mark.skipif(not SWEEP_CACHE.exists(),
                        reason="no committed sweep cache")
    def test_committed_cache_reexports_losslessly(self, store):
        records = json.loads(SWEEP_CACHE.read_text())
        ingest.ingest_sweep(store, records, source=str(SWEEP_CACHE),
                            git_rev="testrev")
        assert canonical(ingest.export_sweep(store)) == canonical(records)

    def test_sweep_metrics_derivation(self):
        rec = {"total_cycles": 1000, "chunks_committed": 10,
               "squashes_conflict": 1, "squashes_alias": 1,
               "mean_commit_latency": 25.0, "wall_seconds_raw": 0.5}
        metrics = ingest.sweep_metrics(rec)
        assert metrics["cycles_per_sec"] == pytest.approx(2000.0)
        assert metrics["squash_rate"] == pytest.approx(0.2)
        assert metrics["mean_commit_latency"] == 25.0

    def test_key_parsing(self, store):
        ingest.ingest_sweep(
            store, {"Radix/16/TCC/16": {"total_cycles": 5, "seed": 7,
                                        "config_hash": "abc"}},
            git_rev="r1")
        row = store.query(KIND_SWEEP)[0]
        assert (row.app, row.n_cores, row.seed) == ("Radix", 16, 7)
        assert row.config_hash == "abc"


class TestChaosAndProfile:
    def test_chaos_artifact(self, store):
        doc = {"version": 1,
               "scenario": {"name": "hotpage", "protocol": "ScalableBulk",
                            "n_cores": 8},
               "plan": {"name": "plan-3", "seed": 42, "faults": [{}, {}]},
               "violations": [{"code": "SB-SAFE-1", "rule": "r",
                               "time": 5, "detail": "d"}],
               "watchdog_fires": [], "stats": {"cycles": 99, "commits": 3}}
        ingest.ingest_chaos_artifact(store, doc, source="x")
        row = store.query(KIND_CHAOS)[0]
        assert row.cell_key == "hotpage/plan-3"
        assert row.status == STATUS_FAILED
        assert row.error == "SB-SAFE-1"
        assert row.metrics["violations"] == 1
        assert row.metrics["n_faults"] == 2
        assert row.payload == doc

    def test_clean_chaos_artifact_is_ok(self, store):
        doc = {"version": 1, "scenario": {"name": "s"},
               "plan": {"name": "p", "seed": 0, "faults": []},
               "violations": [], "watchdog_fires": [], "stats": {}}
        ingest.ingest_chaos_artifact(store, doc)
        assert store.query(KIND_CHAOS)[0].status == STATUS_OK

    def test_profile_report(self, store):
        doc = {"schema": "repro-profile-v1", "wall_ns": 1000,
               "scopes": {"noc": {}}, "shares": {"noc": 0.4, "dir": 0.6},
               "git_rev": "r9"}
        ingest.ingest_profile(store, doc, source="x")
        row = store.query(KIND_PROFILE)[0]
        assert row.metric("share/noc") == pytest.approx(0.4)
        assert row.metric("wall_ns") == 1000
        assert row.git_rev == "r9"
        assert row.payload == doc


class TestDetection:
    def test_detect_each_kind(self):
        assert ingest.detect_kind({"schema": "repro-bench-v1"}) == "bench"
        assert ingest.detect_kind({"version": 1, "plan": {},
                                   "scenario": {}}) == "chaos"
        assert ingest.detect_kind({"shares": {}, "scopes": {}}) == "profile"
        assert ingest.detect_kind(
            {"LU/4/TCC/4": {"total_cycles": 1}}) == "sweep"

    def test_unknown_shape_rejected(self):
        with pytest.raises(StoreError):
            ingest.detect_kind({"mystery": True})
        with pytest.raises(StoreError):
            ingest.detect_kind([1, 2, 3])

    def test_ingest_path(self, store, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps(
            {"LU/4/TCC/4": {"total_cycles": 1, "seed": 0}}))
        kind, n = ingest.ingest_path(store, path, git_rev="r1")
        assert (kind, n) == ("sweep", 1)
        assert store.query(KIND_SWEEP)[0].source == str(path)
