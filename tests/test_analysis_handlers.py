"""Handler-coverage linter (SB001-SB004): repo is clean, seeded defects caught."""

from pathlib import Path

import pytest

import repro
from repro.analysis import Baseline, lint_handlers
from repro.analysis.findings import repo_paths

PKG = Path(repro.__file__).resolve().parent
DIR_ENGINE = "core/directory_engine.py"


def load_baseline() -> Baseline:
    _, repo_root = repo_paths()
    return Baseline.load(repo_root / "lint-baseline.txt")


class TestRepoIsClean:
    def test_no_fresh_findings(self):
        fresh, _suppressed, _stale = load_baseline().split(lint_handlers())
        assert fresh == [], "\n".join(f.render() for f in fresh)

    def test_every_scalablebulk_table1_type_flows(self):
        """Sanity: the pass actually sees the Table 1 conversation."""
        findings = lint_handlers()
        # COMMIT_RECALL is piggy-backed by design; nothing else may be
        # orphaned.
        orphans = {f.anchor for f in findings if f.code == "SB004"}
        assert orphans <= {"MessageType.COMMIT_RECALL"}


class TestSeededDefects:
    """Acceptance criterion (a): a removed message handler is caught."""

    def test_removed_handler_branch_is_sb001(self):
        source = (PKG / DIR_ENGINE).read_text()
        branch = ("        elif mtype is MessageType.G_FAILURE:\n"
                  "            self._on_g_failure(msg)\n")
        assert branch in source, "dispatch idiom changed; update this test"
        findings = lint_handlers(
            source_overrides={DIR_ENGINE: source.replace(branch, "")})
        sb001 = [f for f in findings if f.code == "SB001"
                 and "G_FAILURE" in f.anchor]
        assert sb001, "removing the g_failure handler went unnoticed"
        assert any("scalablebulk" in f.anchor and "dir" in f.anchor
                   for f in sb001)

    def test_orphaned_handler_method_is_sb002(self):
        source = (PKG / DIR_ENGINE).read_text()
        branch = ("        elif mtype is MessageType.G_FAILURE:\n"
                  "            self._on_g_failure(msg)\n")
        findings = lint_handlers(
            source_overrides={DIR_ENGINE: source.replace(branch, "")})
        assert any(f.code == "SB002"
                   and f.anchor == "ScalableBulkDirectory._on_g_failure"
                   for f in findings), "the now-dead handler was not flagged"

    def test_silent_mutation_is_sb003(self):
        doctored = '''
from repro.network.message import Message, MessageType


class SilentDirectory:
    def __init__(self):
        self.cst = {}

    def handle_protocol_message(self, msg: Message) -> None:
        if msg.mtype is MessageType.COMMIT_DONE:
            self._on_commit_done(msg)

    def _on_commit_done(self, msg):
        self.cst.pop(msg.ctag, None)
        self.count = 1
'''
        findings = lint_handlers(
            source_overrides={DIR_ENGINE: doctored})
        assert any(f.code == "SB003"
                   and f.anchor == "SilentDirectory._on_commit_done"
                   for f in findings)

    def test_orphan_message_type_is_sb004(self):
        decl = (PKG / "network/message.py").read_text()
        doctored = decl.replace(
            'COMMIT_RECALL = "commit_recall"',
            'COMMIT_RECALL = "commit_recall"\n'
            '    GHOST_MSG = "ghost_msg"')
        findings = lint_handlers(
            source_overrides={"network/message.py": doctored})
        assert any(f.code == "SB004" and f.anchor == "MessageType.GHOST_MSG"
                   for f in findings)


class TestFindingMechanics:
    def test_keys_are_line_number_free(self):
        for f in lint_handlers():
            assert ":" not in f.key.split("::")[0].split(" ")[1].replace(
                "src/repro", ""), f.key
            assert f.key.startswith(f.code)

    def test_render_mentions_rule_and_location(self):
        findings = lint_handlers()
        if not findings:
            pytest.skip("repo fully clean")
        text = findings[0].render()
        assert findings[0].code in text and findings[0].path in text
