"""Tests for the base directory module: read-miss service and state.

Driven over the real NoC via the ProtocolBench stub cores.
"""

import pytest

from repro.config import ProtocolKind
from repro.memory.directory import LineInfo
from repro.network.message import MessageType, core_node, dir_node
from protocol_bench import ProtocolBench


@pytest.fixture
def bench():
    return ProtocolBench(n_cores=9)


def read(bench, line, requester):
    home = bench.page_mapper.lookup(
        line * bench.config.line_bytes // bench.config.page_bytes)
    bench.network.unicast(MessageType.READ_REQ, core_node(requester),
                          dir_node(home), line=line, requester=requester)
    bench.run()
    return [m for m in bench.core_log[requester]
            if m.mtype in (MessageType.DATA_FROM_MEM,
                           MessageType.DATA_FROM_SHARER,
                           MessageType.DATA_FROM_OWNER,
                           MessageType.READ_NACK)]


class TestReadService:
    def test_cold_line_fetched_from_memory(self, bench):
        line = bench.line_homed_at(3)
        replies = read(bench, line, requester=1)
        assert [m.mtype for m in replies] == [MessageType.DATA_FROM_MEM]
        # memory latency dominates the round trip
        assert replies[0].sent_at >= bench.config.memory_round_trip_cycles

    def test_requester_registered_as_sharer(self, bench):
        line = bench.line_homed_at(3)
        read(bench, line, requester=1)
        assert 1 in bench.directories[3].lines[line].sharers

    def test_clean_remote_copy_forwarded(self, bench):
        line = bench.line_homed_at(3)
        bench.add_sharer(line, proc=5)
        replies = read(bench, line, requester=1)
        assert [m.mtype for m in replies] == [MessageType.DATA_FROM_SHARER]

    def test_dirty_owner_forwarded(self, bench):
        line = bench.line_homed_at(3)
        info = bench.directories[3].lines.setdefault(line, LineInfo())
        info.owner = 5
        info.sharers.add(5)
        replies = read(bench, line, requester=1)
        assert [m.mtype for m in replies] == [MessageType.DATA_FROM_OWNER]

    def test_own_dirty_copy_not_forwarded_to_self(self, bench):
        line = bench.line_homed_at(3)
        info = bench.directories[3].lines.setdefault(line, LineInfo())
        info.owner = 1
        info.sharers.add(1)
        replies = read(bench, line, requester=1)
        # the requester already owns it: memory path (degenerate re-fetch)
        assert replies[0].mtype is MessageType.DATA_FROM_MEM

    def test_closest_sharer_chosen(self, bench):
        line = bench.line_homed_at(4)
        bench.add_sharer(line, proc=8)   # far corner
        bench.add_sharer(line, proc=1)   # adjacent to requester 0
        read(bench, line, requester=0)
        fwd = [dst for t, dst, m in bench.wire_log
               if m.mtype is MessageType.FWD_READ]
        # FWD went to a core stub; check it targeted core 1
        fwd_msgs = [m for t, dst, m in bench.wire_log
                    if m.mtype is MessageType.FWD_READ]
        assert fwd_msgs and fwd_msgs[0].dst == core_node(1)


class TestWriteback:
    def test_writeback_clears_owner(self, bench):
        line = bench.line_homed_at(3)
        info = bench.directories[3].lines.setdefault(line, LineInfo())
        info.owner = 5
        info.sharers.add(5)
        bench.network.unicast(MessageType.WRITEBACK, core_node(5),
                              dir_node(3), line=line, writer=5)
        bench.run()
        assert info.owner is None
        assert 5 not in info.sharers

    def test_writeback_from_non_owner_keeps_owner(self, bench):
        line = bench.line_homed_at(3)
        info = bench.directories[3].lines.setdefault(line, LineInfo())
        info.owner = 5
        info.sharers.update({5, 6})
        bench.network.unicast(MessageType.WRITEBACK, core_node(6),
                              dir_node(3), line=line, writer=6)
        bench.run()
        assert info.owner == 5
        assert 6 not in info.sharers


class TestCommitStateHelpers:
    def test_sharers_to_invalidate_excludes_writer(self, bench):
        line = bench.line_homed_at(2)
        bench.add_sharer(line, 0)
        bench.add_sharer(line, 4)
        victims = bench.directories[2].sharers_to_invalidate([line], writer=0)
        assert victims == {4}

    def test_sharers_to_invalidate_includes_old_owner(self, bench):
        line = bench.line_homed_at(2)
        info = bench.directories[2].lines.setdefault(line, LineInfo())
        info.owner = 7
        victims = bench.directories[2].sharers_to_invalidate([line], writer=0)
        assert victims == {7}

    def test_apply_commit_sets_owner(self, bench):
        line = bench.line_homed_at(2)
        bench.add_sharer(line, 4)
        bench.directories[2].apply_commit([line], writer=0)
        info = bench.directories[2].lines[line]
        assert info.owner == 0 and info.sharers == {0}

    def test_unknown_lines_ignored(self, bench):
        assert bench.directories[2].sharers_to_invalidate([999999], 0) == set()
