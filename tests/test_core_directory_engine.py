"""Message-level tests of the ScalableBulk group formation protocol.

These drive directory modules over the real NoC with hand-built commit
requests and check the behaviours of Sections 3.1/3.2 and the message
orderings of Tables 4/5.
"""

import pytest

from repro.core.cst import ChunkCommitState
from repro.network.message import MessageType, dir_node
from protocol_bench import ProtocolBench


@pytest.fixture
def bench():
    return ProtocolBench(n_cores=9)


class TestSuccessfulCommit:
    def test_singleton_group_commits(self, bench):
        w = bench.line_homed_at(3)
        cid, order = bench.send_commit(proc=0, writes=[w])
        bench.run()
        assert bench.outcomes(0) == [("success", cid)]
        assert order == (3,)
        # CST entry deallocated
        assert not bench.directories[3].cst

    def test_multi_dir_group_commits(self, bench):
        lines = [bench.line_homed_at(d) for d in (1, 2, 5)]
        cid, order = bench.send_commit(proc=0, writes=lines)
        bench.run()
        assert order == (1, 2, 5)
        assert bench.outcomes(0) == [("success", cid)]
        for d in (1, 2, 5):
            assert not bench.directories[d].cst

    def test_g_flows_in_ascending_order(self, bench):
        lines = [bench.line_homed_at(d) for d in (1, 2, 5)]
        bench.send_commit(proc=0, writes=lines)
        bench.run()
        # dir 2 gets g from dir 1, dir 5 from dir 2, leader 1 gets it back
        assert len(bench.messages_at(2, MessageType.G)) == 1
        assert len(bench.messages_at(5, MessageType.G)) == 1
        assert len(bench.messages_at(1, MessageType.G)) == 1  # returned

    def test_members_receive_g_success_then_commit_done(self, bench):
        lines = [bench.line_homed_at(d) for d in (1, 2, 5)]
        bench.send_commit(proc=0, writes=lines)
        bench.run()
        for d in (2, 5):
            types = [m.mtype for m in bench.messages_at(d)
                     if m.mtype in (MessageType.G_SUCCESS,
                                    MessageType.COMMIT_DONE)]
            assert types == [MessageType.G_SUCCESS, MessageType.COMMIT_DONE]

    def test_sharers_get_bulk_inv_and_state_updates(self, bench):
        w = bench.line_homed_at(2)
        bench.add_sharer(w, proc=4)
        cid, _ = bench.send_commit(proc=0, writes=[w])
        bench.run()
        invs = [m for m in bench.core_log[4]
                if m.mtype is MessageType.BULK_INV]
        assert len(invs) == 1
        assert w in invs[0].payload["write_lines"]
        # directory state: writer became owner, sharer dropped
        info = bench.directories[2].lines[w]
        assert info.owner == 0
        assert info.sharers == {0}

    def test_writer_not_invalidated(self, bench):
        w = bench.line_homed_at(2)
        bench.add_sharer(w, proc=0)  # the writer itself
        bench.send_commit(proc=0, writes=[w])
        bench.run()
        assert not [m for m in bench.core_log[0]
                    if m.mtype is MessageType.BULK_INV]

    def test_read_only_group_commits(self, bench):
        r = bench.line_homed_at(4)
        cid, _ = bench.send_commit(proc=1, reads=[r])
        bench.run()
        assert bench.outcomes(1) == [("success", cid)]


class TestAccessPrevention:
    """Primitive 1: preventing access to a set of directory entries."""

    def test_load_to_committing_line_blocked(self, bench):
        w = bench.line_homed_at(2)
        bench.add_sharer(w, proc=7)  # ack round trip keeps the window open
        bench.send_commit(proc=0, writes=[w])
        # before the commit resolves, the directory must block the line
        bench.sim.run(until=25)
        assert bench.directories[2].read_blocked(w)
        bench.run()
        assert not bench.directories[2].read_blocked(w)

    def test_unrelated_load_not_blocked(self, bench):
        w = bench.line_homed_at(2)
        other = bench.line_homed_at(2, index=5)
        bench.send_commit(proc=0, writes=[w])
        bench.sim.run(until=40)
        assert not bench.directories[2].read_blocked(other)


class TestCollisions:
    def test_incompatible_groups_one_wins(self, bench):
        w = bench.line_homed_at(2)
        bench.add_sharer(w, proc=7)  # keeps the winner's window open
        cid0, _ = bench.send_commit(proc=0, writes=[w], seq=0)
        cid1, _ = bench.send_commit(proc=1, writes=[w], seq=0)
        bench.run()
        results = {cid0: bench.outcomes(0), cid1: bench.outcomes(1)}
        succ = [cid for cid, res in results.items() if ("success", cid) in res]
        fail = [cid for cid, res in results.items() if ("failure", cid) in res]
        assert len(succ) == 1 and len(fail) == 1

    def test_compatible_groups_share_directory(self, bench):
        """The headline property: address-disjoint chunks commit
        concurrently through the same module."""
        w0 = bench.line_homed_at(2, index=0)
        w1 = bench.line_homed_at(2, index=1)
        cid0, _ = bench.send_commit(proc=0, writes=[w0])
        cid1, _ = bench.send_commit(proc=1, writes=[w1])
        bench.run()
        assert bench.outcomes(0) == [("success", cid0)]
        assert bench.outcomes(1) == [("success", cid1)]
        assert bench.protocol.stats.commit_failures == 0

    def test_many_compatible_groups_all_commit(self, bench):
        cids = []
        for p in range(6):
            w = bench.line_homed_at(2, index=p)
            cids.append(bench.send_commit(proc=p, writes=[w], seq=0)[0])
        bench.run()
        for p, cid in enumerate(cids):
            assert ("success", cid) in bench.outcomes(p)

    def test_rw_collision_detected(self, bench):
        shared = bench.line_homed_at(3)
        bench.add_sharer(shared, proc=7)
        cid0, _ = bench.send_commit(proc=0, writes=[shared])
        cid1, _ = bench.send_commit(proc=1, reads=[shared],
                                    writes=[bench.line_homed_at(4)])
        bench.run()
        outcomes = bench.outcomes(0) + bench.outcomes(1)
        succ = [o for o in outcomes if o[0] == "success"]
        fail = [o for o in outcomes if o[0] == "failure"]
        assert len(succ) == 1 and len(fail) == 1

    def test_loser_leader_sends_commit_failure(self, bench):
        w = bench.line_homed_at(2)
        bench.add_sharer(w, proc=7)
        bench.send_commit(proc=0, writes=[w], seq=0)
        bench.send_commit(proc=1, writes=[w], seq=0)
        bench.run()
        failures = [m for p in (0, 1) for m in bench.core_log[p]
                    if m.mtype is MessageType.COMMIT_FAILURE]
        assert len(failures) == 1

    def test_colliding_groups_forward_progress(self, bench):
        """Fig. 3(g)-style: several mutually colliding groups — at least
        one must form."""
        shared25 = [bench.line_homed_at(2), bench.line_homed_at(5)]
        # three chunks all writing both shared lines
        cids = [bench.send_commit(proc=p, writes=shared25, seq=0)[0]
                for p in range(3)]
        bench.run()
        successes = sum(
            1 for p, cid in enumerate(cids)
            if ("success", cid) in bench.outcomes(p))
        assert successes == 1


class TestStarvationReservation:
    def test_reservation_after_max_failures(self):
        bench = ProtocolBench(n_cores=9, starvation_max_squashes=2)
        w = bench.line_homed_at(2)
        victim_tag_core = 3
        # fail the victim twice by pre-holding an incompatible group
        for attempt in range(2):
            bench.add_sharer(w, proc=7)  # keep each winner's window open
            bench.send_commit(proc=0, writes=[w], seq=attempt)
            bench.sim.run(until=bench.sim.now + 22)
            bench.send_commit(proc=victim_tag_core, writes=[w], seq=0,
                              attempt=attempt)
            bench.run()
        assert bench.directories[2].reserved_for == (victim_tag_core, 0)

    def test_reserved_module_rejects_others(self):
        bench = ProtocolBench(n_cores=9, starvation_max_squashes=1)
        w = bench.line_homed_at(2)
        bench.add_sharer(w, proc=7)
        bench.send_commit(proc=0, writes=[w], seq=0)
        bench.sim.run(until=22)
        bench.send_commit(proc=3, writes=[w], seq=0, attempt=0)
        bench.run()
        assert bench.directories[2].reserved_for == (3, 0)
        # an unrelated, compatible chunk is now rejected too
        other = bench.line_homed_at(2, index=7)
        cid, _ = bench.send_commit(proc=5, writes=[other], seq=0)
        bench.run()
        assert ("failure", cid) in bench.outcomes(5)
        # the starving chunk itself gets through and releases the module
        cid2, _ = bench.send_commit(proc=3, writes=[w], seq=0, attempt=1)
        bench.run()
        assert ("success", cid2) in bench.outcomes(3)
        assert bench.directories[2].reserved_for is None


class TestPriorityRotation:
    def test_rotated_leader_runs_group(self, bench):
        lines = [bench.line_homed_at(d) for d in (1, 2, 5)]
        cid, order = bench.send_commit(proc=0, writes=lines, offset=4)
        assert order[0] == 5  # 5 has highest priority under offset 4
        bench.run()
        assert bench.outcomes(0) == [("success", cid)]
