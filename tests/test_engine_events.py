"""Unit tests for the discrete-event kernel."""

import pytest

from repro.engine.events import Event, Simulator, drain


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for name in "abcde":
            sim.schedule(5, lambda n=name: order.append(n))
        sim.run()
        assert order == list("abcde")

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_schedule_relative_to_now(self):
        sim = Simulator()
        seen = []

        def first():
            sim.schedule(8, lambda: seen.append(sim.now))

        sim.schedule(5, first)
        sim.run()
        assert seen == [13]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_zero_delay_fires(self):
        sim = Simulator()
        hits = []
        sim.schedule(0, lambda: hits.append(1))
        sim.run()
        assert hits == [1]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        hits = []
        ev = sim.schedule(10, lambda: hits.append(1))
        ev.cancel()
        sim.run()
        assert hits == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(10, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run()

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        ev = sim.schedule(20, lambda: None)
        ev.cancel()
        assert sim.pending_events == 1

    def test_pending_counter_matches_heap_scan(self):
        """The O(1) live-event counter must track the ground truth (a full
        heap scan) through schedule / cancel / double-cancel / execution."""
        sim = Simulator()
        events = [sim.schedule(t, lambda: None) for t in range(10)]
        events[3].cancel()
        events[3].cancel()  # double-cancel must not decrement twice
        events[7].cancel()
        scan = sum(1 for ev in sim._heap if not ev.cancelled)
        assert sim.pending_events == scan == 8
        sim.run(until=4)  # executes t=0..4 minus the cancelled t=3
        scan = sum(1 for ev in sim._heap if not ev.cancelled)
        assert sim.pending_events == scan == 4
        sim.run()
        assert sim.pending_events == 0
        assert sim.quiescent()

    def test_cancel_after_execution_window_is_safe(self):
        sim = Simulator()
        ev = sim.schedule(1, lambda: None)
        sim.run()
        assert sim.pending_events == 0
        ev.cancel()  # already executed; must not drive the counter negative
        assert sim.pending_events == 0


class TestRunControl:
    def test_until_stops_clock(self):
        sim = Simulator()
        hits = []
        sim.schedule(10, lambda: hits.append("early"))
        sim.schedule(100, lambda: hits.append("late"))
        sim.run(until=50)
        assert hits == ["early"]
        assert sim.now == 50
        sim.run()
        assert hits == ["early", "late"]

    def test_until_advances_clock_on_empty_queue(self):
        """Regression: an empty queue used to leave ``now`` untouched while
        a non-empty one advanced to ``until`` — time must pass either way."""
        sim = Simulator()
        sim.run(until=40)
        assert sim.now == 40

    def test_until_advances_clock_when_queue_drains_early(self):
        sim = Simulator()
        hits = []
        sim.schedule(5, lambda: hits.append("only"))
        sim.run(until=40)
        assert hits == ["only"]
        assert sim.now == 40

    def test_until_idempotent_and_monotonic(self):
        sim = Simulator()
        sim.run(until=10)
        sim.run(until=10)
        assert sim.now == 10
        sim.run(until=30)
        assert sim.now == 30

    def test_max_events_guard_raises(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(0, rearm)
        with pytest.raises(RuntimeError, match="livelock"):
            sim.run(max_events=100)

    def test_quiescent_after_drain(self):
        sim = Simulator()
        sim.schedule(3, lambda: None)
        drain(sim)
        assert sim.quiescent()

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_cascading_events_same_cycle(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule(0, lambda: order.append("inner"))

        sim.schedule(1, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 1
