"""Cross-seed determinism: same (config, seed) twice => identical timelines.

The runtime witness behind the static determinism lint (SB301-SB304): if a
nondeterminism source ever reaches event scheduling, the commit/squash
timeline of a re-run diverges and this test fails before the lint rule is
even written.
"""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.harness.runner import Machine
from repro.tracing import attach_tracer
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import get_profile


def committed_timeline(app: str, seed: int, protocol: ProtocolKind,
                       n_cores: int = 4):
    """(commit/squash/group events, total cycles) for one fresh run."""
    config = SystemConfig(n_cores=n_cores, seed=seed, protocol=protocol)
    workload = SyntheticWorkload(get_profile(app), config,
                                 active_cores=n_cores,
                                 chunks_per_partition=2)
    machine = Machine(config, workload=workload)
    tracer = attach_tracer(machine)
    machine.run()
    events = [(e.time, e.kind, e.core, e.tag, e.detail)
              for e in tracer.of_kind("commit_request", "commit_success",
                                      "squash", "group_formed",
                                      "group_failed")]
    return events, machine.sim.now


class TestCrossSeedDeterminism:
    @pytest.mark.parametrize("app", ["Radix", "Barnes"])
    def test_same_seed_identical_timeline(self, app):
        first, cycles_a = committed_timeline(app, seed=7,
                                             protocol=ProtocolKind.SCALABLEBULK)
        second, cycles_b = committed_timeline(app, seed=7,
                                              protocol=ProtocolKind.SCALABLEBULK)
        assert first, "run produced no commit events; workload misconfigured"
        assert cycles_a == cycles_b
        assert first == second

    def test_same_seed_identical_across_protocols(self):
        for proto in (ProtocolKind.BULKSC, ProtocolKind.SEQ):
            first, _ = committed_timeline("LU", seed=11, protocol=proto)
            second, _ = committed_timeline("LU", seed=11, protocol=proto)
            assert first == second, f"{proto} timeline diverged across reruns"

    def test_different_seed_diverges(self):
        """Guard against a vacuous witness: the seed must matter."""
        one, _ = committed_timeline("Radix", seed=7,
                                    protocol=ProtocolKind.SCALABLEBULK)
        other, _ = committed_timeline("Radix", seed=8,
                                      protocol=ProtocolKind.SCALABLEBULK)
        assert one != other
