"""Unit tests for the NoC: latency, contention, traffic accounting."""

import pytest

from repro.config import SystemConfig
from repro.engine.events import Simulator
from repro.network.message import (
    Message, MessageType, TrafficClass, core_node, default_size_bytes,
    dir_node, traffic_class_of, SCALABLEBULK_TABLE1_TYPES,
)
from repro.network.noc import Network, compose_delay_hooks


def make_net(n_cores=4, contention=True, **kw):
    config = SystemConfig(n_cores=n_cores,
                          network_contention=contention, **kw)
    sim = Simulator()
    net = Network(config, sim)
    return config, sim, net


class TestDelivery:
    def test_message_delivered_to_handler(self):
        _, sim, net = make_net()
        got = []
        net.register(core_node(1), got.append)
        net.unicast(MessageType.READ_NACK, core_node(0), core_node(1), line=5)
        sim.run()
        assert len(got) == 1
        assert got[0].payload["line"] == 5

    def test_unregistered_destination_raises(self):
        _, sim, net = make_net()
        with pytest.raises(KeyError):
            net.unicast(MessageType.READ_NACK, core_node(0), core_node(1))

    def test_duplicate_registration_rejected(self):
        _, _, net = make_net()
        net.register(core_node(0), lambda m: None)
        with pytest.raises(ValueError):
            net.register(core_node(0), lambda m: None)

    def test_same_tile_delivery_is_one_cycle(self):
        _, sim, net = make_net()
        times = []
        net.register(dir_node(2), lambda m: times.append(sim.now))
        net.unicast(MessageType.READ_REQ, core_node(2), dir_node(2), line=1,
                    requester=2)
        sim.run()
        assert times == [1]

    def test_remote_latency_includes_hops(self):
        config, sim, net = make_net(contention=False)
        times = []
        net.register(core_node(3), lambda m: times.append(sim.now))
        net.unicast(MessageType.READ_NACK, core_node(0), core_node(3))
        sim.run()
        hops = net.topology.hop_distance(0, 3)
        per_hop = config.link_latency_cycles + config.router_latency_cycles
        assert times[0] >= hops * per_hop

    def test_multicast_reaches_all(self):
        _, sim, net = make_net(n_cores=9)
        got = []
        for i in (1, 2, 5):
            net.register(dir_node(i), lambda m, i=i: got.append(i))
        net.multicast(MessageType.G_SUCCESS, dir_node(0),
                      [dir_node(1), dir_node(2), dir_node(5)], ctag="x")
        sim.run()
        assert sorted(got) == [1, 2, 5]


class TestContention:
    def test_contention_serializes_same_link(self):
        """Two large messages on the same route: second arrives later."""
        _, sim, net = make_net(n_cores=16, contention=True)
        times = []
        net.register(core_node(3), lambda m: times.append(sim.now))
        for _ in range(2):
            net.unicast(MessageType.BULK_INV, core_node(0), core_node(3),
                        ctag="c")
        sim.run()
        assert times[1] > times[0]

    def test_no_contention_identical_latency(self):
        _, sim, net = make_net(n_cores=16, contention=False)
        times = []
        net.register(core_node(3), lambda m: times.append(sim.now))
        for _ in range(2):
            net.unicast(MessageType.BULK_INV, core_node(0), core_node(3),
                        ctag="c")
        sim.run()
        assert times[0] == times[1]

    def test_large_messages_slower_than_small(self):
        _, sim1, net1 = make_net(n_cores=16, contention=False)
        small_t = []
        net1.register(core_node(3), lambda m: small_t.append(sim1.now))
        net1.unicast(MessageType.G, core_node(0), core_node(3), ctag="c",
                     inval_vec=set(), order=())
        sim1.run()
        _, sim2, net2 = make_net(n_cores=16, contention=False)
        large_t = []
        net2.register(core_node(3), lambda m: large_t.append(sim2.now))
        net2.unicast(MessageType.COMMIT_REQUEST, core_node(0), core_node(3),
                     ctag="c")
        sim2.run()
        assert large_t[0] > small_t[0]


class TestTrafficAccounting:
    def test_counts_by_class(self):
        _, sim, net = make_net()
        net.register(core_node(1), lambda m: None)
        net.unicast(MessageType.DATA_FROM_MEM, core_node(0), core_node(1),
                    line=1)
        net.unicast(MessageType.DATA_FROM_SHARER, core_node(0), core_node(1),
                    line=1)
        sim.run()
        counts = net.stats.class_counts()
        assert counts[TrafficClass.MEM_RD] == 1
        assert counts[TrafficClass.REMOTE_SH_RD] == 1

    def test_total_bytes_accumulate(self):
        _, sim, net = make_net()
        net.register(core_node(1), lambda m: None)
        net.unicast(MessageType.BULK_INV, core_node(0), core_node(1), ctag="c")
        assert net.stats.total_bytes == default_size_bytes(MessageType.BULK_INV)

    def test_mean_latency_positive(self):
        _, sim, net = make_net()
        net.register(core_node(1), lambda m: None)
        net.unicast(MessageType.READ_NACK, core_node(0), core_node(1))
        sim.run()
        assert net.stats.mean_latency > 0


class TestMessageVocabulary:
    def test_table1_has_ten_types(self):
        assert len(SCALABLEBULK_TABLE1_TYPES) == 10

    def test_signature_carriers_are_large(self):
        assert traffic_class_of(MessageType.COMMIT_REQUEST) is \
            TrafficClass.LARGE_COMMIT
        assert traffic_class_of(MessageType.BULK_INV) is \
            TrafficClass.LARGE_COMMIT

    def test_control_commit_messages_are_small(self):
        for mt in (MessageType.G, MessageType.G_SUCCESS,
                   MessageType.COMMIT_DONE, MessageType.TCC_SKIP,
                   MessageType.SEQ_OCCUPY):
            assert traffic_class_of(mt) is TrafficClass.SMALL_COMMIT

    def test_read_requests_are_other(self):
        assert traffic_class_of(MessageType.READ_REQ) is TrafficClass.OTHER
        assert traffic_class_of(MessageType.WRITEBACK) is TrafficClass.OTHER

    def test_commit_request_carries_two_signatures(self):
        assert default_size_bytes(MessageType.COMMIT_REQUEST) > \
            default_size_bytes(MessageType.BULK_INV)

    def test_message_uids_unique(self):
        a = Message(MessageType.G, core_node(0), core_node(1))
        b = Message(MessageType.G, core_node(0), core_node(1))
        assert a.uid != b.uid


class TestFlowFifo:
    """Per-flow FIFO: point-to-point channels must never reorder.

    ScalableBulk's grab circulation (Section 3.2) assumes ordered channels
    between every (src, dst) pair.  Without the delivery clamp in
    ``Network.send`` a later small message computes a shorter uncontended
    transit than an earlier large one and overtakes it — exactly the
    channel-ordering obligation formal treatments of lazy coherence call
    out.  These tests construct that overtake and must FAIL on the
    pre-clamp code.
    """

    def test_small_message_cannot_overtake_large_without_contention(self):
        _, sim, net = make_net(n_cores=16, contention=False)
        order = []
        net.register(core_node(3), lambda m: order.append((m.mtype, sim.now)))
        # Large signature carrier first, then a one-flit control message on
        # the same (src, dst) flow in the same cycle.
        big = net.unicast(MessageType.COMMIT_REQUEST, core_node(0),
                          core_node(3), ctag="c")
        small = net.unicast(MessageType.G, core_node(0), core_node(3),
                            ctag="c", inval_vec=set(), order=())
        # The raw latency model *would* reorder them — that is the hole.
        assert default_size_bytes(small.mtype) < default_size_bytes(big.mtype)
        sim.run()
        assert [mt for mt, _ in order] == [MessageType.COMMIT_REQUEST,
                                           MessageType.G]
        assert order[0][1] <= order[1][1]

    def test_clamped_follower_arrives_no_earlier_than_leader(self):
        _, sim, net = make_net(n_cores=16, contention=False)
        times = {}
        net.register(core_node(3), lambda m: times.setdefault(m.uid, sim.now))
        big = net.unicast(MessageType.BULK_INV, core_node(0), core_node(3),
                          ctag="c")
        lat_small = net.send(Message(MessageType.G_SUCCESS, core_node(0),
                                     core_node(3), ctag="c"))
        # Reported latency reflects the clamp, not the raw transit.
        assert lat_small >= 1
        sim.run()
        assert times[big.uid] <= sim.now

    def test_distinct_flows_are_not_serialized_against_each_other(self):
        """The clamp is per-flow: another source's message may still win."""
        _, sim, net = make_net(n_cores=16, contention=False)
        order = []
        net.register(core_node(3), lambda m: order.append(m.src.index))
        net.unicast(MessageType.COMMIT_REQUEST, core_node(0), core_node(3),
                    ctag="c")
        net.unicast(MessageType.G, core_node(2), core_node(3), ctag="c",
                    inval_vec=set(), order=())
        sim.run()
        assert order[0] == 2  # nearer/smaller message from core 2 arrives first

    def test_fifo_also_holds_under_contention(self):
        _, sim, net = make_net(n_cores=16, contention=True)
        order = []
        net.register(core_node(3), lambda m: order.append(m.uid))
        sent = [net.unicast(MessageType.COMMIT_REQUEST, core_node(0),
                            core_node(3), ctag="c").uid,
                net.unicast(MessageType.G, core_node(0), core_node(3),
                            ctag="c", inval_vec=set(), order=()).uid]
        sim.run()
        assert order == sent

    def test_fifo_holds_for_staggered_sends(self):
        """A follower injected later on the same flow still may not pass."""
        _, sim, net = make_net(n_cores=16, contention=False)
        arrivals = []
        net.register(core_node(3), lambda m: arrivals.append((m.uid, sim.now)))
        first = net.unicast(MessageType.COMMIT_REQUEST, core_node(0),
                            core_node(3), ctag="c")
        sim.schedule(2, lambda: net.unicast(
            MessageType.G, core_node(0), core_node(3), ctag="c",
            inval_vec=set(), order=()))
        sim.run()
        assert arrivals[0][0] == first.uid
        assert arrivals[0][1] <= arrivals[1][1]


class TestHostileDelayHook:
    """A delay hook may stretch time but must never reorder a flow.

    Fault injection (repro.faults) and schedule exploration both ride
    ``delay_hook``; the hook runs *before* the per-(src, dst) clamp, so
    even an adversarial hook — huge delay for the leader, zero for the
    follower — cannot reintroduce same-flow overtaking.
    """

    def test_leader_delayed_hugely_still_arrives_first(self):
        _, sim, net = make_net(n_cores=16, contention=False)
        seen = []

        def hostile(msg, latency):
            # Enormous delay for the first message only.
            seen.append(msg.uid)
            return 10_000 if len(seen) == 1 else 0

        net.delay_hook = hostile
        order = []
        net.register(core_node(3), lambda m: order.append(m.uid))
        first = net.unicast(MessageType.COMMIT_REQUEST, core_node(0),
                            core_node(3), ctag="c")
        second = net.unicast(MessageType.G, core_node(0), core_node(3),
                             ctag="c", inval_vec=set(), order=())
        sim.run()
        assert order == [first.uid, second.uid]

    def test_adversarial_decreasing_delays_keep_send_order(self):
        _, sim, net = make_net(n_cores=16, contention=False)
        remaining = [5_000, 2_500, 600, 40, 0]

        def hostile(msg, latency):
            return remaining.pop(0) if remaining else 0

        net.delay_hook = hostile
        order = []
        net.register(core_node(3), lambda m: order.append(m.uid))
        sent = [net.unicast(MessageType.G, core_node(0), core_node(3),
                            ctag="c", inval_vec=set(), order=()).uid
                for _ in range(5)]
        sim.run()
        assert order == sent

    def test_negative_hook_output_is_clamped(self):
        """A hook may not *accelerate* a message below the model latency."""
        _, sim1, net1 = make_net(n_cores=16, contention=False)
        base = []
        net1.register(core_node(3), lambda m: base.append(sim1.now))
        net1.unicast(MessageType.G, core_node(0), core_node(3), ctag="c",
                     inval_vec=set(), order=())
        sim1.run()

        _, sim2, net2 = make_net(n_cores=16, contention=False)
        net2.delay_hook = lambda msg, latency: -10_000
        hooked = []
        net2.register(core_node(3), lambda m: hooked.append(sim2.now))
        net2.unicast(MessageType.G, core_node(0), core_node(3), ctag="c",
                     inval_vec=set(), order=())
        sim2.run()
        assert hooked == base

    def test_composed_hooks_sum_and_respect_fifo(self):
        _, sim, net = make_net(n_cores=16, contention=False)
        net.delay_hook = compose_delay_hooks(lambda m, l: 7, lambda m, l: 5)
        times = []
        net.register(core_node(3), lambda m: times.append(sim.now))
        net.unicast(MessageType.G, core_node(0), core_node(3), ctag="c",
                    inval_vec=set(), order=())
        sim.run()
        _, sim2, net2 = make_net(n_cores=16, contention=False)
        plain = []
        net2.register(core_node(3), lambda m: plain.append(sim2.now))
        net2.unicast(MessageType.G, core_node(0), core_node(3), ctag="c",
                     inval_vec=set(), order=())
        sim2.run()
        assert times[0] == plain[0] + 12

    def test_compose_drops_nones(self):
        assert compose_delay_hooks(None, None) is None
        solo = lambda m, l: 3
        assert compose_delay_hooks(None, solo, None) is solo


class TestSendFailureAtomicity:
    """A send to an unregistered destination must be a pure no-op.

    The handler check runs before *any* mutation: no traffic stats, no
    FIFO-clamp entry, no link bookkeeping, no sent_at stamp, no scheduled
    event — and with a profiler attached, a balanced profiler stack."""

    def _failed_send(self, net):
        msg = Message(mtype=MessageType.READ_NACK, src=core_node(0),
                      dst=core_node(1), payload={"line": 5})
        with pytest.raises(KeyError):
            net.send(msg)
        return msg

    def test_failed_send_records_nothing(self):
        _, sim, net = make_net()
        msg = self._failed_send(net)
        assert msg.sent_at == -1           # never stamped
        assert net.stats.total_messages == 0
        assert net.stats.total_bytes == 0
        assert not net._last_delivery      # no FIFO clamp entry
        assert not net.link_utilization_snapshot()
        assert sim.pending_events == 0     # no delivery scheduled

    def test_failed_send_leaves_profiler_stack_balanced(self):
        from repro.obs.profile import HostProfiler

        _, sim, net = make_net()
        prof = HostProfiler()
        prof.start()
        net.profiler = prof
        self._failed_send(net)
        assert prof._stack == []           # noc.transit never left open
        assert "noc.transit" not in prof.scopes
        # the network still works afterwards, with the scope balanced
        got = []
        net.register(core_node(1), got.append)
        net.unicast(MessageType.READ_NACK, core_node(0), core_node(1), line=7)
        sim.run()
        assert len(got) == 1
        assert prof._stack == []
        assert prof.scopes["noc.transit"].count == 1
