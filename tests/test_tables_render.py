"""Focused tests for the table renderers used by EXPERIMENTS.md."""

import pytest

from repro.config import ProtocolKind
from repro.harness.experiments import BreakdownBar, DirsPerCommitRow, Figure7Result
from repro.harness.tables import (
    TRAFFIC_ORDER, normalize_traffic, render_breakdown,
    render_commit_latency, render_dirs_per_commit, render_distribution,
    render_ratio_table, render_traffic,
)


def bar(app="LU", proto=ProtocolKind.SCALABLEBULK, cores=4, norm=0.05,
        speedup=20.0):
    return BreakdownBar(app=app, protocol=proto, n_cores=cores,
                        normalized_time=norm, speedup=speedup,
                        useful=norm * 0.7, cache_miss=norm * 0.2,
                        commit=norm * 0.05, squash=norm * 0.05)


class TestBreakdownRendering:
    def test_rows_and_averages(self):
        fig = Figure7Result(bars=[bar(), bar(proto=ProtocolKind.TCC)],
                            baselines={"LU": 1000})
        text = render_breakdown(fig, (ProtocolKind.SCALABLEBULK,
                                      ProtocolKind.TCC), (4,))
        assert text.count("LU") == 2
        assert "AVERAGE" in text
        assert "20.0" in text

    def test_missing_bars_skipped(self):
        fig = Figure7Result(bars=[bar()], baselines={"LU": 1000})
        text = render_breakdown(fig, (ProtocolKind.SEQ,), (4,))
        assert "LU" not in text.splitlines()[1] if len(text.splitlines()) > 1 \
            else True

    def test_figure_helpers(self):
        fig = Figure7Result(bars=[bar(speedup=10), bar(app="FFT", speedup=30)],
                            baselines={})
        assert fig.average_speedup(ProtocolKind.SCALABLEBULK, 4) == 20
        with pytest.raises(KeyError):
            fig.bar("Radix", ProtocolKind.SCALABLEBULK, 4)

    def test_commit_fraction_average(self):
        fig = Figure7Result(bars=[bar()])
        frac = fig.average_commit_fraction(ProtocolKind.SCALABLEBULK, 4)
        assert frac == pytest.approx(0.05)


class TestOtherRenderers:
    def test_dirs_rows(self):
        rows = [DirsPerCommitRow("Radix", 64, 11.5, 10.9)]
        text = render_dirs_per_commit(rows)
        assert "11.50" in text and "10.90" in text and "0.60" in text

    def test_distribution_columns(self):
        text = render_distribution({"X": {0: 50.0, 1: 25.0, "more": 25.0}},
                                   upper=1)
        header = text.splitlines()[0]
        assert "more" in header

    def test_latency_histogram_bars(self):
        text = render_commit_latency({ProtocolKind.SEQ: [100] * 10 + [900]})
        assert "SEQ" in text and "mean" in text and "#" in text

    def test_latency_empty(self):
        text = render_commit_latency({ProtocolKind.SEQ: []})
        assert "no commits" in text

    def test_ratio_table_average_row(self):
        text = render_ratio_table({"A": {ProtocolKind.TCC: 2.0},
                                   "B": {ProtocolKind.TCC: 4.0}}, "t")
        assert "3.00" in text  # average of 2 and 4

    def test_traffic_normalization_order(self):
        data = {"A": {ProtocolKind.TCC: {k: 10 for k in TRAFFIC_ORDER}}}
        text = render_traffic(data)
        assert "100.0" in text

    def test_normalize_without_tcc_self_normalizes(self):
        data = {ProtocolKind.SCALABLEBULK: {"MemRd": 10, "Other": 0}}
        norm = normalize_traffic(data)
        assert sum(norm[ProtocolKind.SCALABLEBULK].values()) == \
            pytest.approx(100.0)

    def test_normalize_empty_counts(self):
        data = {ProtocolKind.TCC: {}}
        norm = normalize_traffic(data)
        assert sum(norm[ProtocolKind.TCC].values()) == 0.0
