"""Tests for the full-sweep module (collection, caching, rendering)."""

import json

import pytest

from repro.config import ProtocolKind
from repro.harness import sweep


class TestRunOne:
    def test_record_fields(self):
        rec = sweep.run_one("LU", 4, ProtocolKind.SCALABLEBULK, chunks=1)
        for field in ("total_cycles", "mean_commit_latency", "dirs_hist",
                      "latency_hist", "traffic", "mean_dirs"):
            assert field in rec
        assert rec["chunks_committed"] == 4

    def test_baseline_uses_one_core(self):
        rec = sweep.run_one("LU", 4, ProtocolKind.SCALABLEBULK, chunks=1,
                            active_cores=1)
        assert rec["active_cores"] == 1
        assert rec["chunks_committed"] == 4  # all partitions on core 0


class TestCollectCaching:
    def test_collect_writes_and_reuses_cache(self, tmp_path):
        cache = tmp_path / "sweep.json"
        logs = []
        records = sweep.collect(["LU"], [4], 1, cache_path=cache,
                                log=logs.append)
        assert cache.exists()
        n_runs_first = len(records)
        # second collection must not rerun anything (pure cache hits)
        logs2 = []
        records2 = sweep.collect(["LU"], [4], 1, cache_path=cache,
                                 log=logs2.append)
        assert len(records2) == n_runs_first
        reloaded = json.loads(cache.read_text())
        assert set(reloaded) == set(records2)

    def test_collect_runs_matrix(self, tmp_path):
        records = sweep.collect(["LU"], [4], 1,
                                cache_path=tmp_path / "s.json",
                                log=lambda *a: None)
        # 1 baseline + 4 protocols
        assert len(records) == 5


class TestAtomicSave:
    def test_atomic_write_replaces_and_cleans_up(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("old")
        sweep.atomic_write_text(path, "new")
        assert path.read_text() == "new"
        assert list(tmp_path.iterdir()) == [path]  # no temp file left

    def test_failed_write_leaves_previous_checkpoint_intact(self, tmp_path,
                                                            monkeypatch):
        path = tmp_path / "cache.json"
        path.write_text('{"good": "checkpoint"}')

        def explode(_src, _dst):
            raise OSError("simulated crash at the rename")

        monkeypatch.setattr(sweep.os, "replace", explode)
        with pytest.raises(OSError):
            sweep.atomic_write_text(path, "half-written garbage")
        # the old checkpoint survives and the temp file is gone
        assert path.read_text() == '{"good": "checkpoint"}'
        assert list(tmp_path.iterdir()) == [path]


class TestSeedOverride:
    def test_run_one_seed_lands_in_config_and_record(self):
        rec = sweep.run_one("LU", 4, ProtocolKind.SCALABLEBULK, chunks=1,
                            seed=1234)
        assert rec["seed"] == 1234
        default = sweep.run_one("LU", 4, ProtocolKind.SCALABLEBULK,
                                chunks=1)
        assert default["seed"] != 1234  # Table 2 default preserved
        assert rec["config_hash"] != default["config_hash"]


class TestRendering:
    @pytest.fixture
    def records(self, tmp_path):
        return sweep.collect(["LU", "Radix"], [4], 1,
                             cache_path=tmp_path / "s.json",
                             log=lambda *a: None)

    def test_markdown_contains_all_figures(self, records):
        md = sweep.render_markdown(records, ["LU", "Radix"], [4], 1)
        for fig in ("Figure 7", "Figure 9", "Figure 11", "Figure 13",
                    "Figure 14", "Figure 16", "Figure 18"):
            assert fig in md, fig
        assert "Radix" in md and "LU" in md
        assert "ScalableBulk" in md

    def test_markdown_has_paper_reference_latencies(self, records):
        md = sweep.render_markdown(records, ["LU", "Radix"], [4], 1)
        assert "2954" in md  # the paper's BulkSC 64p mean

    def test_main_cli(self, tmp_path):
        md_path = tmp_path / "exp.md"
        rc = sweep.main(["--apps", "LU", "--cores", "4", "--chunks", "1",
                         "--json", str(tmp_path / "s.json"),
                         "--markdown", str(md_path)])
        assert rc == 0
        assert "Figure 13" in md_path.read_text()
