"""Chaos campaigns: verdicts, parallel determinism, shrinking, artifacts."""

import json

import pytest

from repro.analysis.explore.mutations import MUTATIONS
from repro.analysis.explore.scenarios import SCENARIOS
from repro.faults import cli as chaos_cli
from repro.faults.campaign import (chaos_worker, generate_campaign,
                                   load_artifact, mutation_check_worker,
                                   replay_artifact, run_plan, save_artifact,
                                   shrink_plan, stress_plan)
from repro.faults.plan import FaultSpec
from repro.harness.parallel import run_ordered

LEAK = "reservation-leak"


def _payloads(seed, n_plans, watchdog=25_000):
    return [{"scenario": scenario, "plan": plan.to_json(),
             "watchdog": watchdog, "minimize": False}
            for scenario, plan in generate_campaign(seed, n_plans)]


class TestCampaignVerdicts:
    def test_small_campaign_is_clean(self):
        for verdict in run_ordered(chaos_worker, _payloads(0, 7)):
            assert verdict["ok"], verdict
            assert verdict["safety_codes"] == []
            assert verdict["watchdog_fires"] == 0

    def test_jobs_do_not_change_verdicts(self):
        """Issue 5 satellite: the campaign is deterministic under --jobs.
        Plans are generated in the parent from the seed alone; workers
        re-derive every decision from the plan JSON."""
        serial = run_ordered(chaos_worker, _payloads(3, 6), jobs=1)
        parallel = run_ordered(chaos_worker, _payloads(3, 6), jobs=2)
        assert serial == parallel

    def test_same_seed_same_verdicts_across_calls(self):
        a = run_ordered(chaos_worker, _payloads(5, 5))
        b = run_ordered(chaos_worker, _payloads(5, 5))
        assert a == b


class TestMutationCheck:
    """The acceptance criterion: chaos catches the reservation-release
    bug that the nominal-timing suite misses."""

    def test_reservation_leak_caught_under_chaos_only(self):
        verdict = mutation_check_worker({"mutation": LEAK, "seed": 0})
        assert verdict["chaos_only"]
        assert not verdict["nominal_caught"], verdict["nominal_codes"]
        assert verdict["chaos_caught"], verdict["chaos_codes"]
        assert set(verdict["chaos_codes"]) & {"SB403", "SB404"}

    def test_nominal_mutations_still_caught_nominally_by_explore(self):
        # Belt and braces: the nominal suite's contract lives in
        # test_explore.py; here just pin that the chaos-only flag stays
        # the exception, not the rule.
        chaos_only = [n for n, m in MUTATIONS.items() if m.chaos_only]
        assert chaos_only == [LEAK]


class TestShrinking:
    def _fat_failing_plan(self):
        """The stress plan plus irrelevant padding faults: ddmin should
        strip the padding and keep the storm."""
        storm = stress_plan(0)
        padding = (
            FaultSpec.make("link-hotspot", tile=1, start=0, duration=300,
                           extra=5),
            FaultSpec.make("core-jitter", core=2, start=0, duration=300,
                           max_extra=3),
            FaultSpec.make("dir-stall", dir=0, start=0, duration=300,
                           extra=5),
        )
        return storm.with_faults(list(storm.faults) + list(padding))

    def test_shrink_keeps_failure_and_drops_padding(self):
        scenario = SCENARIOS["cross3"]
        plan = self._fat_failing_plan()
        mutation = MUTATIONS[LEAK]
        target = run_plan(scenario, plan, mutation=mutation).codes[0]
        shrunk = shrink_plan(scenario, plan, target, mutation=mutation,
                             max_runs=24)
        assert len(shrunk.faults) < len(plan.faults)
        assert any(f.kind == "squash-storm" for f in shrunk.faults)
        assert target in run_plan(scenario, shrunk,
                                  mutation=mutation).codes


class TestArtifacts:
    def test_artifact_round_trip_and_replay(self, tmp_path):
        scenario = SCENARIOS["cross3"]
        mutation = MUTATIONS[LEAK]
        result = run_plan(scenario, stress_plan(0), mutation=mutation)
        assert result.codes, "stress plan must catch the leak"
        path = str(tmp_path / "leak.json")
        save_artifact(result, path)
        data = load_artifact(path)
        assert data["plan"]["name"] == "stress"
        replay = replay_artifact(data)
        assert result.codes[0] in replay.codes

    def test_artifact_version_gate(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError, match="version"):
            load_artifact(str(path))

    def test_worker_emits_shrunk_artifact_on_failure(self):
        """chaos_worker shrinks a failing plan inside the worker and ships
        the artifact as plain JSON across the process boundary."""
        payload = {"scenario": "cross3", "plan": stress_plan(0).to_json(),
                   "mutation": LEAK, "watchdog": 5_000, "minimize": True}
        verdict = chaos_worker(payload)
        assert not verdict["ok"]
        assert verdict["codes"]
        artifact = verdict["artifact"]
        json.dumps(artifact)  # plain data only
        assert artifact["mutation"] == LEAK
        assert artifact["plan"]["faults"]
        # The shrunk plan still reproduces when replayed from the artifact.
        assert verdict["codes"][0] in replay_artifact(artifact).codes


class TestCli:
    def test_cli_list(self, capsys):
        assert chaos_cli.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "squash-storm" in out
        assert LEAK in out

    def test_cli_tiny_campaign(self, capsys):
        assert chaos_cli.main(["--seed", "0", "--plans", "3"]) == 0
        out = capsys.readouterr().out
        assert "all 3 plans clean" in out

    def test_cli_replay_artifact(self, tmp_path, capsys):
        scenario = SCENARIOS["cross3"]
        result = run_plan(scenario, stress_plan(0),
                          mutation=MUTATIONS[LEAK])
        path = str(tmp_path / "a.json")
        save_artifact(result, path)
        assert chaos_cli.main(["--replay", path]) == 0
        assert "replay of" in capsys.readouterr().out

    def test_cli_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            chaos_cli.main(["--scenario", "nope"])
