"""Backend equivalence: the packed-int and numpy signature backends must
be bit-for-bit interchangeable.

The numpy backend (`repro.signatures.numpy_backend`) stores the same
packed layout in little-endian uint64 words.  Everything observable —
membership, intersection, union, bit counts, the canonical
``packed_bits()`` view — must agree with the pure-python backend for any
sequence of operations, or conflict detection would depend on which
backend a machine happened to select.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ProtocolKind, SystemConfig
from repro.harness.runner import Machine, run_app
from repro.signatures.bulk_signature import (
    BACKENDS,
    BulkSignature,
    SignatureFactory,
    resolve_backend,
)
from repro.signatures.numpy_backend import numpy_available

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")

lines_st = st.lists(st.integers(min_value=0, max_value=2**40),
                    min_size=0, max_size=40)


def _factories():
    py = SignatureFactory(total_bits=2048, n_banks=4, seed=2010,
                          backend="python")
    np_ = SignatureFactory(total_bits=2048, n_banks=4, seed=2010,
                           backend="numpy")
    return py, np_


class TestBackendResolution:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIG_BACKEND", raising=False)
        assert resolve_backend(None) == "python"
        assert resolve_backend("auto") == "python"

    def test_env_var_fills_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIG_BACKEND", "numpy")
        assert resolve_backend(None) == "numpy"
        assert resolve_backend("auto") == "numpy"
        # An explicit choice always beats the environment.
        assert resolve_backend("python") == "python"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIG_BACKEND", raising=False)
        with pytest.raises(ValueError, match="unknown signature backend"):
            resolve_backend("fortran")
        monkeypatch.setenv("REPRO_SIG_BACKEND", "fortran")
        with pytest.raises(ValueError, match="unknown signature backend"):
            resolve_backend(None)

    def test_config_validates_backend(self):
        with pytest.raises(ValueError):
            SystemConfig(n_cores=4, signature_backend="fortran")
        for name in BACKENDS + ("auto",):
            assert SystemConfig(
                n_cores=4, signature_backend=name).signature_backend == name

    def test_machine_uses_configured_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIG_BACKEND", raising=False)
        config = SystemConfig(n_cores=4, signature_backend="python")
        machine = Machine(config, next_spec=lambda c: None)
        assert machine.sig_factory.backend == "python"
        assert type(machine.sig_factory.empty()) is BulkSignature

    @needs_numpy
    def test_machine_numpy_backend_signature_class(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIG_BACKEND", raising=False)
        config = SystemConfig(n_cores=4, signature_backend="numpy")
        machine = Machine(config, next_spec=lambda c: None)
        assert machine.sig_factory.backend == "numpy"
        assert type(machine.sig_factory.empty()).__name__ == "NumpyBulkSignature"

    @needs_numpy
    def test_numpy_requires_word_aligned_banks(self):
        # 256 bits / 8 banks = 32 bits per bank: not a whole uint64 word.
        with pytest.raises(ValueError, match="64"):
            SignatureFactory(total_bits=256, n_banks=8, backend="numpy")


@needs_numpy
class TestBackendEquivalence:
    @given(lines=lines_st, probes=st.lists(
        st.integers(min_value=0, max_value=2**40), max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_insert_member_bitcount_agree(self, lines, probes):
        py_f, np_f = _factories()
        a = py_f.empty()
        b = np_f.empty()
        for line in lines:
            a.insert(line)
            b.insert(line)
        assert a.packed_bits() == b.packed_bits()
        assert a.bit_count() == b.bit_count()
        assert a.inserts == b.inserts
        assert a.is_empty() == b.is_empty()
        assert list(a.banks()) == list(b.banks())
        for probe in lines + probes:
            assert a.contains(probe) == b.contains(probe)

    @given(lines=lines_st)
    @settings(max_examples=40, deadline=None)
    def test_insert_many_matches_bulk_path(self, lines):
        py_f, np_f = _factories()
        assert (py_f.from_lines(lines).packed_bits()
                == np_f.from_lines(lines).packed_bits())

    @given(xs=lines_st, ys=lines_st)
    @settings(max_examples=40, deadline=None)
    def test_intersect_union_agree(self, xs, ys):
        py_f, np_f = _factories()
        pa, pb = py_f.from_lines(xs), py_f.from_lines(ys)
        na, nb = np_f.from_lines(xs), np_f.from_lines(ys)
        assert pa.intersects(pb) == na.intersects(nb)
        pu, nu = pa.union(pb), na.union(nb)
        assert pu.packed_bits() == nu.packed_bits()
        assert pu.inserts == nu.inserts
        pa.union_update(pb)
        na.union_update(nb)
        assert pa.packed_bits() == na.packed_bits()
        assert (pa.false_positive_probability()
                == pytest.approx(na.false_positive_probability()))

    @given(xs=lines_st, ys=lines_st)
    @settings(max_examples=30, deadline=None)
    def test_cross_backend_interop(self, xs, ys):
        """A python signature and a numpy signature with equal hash params
        compare directly: packed_bits() is the shared canonical view."""
        py_f, np_f = _factories()
        pa, nb = py_f.from_lines(xs), np_f.from_lines(ys)
        na, pb = np_f.from_lines(xs), py_f.from_lines(ys)
        assert pa.intersects(nb) == na.intersects(pb)
        assert pa.union(nb).packed_bits() == na.union(pb).packed_bits()

    @given(lines=st.lists(st.integers(min_value=0, max_value=2**40),
                          min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_expand_clear_copy_agree(self, lines):
        py_f, np_f = _factories()
        a, b = py_f.from_lines(lines), np_f.from_lines(lines)
        candidates = lines + [x + 1 for x in lines]
        assert a.expand(candidates) == b.expand(candidates)
        ca, cb = a.copy(), b.copy()
        assert ca.packed_bits() == cb.packed_bits()
        a.clear()
        b.clear()
        assert a.is_empty() and b.is_empty()
        assert ca.packed_bits() == cb.packed_bits()  # copies unaffected


class TestUnionCompatibility:
    def test_union_rejects_incompatible_factories(self):
        """Regression: union() used to skip the compatibility check that
        union_update() and intersects() perform, silently interleaving
        bits hashed under different seeds."""
        f1 = SignatureFactory(total_bits=2048, n_banks=4, seed=2010)
        f2 = SignatureFactory(total_bits=2048, n_banks=4, seed=2011)
        with pytest.raises(ValueError, match="incompatible"):
            f1.from_lines([1, 2]).union(f2.from_lines([3]))

    @needs_numpy
    def test_numpy_union_rejects_incompatible_factories(self):
        f1 = SignatureFactory(total_bits=2048, n_banks=4, seed=2010,
                              backend="numpy")
        f2 = SignatureFactory(total_bits=2048, n_banks=4, seed=2011,
                              backend="numpy")
        with pytest.raises(ValueError, match="incompatible"):
            f1.from_lines([1, 2]).union(f2.from_lines([3]))


@needs_numpy
class TestEndToEndParity:
    @pytest.mark.parametrize("proto",
                             [ProtocolKind.SCALABLEBULK, ProtocolKind.BULKSC])
    def test_run_result_identical_across_backends(self, proto):
        base = run_app("Radix", n_cores=4, protocol=proto,
                       chunks_per_partition=2, signature_backend="python")
        alt = run_app("Radix", n_cores=4, protocol=proto,
                      chunks_per_partition=2, signature_backend="numpy")
        assert alt == base
