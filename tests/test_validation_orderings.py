"""Runs the Tables 4/5 conformance checker over stress machines."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine
from repro.validation.orderings import attach_conformance_checker
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import get_profile


def conforming_run(app: str, seed: int, n_cores: int = 9, chunks: int = 2):
    config = SystemConfig(n_cores=n_cores, seed=seed,
                          protocol=ProtocolKind.SCALABLEBULK)
    workload = SyntheticWorkload(get_profile(app), config,
                                 active_cores=n_cores,
                                 chunks_per_partition=chunks)
    machine = Machine(config, workload=workload)
    checker = attach_conformance_checker(machine)
    machine.run()
    return machine, checker


class TestConformanceOnWorkloads:
    @pytest.mark.parametrize("app", ["Radix", "Barnes", "Canneal"])
    def test_workload_conforms(self, app):
        machine, checker = conforming_run(app, seed=41)
        assert checker.messages_checked > 0
        checker.assert_clean()

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_seeds_conform(self, seed):
        machine, checker = conforming_run("Barnes", seed=seed, chunks=1)
        checker.assert_clean()


class TestConformanceUnderConflicts:
    def test_collision_storm_conforms(self):
        config = SystemConfig(n_cores=9, seed=5,
                              protocol=ProtocolKind.SCALABLEBULK)
        lines = [32 * 128 * (700 + i) for i in range(3)]
        mk = lambda c: [ChunkSpec(250, [
            ChunkAccess(1, lines[i % 3], True),
            ChunkAccess(1, lines[(i + 1) % 3], False)]) for i in range(4)]
        remaining = {c: mk(c) for c in range(6)}

        def next_spec(core_id):
            lst = remaining.get(core_id)
            return lst.pop(0) if lst else None

        machine = Machine(config, next_spec=next_spec)
        checker = attach_conformance_checker(machine)
        machine.run()
        # conflicts force failures and retries; the orderings must hold
        assert machine.protocol.stats.commit_failures >= 1
        checker.assert_clean()

    def test_checker_detects_forged_g_success(self):
        """Non-vacuity: an out-of-protocol message trips the checker."""
        from repro.network.message import MessageType, dir_node
        config = SystemConfig(n_cores=9, seed=5,
                              protocol=ProtocolKind.SCALABLEBULK)
        machine = Machine(config, next_spec=lambda c: None)
        checker = attach_conformance_checker(machine)
        # dir 3 (not a leader of anything) multicasts a rogue g_success
        machine.network.unicast(MessageType.G_SUCCESS, dir_node(3),
                                dir_node(4), ctag=("rogue", 0))
        machine.run()
        assert any(v.rule == "g_success from non-leader"
                   for v in checker.violations)
