"""Tests for the host-time self-profiler (repro.obs.profile)."""

import io
import json

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine, run_app
from repro.obs.metrics import MetricsRegistry, MetricsStream
from repro.obs.profile import (
    DIR_HANDLER,
    ENGINE_DISPATCH,
    HOT_SCOPES,
    NOC_TRANSIT,
    OTHER,
    SCHEMA,
    HostProfiler,
    aggregate_profiles,
    attach_profiler,
    make_profiler,
    render_share_line,
)


class FakeClock:
    """A deterministic host clock the tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        return self.now


@pytest.fixture
def clocked():
    clock = FakeClock()
    return HostProfiler(_clock=clock), clock


class TestScopeAccounting:
    def test_nested_scopes_split_self_time(self, clocked):
        prof, clock = clocked
        prof.start()
        clock.now = 10
        prof.enter("a")
        clock.now = 20
        prof.enter("b")
        clock.now = 50
        prof.exit()                      # b: total 30, self 30
        clock.now = 100
        prof.exit()                      # a: total 90, self 90-30=60
        clock.now = 200
        prof.stop()

        a, b = prof.scopes["a"], prof.scopes["b"]
        assert (a.count, a.total_ns, a.self_ns) == (1, 90, 60)
        assert (b.count, b.total_ns, b.self_ns) == (1, 30, 30)
        assert prof.wall_ns == 200
        assert prof.edges[(None, "a")] == [1, 90]
        assert prof.edges[("a", "b")] == [1, 30]

    def test_repeat_entries_accumulate(self, clocked):
        prof, clock = clocked
        prof.start()
        for t0 in (0, 100, 200):
            clock.now = t0
            prof.enter("x")
            clock.now = t0 + 7
            prof.exit()
        stats = prof.scopes["x"]
        assert (stats.count, stats.total_ns, stats.self_ns) == (3, 21, 21)
        assert prof.edges[(None, "x")] == [3, 21]

    def test_start_is_first_call_wins(self, clocked):
        prof, clock = clocked
        clock.now = 5
        prof.start()
        clock.now = 50
        prof.start()                     # must not re-anchor
        clock.now = 105
        assert prof.wall_ns == 100

    def test_exit_dispatch_drives_metrics_snapshots(self):
        clock = FakeClock()
        sink = io.StringIO()
        stream = MetricsStream(sink, 100, registry=MetricsRegistry())
        prof = HostProfiler(stream=stream, _clock=clock)
        prof.start()
        prof.enter(ENGINE_DISPATCH)
        prof.exit_dispatch(50)           # below the boundary: no snapshot
        assert stream.snapshots_written == 0
        prof.enter(ENGINE_DISPATCH)
        clock.now = 1_000
        prof.exit_dispatch(150)          # crossed 100: snapshot
        assert stream.snapshots_written == 1
        assert stream.next_time == 200
        prof.stop(sim_time=150)          # close() flushes the final one
        assert stream.snapshots_written == 2


class TestReport:
    def _profiled(self):
        clock = FakeClock()
        prof = HostProfiler(provenance={"git_rev": "abc123"}, _clock=clock)
        prof.start()
        clock.now = 0
        prof.enter(ENGINE_DISPATCH)
        clock.now = 10
        prof.enter(DIR_HANDLER)
        clock.now = 20
        prof.enter(NOC_TRANSIT)
        clock.now = 30
        prof.exit()
        clock.now = 50
        prof.exit()
        clock.now = 60
        prof.exit()
        clock.now = 100
        prof.stop()
        return prof

    def test_shares_sum_to_100(self):
        shares = self._profiled().report().shares()
        assert OTHER in shares
        assert sum(shares.values()) == pytest.approx(100.0)
        assert all(v >= 0 for v in shares.values())

    def test_render_mentions_every_scope_once(self):
        text = self._profiled().report().render()
        for name in (ENGINE_DISPATCH, DIR_HANDLER, NOC_TRANSIT, OTHER):
            assert name in text
        assert "wall" in text

    def test_to_json_schema_and_provenance(self):
        doc = self._profiled().report().to_json()
        assert doc["schema"] == SCHEMA
        assert doc["git_rev"] == "abc123"
        assert doc["wall_ns"] == 100
        assert set(doc["scopes"]) == {ENGINE_DISPATCH, DIR_HANDLER,
                                      NOC_TRANSIT}
        json.dumps(doc)                  # serializable as-is
        # edges are [parent, child, count, total_ns] rows
        assert [None, ENGINE_DISPATCH, 1, 60] in doc["edges"]

    def test_aggregate_profiles_sums_and_renormalizes(self):
        doc = self._profiled().report().to_json()
        merged = aggregate_profiles([doc, doc])
        assert merged["runs"] == 2
        assert merged["wall_ns"] == 200
        assert merged["scopes"][DIR_HANDLER]["count"] == 2
        assert sum(merged["shares"].values()) == pytest.approx(100.0)

    def test_render_share_line_biggest_first(self):
        line = render_share_line({"a": 5.0, "b": 40.0, OTHER: 55.0})
        assert line.index("b 40.0%") < line.index("a 5.0%")
        assert line.endswith(f"{OTHER} 55.0%")


def _machine(protocol=ProtocolKind.SCALABLEBULK):
    specs = {0: [ChunkSpec(150, [ChunkAccess(1, 32 * 128 * 50 + 32 * i, True)])
                 for i in range(2)]}
    remaining = {c: list(s) for c, s in specs.items()}
    config = SystemConfig(n_cores=4, seed=3, protocol=protocol)
    return Machine(config, next_spec=lambda c: (
        remaining.get(c).pop(0) if remaining.get(c) else None))


class TestAttachment:
    def test_attach_profiler_populates_hot_scopes(self):
        machine = _machine()
        prof = attach_profiler(machine)
        machine.run()
        prof.stop(machine.sim.now)
        assert ENGINE_DISPATCH in prof.scopes
        assert prof.scopes[ENGINE_DISPATCH].count > 0
        assert set(prof.scopes) <= set(HOT_SCOPES)
        assert sum(prof.report().shares().values()) == pytest.approx(100.0)

    @pytest.mark.parametrize("proto", list(ProtocolKind))
    def test_profiled_run_result_is_identical(self, proto):
        base = run_app("Radix", n_cores=4, protocol=proto,
                       chunks_per_partition=2)
        profiled = run_app("Radix", n_cores=4, protocol=proto,
                           chunks_per_partition=2, profile=True)
        assert profiled == base

    def test_make_profiler_stamps_provenance_and_stream(self):
        config = SystemConfig(n_cores=4)
        prof = make_profiler(config, metrics_interval=500)
        assert "config_hash" in prof.provenance
        assert prof.stream is not None
        assert prof.stream.interval == 500
        assert make_profiler(config).stream is None


class TestHostileScopeBalance:
    """Raising hot paths must leave the profiler stack balanced.

    Every profiled scope (sig.*, noc.transit, engine.dispatch) wraps its
    body in try/finally; if one leaked on an exception, every later scope
    would be mis-attributed to a phantom parent for the rest of the run."""

    def _profiled_factory(self, **kw):
        from repro.signatures.bulk_signature import SignatureFactory

        prof = HostProfiler()
        prof.start()
        factory = SignatureFactory(total_bits=2048, n_banks=4, seed=2010, **kw)
        factory.profiler = prof
        return factory, prof

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_sig_ops_raising_keep_stack_balanced(self, backend):
        from repro.signatures.bulk_signature import SignatureFactory
        from repro.signatures.numpy_backend import numpy_available

        if backend == "numpy" and not numpy_available():
            pytest.skip("numpy not installed")
        factory, prof = self._profiled_factory(backend=backend)
        alien = SignatureFactory(total_bits=2048, n_banks=4, seed=999,
                                 backend=backend)
        alien.profiler = prof
        a = factory.from_lines([1, 2, 3])
        b = alien.from_lines([4])
        with pytest.raises(ValueError):
            a.intersects(b)
        assert prof._stack == []
        with pytest.raises(ValueError):
            a.union_update(b)
        assert prof._stack == []
        # scopes still accumulate correctly after the hostile calls
        a.insert(9)
        assert a.contains(9)
        assert prof._stack == []
        assert prof.scopes["sig.insert"].count >= 1

    def test_raising_callback_keeps_dispatch_scope_balanced(self):
        from repro.engine.events import Simulator

        sim = Simulator()
        prof = HostProfiler()
        prof.start()
        sim.profiler = prof
        fired = []
        sim.schedule(0, lambda: fired.append("ok"))
        sim.schedule(0, lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        sim.schedule(1, lambda: fired.append("later"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        assert prof._stack == []
        sim.run()  # the queue survives and the scope re-opens cleanly
        assert fired == ["ok", "later"]
        assert prof._stack == []
        assert prof.scopes[ENGINE_DISPATCH].count == 3
