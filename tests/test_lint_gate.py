"""The ``python -m repro lint`` gate: exit codes, baseline, CLI plumbing."""

import json
import shutil
import subprocess
import sys

import pytest

from repro.__main__ import main as repro_main
from repro.analysis.cli import main as lint_main


class TestGate:
    def test_repo_lints_clean_with_baseline(self):
        """The headline acceptance criterion: exit 0 on the repo."""
        assert lint_main([]) == 0

    def test_known_findings_exist_without_baseline(self, capsys):
        """The baseline is not vacuous: suppressing nothing fails the gate.

        The handler/group/determinism passes are clean at source level
        (SB304 moved to inline pragmas, SB004 resolved by the piggyback
        model), so the live baseline entries are the SB5xx race findings.
        """
        assert lint_main(["--no-baseline", "--races"]) == 1
        out = capsys.readouterr().out
        assert "SB5" in out and "why:" in out

    def test_json_format(self, capsys):
        lint_main(["--format", "json", "--no-baseline"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["suppressed"] == 0
        assert all({"code", "path", "anchor", "message", "why"}
                   <= set(f) for f in payload["findings"])

    def test_rules_filter(self, capsys):
        rc = lint_main(["--no-baseline", "--rules", "SB2"])
        # the group table is clean: filtering to SB2xx leaves nothing
        assert rc == 0

    def test_write_and_reuse_baseline(self, tmp_path, capsys):
        path = tmp_path / "baseline.txt"
        args = ["--races", "--baseline", str(path)]
        assert lint_main(["--write-baseline", *args]) == 0
        assert path.exists() and "SB5" in path.read_text()
        assert lint_main(args) == 0

    def test_stale_baseline_entry_warns_but_passes(self, tmp_path, capsys):
        path = tmp_path / "baseline.txt"
        lint_main(["--write-baseline", "--baseline", str(path)])
        with path.open("a") as fh:
            fh.write("SB999 src/repro/nonexistent.py::gone\n")
        assert lint_main(["--baseline", str(path)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_explain_lists_rules(self, capsys):
        assert lint_main(["--explain"]) == 0
        out = capsys.readouterr().out
        for code in ("SB001", "SB201", "SB301", "SB304"):
            assert code in out


class TestCliWiring:
    def test_main_module_delegates(self, capsys):
        assert repro_main(["lint", "--explain"]) == 0
        assert "SB001" in capsys.readouterr().out

    def test_lint_in_help(self, capsys):
        with pytest.raises(SystemExit):
            repro_main(["--help"])
        assert "lint" in capsys.readouterr().out


class TestExternalLinters:
    """ruff/mypy ride the same CI job; exercised only where installed."""

    @pytest.mark.skipif(shutil.which("ruff") is None,
                        reason="ruff not installed in this environment")
    def test_ruff_clean_on_analysis_package(self):
        proc = subprocess.run(
            ["ruff", "check", "src/repro/analysis"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.skipif(shutil.which("mypy") is None,
                        reason="mypy not installed in this environment")
    def test_mypy_catches_falsy_bool_regression(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "from typing import Sequence\n"
            "def is_last(order: Sequence[int], d: int) -> bool:\n"
            "    return order and order[-1] == d\n")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--strict", str(bad)],
            capture_output=True, text=True)
        assert proc.returncode != 0, "mypy --strict should reject this"
