"""Tests for the process-pool fan-out layer (repro.harness.parallel).

The contract under test: a ``--jobs N`` run must be indistinguishable from
the serial run except for wall-clock — same results, same merge order,
same resumable-cache contents.
"""

import json
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness import sweep
from repro.harness.parallel import resolve_jobs, run_ordered


# Workers must be module top-level so the pool can pickle them by reference.
def _square(x):
    return x * x


def _sleep_inverse(payload):
    """Later submissions finish first — the reordering stress case."""
    index, delay = payload
    time.sleep(delay)
    return index


def _boom(x):
    if x == 3:
        raise ValueError("payload 3 exploded")
    return x


class TestResolveJobs:
    def test_none_and_zero_mean_all_cores(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_floor_is_one(self):
        assert resolve_jobs(-4) == 1


class TestRunOrdered:
    def test_serial_results_and_hook_order(self):
        seen = []
        results = run_ordered(_square, [1, 2, 3], jobs=1,
                              on_result=lambda i, p, r: seen.append((i, p, r)))
        assert results == [1, 4, 9]
        assert seen == [(0, 1, 1), (1, 2, 4), (2, 3, 9)]

    def test_parallel_results_match_serial(self):
        serial = run_ordered(_square, list(range(8)), jobs=1)
        parallel = run_ordered(_square, list(range(8)), jobs=2)
        assert parallel == serial

    def test_merge_order_is_submission_order_even_when_late_tasks_finish_first(self):
        # First task sleeps longest; with 3 workers the others complete
        # earlier, yet the hook must still fire 0, 1, 2.
        payloads = [(0, 0.15), (1, 0.0), (2, 0.0)]
        order = []
        run_ordered(_sleep_inverse, payloads, jobs=3,
                    on_result=lambda i, p, r: order.append(r))
        assert order == [0, 1, 2]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="payload 3"):
            run_ordered(_boom, [1, 2, 3, 4], jobs=2)
        with pytest.raises(ValueError, match="payload 3"):
            run_ordered(_boom, [1, 2, 3, 4], jobs=1)

    def test_single_payload_never_builds_a_pool(self):
        # jobs > 1 with one payload takes the inline path: a lambda (not
        # picklable) still works.
        assert run_ordered(lambda x: x + 1, [41], jobs=8) == [42]

    @settings(max_examples=5, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=2, max_size=12),
           st.integers(2, 4))
    def test_property_serial_and_parallel_agree(self, payloads, jobs):
        serial_hook, parallel_hook = [], []
        serial = run_ordered(
            _square, payloads, jobs=1,
            on_result=lambda i, p, r: serial_hook.append((i, p, r)))
        parallel = run_ordered(
            _square, payloads, jobs=jobs,
            on_result=lambda i, p, r: parallel_hook.append((i, p, r)))
        assert parallel == serial
        assert parallel_hook == serial_hook


def _strip_wall(records):
    wall_fields = ("wall_seconds", "wall_seconds_raw")
    return {k: {f: v for f, v in rec.items() if f not in wall_fields}
            for k, rec in records.items()}


class TestSweepRoundTrip:
    def test_serial_and_parallel_sweeps_produce_identical_json(self, tmp_path):
        """The headline tentpole property: ``--jobs N`` changes nothing but
        wall-clock.  Both cache files must hold the same records in the
        same insertion order."""
        serial_cache = tmp_path / "serial.json"
        parallel_cache = tmp_path / "parallel.json"
        serial = sweep.collect(["LU"], [4], 1, cache_path=serial_cache,
                               log=lambda *a: None)
        parallel = sweep.collect(["LU"], [4], 1, cache_path=parallel_cache,
                                 log=lambda *a: None, jobs=2)
        assert _strip_wall(serial) == _strip_wall(parallel)
        on_disk_serial = json.loads(serial_cache.read_text())
        on_disk_parallel = json.loads(parallel_cache.read_text())
        # dict order round-trips through JSON: insertion order must match too
        assert list(on_disk_serial) == list(on_disk_parallel)
        assert _strip_wall(on_disk_serial) == _strip_wall(on_disk_parallel)

    def test_parallel_sweep_resumes_from_serial_cache(self, tmp_path):
        cache = tmp_path / "cache.json"
        sweep.collect(["LU"], [4], 1, cache_path=cache, log=lambda *a: None)
        logs = []
        sweep.collect(["LU"], [4], 1, cache_path=cache, log=logs.append,
                      jobs=2)
        assert any("5 cached, 0 to run" in line for line in logs)

    def test_parallel_sweep_fills_partial_cache_in_canonical_order(self, tmp_path):
        serial_cache = tmp_path / "full.json"
        full = sweep.collect(["LU"], [4], 1, cache_path=serial_cache,
                             log=lambda *a: None)
        # drop two records from the middle; the parallel resume must slot
        # them back so the merged dict matches the full serial sweep
        partial = dict(full)
        keys = list(partial)
        for k in (keys[1], keys[3]):
            del partial[k]
        partial_cache = tmp_path / "partial.json"
        partial_cache.write_text(json.dumps(partial))
        resumed = sweep.collect(["LU"], [4], 1, cache_path=partial_cache,
                                log=lambda *a: None, jobs=2)
        assert _strip_wall(resumed) == _strip_wall(full)
