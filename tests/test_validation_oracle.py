"""Runs the invalidation-completeness oracle over conflict-heavy machines."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine
from repro.validation import attach_oracle
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import get_profile


def run_with_oracle(app: str, seed: int, n_cores: int = 4, chunks: int = 2):
    config = SystemConfig(n_cores=n_cores, seed=seed,
                          protocol=ProtocolKind.SCALABLEBULK)
    workload = SyntheticWorkload(get_profile(app), config,
                                 active_cores=n_cores,
                                 chunks_per_partition=chunks)
    machine = Machine(config, workload=workload)
    oracle = attach_oracle(machine)
    machine.run()
    return machine, oracle


class TestOracleOnWorkloads:
    @pytest.mark.parametrize("app", ["Radix", "Barnes", "Canneal", "LU"])
    def test_invalidation_completeness(self, app):
        machine, oracle = run_with_oracle(app, seed=31)
        assert oracle.commits_checked > 0
        oracle.assert_clean()

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_seeds_clean(self, seed):
        machine, oracle = run_with_oracle("Barnes", seed=seed, chunks=1)
        oracle.assert_clean()


class TestOracleOnHandmadeConflicts:
    def test_ww_storm_is_clean(self):
        config = SystemConfig(n_cores=4, seed=2,
                              protocol=ProtocolKind.SCALABLEBULK)
        line = 32 * 128 * 500
        mk = lambda: [ChunkSpec(250, [ChunkAccess(1, line, True)])
                      for _ in range(4)]
        remaining = {c: mk() for c in range(4)}

        def next_spec(core_id):
            lst = remaining.get(core_id)
            return lst.pop(0) if lst else None

        machine = Machine(config, next_spec=next_spec)
        oracle = attach_oracle(machine)
        machine.run()
        assert oracle.commits_checked == 16
        oracle.assert_clean()

    def test_oracle_detects_injected_hole(self):
        """Sanity: the oracle is not vacuous — a manufactured hole trips it."""
        config = SystemConfig(n_cores=4, seed=2,
                              protocol=ProtocolKind.SCALABLEBULK)
        line = 32 * 128 * 600
        mk = lambda: [ChunkSpec(250, [ChunkAccess(1, line, True),
                                      ChunkAccess(1, line + 32, False)])
                      for _ in range(3)]
        remaining = {0: mk(), 1: mk()}

        def next_spec(core_id):
            lst = remaining.get(core_id)
            return lst.pop(0) if lst else None

        machine = Machine(config, next_spec=next_spec)
        oracle = attach_oracle(machine)
        # sabotage: make every directory forget its sharers at expansion
        for d in machine.directories:
            d.sharers_to_invalidate = lambda lines, writer: set()
        machine.run(max_events=5_000_000)
        assert oracle.violations, "oracle failed to notice missing sharers"


class TestOracleDirectly:
    """Direct unit tests for InvalidationOracle (satellite: previously the
    oracle was only exercised through full workload runs)."""

    @staticmethod
    def _stub_machine(chunks_by_core):
        """A machine double: just directories/cores/sim.now."""
        from types import SimpleNamespace

        cores = [SimpleNamespace(core_id=cid,
                                 active_chunks=lambda lst=lst: list(lst))
                 for cid, lst in chunks_by_core.items()]
        return SimpleNamespace(directories=[], cores=cores,
                               sim=SimpleNamespace(now=123))

    @staticmethod
    def _stub_entry(proc, write_lines, inval_acc, local_sharers=()):
        from types import SimpleNamespace
        return SimpleNamespace(cid=(("t", proc, 0), 0), proc=proc,
                               write_lines=set(write_lines),
                               inval_acc=set(inval_acc),
                               local_sharers=set(local_sharers))

    @staticmethod
    def _stub_chunk(tag, read_lines, write_lines):
        from types import SimpleNamespace
        return SimpleNamespace(tag=tag, read_lines=set(read_lines),
                               write_lines=set(write_lines))

    def test_complete_inval_vector_is_clean(self):
        from repro.validation.oracle import InvalidationOracle

        victim = self._stub_chunk("c1", {100}, set())
        machine = self._stub_machine({0: [], 1: [victim]})
        oracle = InvalidationOracle(machine)
        oracle._check(self._stub_entry(proc=0, write_lines={100},
                                       inval_acc={1}))
        assert oracle.violations == []
        oracle.assert_clean()

    def test_dropped_invalidation_is_a_violation(self):
        from repro.validation.oracle import InvalidationOracle

        victim = self._stub_chunk("c1", {100}, set())
        machine = self._stub_machine({0: [], 1: [victim]})
        oracle = InvalidationOracle(machine)
        # the committing entry overlaps core 1's read set but the
        # accumulated inval_vec forgot core 1 entirely
        oracle._check(self._stub_entry(proc=0, write_lines={100},
                                       inval_acc=set()))
        assert len(oracle.violations) == 1
        v = oracle.violations[0]
        assert v.missed_core == 1 and v.writer == 0
        assert v.conflict_lines == {100}
        assert "missed conflicting chunk" in str(v)
        with pytest.raises(AssertionError, match="invalidation-completeness"):
            oracle.assert_clean()

    def test_local_sharers_count_as_covered(self):
        from repro.validation.oracle import InvalidationOracle

        victim = self._stub_chunk("c1", set(), {100})
        machine = self._stub_machine({0: [], 2: [victim]})
        oracle = InvalidationOracle(machine)
        oracle._check(self._stub_entry(proc=0, write_lines={100},
                                       inval_acc=set(), local_sharers={2}))
        assert oracle.violations == []

    def test_broken_directory_dropping_invalidations_caught_live(self):
        """End to end: a directory that clears its invalidation vector at
        confirm time loses serializability and the oracle sees it."""
        config = SystemConfig(n_cores=4, seed=5,
                              protocol=ProtocolKind.SCALABLEBULK)
        line = 32 * 128 * 700
        mk = lambda: [ChunkSpec(250, [ChunkAccess(1, line, True),
                                      ChunkAccess(1, line + 32, False)])
                      for _ in range(3)]
        remaining = {0: mk(), 1: mk()}

        def next_spec(core_id):
            lst = remaining.get(core_id)
            return lst.pop(0) if lst else None

        machine = Machine(config, next_spec=next_spec)
        oracle = attach_oracle(machine)
        # sabotage AFTER the oracle attaches: drop every pending
        # invalidation just before the (wrapped) confirmation runs, so the
        # oracle audits exactly what the broken directory acts on
        for d in machine.directories:
            wrapped = d._confirm_group

            def dropping(entry, _wrapped=wrapped):
                entry.inval_acc.clear()
                entry.local_sharers.clear()
                _wrapped(entry)

            d._confirm_group = dropping
        machine.run(max_events=5_000_000)
        assert oracle.violations, "dropped invalidations went unnoticed"
