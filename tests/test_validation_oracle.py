"""Runs the invalidation-completeness oracle over conflict-heavy machines."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine
from repro.validation import attach_oracle
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import get_profile


def run_with_oracle(app: str, seed: int, n_cores: int = 4, chunks: int = 2):
    config = SystemConfig(n_cores=n_cores, seed=seed,
                          protocol=ProtocolKind.SCALABLEBULK)
    workload = SyntheticWorkload(get_profile(app), config,
                                 active_cores=n_cores,
                                 chunks_per_partition=chunks)
    machine = Machine(config, workload=workload)
    oracle = attach_oracle(machine)
    machine.run()
    return machine, oracle


class TestOracleOnWorkloads:
    @pytest.mark.parametrize("app", ["Radix", "Barnes", "Canneal", "LU"])
    def test_invalidation_completeness(self, app):
        machine, oracle = run_with_oracle(app, seed=31)
        assert oracle.commits_checked > 0
        oracle.assert_clean()

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_seeds_clean(self, seed):
        machine, oracle = run_with_oracle("Barnes", seed=seed, chunks=1)
        oracle.assert_clean()


class TestOracleOnHandmadeConflicts:
    def test_ww_storm_is_clean(self):
        config = SystemConfig(n_cores=4, seed=2,
                              protocol=ProtocolKind.SCALABLEBULK)
        line = 32 * 128 * 500
        mk = lambda: [ChunkSpec(250, [ChunkAccess(1, line, True)])
                      for _ in range(4)]
        remaining = {c: mk() for c in range(4)}

        def next_spec(core_id):
            lst = remaining.get(core_id)
            return lst.pop(0) if lst else None

        machine = Machine(config, next_spec=next_spec)
        oracle = attach_oracle(machine)
        machine.run()
        assert oracle.commits_checked == 16
        oracle.assert_clean()

    def test_oracle_detects_injected_hole(self):
        """Sanity: the oracle is not vacuous — a manufactured hole trips it."""
        config = SystemConfig(n_cores=4, seed=2,
                              protocol=ProtocolKind.SCALABLEBULK)
        line = 32 * 128 * 600
        mk = lambda: [ChunkSpec(250, [ChunkAccess(1, line, True),
                                      ChunkAccess(1, line + 32, False)])
                      for _ in range(3)]
        remaining = {0: mk(), 1: mk()}

        def next_spec(core_id):
            lst = remaining.get(core_id)
            return lst.pop(0) if lst else None

        machine = Machine(config, next_spec=next_spec)
        oracle = attach_oracle(machine)
        # sabotage: make every directory forget its sharers at expansion
        for d in machine.directories:
            d.sharers_to_invalidate = lambda lines, writer: set()
        machine.run(max_events=5_000_000)
        assert oracle.violations, "oracle failed to notice missing sharers"
