"""Tests for the chunk-lifecycle tracer."""

import json
import warnings

import pytest

import repro.tracing

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine
from repro.tracing import attach_tracer


def traced_machine(specs_by_core, **kw):
    config = SystemConfig(n_cores=4, seed=3,
                          protocol=ProtocolKind.SCALABLEBULK, **kw)
    remaining = {c: list(s) for c, s in specs_by_core.items()}

    def next_spec(core_id):
        lst = remaining.get(core_id)
        return lst.pop(0) if lst else None

    machine = Machine(config, next_spec=next_spec)
    tracer = attach_tracer(machine)
    return machine, tracer


def simple_specs(n=2, base=32 * 128 * 50):
    return [ChunkSpec(150, [ChunkAccess(1, base + 32 * i, True)])
            for i in range(n)]


class TestLifecycleEvents:
    def test_full_lifecycle_recorded(self):
        machine, tracer = traced_machine({0: simple_specs(1)})
        machine.run()
        kinds = [e.kind for e in tracer.events if e.core == 0]
        for expected in ("exec_start", "exec_done", "commit_request",
                         "group_formed", "commit_success"):
            assert expected in kinds, expected

    def test_event_order_sane(self):
        machine, tracer = traced_machine({0: simple_specs(1)})
        machine.run()
        events = tracer.for_tag("P0.c0.g0")
        times = {e.kind: e.time for e in events}
        assert times["exec_start"] <= times["exec_done"]
        assert times["exec_done"] <= times["commit_request"]
        assert times["commit_request"] <= times["commit_success"]

    def test_squash_recorded_with_reason(self):
        line = 32 * 128 * 80
        specs = lambda: [ChunkSpec(200, [ChunkAccess(1, line, True)])
                         for _ in range(3)]
        machine, tracer = traced_machine({0: specs(), 1: specs()})
        machine.run()
        squashes = tracer.of_kind("squash")
        if squashes:  # conflicts are timing-dependent
            assert all(e.detail in ("conflict", "alias") for e in squashes)

    def test_commit_counts_match_stats(self):
        machine, tracer = traced_machine({0: simple_specs(3),
                                          1: simple_specs(2, base=32 * 128 * 90)})
        machine.run()
        committed = sum(c.stats.chunks_committed for c in machine.cores)
        assert len(tracer.of_kind("commit_success")) == committed


class TestQueriesAndExport:
    def test_timeline_render(self):
        machine, tracer = traced_machine({0: simple_specs(1)})
        machine.run()
        text = tracer.timeline("P0.c0.g0")
        assert "commit_success" in text

    def test_summary_counts(self):
        machine, tracer = traced_machine({0: simple_specs(2)})
        machine.run()
        summary = tracer.summary()
        assert summary["commit_success"] == 2

    def test_jsonl_dump(self, tmp_path):
        machine, tracer = traced_machine({0: simple_specs(1)})
        machine.run()
        path = tmp_path / "trace.jsonl"
        n = tracer.dump_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == n > 0
        parsed = json.loads(lines[0])
        assert {"time", "kind", "core", "tag"} <= set(parsed)

    def test_shim_warns_deprecated_exactly_once(self):
        repro.tracing._warned = False    # undo earlier attaches in-session
        with pytest.warns(DeprecationWarning, match="repro.obs"):
            traced_machine({0: simple_specs(1)})
        with warnings.catch_warnings():
            warnings.simplefilter("error")   # a second warning would raise
            machine, tracer = traced_machine({0: simple_specs(1)})
        machine.run()                        # shim still round-trips
        assert tracer.of_kind("commit_success")

    def test_tracing_does_not_change_results(self):
        specs = {0: simple_specs(3)}
        m1, _ = traced_machine({c: list(s) for c, s in specs.items()})
        m1.run()
        config = SystemConfig(n_cores=4, seed=3,
                              protocol=ProtocolKind.SCALABLEBULK)
        remaining = {c: list(s) for c, s in specs.items()}
        m2 = Machine(config, next_spec=lambda c: (
            remaining.get(c).pop(0) if remaining.get(c) else None))
        m2.run()
        assert m1.sim.now == m2.sim.now
