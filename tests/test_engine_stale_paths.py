"""Stale-message handling in the processor engines.

Protocol messages can outlive the commit attempt they belong to (squash,
retry under a new attempt id).  Every engine must discard them without
corrupting the live conversation.
"""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine
from repro.network.message import MessageType, core_node, dir_node


def quiet_machine(protocol, n_cores=4):
    config = SystemConfig(n_cores=n_cores, seed=3, protocol=protocol)
    return Machine(config, next_spec=lambda c: None)


class TestScalableBulkEngineStale:
    def test_stale_commit_success_discarded(self):
        m = quiet_machine(ProtocolKind.SCALABLEBULK)
        engine = m.protocol.engines[0]
        m.network.unicast(MessageType.COMMIT_SUCCESS, dir_node(1),
                          core_node(0), ctag=("ghost", 0))
        m.sim.run()
        assert engine._current_cid is None  # untouched

    def test_stale_commit_failure_discarded(self):
        m = quiet_machine(ProtocolKind.SCALABLEBULK)
        m.network.unicast(MessageType.COMMIT_FAILURE, dir_node(1),
                          core_node(0), ctag=("ghost", 0))
        m.sim.run()  # must not raise

    def test_unsolicited_bulk_inv_acked(self):
        m = quiet_machine(ProtocolKind.SCALABLEBULK)
        sig = m.sig_factory.from_lines([5])
        acks = []
        # watch the leader dir for the ack
        d = m.directories[2]
        orig = d.handle_protocol_message

        def spy(msg):
            if msg.mtype is MessageType.BULK_INV_ACK:
                acks.append(msg)
            else:
                orig(msg)

        d.handle_protocol_message = spy
        m.network.unicast(MessageType.BULK_INV, dir_node(2), core_node(0),
                          ctag=("w", 0), w_sig=sig, write_lines=(5,),
                          winner_order=(2,), leader=2)
        m.sim.run()
        assert len(acks) == 1


class TestSeqEngineStale:
    def test_stale_grant_released(self):
        m = quiet_machine(ProtocolKind.SEQ)
        d = m.directories[2]
        # occupy dir 2 on behalf of a dead attempt
        m.network.unicast(MessageType.SEQ_OCCUPY, core_node(0), dir_node(2),
                          ctag=("dead", 0), proc=0)
        m.sim.run()
        # engine 0 has no current commit: the grant must bounce a release
        assert d.occupant is None

    def test_stale_done_ignored(self):
        m = quiet_machine(ProtocolKind.SEQ)
        m.network.unicast(MessageType.SEQ_DONE, dir_node(2), core_node(0),
                          ctag=("dead", 0), dir_id=2)
        m.sim.run()  # no crash


class TestBulkSCEngineStale:
    def test_stale_ok_discarded(self):
        m = quiet_machine(ProtocolKind.BULKSC)
        m.network.unicast(MessageType.BSC_OK,
                          m.protocol.arbiter.node, core_node(0),
                          ctag=("dead", 0))
        m.sim.run()

    def test_stale_nack_discarded(self):
        m = quiet_machine(ProtocolKind.BULKSC)
        m.network.unicast(MessageType.BSC_NACK,
                          m.protocol.arbiter.node, core_node(0),
                          ctag=("dead", 0))
        m.sim.run()

    def test_dir_done_for_unknown_cid(self):
        m = quiet_machine(ProtocolKind.BULKSC)
        m.network.unicast(MessageType.BSC_DIR_DONE, dir_node(1),
                          m.protocol.arbiter.node, ctag=("dead", 0),
                          dir_id=1)
        m.sim.run()
        assert not m.protocol.arbiter.in_flight


class TestTccEngineStale:
    def test_stale_dir_done_ignored(self):
        m = quiet_machine(ProtocolKind.TCC)
        m.network.unicast(MessageType.TCC_DIR_DONE, dir_node(1),
                          core_node(0), ctag=("dead", 0), dir_id=1)
        m.sim.run()

    def test_stale_grant_resolves_tid_globally(self):
        """The critical TCC liveness property: a grant for a dead attempt
        still converts its TID into skips at every directory."""
        m = quiet_machine(ProtocolKind.TCC)
        m.network.unicast(MessageType.TID_GRANT, m.protocol.vendor.node,
                          core_node(0), ctag=("dead", 0), tid=1)
        m.sim.run()
        for d in m.directories:
            assert d.expected_tid == 2, d.dir_id
