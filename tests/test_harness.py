"""Tests for the runner, experiment functions and table renderers."""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.harness.experiments import (
    BreakdownBar, run_bottleneck_ratio, run_commit_latency,
    run_dirs_distribution, run_dirs_per_commit, run_execution_time_figure,
    run_queue_length, run_traffic,
)
from repro.harness.runner import RunResult, SimulationRunner, run_app
from repro.harness.tables import (
    normalize_traffic, render_breakdown, render_commit_latency,
    render_dirs_per_commit, render_distribution, render_ratio_table,
    render_traffic,
)

SMALL = dict(n_cores=4, chunks_per_partition=1)


class TestRunApp:
    def test_returns_result(self):
        r = run_app("LU", **SMALL)
        assert isinstance(r, RunResult)
        assert r.chunks_committed == 4
        assert r.total_cycles > 0

    def test_breakdown_sums_to_one(self):
        r = run_app("LU", **SMALL)
        assert sum(r.breakdown_fractions().values()) == pytest.approx(1.0)

    def test_speedup_and_normalized_inverse(self):
        r = run_app("LU", **SMALL)
        assert r.speedup(r.total_cycles * 2) == pytest.approx(2.0)
        assert r.normalized_time(r.total_cycles) == pytest.approx(1.0)

    def test_active_cores_subset(self):
        r = run_app("LU", n_cores=4, active_cores=1, chunks_per_partition=1)
        assert r.chunks_committed == 4  # all partitions on one core

    def test_deterministic_across_runs(self):
        a = run_app("FFT", **SMALL)
        b = run_app("FFT", **SMALL)
        assert a.total_cycles == b.total_cycles
        assert a.total_messages == b.total_messages

    def test_all_protocols_run(self):
        for proto in ProtocolKind:
            r = run_app("LU", protocol=proto, **SMALL)
            assert r.chunks_committed == 4, proto

    def test_keep_machine(self):
        r = run_app("LU", keep_machine=True, **SMALL)
        assert r.machine is not None
        assert r.machine.sim.quiescent()


class TestExperimentFunctions:
    def test_execution_time_figure(self):
        fig = run_execution_time_figure(
            ["LU"], core_counts=(4,), chunks_per_partition=1)
        bar = fig.bar("LU", ProtocolKind.SCALABLEBULK, 4)
        assert isinstance(bar, BreakdownBar)
        assert bar.speedup > 0
        total = bar.useful + bar.cache_miss + bar.commit + bar.squash
        assert total == pytest.approx(bar.normalized_time, rel=1e-6)

    def test_dirs_per_commit_rows(self):
        rows = run_dirs_per_commit(["Radix"], core_counts=(4,),
                                   chunks_per_partition=1)
        assert rows[0].mean_dirs >= rows[0].mean_write_dirs
        assert rows[0].mean_read_only_dirs >= 0

    def test_dirs_distribution_sums_to_100(self):
        dist = run_dirs_distribution(["LU"], n_cores=4,
                                     chunks_per_partition=1)
        assert sum(dist["LU"].values()) == pytest.approx(100.0)

    def test_commit_latency_samples(self):
        samples = run_commit_latency(
            ["LU"], n_cores=4, protocols=(ProtocolKind.SCALABLEBULK,),
            chunks_per_partition=1)
        assert len(samples[ProtocolKind.SCALABLEBULK]) == 4

    def test_bottleneck_and_queue(self):
        bn = run_bottleneck_ratio(["LU"], n_cores=4,
                                  protocols=(ProtocolKind.TCC,),
                                  chunks_per_partition=1)
        assert ProtocolKind.TCC in bn["LU"]
        q = run_queue_length(["LU"], n_cores=4,
                             protocols=(ProtocolKind.TCC,),
                             chunks_per_partition=1)
        assert q["LU"][ProtocolKind.TCC] >= 0

    def test_traffic_counts(self):
        data = run_traffic(["LU"], n_cores=4,
                           protocols=(ProtocolKind.TCC,
                                      ProtocolKind.SCALABLEBULK),
                           chunks_per_partition=1)
        tcc = data["LU"][ProtocolKind.TCC]
        assert sum(tcc.values()) > 0


class TestRenderers:
    def test_render_breakdown(self):
        fig = run_execution_time_figure(
            ["LU"], core_counts=(4,),
            protocols=(ProtocolKind.SCALABLEBULK,), chunks_per_partition=1)
        text = render_breakdown(fig, (ProtocolKind.SCALABLEBULK,), (4,))
        assert "LU" in text and "AVERAGE" in text

    def test_render_dirs(self):
        rows = run_dirs_per_commit(["LU"], core_counts=(4,),
                                   chunks_per_partition=1)
        assert "LU" in render_dirs_per_commit(rows)

    def test_render_distribution(self):
        text = render_distribution({"LU": {0: 10.0, 1: 90.0, "more": 0.0}},
                                   upper=1)
        assert "LU" in text

    def test_render_commit_latency(self):
        text = render_commit_latency({ProtocolKind.SCALABLEBULK: [10, 20]})
        assert "mean" in text

    def test_render_ratio_table(self):
        text = render_ratio_table(
            {"LU": {ProtocolKind.TCC: 2.5}}, "bottleneck")
        assert "AVERAGE" in text

    def test_normalize_traffic_to_tcc(self):
        data = {
            ProtocolKind.TCC: {"MemRd": 50, "SmallCMessage": 50,
                               "Other": 0},
            ProtocolKind.SCALABLEBULK: {"MemRd": 50, "SmallCMessage": 0,
                                        "Other": 0},
        }
        norm = normalize_traffic(data)
        assert sum(norm[ProtocolKind.TCC].values()) == pytest.approx(100.0)
        assert sum(norm[ProtocolKind.SCALABLEBULK].values()) == \
            pytest.approx(50.0)

    def test_normalize_folds_other_into_reads(self):
        data = {ProtocolKind.TCC: {"MemRd": 50, "Other": 50}}
        norm = normalize_traffic(data)
        assert norm[ProtocolKind.TCC]["MemRd"] == pytest.approx(100.0)

    def test_render_traffic(self):
        data = run_traffic(["LU"], n_cores=4,
                           protocols=(ProtocolKind.TCC,),
                           chunks_per_partition=1)
        assert "LU" in render_traffic(data)
