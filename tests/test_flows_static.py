"""SB6xx static pass: flow automata, spec parsing, rules, mutation teeth."""

import pytest

from repro.analysis.findings import repo_paths
from repro.analysis.flows import extract_flow_automaton, lint_flows, load_spec
from repro.analysis.flows.automaton import _scan_gaps, build_automaton
from repro.analysis.flows.mutations import FLOW_MUTATIONS, overrides_for
from repro.analysis.flows.rules import (_conformance, _dangling,
                                        _dispatch_gaps, _reply_paths)
from repro.analysis.flows.specs import ParsedSpec, SpecError, parse_spec
from repro.analysis.races.model import _extract_source
from repro.protocols.spec import ProtocolSpec

SB6_CODES = {"SB601", "SB602", "SB603", "SB604"}
FAMILIES = ("scalablebulk", "bulksc", "tcc", "seq", "substrate")


def keys(findings):
    return {f.key for f in findings}


# ----------------------------------------------------------------------
# Toy two-role protocol: the extraction contract in miniature
# ----------------------------------------------------------------------
TOY_PATH = "src/repro/toy.py"
TOY_TYPES = ("PING", "PONG")

TOY = '''
class ToyEngine:
    def send_ping(self):
        self.network.unicast(MessageType.PING, self.node, dir_node(0),
                             ctag=1)

    def handle_protocol_message(self, msg):
        mtype = msg.mtype
        if mtype is MessageType.PONG:
            self._on_pong(msg)
        else:
            raise NotImplementedError(mtype)

    def _on_pong(self, msg):
        self.done = True


class ToyDirectory:
    def handle_protocol_message(self, msg):
        mtype = msg.mtype
        if mtype is MessageType.PING:
            self._on_ping(msg)

    def _on_ping(self, msg):
        self.network.unicast(MessageType.PONG, self.node, msg.src,
                             ctag=msg.ctag)
'''


def toy_automaton(source=TOY, types=TOY_TYPES):
    classes = _extract_source(TOY_PATH, source)
    gaps = _scan_gaps(TOY_PATH, source)
    return build_automaton("toy", types, classes, gaps)


def toy_spec(**overrides):
    fields = dict(
        family="toy",
        edges=(("core", "PING", "dir"), ("dir", "PONG", "core")),
        replies={"PING": ("PONG",)},
    )
    fields.update(overrides)
    return ParsedSpec(spec=ProtocolSpec(**fields), path=TOY_PATH, line=1)


class TestToyExtraction:
    def test_roles_and_handlers(self):
        auto = toy_automaton()
        assert "PONG" in auto.handled["core"]
        assert "PING" in auto.handled["dir"]
        assert auto.handled["dir"]["PING"].qualname == "ToyDirectory._on_ping"

    def test_root_send_and_reply_resolution(self):
        """send_ping is a root send (no trigger); the PONG reply to
        ``msg.src`` resolves to 'core' because only the core sends PING."""
        auto = toy_automaton()
        assert auto.edges() == {("core", "PING", "dir"),
                                ("dir", "PONG", "core")}
        assert not auto.unresolved()
        pong = next(s for s in auto.sends if s.mtype == "PONG")
        assert pong.triggers == ("PING",)

    def test_reactions_keyed_by_receiver_and_trigger(self):
        auto = toy_automaton()
        assert [s.mtype for s in auto.reactions[("dir", "PING")]] == ["PONG"]

    def test_dispatch_gap_found_only_where_else_is_missing(self):
        auto = toy_automaton()
        assert [g.qualname for g in auto.gaps] == \
            ["ToyDirectory.handle_protocol_message"]


class TestToyRules:
    def test_clean_toy_is_silent_except_the_gap(self):
        auto = toy_automaton()
        parsed = toy_spec()
        assert _dangling(auto, set()) == []
        assert _conformance(auto, parsed, set()) == []
        assert _reply_paths(auto, parsed) == []
        assert {f.code for f in _dispatch_gaps(auto)} == {"SB604"}

    def test_sb601_never_handled(self):
        source = TOY.replace("        if mtype is MessageType.PONG:\n"
                             "            self._on_pong(msg)\n"
                             "        else:\n", "        if True:\n")
        auto = toy_automaton(source)
        assert f"SB601 {TOY_PATH}::toy/PONG:never-handled" in \
            keys(_dangling(auto, set()))

    def test_sb601_never_sent(self):
        source = TOY.replace(
            "        self.network.unicast(MessageType.PING, self.node, "
            "dir_node(0),\n                             ctag=1)\n",
            "        pass\n")
        auto = toy_automaton(source)
        got = keys(_dangling(auto, set()))
        assert f"SB601 {TOY_PATH}::toy/PING:never-sent" in got

    def test_sb601_exempt_types_are_skipped(self):
        source = TOY.replace("        if mtype is MessageType.PONG:\n"
                             "            self._on_pong(msg)\n"
                             "        else:\n", "        if True:\n")
        auto = toy_automaton(source)
        assert _dangling(auto, exempt={"PONG", "PING"}) == []

    def test_sb602_undeclared_and_unimplemented(self):
        auto = toy_automaton()
        # spec claims PONG stays directory-internal: the real dir->core
        # reply is undeclared and the declared dir->dir edge unimplemented
        parsed = toy_spec(edges=(("core", "PING", "dir"),
                                 ("dir", "PONG", "dir")))
        got = keys(_conformance(auto, parsed, set()))
        assert f"SB602 {TOY_PATH}::toy/dir-PONG->core:undeclared" in got
        assert f"SB602 {TOY_PATH}::toy/dir-PONG->dir:unimplemented" in got

    def test_sb603_when_the_reply_disappears(self):
        source = TOY.replace(
            "        self.network.unicast(MessageType.PONG, self.node, "
            "msg.src,\n                             ctag=msg.ctag)\n",
            "        self.seen = True\n")
        auto = toy_automaton(source)
        parsed = toy_spec(edges=(("core", "PING", "dir"),
                                 ("dir", "PONG", "core")))
        got = keys(_reply_paths(auto, parsed))
        assert got == {f"SB603 {TOY_PATH}::toy/PING:no-reply-path"}

    def test_retry_edge_counts_as_a_reply(self):
        """A declared retry type reaching the requester keeps the
        conversation live even when the primary reply is missing."""
        source = TOY.replace(
            "MessageType.PONG, self.node, msg.src",
            "MessageType.NACK, self.node, msg.src")
        auto = toy_automaton(source, types=("PING", "PONG", "NACK"))
        parsed = toy_spec(
            edges=(("core", "PING", "dir"), ("dir", "PONG", "core"),
                   ("dir", "NACK", "core")),
            retries=("NACK",))
        assert _reply_paths(auto, parsed) == []


class TestSpecParsing:
    def test_every_family_declares_a_valid_spec(self):
        pkg_dir, _ = repo_paths()
        for family in FAMILIES:
            parsed = load_spec(family, pkg_dir)
            assert parsed is not None, family
            assert parsed.spec.family == family
            assert parsed.spec.edges

    def test_parsed_spec_matches_the_imported_object(self):
        from repro.core import directory_engine
        pkg_dir, _ = repo_paths()
        parsed = load_spec("scalablebulk", pkg_dir)
        assert parsed.spec == directory_engine.PROTOCOL_SPEC

    def test_missing_spec_returns_none(self):
        assert parse_spec(TOY_PATH, "x = 1\n") is None

    def test_non_literal_field_raises_spec_error(self):
        src = "PROTOCOL_SPEC = ProtocolSpec(family=NAME, edges=())\n"
        with pytest.raises(SpecError):
            parse_spec(TOY_PATH, src)

    def test_invalid_role_raises_spec_error(self):
        src = ("PROTOCOL_SPEC = ProtocolSpec(\n"
               "    family='toy', edges=(('core', 'PING', 'moon'),))\n")
        with pytest.raises(SpecError):
            parse_spec(TOY_PATH, src)

    def test_reply_type_must_appear_on_an_edge(self):
        src = ("PROTOCOL_SPEC = ProtocolSpec(\n"
               "    family='toy', edges=(('core', 'PING', 'dir'),),\n"
               "    replies={'PING': ('PONG',)})\n")
        with pytest.raises(SpecError):
            parse_spec(TOY_PATH, src)


class TestNominalTree:
    def test_every_family_automaton_fully_resolved(self):
        for family in FAMILIES:
            auto = extract_flow_automaton(family)
            assert auto.types, family
            assert auto.sends, family
            assert not auto.unresolved(), family
            assert not auto.gaps, family

    def test_nominal_tree_is_flow_clean(self):
        assert lint_flows() == []

    def test_findings_are_deterministic(self):
        first = [f.key for f in lint_flows()]
        second = [f.key for f in lint_flows()]
        assert first == second

    def test_missing_spec_is_reported(self):
        pkg_dir, _ = repo_paths()
        rel = "baselines/seq.py"
        source = (pkg_dir / rel).read_text().replace(
            "PROTOCOL_SPEC = ProtocolSpec", "_NOT_THE_SPEC = ProtocolSpec")
        got = keys(lint_flows(source_overrides={rel: source}))
        assert "SB602 src/repro/baselines/seq.py::seq:missing-spec" in got

    def test_unusable_spec_is_reported(self):
        pkg_dir, _ = repo_paths()
        rel = "baselines/seq.py"
        source = (pkg_dir / rel).read_text().replace(
            'family="seq"', "family=NAME")
        got = keys(lint_flows(source_overrides={rel: source}))
        assert "SB602 src/repro/baselines/seq.py::seq:invalid-spec" in got


class TestMutationTeeth:
    """Each seeded conversation bug must add exactly its expected key."""

    def test_mutations_cover_every_rule(self):
        expected = {m.expected_key.split(" ", 1)[0]
                    for m in FLOW_MUTATIONS.values()}
        assert expected == SB6_CODES

    @pytest.mark.parametrize("name", sorted(FLOW_MUTATIONS))
    def test_mutation_adds_its_expected_key(self, name):
        nominal = keys(lint_flows())
        overrides, expected_key = overrides_for(name)
        mutated = keys(lint_flows(source_overrides=overrides))
        assert expected_key not in nominal
        assert expected_key in mutated
        assert nominal <= mutated

    @pytest.mark.parametrize("name", sorted(FLOW_MUTATIONS))
    def test_mutation_transforms_fail_loudly_when_stale(self, name):
        with pytest.raises(ValueError):
            FLOW_MUTATIONS[name].transform("def unrelated():\n    pass\n")
