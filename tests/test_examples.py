"""Smoke tests: every example script runs end-to-end on a tiny machine."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart_runs():
    out = run_example("quickstart.py", "LU", "4")
    assert "Execution-time breakdown" in out
    assert "Useful" in out


def test_protocol_comparison_runs():
    out = run_example("protocol_comparison.py", "LU", "4")
    for proto in ("ScalableBulk", "TCC", "SEQ", "BulkSC"):
        assert proto in out


def test_signature_playground_runs():
    out = run_example("signature_playground.py")
    assert "no-false-negative check passed" in out


def test_oci_ablation_runs():
    out = run_example("oci_ablation.py", "LU", "4")
    assert "OCI" in out


def test_custom_trace_runs():
    out = run_example("custom_trace.py")
    assert "chunks committed" in out


def test_debug_timeline_runs():
    out = run_example("debug_timeline.py")
    assert "timeline for" in out
    assert "commit_success" in out


@pytest.mark.slow
def test_radix_commit_storm_runs():
    out = run_example("radix_commit_storm.py")
    assert "directories per commit" in out


@pytest.mark.slow
def test_paper_figures_runs():
    out = run_example("paper_figures.py", "4")
    assert "Figure 7" in out and "Figure 13" in out
