"""Behavioural tests for the BulkSC baseline (central arbiter)."""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine
from repro.network.message import MessageType
from protocol_bench import ProtocolBench


def build(specs_by_core, n_cores=4, **overrides):
    config = SystemConfig(n_cores=n_cores, seed=3,
                          protocol=ProtocolKind.BULKSC, **overrides)
    remaining = {c: list(s) for c, s in specs_by_core.items()}

    def next_spec(core_id):
        lst = remaining.get(core_id)
        return lst.pop(0) if lst else None

    return Machine(config, next_spec=next_spec)


def disjoint_specs(core, n=3):
    base = 32 * (7000 + 300 * core)
    return [ChunkSpec(200, [ChunkAccess(1, base + 32 * i, True)])
            for i in range(n)]


def conflicting_specs(n=3, line=32 * 9000):
    return [ChunkSpec(200, [ChunkAccess(1, line, True)]) for _ in range(n)]


class TestArbiterFlow:
    def test_disjoint_chunks_commit(self):
        m = build({c: disjoint_specs(c) for c in range(4)})
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 12
        assert m.protocol.arbiter.requests >= 12

    def test_conflicting_chunks_nack_and_retry(self):
        m = build({0: conflicting_specs(), 1: conflicting_specs()})
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 6
        # overlapping W signatures must have produced at least one NACK
        # or a squash (depending on the interleaving)
        assert (m.protocol.arbiter.nacks
                + sum(c.stats.squashes_conflict for c in m.cores)) >= 1

    def test_arbiter_in_flight_drains(self):
        m = build({c: disjoint_specs(c) for c in range(4)})
        m.run()
        assert not m.protocol.arbiter.in_flight

    def test_requests_serialize_at_arbiter(self):
        """Arbiter decisions are spaced by at least the base service time."""
        m = build({c: disjoint_specs(c, n=2) for c in range(4)})
        decided = []
        orig = m.protocol.arbiter._decide

        def spy(msg):
            decided.append(m.sim.now)
            orig(msg)

        m.protocol.arbiter._decide = spy
        m.run()
        gaps = [b - a for a, b in zip(decided, decided[1:])]
        base = m.config.arbiter_base_service_cycles
        assert all(g >= base for g in gaps if g > 0) and len(decided) >= 8

    def test_commit_latency_counts_request_to_ok(self):
        m = build({0: disjoint_specs(0, n=1)})
        m.run()
        rec = m.protocol.stats.commits[0]
        # round trip to the centre + service; must be positive and modest
        assert 0 < rec.latency < 500


class TestBulkSCDirectory:
    def test_w_to_dir_updates_state(self):
        bench = ProtocolBench(n_cores=9, protocol=ProtocolKind.BULKSC)
        line = bench.line_homed_at(2)
        bench.add_sharer(line, proc=5)
        sig = bench.sig_factory.from_lines([line])
        from repro.network.message import core_node, dir_node
        bench.network.unicast(
            MessageType.BSC_W_TO_DIR, bench.protocol.arbiter.node,
            dir_node(2), ctag=("x", 0), proc=0, w_sig=sig,
            write_lines=frozenset([line]))
        bench.run()
        info = bench.directories[2].lines[line]
        assert info.owner == 0 and info.sharers == {0}
        invs = [m for m in bench.core_log[5]
                if m.mtype is MessageType.BULK_INV]
        assert len(invs) == 1

    def test_read_blocked_while_applying(self):
        bench = ProtocolBench(n_cores=9, protocol=ProtocolKind.BULKSC)
        line = bench.line_homed_at(2)
        bench.add_sharer(line, proc=5)
        sig = bench.sig_factory.from_lines([line])
        from repro.network.message import dir_node
        bench.network.unicast(
            MessageType.BSC_W_TO_DIR, bench.protocol.arbiter.node,
            dir_node(2), ctag=("x", 0), proc=0, w_sig=sig,
            write_lines=frozenset([line]))
        # step until the sharer has seen the invalidation: the directory is
        # mid-apply at that moment and must block the line
        while not any(m.mtype is MessageType.BULK_INV
                      for m in bench.core_log[5]):
            assert bench.sim.step()
        assert bench.directories[2].read_blocked(line)
        bench.run()
        assert not bench.directories[2].read_blocked(line)
