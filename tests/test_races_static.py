"""SB5xx static pass: state-access model, concurrency graph, rules, teeth."""

from repro.analysis import Baseline
from repro.analysis.findings import repo_paths
from repro.analysis.races import extract_state_model, lint_races
from repro.analysis.races.concurrency import build_concurrency_model
from repro.analysis.races.mutations import SOURCE_MUTATIONS, overrides_for

SB5_CODES = {"SB501", "SB502", "SB503", "SB504"}


def keys(findings):
    return {f.key for f in findings}


class TestStateModel:
    def test_scalablebulk_handlers_extracted(self):
        model = extract_state_model("scalablebulk")
        names = {c.name for c in model.handler_classes()}
        assert "ScalableBulkDirectory" in names
        assert "ScalableBulkEngine" in names

    def test_handler_footprints_are_transitive(self):
        """_on_g reaches _fail_group through _maybe_advance: the closed
        footprint must include the failure-path writes."""
        model = extract_state_model("scalablebulk")
        sbdir = next(c for c in model.classes
                     if c.name == "ScalableBulkDirectory")
        on_g = next(h for h in sbdir.handlers.values() if h.method == "_on_g")
        assert "failed_cids" in on_g.writes
        assert "cst" in on_g.writes

    def test_counters_are_detected_and_separable(self):
        """`self.x += 1` attrs commute; the rules and the sanitizer exempt
        them by subtracting ``counters`` from ``attrs``."""
        model = extract_state_model("scalablebulk")
        sbdir = next(c for c in model.classes
                     if c.name == "ScalableBulkDirectory")
        assert sbdir.counters, "expected commutative counters"
        assert "failed_cids" not in sbdir.counters
        assert sbdir.attrs - sbdir.counters

    def test_releasable_attrs_detected(self):
        model = extract_state_model("scalablebulk")
        sbdir = next(c for c in model.classes
                     if c.name == "ScalableBulkDirectory")
        assert "failed_cids" in sbdir.releasable
        assert "reserved_for" in sbdir.releasable

    def test_dispatch_table_resolved(self):
        model = extract_state_model("scalablebulk")
        sbdir = next(c for c in model.classes
                     if c.name == "ScalableBulkDirectory")
        assert sbdir.dispatch, "dispatch table should be non-empty"
        assert all(m in sbdir.methods for m in sbdir.dispatch.values())


class TestConcurrencyModel:
    def test_self_and_other_directory_instances_differ(self):
        """A directory's own commit_request and a predecessor's G are
        distinct causal sources; the model must not collapse them."""
        model = extract_state_model("scalablebulk")
        cm = build_concurrency_model(model)
        assert cm.may_interleave("ScalableBulkDirectory",
                                 "_on_commit_request", "_on_g")

    def test_directory_roles_split_into_instances(self):
        """Every reachable directory handler exists as both a local (L)
        and an other-instance (O) node in the causal graph."""
        model = extract_state_model("scalablebulk")
        cm = build_concurrency_model(model)
        local = {n[2] for n in cm.nodes
                 if n[0] == "L" and n[1] == "ScalableBulkDirectory"}
        other = {n[2] for n in cm.nodes
                 if n[0] == "O" and n[1] == "ScalableBulkDirectory"}
        assert local and other

    def test_reentrant_cycle_found_on_grab_ring(self):
        model = extract_state_model("scalablebulk")
        cm = build_concurrency_model(model)
        scc = cm.reentrant("ScalableBulkDirectory", "_on_bulk_inv_ack")
        assert scc is not None and len(scc) >= 2


class TestRules:
    def test_nominal_findings_are_deterministic(self):
        a = [f.key for f in lint_races()]
        b = [f.key for f in lint_races()]
        assert a == b
        assert a == sorted(a) or len(set(a)) == len(a)

    def test_nominal_findings_all_sb5xx_and_line_free_keys(self):
        findings = lint_races()
        assert findings, "expected nominal SB5xx findings"
        for f in findings:
            assert f.code in SB5_CODES
            # keys must survive unrelated line churn
            assert "::" in f.key and not f.key.rstrip().endswith(".py")

    def test_every_nominal_finding_is_baselined_and_justified(self):
        """Acceptance: zero unbaselined SB5xx, every entry justified."""
        _, repo_root = repo_paths()
        baseline = Baseline.load(repo_root / "lint-baseline.txt")
        fresh, suppressed, _ = baseline.split(lint_races())
        assert fresh == [], "\n".join(f.key for f in fresh)
        for f in suppressed:
            reason = baseline.justifications.get(f.key, "")
            assert reason and "TODO" not in reason, f.key

    def test_no_send_before_update_nominally(self):
        """SB502 is clean on the real tree (the seeded reorder adds one)."""
        assert not [f for f in lint_races() if f.code == "SB502"]


class TestSeededMutations:
    """Acceptance: >=2 seeded race bugs caught statically (we ship 3)."""

    def test_each_mutation_adds_exactly_its_expected_key(self):
        assert len(SOURCE_MUTATIONS) >= 2
        pkg_dir, _ = repo_paths()
        nominal = keys(lint_races())
        for name in SOURCE_MUTATIONS:
            overrides, expected = overrides_for(name, pkg_dir)
            mutated = keys(lint_races(source_overrides=overrides))
            assert expected in mutated, name
            assert expected not in nominal, name
            # the surgery must not suppress any nominal finding
            assert nominal <= mutated, name

    def test_mutation_transforms_fail_loudly_when_stale(self):
        """A transform that no longer matches the source must raise, not
        silently produce an unmutated tree."""
        for m in SOURCE_MUTATIONS.values():
            if m.name == "reservation-leak":
                continue  # str.replace variant has no sentinel
            try:
                m.transform("def nothing(): pass\n")
            except ValueError:
                continue
            raise AssertionError(f"{m.name} accepted unrelated source")
