"""Unit + property tests for the 2D torus and its routing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import torus_shape
from repro.network.topology import Torus2D


class TestShape:
    def test_64_is_8x8(self):
        assert torus_shape(64) == (8, 8)

    def test_32_is_4x8(self):
        assert torus_shape(32) == (4, 8)

    def test_prime_is_1xn(self):
        assert torus_shape(13) == (1, 13)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            torus_shape(0)


class TestCoordinates:
    def test_roundtrip(self):
        t = Torus2D(4, 8)
        for tile in range(32):
            r, c = t.coord(tile)
            assert t.tile(r, c) == tile

    def test_out_of_range(self):
        t = Torus2D(2, 2)
        with pytest.raises(ValueError):
            t.coord(4)

    def test_center_tile(self):
        t = Torus2D(8, 8)
        assert t.center_tile() == t.tile(4, 4)

    def test_wraparound_tile(self):
        t = Torus2D(4, 4)
        assert t.tile(-1, 0) == t.tile(3, 0)
        assert t.tile(0, 4) == t.tile(0, 0)


class TestDistance:
    def test_self_distance_zero(self):
        t = Torus2D(4, 4)
        assert t.hop_distance(5, 5) == 0

    def test_neighbors_distance_one(self):
        t = Torus2D(4, 4)
        for n in t.neighbors(5):
            assert t.hop_distance(5, n) == 1

    def test_wraparound_shortens(self):
        t = Torus2D(1, 8)
        # 0 -> 7 is one hop around the ring, not seven
        assert t.hop_distance(0, 7) == 1

    def test_symmetry(self):
        t = Torus2D(4, 8)
        for a in range(0, 32, 5):
            for b in range(0, 32, 7):
                assert t.hop_distance(a, b) == t.hop_distance(b, a)

    def test_max_distance_bounded(self):
        t = Torus2D(8, 8)
        for a in range(64):
            assert t.hop_distance(0, a) <= 8  # rows/2 + cols/2

    def test_average_distance_positive(self):
        assert Torus2D(4, 4).average_distance() > 0


class TestRouting:
    @given(st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=100, deadline=None)
    def test_route_length_matches_distance(self, a, b):
        t = Torus2D(4, 8)
        route = t.route(a, b)
        assert len(route) == t.hop_distance(a, b)

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_route_is_connected(self, a, b):
        t = Torus2D(8, 8)
        route = t.route(a, b)
        cur = a
        for frm, to in route:
            assert frm == cur
            assert t.hop_distance(frm, to) == 1
            cur = to
        assert cur == b

    def test_route_is_deterministic(self):
        t = Torus2D(4, 8)
        assert t.route(3, 29) == t.route(3, 29)

    def test_empty_route_same_tile(self):
        assert Torus2D(4, 4).route(7, 7) == []

    def test_dimension_order_x_first(self):
        t = Torus2D(4, 4)
        route = t.route(t.tile(0, 0), t.tile(2, 2))
        # first hops move along the row (column dimension)
        first_from, first_to = route[0]
        assert t.coord(first_from)[0] == t.coord(first_to)[0]

    def test_neighbors_count(self):
        t = Torus2D(4, 4)
        assert len(list(t.neighbors(0))) == 4
        ring = Torus2D(1, 8)
        assert len(list(ring.neighbors(0))) == 2
