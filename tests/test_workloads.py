"""Tests for workload profiles and the synthetic trace generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.workloads.generator import (
    HOT_BASE, PRIVATE_BASE, SHARED_BASE, SyntheticWorkload,
)
from repro.workloads.profiles import (
    APP_PROFILES, PARSEC_APPS, SPLASH2_APPS, AppProfile, get_profile,
)


@pytest.fixture
def config():
    return SystemConfig(n_cores=16, seed=11)


def make_workload(app="Radix", config=None, active=16, chunks=2, **kw):
    config = config or SystemConfig(n_cores=16, seed=11)
    return SyntheticWorkload(get_profile(app), config, active_cores=active,
                             chunks_per_partition=chunks, **kw)


class TestRegistry:
    def test_all_18_apps_present(self):
        assert len(SPLASH2_APPS) == 11
        assert len(PARSEC_APPS) == 7
        for app in SPLASH2_APPS + PARSEC_APPS:
            assert app in APP_PROFILES

    def test_suites_consistent(self):
        for app in SPLASH2_APPS:
            assert APP_PROFILES[app].suite == "splash2"
        for app in PARSEC_APPS:
            assert APP_PROFILES[app].suite == "parsec"

    def test_lookup_case_insensitive(self):
        assert get_profile("radix").name == "Radix"

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            get_profile("DOOM")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            AppProfile(name="x", suite="bogus")
        with pytest.raises(ValueError):
            AppProfile(name="x", suite="splash2", sharing_pattern="weird")


class TestDeterminism:
    def test_same_key_same_chunk(self, config):
        w1 = make_workload(config=config)
        w2 = make_workload(config=config)
        a = w1.generate_chunk(3, 1)
        b = w2.generate_chunk(3, 1)
        assert a.accesses == b.accesses

    def test_chunks_independent_of_generation_order(self, config):
        w1 = make_workload(config=config)
        w1.generate_chunk(0, 0)
        late = w1.generate_chunk(5, 1)
        w2 = make_workload(config=config)
        early = w2.generate_chunk(5, 1)
        assert late.accesses == early.accesses

    def test_different_partitions_differ(self, config):
        w = make_workload(config=config)
        assert w.generate_chunk(0, 0).accesses != w.generate_chunk(1, 0).accesses


class TestScheduling:
    def test_strong_scaling_total_work_constant(self, config):
        w16 = make_workload(active=16, config=config)
        w4 = make_workload(active=4, config=config)
        assert w16.total_chunks == w4.total_chunks

    def test_single_core_gets_everything(self, config):
        w = make_workload(active=1, config=config)
        n = 0
        while w.next_spec(0) is not None:
            n += 1
        assert n == w.total_chunks

    def test_partition_assignment_round_robin(self, config):
        w = make_workload(active=4, config=config)
        assert w.remaining(0) == w.total_chunks // 4

    def test_exhaustion_returns_none(self, config):
        w = make_workload(active=16, chunks=1, config=config)
        while w.next_spec(0) is not None:
            pass
        assert w.next_spec(0) is None

    def test_inactive_core_gets_nothing(self, config):
        w = make_workload(active=4, config=config)
        assert w.next_spec(7) is None


class TestChunkShape:
    def test_chunk_size_respected(self, config):
        w = make_workload(config=config)
        spec = w.generate_chunk(0, 0)
        assert spec.n_instructions == config.chunk_size_instructions
        consumed = sum(a.gap + 1 for a in spec.accesses)
        assert consumed <= spec.n_instructions

    def test_access_count_near_profile(self, config):
        w = make_workload("Radix", config=config)
        spec = w.generate_chunk(0, 0)
        target = get_profile("Radix").lines_per_chunk
        assert 0.8 * target <= spec.n_accesses <= 1.2 * target

    def test_access_scale_shrinks_chunks(self, config):
        w = make_workload(config=config, access_scale=0.5)
        full = make_workload(config=config)
        assert w.generate_chunk(0, 0).n_accesses < \
            full.generate_chunk(0, 0).n_accesses

    def test_radix_touches_many_shared_pages(self, config):
        w = make_workload("Radix", config=config)
        pages = {a.byte_addr // config.page_bytes
                 for a in w.generate_chunk(0, 0).accesses
                 if a.byte_addr >= SHARED_BASE}
        assert len(pages) >= 8

    def test_lu_touches_few_pages(self, config):
        w = make_workload("LU", config=config)
        pages = {a.byte_addr // config.page_bytes
                 for a in w.generate_chunk(0, 0).accesses}
        assert len(pages) <= 8


class TestDisjointWrites:
    @pytest.mark.parametrize("app", ["Radix", "Barnes", "Canneal"])
    def test_shared_writes_stay_in_own_slice(self, app, config):
        w = make_workload(app, config=config)
        lpp = config.lines_per_page
        per = max(1, lpp // w.n_partitions)
        for part in (0, 3, 7):
            spec = w.generate_chunk(part, 0)
            for a in spec.accesses:
                if a.is_write and SHARED_BASE <= a.byte_addr < HOT_BASE:
                    line = a.byte_addr // 32
                    start, width = w._slice_bounds(line // lpp * lpp // lpp,
                                                   part)
                    # recompute properly from the page
                    page = a.byte_addr // config.page_bytes
                    start, width = w._slice_bounds(page, part)
                    assert start <= line < start + width

    def test_different_partitions_write_disjoint_lines(self, config):
        w = make_workload("Radix", config=config)
        def writes(part):
            return {a.byte_addr // 32 for a in w.generate_chunk(part, 0).accesses
                    if a.is_write and SHARED_BASE <= a.byte_addr < HOT_BASE}
        assert not (writes(0) & writes(1))


class TestPremapAndPrewarm:
    def test_premap_spreads_shared_pages(self, config):
        from repro.memory.page_map import PageMapper
        w = make_workload("Radix", config=config)
        mapper = PageMapper(config.page_bytes, config.n_directories)
        w.premap_pages(mapper)
        dist = mapper.distribution()
        assert len(dist) == config.n_directories  # every dir homes pages

    def test_neighbor_pattern_homes_at_owner(self, config):
        from repro.memory.page_map import PageMapper
        w = make_workload("Ocean", config=config)
        mapper = PageMapper(config.page_bytes, config.n_directories)
        w.premap_pages(mapper)
        profile = get_profile("Ocean")
        base = SHARED_BASE // config.page_bytes
        slab = profile.shared_pages // w.n_partitions
        # the first slab belongs to partition 0 -> homed at core 0
        assert mapper.lookup(base) == 0
        assert mapper.lookup(base + slab) == 1 % w.active_cores

    def test_prewarm_plan_covers_private_sets(self, config):
        w = make_workload("LU", config=config, active=4)
        plan = list(w.prewarm_plan())
        cores = {c for c, _l in plan}
        assert cores <= set(range(4))
        assert len(plan) > 0
