"""Tests for the terminal chart renderers."""

import pytest

from repro.config import ProtocolKind
from repro.harness.ascii_plots import (
    breakdown_chart, distribution_plot, grouped_bars, hbar_chart,
    stacked_bars,
)
from repro.harness.experiments import BreakdownBar


class TestHbar:
    def test_bars_scale_to_max(self):
        text = hbar_chart({"a": 10, "b": 5}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_and_unit(self):
        text = hbar_chart({"x": 1}, title="T", unit="cy")
        assert text.startswith("T")
        assert "1cy" in text

    def test_empty(self):
        assert "(no data)" in hbar_chart({})

    def test_zero_values(self):
        text = hbar_chart({"a": 0.0})
        assert "#" not in text


class TestStacked:
    def test_segments_use_distinct_chars(self):
        text = stacked_bars(["r1"], {"s1": [1.0], "s2": [1.0]}, width=10)
        body = text.splitlines()[-1]
        assert "#" in body and "=" in body

    def test_legend_lists_segments(self):
        text = stacked_bars(["r"], {"alpha": [1], "beta": [1]})
        assert "#=alpha" in text and "=beta" in text.replace("#=alpha", "")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            stacked_bars(["a", "b"], {"s": [1.0]})

    def test_totals_annotated(self):
        text = stacked_bars(["r"], {"s": [2.0], "t": [3.0]})
        assert "5" in text


class TestGroupedAndDistribution:
    def test_grouped_rows(self):
        text = grouped_bars(["app"], {"write": [3.0], "read": [1.0]})
        assert "write" in text and "read" in text

    def test_distribution_order_preserved(self):
        text = distribution_plot({0: 10.0, 1: 50.0, "more": 40.0})
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("0")
        assert "more" in lines[-1]

    def test_distribution_empty(self):
        assert "(no data)" in distribution_plot({})


class TestBreakdownChart:
    def test_from_bars(self):
        bar = BreakdownBar(app="LU", protocol=ProtocolKind.SCALABLEBULK,
                           n_cores=4, normalized_time=0.1, speedup=10,
                           useful=0.07, cache_miss=0.02, commit=0.005,
                           squash=0.005)
        text = breakdown_chart([bar], title="Fig7")
        assert "Fig7" in text
        assert "LU_4 ScalableBulk" in text
        assert "#=Useful" in text
