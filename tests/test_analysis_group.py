"""Group-order model checker (SB201-SB204): real table clean, broken tables caught."""

from repro.analysis import check_group_order
from repro.core.group import order_gvec, priority_rank, successor


def codes(findings):
    return {f.code for f in findings}


class TestRealTableIsClean:
    def test_full_bound_clean(self):
        findings = check_group_order(max_dirs=5)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_single_module_groups(self):
        assert check_group_order(max_dirs=1) == []


class TestSeededDefects:
    """Acceptance criterion (b): a priority-order inversion is caught."""

    def test_inverted_successor_is_sb202(self):
        def backwards(order, dir_id):
            idx = order.index(dir_id)
            return order[(idx - 1) % len(order)]

        findings = check_group_order(max_dirs=3, successor_fn=backwards)
        assert "SB202" in codes(findings)
        assert any("against priority" in f.message for f in findings)

    def test_reversed_order_is_sb201(self):
        def reverse_order(dirs, n, offset=0):
            return tuple(sorted(set(dirs),
                                key=lambda d: -priority_rank(d, n, offset)))

        findings = check_group_order(max_dirs=3, order_fn=reverse_order)
        assert "SB201" in codes(findings)

    def test_wrong_collision_module_is_sb203(self):
        def last_common(loser_order, winner_dirs):
            winner = set(winner_dirs)
            common = [d for d in loser_order if d in winner]
            return common[-1] if common else None

        findings = check_group_order(max_dirs=3, collision_fn=last_common)
        assert "SB203" in codes(findings)

    def test_inconsistent_orders_deadlock_is_sb204(self):
        """Groups acquiring in *different* global orders can deadlock."""
        def split_brain(dirs, n, offset=0):
            dirs = sorted(set(dirs))
            # even-led groups climb, odd-led groups descend: the classic
            # lock-ordering bug
            return tuple(dirs if dirs[0] % 2 == 0 else reversed(dirs))

        findings = check_group_order(max_dirs=3, order_fn=split_brain)
        assert "SB204" in codes(findings)
        assert any("hold-and-wait deadlock" in f.message for f in findings)

    def test_truthy_non_bool_is_last_is_sb202(self):
        """The exact bug fixed in core/group.py: returning the sequence."""
        def sloppy_is_last(order, dir_id):
            return order and order[-1] == dir_id  # () instead of False

        findings = check_group_order(max_dirs=2, is_last_fn=sloppy_is_last)
        assert any(f.code == "SB202" and f.anchor == "empty-order/is_last"
                   for f in findings)


class TestInjectability:
    def test_default_functions_are_the_real_ones(self):
        """Guard: the checker checks core/group.py, not private copies."""
        findings = check_group_order(
            max_dirs=3, order_fn=order_gvec, successor_fn=successor)
        assert findings == []
