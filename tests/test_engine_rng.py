"""Unit tests for the deterministic RNG streams."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(1, "x")
        b = DeterministicRng(1, "x")
        assert [a.randint(0, 1000) for _ in range(20)] == \
               [b.randint(0, 1000) for _ in range(20)]

    def test_different_labels_differ(self):
        a = DeterministicRng(1, "x")
        b = DeterministicRng(1, "y")
        assert [a.randint(0, 10**9) for _ in range(5)] != \
               [b.randint(0, 10**9) for _ in range(5)]

    def test_split_independent_of_draw_order(self):
        parent1 = DeterministicRng(9)
        parent1.randint(0, 100)  # draw before splitting
        child1 = parent1.split("w")
        parent2 = DeterministicRng(9)
        child2 = parent2.split("w")  # split without drawing
        assert [child1.randint(0, 10**6) for _ in range(10)] == \
               [child2.randint(0, 10**6) for _ in range(10)]

    def test_nested_splits_unique(self):
        root = DeterministicRng(3)
        streams = [root.split(f"a/{i}") for i in range(4)]
        seqs = [tuple(s.randint(0, 10**9) for _ in range(4)) for s in streams]
        assert len(set(seqs)) == 4


class TestDistributions:
    def test_geometric_mean_roughly_inverse_p(self):
        rng = DeterministicRng(5)
        samples = [rng.geometric(0.25) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert 3.4 < mean < 4.6  # E = 1/p = 4

    def test_geometric_rejects_bad_p(self):
        rng = DeterministicRng(5)
        with pytest.raises(ValueError):
            rng.geometric(0.0)
        with pytest.raises(ValueError):
            rng.geometric(1.5)

    def test_zipf_in_range(self):
        rng = DeterministicRng(6)
        for _ in range(500):
            assert 0 <= rng.zipf_index(37, 0.8) < 37

    def test_zipf_skews_low(self):
        rng = DeterministicRng(6)
        samples = [rng.zipf_index(100, 2.0) for _ in range(3000)]
        low = sum(1 for s in samples if s < 10)
        assert low > len(samples) * 0.4

    def test_zipf_zero_skew_uniformish(self):
        rng = DeterministicRng(6)
        samples = [rng.zipf_index(10, 0.0) for _ in range(5000)]
        counts = [samples.count(i) for i in range(10)]
        assert min(counts) > 300

    def test_zipf_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).zipf_index(0)

    @given(st.integers(min_value=0, max_value=2**31), st.floats(0.01, 0.99))
    def test_bernoulli_is_boolean(self, seed, p):
        rng = DeterministicRng(seed)
        assert rng.bernoulli(p) in (True, False)

    def test_sample_and_choice(self):
        rng = DeterministicRng(2)
        pool = list(range(50))
        picked = rng.sample(pool, 10)
        assert len(set(picked)) == 10
        assert rng.choice(pool) in pool
