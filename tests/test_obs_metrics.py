"""Tests for the bounded streaming metrics layer (repro.obs.metrics)."""

import io
import json
import os

import pytest

from repro.config import SystemConfig
from repro.harness.runner import run_app
from repro.obs.metrics import (
    RATE_BOUNDS,
    SCHEMA,
    CounterMetric,
    FixedHistogram,
    MetricsRegistry,
    MetricsStream,
    validate_metrics_jsonl,
)
from repro.obs.profile import make_profiler


class TestCounter:
    def test_increments(self):
        c = CounterMetric("events")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            CounterMetric("events").inc(-1)


class TestFixedHistogram:
    def test_rejects_empty_or_unsorted_bounds(self):
        with pytest.raises(ValueError, match="at least one"):
            FixedHistogram("h", [])
        with pytest.raises(ValueError, match="strictly increasing"):
            FixedHistogram("h", [10, 10])

    def test_bucket_placement_on_edges(self):
        h = FixedHistogram("h", [10, 20])
        h.observe(10)      # on the first edge -> bucket 0 (values <= 10)
        h.observe(10.5)    # (10, 20] -> bucket 1
        h.observe(20)
        h.observe(25)      # past the last edge -> overflow bucket
        assert h.bucket_counts == [1, 2, 1]

    def test_summary_stats(self):
        h = FixedHistogram("h", [100])
        for v in (2, 4, 12):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(6.0)
        assert (h.min, h.max) == (2, 12)

    def test_memory_is_fixed(self):
        h = FixedHistogram("h", RATE_BOUNDS)
        buckets = len(h.bucket_counts)
        for v in range(10_000):
            h.observe(v)
        assert len(h.bucket_counts) == buckets == len(RATE_BOUNDS) + 1

    def test_to_json_roundtrips(self):
        h = FixedHistogram("h", [1, 2])
        h.observe(1.5)
        doc = h.to_json()
        assert doc["buckets"] == [0, 1, 0]
        json.dumps(doc)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")
        assert reg.size() == (1, 1)

    def test_snapshot_is_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(3)
        reg.counter("a").inc(1)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"]["z"] == 3


class TestStream:
    def _stream(self, interval=100, **kw):
        sink = io.StringIO()
        return MetricsStream(sink, interval, registry=MetricsRegistry(),
                             **kw), sink

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="positive"):
            MetricsStream(io.StringIO(), 0)

    def test_header_then_snapshots_validate(self):
        stream, sink = self._stream(provenance={"git_rev": "abc"})
        stream.registry.counter("chunks").inc(7)
        assert not stream.maybe(50, 1_000)      # below first boundary
        assert stream.maybe(120, 2_000)
        stream.close(300, 3_000)
        lines = sink.getvalue().splitlines()
        assert validate_metrics_jsonl(lines) == []
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["git_rev"] == "abc"
        snap = json.loads(lines[1])
        assert snap["counters"]["chunks"] == 7
        assert snap["host_elapsed_ns"] == 0     # first reading anchors

    def test_interval_rate_histogram_after_second_snapshot(self):
        stream, _ = self._stream()
        stream.take(100, 0)
        stream.take(200, 10_000_000)            # 100 cycles / 10ms
        hist = stream.registry.histogram("interval_cycles_per_sec")
        assert hist.count == 1
        assert hist.min == pytest.approx(10_000.0)

    def test_next_time_skips_past_gaps(self):
        stream, _ = self._stream(interval=100)
        stream.take(950, 0)                     # jumped many boundaries
        assert stream.next_time == 1000

    def test_writes_and_forgets_unless_keep(self):
        stream, _ = self._stream()
        stream.take(100, 0)
        assert stream.snapshots == []
        kept, _ = self._stream(keep=True)
        kept.take(100, 0)
        assert len(kept.snapshots) == 1

    def test_close_is_idempotent(self):
        stream, sink = self._stream()
        stream.close(100, 0)
        stream.close(200, 1)
        assert stream.snapshots_written == 1
        assert validate_metrics_jsonl(sink.getvalue().splitlines()) == []


class TestValidator:
    def test_empty_document(self):
        assert validate_metrics_jsonl([]) == ["empty document"]

    def test_missing_header_and_bad_schema(self):
        snap = json.dumps({"schema": SCHEMA, "kind": "snapshot", "seq": 0,
                           "sim_time": 1, "host_elapsed_ns": 0,
                           "counters": {}, "histograms": {}})
        assert any("header" in e for e in validate_metrics_jsonl([snap]))
        assert any("schema" in e
                   for e in validate_metrics_jsonl(['{"schema": "x"}']))

    def test_non_increasing_seq(self):
        header = json.dumps({"schema": SCHEMA, "kind": "header",
                             "interval": 10})
        snap = json.dumps({"schema": SCHEMA, "kind": "snapshot", "seq": 0,
                           "sim_time": 1, "host_elapsed_ns": 0,
                           "counters": {}, "histograms": {}})
        assert any("seq" in e
                   for e in validate_metrics_jsonl([header, snap, snap]))


class TestEndToEnd:
    def test_profiled_run_streams_bounded_metrics(self, tmp_path):
        out = tmp_path / "metrics.jsonl"
        prof = make_profiler(SystemConfig(n_cores=4),
                             metrics_interval=5_000, metrics_out=str(out))
        run_app("Radix", n_cores=4, chunks_per_partition=2, profile=prof)
        lines = out.read_text(encoding="utf-8").splitlines()
        assert validate_metrics_jsonl(lines) == []
        assert prof.stream.snapshots_written >= 1
        counters, histograms = prof.stream.registry.size()
        assert counters + histograms <= 8    # bounded, not per-sample

    @pytest.mark.skipif(not os.environ.get("REPRO_LONG_SMOKE"),
                        reason="set REPRO_LONG_SMOKE=1 for the >=50k-chunk "
                               "bounded-memory smoke (several minutes)")
    def test_long_run_memory_stays_bounded(self, tmp_path):
        # Fixed footprint (4 partitions), long run (50k committed chunks):
        # memory must scale with the footprint, not the run length.
        out = tmp_path / "metrics.jsonl"
        prof = make_profiler(SystemConfig(n_cores=4),
                             metrics_interval=1_000_000,
                             metrics_out=str(out))
        result = run_app("Radix", n_cores=4, n_partitions=4,
                         chunks_per_partition=12_500, profile=prof)
        assert result.chunks_committed >= 50_000
        lines = out.read_text(encoding="utf-8").splitlines()
        assert validate_metrics_jsonl(lines) == []
        assert prof.stream.snapshots_written >= 2
        assert prof.stream.snapshots == []          # wrote and forgot
        counters, histograms = prof.stream.registry.size()
        assert counters + histograms <= 8
