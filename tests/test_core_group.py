"""Unit tests for group-ordering helpers (Section 3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.group import (
    collision_module, is_last, leader_of, order_gvec, priority_rank, successor,
)


class TestOrdering:
    def test_baseline_order_ascending(self):
        assert order_gvec({5, 1, 2}, 8) == (1, 2, 5)

    def test_leader_is_lowest(self):
        assert leader_of(order_gvec({5, 1, 2}, 8)) == 1

    def test_rotation_changes_leader(self):
        # offset 3: priority order is 3,4,...,7,0,1,2
        order = order_gvec({1, 2, 5}, 8, offset=3)
        assert order == (5, 1, 2)
        assert leader_of(order) == 5

    def test_rotation_full_cycle_identity(self):
        dirs = {0, 3, 6}
        assert order_gvec(dirs, 8, offset=8) == order_gvec(dirs, 8, offset=0)

    def test_duplicates_collapse(self):
        assert order_gvec([2, 2, 4], 8) == (2, 4)

    @given(st.sets(st.integers(0, 63), min_size=1, max_size=10),
           st.integers(0, 63))
    @settings(max_examples=60, deadline=None)
    def test_order_is_permutation(self, dirs, offset):
        order = order_gvec(dirs, 64, offset)
        assert set(order) == dirs
        ranks = [priority_rank(d, 64, offset) for d in order]
        assert ranks == sorted(ranks)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            leader_of(())


class TestSuccessor:
    def test_chain_traversal(self):
        order = (1, 2, 5)
        assert successor(order, 1) == 2
        assert successor(order, 2) == 5

    def test_last_wraps_to_leader(self):
        order = (1, 2, 5)
        assert successor(order, 5) == 1
        assert is_last(order, 5)

    def test_singleton(self):
        assert successor((3,), 3) == 3


class TestCollisionModule:
    def test_lowest_common_module(self):
        # loser traverses 1,2,5; winner holds {2,5} -> collision at 2
        assert collision_module((1, 2, 5), {2, 5}) == 2

    def test_priority_order_respected(self):
        # loser order under rotation: 5 first
        assert collision_module((5, 1, 2), {1, 2}) == 1

    def test_no_common_module(self):
        assert collision_module((1, 2), {3, 4}) is None

    def test_paper_figure3g_example(self):
        """Fig. 3(g): G0={0,2,3,4}, G1={1,2,3,7,8} -> collision at 2."""
        g0 = (0, 2, 3, 4)
        g1 = (1, 2, 3, 7, 8)
        assert collision_module(g0, set(g1)) == 2
        assert collision_module(g1, set(g0)) == 2
        # G1 vs G2={6,7}: collision at 7
        assert collision_module(g1, {6, 7}) == 7


class TestIsLast:
    """is_last must return an honest bool (it used to return the falsy
    sequence itself for empty orders — the first bug the mypy gate and
    the SB202 model-checker probe catch)."""

    def test_true_at_last_member(self):
        assert is_last((1, 2, 5), 5) is True

    def test_false_elsewhere(self):
        assert is_last((1, 2, 5), 1) is False
        assert is_last((1, 2, 5), 2) is False
        assert is_last((1, 2, 5), 7) is False

    def test_empty_order_returns_bool_false(self):
        result = is_last((), 3)
        assert result is False
        assert isinstance(result, bool)

    def test_singleton_group(self):
        assert is_last((4,), 4) is True
