"""Behavioural tests for the Scalable TCC baseline."""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine
from repro.network.message import MessageType


def build(specs_by_core, n_cores=4, **overrides):
    config = SystemConfig(n_cores=n_cores, seed=3,
                          protocol=ProtocolKind.TCC, **overrides)
    remaining = {c: list(s) for c, s in specs_by_core.items()}

    def next_spec(core_id):
        lst = remaining.get(core_id)
        return lst.pop(0) if lst else None

    return Machine(config, next_spec=next_spec)


def disjoint_specs(core, n=3):
    base = 32 * (7000 + 300 * core)
    return [ChunkSpec(200, [ChunkAccess(1, base + 32 * i, True)])
            for i in range(n)]


def same_dir_disjoint_specs(core, n=2):
    """All cores use lines in the SAME page -> same directory module."""
    base = 32 * 8192 + 32 * core  # one page, per-core line offsets
    return [ChunkSpec(400, [ChunkAccess(1, base, True)]) for _ in range(n)]


class TestTidOrdering:
    def test_all_chunks_commit(self):
        m = build({c: disjoint_specs(c) for c in range(4)})
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 12

    def test_tids_unique_and_dense(self):
        m = build({c: disjoint_specs(c, n=2) for c in range(4)})
        m.run()
        assert m.protocol.vendor.grants == 8

    def test_skip_broadcast_to_every_directory(self):
        m = build({0: disjoint_specs(0, n=1)}, n_cores=4)
        m.run()
        counts = m.network.stats.messages_by_type
        probes = counts.get(MessageType.TCC_PROBE, 0)
        skips = counts.get(MessageType.TCC_SKIP, 0)
        assert probes + skips == m.config.n_directories

    def test_mark_per_written_line(self):
        spec = ChunkSpec(200, [ChunkAccess(1, 32 * 7000 + 32 * i, True)
                               for i in range(5)])
        m = build({0: [spec]})
        m.run()
        assert m.network.stats.messages_by_type.get(MessageType.TCC_MARK) == 5

    def test_directories_advance_past_all_tids(self):
        m = build({c: disjoint_specs(c, n=2) for c in range(4)})
        m.run()
        granted = m.protocol.vendor.grants
        for d in m.directories:
            assert d.expected_tid == granted + 1
            assert d.busy_with is None


class TestSameDirectorySerialization:
    """The limitation the paper targets: same-module commits serialize
    even when address-disjoint."""

    def test_same_dir_commits_serialize(self):
        m = build({c: same_dir_disjoint_specs(c) for c in range(4)})
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 8
        # the shared home directory processed every commit one at a time
        homes = [d for d in m.directories if d.commits_serviced]
        assert len(homes) == 1
        assert homes[0].commits_serviced == 8

    def test_queue_probe_sees_waiting_probes(self):
        m = build({c: same_dir_disjoint_specs(c, n=3) for c in range(4)})
        m.run()
        assert m.protocol.stats.queue_samples
        # at least one sample must have caught a queued chunk
        assert max(m.protocol.stats.queue_samples) >= 1


class TestConflictsAndAborts:
    def test_conflicting_chunks_squash_and_recover(self):
        line = 32 * 9000
        specs = lambda: [ChunkSpec(300, [ChunkAccess(1, line, True),
                                         ChunkAccess(1, line + 32, False)])
                         for _ in range(3)]
        m = build({0: specs(), 1: specs()})
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 6
        for d in m.directories:
            assert d.busy_with is None

    def test_no_machine_stall_after_aborts(self):
        line = 32 * 9000
        specs = lambda: [ChunkSpec(250, [ChunkAccess(1, line, True)])
                         for _ in range(4)]
        m = build({c: specs() for c in range(4)})
        m.run()
        assert all(c.finished for c in m.cores)
