"""Unit tests for first-touch page mapping."""

import pytest

from repro.memory.page_map import PageMapper


class TestFirstTouch:
    def test_first_toucher_becomes_home(self):
        m = PageMapper(4096, 16)
        assert m.home_of_page(10, toucher=5) == 5
        # later touchers do not change the home
        assert m.home_of_page(10, toucher=9) == 5

    def test_toucher_wraps_to_directory_count(self):
        m = PageMapper(4096, 4)
        assert m.home_of_page(3, toucher=6) == 2

    def test_lookup_unmapped_is_none(self):
        m = PageMapper(4096, 4)
        assert m.lookup(99) is None

    def test_premap_overrides_first_touch(self):
        m = PageMapper(4096, 8)
        m.premap(7, 3)
        assert m.home_of_page(7, toucher=0) == 3

    def test_home_of_line(self):
        m = PageMapper(4096, 8)
        # line 128 * 32B = byte 4096 -> page 1
        home = m.home_of_line(128, 32, toucher=2)
        assert home == 2
        assert m.lookup(1) == 2

    def test_page_of(self):
        m = PageMapper(4096, 8)
        assert m.page_of(4095) == 0
        assert m.page_of(4096) == 1

    def test_first_touch_counter(self):
        m = PageMapper(4096, 8)
        m.home_of_page(1, 0)
        m.home_of_page(1, 1)
        m.home_of_page(2, 0)
        assert m.first_touches == 2

    def test_distribution(self):
        m = PageMapper(4096, 4)
        for p in range(8):
            m.premap(p, p % 4)
        dist = m.distribution()
        assert dist == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            PageMapper(3000, 4)
