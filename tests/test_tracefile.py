"""Tests for trace-file workloads (JSONL + text formats, round trip)."""

import io
import json

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine
from repro.workloads.tracefile import TraceFileWorkload, TraceFormatError


@pytest.fixture
def config():
    return SystemConfig(n_cores=4, seed=3)


def write_jsonl(tmp_path, records):
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    return path


class TestJsonlLoading:
    def test_basic_load(self, tmp_path, config):
        path = write_jsonl(tmp_path, [
            {"core": 0, "instructions": 100,
             "accesses": [[1, 4096, False], [2, 8192, True]]},
            {"core": 1, "accesses": [[1, 4096, False]]},
        ])
        w = TraceFileWorkload.from_jsonl(path, config)
        assert w.total_chunks == 2
        spec = w.next_spec(0)
        assert spec.n_instructions == 100
        assert spec.accesses[1].is_write

    def test_default_chunk_size(self, tmp_path, config):
        path = write_jsonl(tmp_path, [{"core": 0,
                                       "accesses": [[1, 64, False]]}])
        w = TraceFileWorkload.from_jsonl(path, config)
        assert w.next_spec(0).n_instructions == \
            config.chunk_size_instructions

    def test_comments_and_blanks_skipped(self, tmp_path, config):
        path = tmp_path / "t.jsonl"
        path.write_text('# header\n\n{"core": 0, "accesses": []}\n')
        w = TraceFileWorkload.from_jsonl(path, config)
        assert w.total_chunks == 1

    def test_bad_json_names_line(self, tmp_path, config):
        path = tmp_path / "t.jsonl"
        path.write_text('{"core": 0, "accesses": []}\nnot json\n')
        with pytest.raises(TraceFormatError, match=":2:"):
            TraceFileWorkload.from_jsonl(path, config)

    def test_core_out_of_range(self, tmp_path, config):
        path = write_jsonl(tmp_path, [{"core": 9, "accesses": []}])
        with pytest.raises(TraceFormatError, match="core"):
            TraceFileWorkload.from_jsonl(path, config)

    def test_malformed_access(self, tmp_path, config):
        path = write_jsonl(tmp_path, [{"core": 0, "accesses": [[1, 2]]}])
        with pytest.raises(TraceFormatError, match="access #0"):
            TraceFileWorkload.from_jsonl(path, config)

    def test_oversized_chunk_rejected(self, tmp_path, config):
        path = write_jsonl(tmp_path, [
            {"core": 0, "instructions": 2,
             "accesses": [[1, 0, False], [1, 32, False]]}])
        with pytest.raises(TraceFormatError):
            TraceFileWorkload.from_jsonl(path, config)


class TestTextLoading:
    def test_basic_text(self, config):
        text = io.StringIO("0 r 0x1000\n0 w 0x2000\n\n1 r 0x1000\n")
        w = TraceFileWorkload.from_text(text, config)
        assert w.total_chunks == 2
        spec = w.next_spec(0)
        assert spec.accesses[0].byte_addr == 0x1000
        assert spec.accesses[1].is_write

    def test_blank_line_splits_chunks(self, config):
        text = io.StringIO("0 r 0x1000\n\n0 r 0x2000\n")
        w = TraceFileWorkload.from_text(text, config)
        assert len(w._chunks[0]) == 2

    def test_bad_line_reported(self, config):
        text = io.StringIO("0 r\n")
        with pytest.raises(TraceFormatError, match=":1:"):
            TraceFileWorkload.from_text(text, config)

    def test_bad_rw_flag(self, config):
        text = io.StringIO("0 x 0x1000\n")
        with pytest.raises(TraceFormatError):
            TraceFileWorkload.from_text(text, config)


class TestRoundTrip:
    def test_dump_and_reload(self, tmp_path, config):
        chunks = {0: [ChunkSpec(100, [ChunkAccess(1, 64, True)])],
                  2: [ChunkSpec(50, [ChunkAccess(0, 128, False)])]}
        path = tmp_path / "out.jsonl"
        TraceFileWorkload.dump_jsonl(chunks, path)
        w = TraceFileWorkload.from_jsonl(path, config)
        assert w.total_chunks == 2
        assert w.next_spec(0).accesses == chunks[0][0].accesses
        assert w.next_spec(2).n_instructions == 50


class TestSimulationFromTrace:
    def test_machine_runs_trace(self, tmp_path, config):
        path = write_jsonl(tmp_path, [
            {"core": c, "instructions": 200,
             "accesses": [[1, 4096 * (c + 1) + 32 * i, i % 2 == 0]
                          for i in range(5)]}
            for c in range(4) for _ in range(2)
        ])
        w = TraceFileWorkload.from_jsonl(path, config)
        machine = Machine(config, workload=w)
        machine.run()
        assert sum(c.stats.chunks_committed for c in machine.cores) == 8

    def test_trace_with_conflicts(self, tmp_path, config):
        shared = 4096 * 100
        path = write_jsonl(tmp_path, [
            {"core": c, "instructions": 300,
             "accesses": [[1, shared, True], [1, shared + 64, False]]}
            for c in (0, 1) for _ in range(3)
        ])
        w = TraceFileWorkload.from_jsonl(path, config)
        machine = Machine(config, workload=w)
        machine.run()
        assert sum(c.stats.chunks_committed for c in machine.cores) == 6
