"""Tests for Optimistic Commit Initiation and the commit-recall path.

These use full machines (real cores + protocol) with hand-built chunk
specs that force two processors to commit conflicting chunks
concurrently, and verify outcomes rather than exact cycle-level schedules.
"""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine


def build(specs_by_core, oci=True, n_cores=4, **overrides):
    config = SystemConfig(n_cores=n_cores, seed=3, oci=oci,
                          protocol=ProtocolKind.SCALABLEBULK, **overrides)
    remaining = {c: list(s) for c, s in specs_by_core.items()}

    def next_spec(core_id):
        lst = remaining.get(core_id)
        return lst.pop(0) if lst else None

    return Machine(config, next_spec=next_spec)


def conflicting_specs(n_chunks=3, line=32 * 5000, instr=300):
    """Every chunk of every core writes the same line: maximal conflict."""
    return [ChunkSpec(instr, [ChunkAccess(1, line, True),
                              ChunkAccess(1, line + 32 * (1 + i), False)])
            for i in range(n_chunks)]


class TestOciLiveness:
    def test_conflicting_chunks_all_eventually_commit(self):
        m = build({0: conflicting_specs(), 1: conflicting_specs(),
                   2: conflicting_specs()})
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 9
        assert all(c.finished for c in m.cores)

    def test_squashes_are_classified(self):
        m = build({0: conflicting_specs(4), 1: conflicting_specs(4)})
        m.run()
        total_squashes = sum(c.stats.squashes_conflict + c.stats.squashes_alias
                             for c in m.cores)
        # with full W/W overlap some squashes must happen
        assert total_squashes >= 1
        # every one came from a genuine conflict, not aliasing
        assert sum(c.stats.squashes_alias for c in m.cores) == 0

    def test_recall_reaches_collision_module(self):
        # longer runs raise the chance of hitting the OCI window; we assert
        # consistency, not a specific count
        m = build({c: conflicting_specs(5) for c in range(4)})
        m.run()
        stats = m.protocol.stats
        assert stats.commit_recalls >= 0
        assert sum(c.stats.chunks_committed for c in m.cores) == 20

    def test_no_cst_leaks_at_quiescence(self):
        m = build({c: conflicting_specs(4) for c in range(4)})
        m.run()
        for d in m.directories:
            assert not d.cst, f"leaked CST entries at dir {d.dir_id}"

    def test_no_live_attempts_at_quiescence(self):
        m = build({c: conflicting_specs(3) for c in range(3)})
        m.run()
        assert not m.protocol.stats._live_by_ctag


class TestConservativeMode:
    def test_non_oci_machine_completes(self):
        m = build({0: conflicting_specs(3), 1: conflicting_specs(3)},
                  oci=False)
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 6

    def test_non_oci_nacks_invalidations(self):
        m = build({c: conflicting_specs(4) for c in range(4)}, oci=False)
        m.run()
        # with every commit conflicting, some invalidation must have hit a
        # processor that was awaiting its own commit outcome
        assert m.protocol.stats.bulk_inv_nacks >= 1

    def test_oci_faster_or_equal_under_contention(self):
        """OCI's whole point: overlap commits, shorten critical paths."""
        specs = {c: conflicting_specs(4) for c in range(4)}
        m_oci = build({c: list(s) for c, s in specs.items()}, oci=True)
        m_oci.run()
        m_cons = build({c: list(s) for c, s in specs.items()}, oci=False)
        m_cons.run()
        assert m_oci.sim.now <= m_cons.sim.now * 1.1


class TestSquashPendingCorner:
    def test_disjoint_chunks_never_squash(self):
        """Address-disjoint chunks on different dirs must never interfere,
        pending-squash machinery included."""
        def specs(core):
            base = 32 * (6000 + 200 * core)
            return [ChunkSpec(200, [ChunkAccess(1, base + 32 * i, True)])
                    for i in range(3)]
        m = build({c: specs(c) for c in range(4)})
        m.run()
        assert all(c.stats.squashes_conflict == 0 for c in m.cores)
        assert sum(c.stats.chunks_committed for c in m.cores) == 12
