"""Focused tests for TCC's mark-gather and TID-order machinery."""

import pytest

from repro.config import ProtocolKind
from repro.network.message import MessageType, core_node, dir_node
from protocol_bench import ProtocolBench


@pytest.fixture
def bench():
    return ProtocolBench(n_cores=9, protocol=ProtocolKind.TCC)


def send_probe(bench, dir_id, tid, cid, proc=0, n_marks=0):
    bench.network.unicast(MessageType.TCC_PROBE, core_node(proc),
                          dir_node(dir_id), ctag=cid, tid=tid, proc=proc,
                          n_marks=n_marks)


def send_mark(bench, dir_id, cid, line, proc=0):
    bench.network.unicast(MessageType.TCC_MARK, core_node(proc),
                          dir_node(dir_id), ctag=cid, line=line)


def send_skip(bench, dir_id, tid, cid=("skip", 0), proc=0):
    bench.network.unicast(MessageType.TCC_SKIP, core_node(proc),
                          dir_node(dir_id), ctag=cid, tid=tid)


class TestMarkWait:
    def test_service_waits_for_all_marks(self, bench):
        d = bench.directories[2]
        line = bench.line_homed_at(2)
        cid = ("c1", 0)
        send_probe(bench, 2, tid=1, cid=cid, n_marks=2)
        send_mark(bench, 2, cid, line)
        bench.run()
        # one of two marks arrived: the directory must be stalled on it
        assert d.busy_with == 1
        assert d._waiting_for_marks is not None
        # the missing mark arrives -> service completes, done sent
        send_mark(bench, 2, cid, line + 1)
        bench.run()
        assert d.busy_with is None
        assert d.expected_tid == 2
        dones = [m for m in bench.core_log[0]
                 if m.mtype is MessageType.TCC_DIR_DONE]
        assert len(dones) == 1

    def test_no_marks_services_immediately(self, bench):
        cid = ("c1", 0)
        send_probe(bench, 2, tid=1, cid=cid, n_marks=0)
        bench.run()
        assert bench.directories[2].expected_tid == 2

    def test_abort_releases_mark_stall(self, bench):
        d = bench.directories[2]
        cid = ("c1", 0)
        send_probe(bench, 2, tid=1, cid=cid, n_marks=3)
        bench.run()
        assert d._waiting_for_marks is not None
        bench.network.unicast(MessageType.TCC_COMMIT_DONE, core_node(0),
                              dir_node(2), ctag=cid, tid=1)
        bench.run()
        assert d.busy_with is None
        assert d.expected_tid == 2


class TestTidOrder:
    def test_out_of_order_probes_wait(self, bench):
        d = bench.directories[2]
        send_probe(bench, 2, tid=3, cid=("c3", 0))
        bench.run()
        assert d.expected_tid == 1       # cannot service tid 3 yet
        send_skip(bench, 2, tid=1)
        send_skip(bench, 2, tid=2)
        bench.run()
        assert d.expected_tid == 4       # 1,2 skipped, 3 serviced

    def test_interleaved_probe_and_skip(self, bench):
        d = bench.directories[2]
        send_skip(bench, 2, tid=1)
        send_probe(bench, 2, tid=2, cid=("c2", 0))
        send_skip(bench, 2, tid=3)
        bench.run()
        assert d.expected_tid == 4
        assert d.commits_serviced == 1

    def test_abort_before_probe_becomes_skip(self, bench):
        d = bench.directories[2]
        bench.network.unicast(MessageType.TCC_COMMIT_DONE, core_node(0),
                              dir_node(2), ctag=("dead", 0), tid=1)
        bench.run()
        send_probe(bench, 2, tid=1, cid=("dead", 0))
        bench.run()
        assert d.expected_tid == 2
        assert d.commits_serviced == 0

    def test_sharers_invalidated_in_order(self, bench):
        d = bench.directories[2]
        l1 = bench.line_homed_at(2, index=0)
        l2 = bench.line_homed_at(2, index=1)
        bench.add_sharer(l1, proc=5)
        bench.add_sharer(l2, proc=6)
        cid = ("c1", 0)
        send_probe(bench, 2, tid=1, cid=cid, n_marks=2)
        send_mark(bench, 2, cid, l1)
        send_mark(bench, 2, cid, l2)
        bench.run()
        # both sharers invalidated (per-line), one dir-done at the end
        invs5 = [m for m in bench.core_log[5]
                 if m.mtype is MessageType.TCC_INV]
        invs6 = [m for m in bench.core_log[6]
                 if m.mtype is MessageType.TCC_INV]
        assert len(invs5) == 1 and len(invs6) == 1
        assert d.expected_tid == 2
