"""Tests for the instrumentation bus: recording, gauges, zero-cost default.

The load-bearing property is the last class: attaching a bus must not
change simulation behaviour at all — the null-sink default and the live
bus schedule exactly the same simulator events.
"""

import dataclasses

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine, run_app
from repro.obs.bus import (
    COMMIT_COMPLETE,
    COMMIT_REQUEST,
    EXEC_DONE,
    EXEC_START,
    GRAB_ADMIT,
    GROUP_FORMED,
    NULL_BUS,
    InstrumentationBus,
    attach_bus,
    ctag_str,
)
from repro.obs.gauges import GaugeSet, RingSeries


def small_machine(specs_by_core, **kw):
    config = SystemConfig(n_cores=4, seed=3,
                          protocol=ProtocolKind.SCALABLEBULK, **kw)
    remaining = {c: list(s) for c, s in specs_by_core.items()}

    def next_spec(core_id):
        lst = remaining.get(core_id)
        return lst.pop(0) if lst else None

    return Machine(config, next_spec=next_spec)


def simple_specs(n=2, base=32 * 128 * 50):
    return [ChunkSpec(150, [ChunkAccess(1, base + 32 * i, True)])
            for i in range(n)]


class TestNullDefault:
    def test_components_default_to_null_bus(self):
        machine = small_machine({0: simple_specs(1)})
        assert machine.sim.obs is NULL_BUS
        assert machine.network.obs is NULL_BUS
        assert all(c.obs is NULL_BUS for c in machine.cores)
        assert all(d.obs is NULL_BUS for d in machine.directories)
        assert not NULL_BUS.enabled

    def test_null_bus_hooks_are_noops(self):
        NULL_BUS.exec_start(0, 0, "t")
        NULL_BUS.group_formed(0, None, ("t", 0), 0, [0, 1])
        NULL_BUS.sim_step(0, 5)


class TestAttach:
    def test_attach_reaches_every_component(self):
        machine = small_machine({0: simple_specs(1)})
        bus = attach_bus(machine)
        assert machine.sim.obs is bus
        assert machine.network.obs is bus
        assert all(c.obs is bus for c in machine.cores)
        assert all(d.obs is bus for d in machine.directories)
        assert all(e.obs is bus for e in machine.protocol.engines)

    def test_attach_accepts_existing_bus(self):
        machine = small_machine({0: simple_specs(1)})
        mine = InstrumentationBus(record_messages=False)
        assert attach_bus(machine, mine) is mine


class TestRecording:
    def test_lifecycle_kinds_recorded(self):
        machine = small_machine({0: simple_specs(1)})
        bus = attach_bus(machine)
        machine.run()
        kinds = set(bus.summary())
        assert {EXEC_START, EXEC_DONE, COMMIT_REQUEST, GRAB_ADMIT,
                GROUP_FORMED, COMMIT_COMPLETE} <= kinds

    def test_commit_completes_match_stats(self):
        machine = small_machine({0: simple_specs(3), 1: simple_specs(2)})
        bus = attach_bus(machine)
        machine.run()
        committed = sum(c.stats.chunks_committed for c in machine.cores)
        assert bus.summary()[COMMIT_COMPLETE] == committed

    def test_record_messages_off_mutes_noc_events(self):
        machine = small_machine({0: simple_specs(1)})
        bus = attach_bus(machine, InstrumentationBus(record_messages=False))
        machine.run()
        assert "msg_send" not in bus.summary()
        # ... but the in-flight gauge still runs off the muted hooks
        assert "noc_inflight" in bus.gauges

    def test_gauge_series_populated(self):
        machine = small_machine({0: simple_specs(2)})
        bus = attach_bus(machine)
        machine.run()
        assert len(bus.gauges.get("sim_queue").samples()) > 0
        assert len(bus.gauges.get("dir0_cst").samples()) > 0
        # every sent message was delivered by quiesce
        assert bus.gauges.value("noc_inflight") == 0

    def test_ctag_str_renders_attempts(self):
        assert ctag_str(("P0.c0.g0", 2)) == "P0.c0.g0#2"
        assert ctag_str("plain") == "plain"
        assert ctag_str(None) is None


class TestGaugePrimitives:
    def test_ring_series_drops_oldest(self):
        s = RingSeries("test", capacity=3)
        for t in range(5):
            s.append(t, t * 10)
        assert s.samples() == [(2, 20), (3, 30), (4, 40)]
        assert s.dropped == 2
        assert s.last() == (4, 40)

    def test_gauge_set_bump_tracks_running_value(self):
        g = GaugeSet()
        assert g.bump("x", 0, +1) == 1
        assert g.bump("x", 1, +1) == 2
        assert g.bump("x", 2, -1) == 1
        assert g.value("x") == 1
        assert [v for _t, v in g.get("x").samples()] == [1, 2, 1]


class TestZeroCostDefault:
    """Attaching a bus must not perturb the simulation in any way."""

    def _result_fields(self, result):
        d = dataclasses.asdict(result)
        d.pop("machine")
        return d

    def test_run_identical_with_and_without_bus(self):
        plain = run_app("Radix", n_cores=4, chunks_per_partition=2)
        bus = InstrumentationBus()
        traced = run_app("Radix", n_cores=4, chunks_per_partition=2, bus=bus)
        assert self._result_fields(plain) == self._result_fields(traced)
        assert len(bus.events) > 0

    def test_instrumented_runs_are_deterministic(self):
        streams = []
        for _ in range(2):
            bus = InstrumentationBus()
            run_app("Radix", n_cores=4, chunks_per_partition=2, bus=bus)
            streams.append([(e.time, e.kind, e.src, str(e.ctag),
                             sorted(e.fields)) for e in bus.events])
        assert streams[0] == streams[1]

    def test_all_protocols_unperturbed(self):
        for proto in ProtocolKind:
            plain = run_app("Radix", n_cores=4, chunks_per_partition=2,
                            protocol=proto)
            traced = run_app("Radix", n_cores=4, chunks_per_partition=2,
                             protocol=proto, bus=InstrumentationBus())
            assert (self._result_fields(plain)
                    == self._result_fields(traced)), proto
