"""Batched same-cycle dispatch must be invisible.

``Simulator.run`` drains all events due at the current cycle in one inner
loop; the tie-breaker / instrumentation / profiler paths fall back to the
stepwise ``step()`` loop.  These tests pin the two paths to each other:
an insertion-order tie-breaker (exactly the default policy, but forcing
the stepwise path) must reproduce the batched run bit-for-bit — at the
simulator level and for full protocol runs of all four protocols.
"""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.engine.events import Simulator
from repro.harness.runner import Machine
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import get_profile


def _protocol_result(protocol: ProtocolKind, tie_breaker=None):
    config = SystemConfig(n_cores=4, seed=7, protocol=protocol)
    workload = SyntheticWorkload(get_profile("Radix"), config,
                                 active_cores=4, chunks_per_partition=2)
    machine = Machine(config, workload=workload)
    if tie_breaker is not None:
        machine.sim.tie_breaker = tie_breaker
    machine.run()
    return machine.result("Radix", 4), machine.sim.now


class TestBatchedMatchesStepwise:
    @pytest.mark.parametrize("proto", list(ProtocolKind))
    def test_run_result_identical_under_seq_order_tie_breaker(self, proto):
        """An explicit insertion-order tie-breaker routes the whole run
        through the stepwise path without changing the policy; any
        divergence from the default (batched) run is a batching bug."""
        batched, cycles_batched = _protocol_result(proto)
        calls = []

        def seq_order(batch):
            calls.append(len(batch))
            return 0

        stepwise, cycles_stepwise = _protocol_result(proto, tie_breaker=seq_order)
        assert calls, "tie-breaker never saw a same-cycle batch; vacuous run"
        assert cycles_stepwise == cycles_batched
        assert stepwise == batched

    def test_cascade_order_identical(self):
        """Same-cycle events that schedule more same-cycle events must run
        in the same total order on both paths (new events carry a higher
        seq, so they sort after the in-flight batch)."""

        def cascade(sim):
            order = []

            def spawn(tag, depth):
                order.append(tag)
                if depth:
                    sim.schedule(0, lambda: spawn(tag + ".a", depth - 1))
                    sim.schedule(0, lambda: spawn(tag + ".b", depth - 1))

            sim.schedule(0, lambda: spawn("x", 2))
            sim.schedule(0, lambda: spawn("y", 2))
            sim.schedule(3, lambda: order.append("later"))
            sim.run()
            return order

        batched_sim = Simulator()
        stepwise_sim = Simulator()
        stepwise_sim.tie_breaker = lambda batch: 0
        batched = cascade(batched_sim)
        stepwise = cascade(stepwise_sim)
        assert batched == stepwise
        assert batched[-1] == "later"
        assert len(batched) == 15  # 2 roots * (1 + 2 + 4) + "later"

    def test_same_cycle_cancellation_honoured_mid_batch(self):
        """An event cancelled by an earlier same-cycle event must not fire
        even though both were already due when the batch began."""
        sim = Simulator()
        fired = []
        victim_holder = {}
        sim.schedule(0, lambda: victim_holder["ev"].cancel())
        victim_holder["ev"] = sim.schedule(0, lambda: fired.append("victim"))
        sim.schedule(0, lambda: fired.append("survivor"))
        sim.run()
        assert fired == ["survivor"]
        assert sim.quiescent()

    def test_exception_mid_batch_leaves_queue_consistent(self):
        """A raising callback must leave the rest of the cycle queued
        exactly as the stepwise path would: the failed event consumed,
        later events intact and runnable."""
        sim = Simulator()
        fired = []
        sim.schedule(0, lambda: fired.append("before"))

        def boom():
            raise RuntimeError("hostile callback")

        sim.schedule(0, boom)
        sim.schedule(0, lambda: fired.append("after"))
        with pytest.raises(RuntimeError, match="hostile callback"):
            sim.run()
        assert fired == ["before"]
        assert sim.pending_events == 1
        sim.run()  # the surviving event is still dispatchable
        assert fired == ["before", "after"]
        assert sim.quiescent()

    def test_max_events_guard_fires_mid_batch(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(0, lambda: None)
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run(max_events=3)
        assert sim.events_processed == 3
        assert sim.pending_events == 2

    def test_hook_installed_mid_batch_resumes_stepwise(self):
        """A callback that installs a tie-breaker mid-cycle must see the
        rest of that cycle dispatched through the hooked path."""
        sim = Simulator()
        seen = []

        def install():
            def spy(batch):
                seen.append(len(batch))
                return 0
            sim.tie_breaker = spy

        sim.schedule(0, install)
        sim.schedule(0, lambda: None)
        sim.schedule(0, lambda: None)
        sim.run()
        assert seen == [2]  # remaining two same-cycle events hit the hook

    def test_until_semantics_with_batches(self):
        sim = Simulator()
        fired = []
        sim.schedule(2, lambda: fired.append("a"))
        sim.schedule(2, lambda: fired.append("b"))
        sim.schedule(9, lambda: fired.append("late"))
        sim.run(until=5)
        assert fired == ["a", "b"]
        assert sim.now == 5
        sim.run()
        assert fired == ["a", "b", "late"]
        assert sim.now == 9
