"""Runtime confirmation: CONFIRMED witnesses with replayable schedules."""

import pytest

from repro.analysis.explore.controller import Schedule
from repro.analysis.explore.mutations import MUTATIONS
from repro.analysis.explore.scenarios import SCENARIOS
from repro.analysis.races import lint_races
from repro.analysis.races.confirm import (
    CONFIRMED, UNOBSERVED, _predicate_for, _run_probe, confirm_finding,
    starvation_pressure,
)

FAILED_CIDS_KEY = ("SB504 src/repro/core/directory_engine.py::"
                   "ScalableBulkDirectory:failed_cids:leak")


def finding_by_key(key):
    match = [f for f in lint_races() if f.key == key]
    assert match, key
    return match[0]


@pytest.fixture(scope="module")
def tombstone_witness():
    """One shared confirm run: the failed_cids tombstone is CONFIRMED on
    the very first nominal cross3 probe (no schedule randomization)."""
    finding = finding_by_key(FAILED_CIDS_KEY)
    return confirm_finding(finding, scenarios=("cross3",),
                           runs_per_scenario=1)


class TestNominalConfirmation:
    def test_tombstone_leak_is_confirmed(self, tombstone_witness):
        w = tombstone_witness
        assert w.status == CONFIRMED
        assert w.scenario == "cross3"
        assert w.code == "SB504" and w.key == FAILED_CIDS_KEY

    def test_witness_schedule_is_replayable(self, tombstone_witness):
        """Acceptance: the witness carries a schedule that reproduces the
        confirmed interleaving when replayed from JSON."""
        w = tombstone_witness
        assert w.schedule is not None
        schedule = Schedule.from_json(w.schedule)
        finding = finding_by_key(FAILED_CIDS_KEY)
        predicate = _predicate_for(finding)
        probe = _run_probe(SCENARIOS[w.scenario], schedule, None, None)
        assert predicate(probe)

    def test_witness_json_round_trip(self, tombstone_witness):
        payload = tombstone_witness.to_json()
        assert payload["status"] == CONFIRMED
        assert payload["schedule"] == tombstone_witness.schedule
        assert set(payload) == {"key", "code", "status", "scenario",
                                "schedule", "runs", "detail"}


class TestUnobserved:
    def test_unconfirmable_finding_reports_unobserved(self):
        """A finding whose interleaving never occurs nominally must come
        back UNOBSERVED, not crash — here: a leak on an attribute that is
        always reconciled (cst) by rewriting the finding key."""
        finding = finding_by_key(FAILED_CIDS_KEY)
        import dataclasses
        fake = dataclasses.replace(
            finding,
            anchor="ScalableBulkDirectory:cst:leak",
            message=finding.message.replace("failed_cids", "cst"))
        w = confirm_finding(fake, scenarios=("cross3",), runs_per_scenario=1)
        assert w.status == UNOBSERVED
        assert w.schedule is None


@pytest.mark.slow
class TestSeededRuntimeConfirmation:
    """Acceptance: >=1 seeded bug CONFIRMED by the sanitizer.  The
    reservation leak only engages under starvation pressure (the runtime
    twin is chaos-only), so the probe lowers the per-instance threshold."""

    def test_reservation_leak_confirmed_under_pressure(self, monkeypatch):
        import repro.analysis.races.confirm as confirm_mod
        # the leak wedges the protocol into livelock: a short probe shows
        # the access pattern without fingerprinting the full budget
        monkeypatch.setattr(confirm_mod, "PROBE_MAX_EVENTS", 6000)
        finding = finding_by_key(FAILED_CIDS_KEY)
        import dataclasses
        seeded = dataclasses.replace(
            finding,
            anchor="ScalableBulkDirectory:reserved_for:leak",
            message="seeded reservation leak")
        w = confirm_finding(
            seeded, mutation=starvation_pressure(MUTATIONS["reservation-leak"]),
            scenarios=("cross2",), runs_per_scenario=1)
        assert w.status == CONFIRMED, w.detail
        assert w.schedule is not None
