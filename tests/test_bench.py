"""Tests for the benchmark harness (repro.harness.bench)."""

import copy
import json

import pytest

from repro.harness import bench


def _valid_doc(calibration=1_000_000.0, jobs=1, cpus=4):
    """A minimal schema-valid document for validator/comparator tests."""
    return {
        "schema": bench.SCHEMA,
        "date": "2026-08-05",
        "host": {"python": "3.11.7", "platform": "test", "cpus": cpus},
        "config": {"quick": True, "jobs": jobs, "repeat": 1},
        "calibration_ops_per_sec": calibration,
        "micro": {
            "signature_insert": {"ops": 1000, "seconds": 0.01,
                                 "ops_per_sec": 100_000.0},
        },
        "macro": {
            "LU/4/ScalableBulk": {"app": "LU", "protocol": "ScalableBulk",
                                  "n_cores": 4, "chunks": 1,
                                  "wall_seconds": 0.5, "total_cycles": 5000,
                                  "chunks_committed": 4,
                                  "cycles_per_sec": 10_000.0},
        },
    }


class TestValidate:
    def test_valid_document_passes(self):
        assert bench.validate_bench(_valid_doc()) == []

    def test_non_dict_rejected(self):
        assert bench.validate_bench([1, 2]) == ["document is not a JSON object"]

    def test_wrong_schema_rejected(self):
        doc = _valid_doc()
        doc["schema"] = "repro-bench-v0"
        assert any("schema" in e for e in bench.validate_bench(doc))

    @pytest.mark.parametrize("section", ["micro", "macro"])
    def test_empty_sections_rejected(self, section):
        doc = _valid_doc()
        doc[section] = {}
        assert any(section in e for e in bench.validate_bench(doc))

    def test_missing_calibration_rejected(self):
        doc = _valid_doc()
        del doc["calibration_ops_per_sec"]
        assert any("calibration" in e for e in bench.validate_bench(doc))

    def test_nonpositive_throughput_rejected(self):
        doc = _valid_doc()
        doc["micro"]["signature_insert"]["ops_per_sec"] = 0
        assert any("non-positive" in e for e in bench.validate_bench(doc))

    def test_missing_macro_field_rejected(self):
        doc = _valid_doc()
        del doc["macro"]["LU/4/ScalableBulk"]["cycles_per_sec"]
        assert any("cycles_per_sec" in e for e in bench.validate_bench(doc))


def _profile_section(share_a=30.0, share_other=70.0):
    return {
        "schema": "repro-profile-v1",
        "wall_ns": 1_000_000,
        "scopes": {"engine.dispatch": {"count": 10, "total_ns": 300_000,
                                       "self_ns": 300_000}},
        "shares": {"engine.dispatch": share_a, "other": share_other},
    }


class TestValidateProfile:
    def test_valid_section_passes(self):
        assert bench._validate_profile(_profile_section()) == []

    def test_non_object_and_missing_shares(self):
        assert bench._validate_profile("nope") == ["not an object"]
        assert bench._validate_profile({}) == ["shares missing or empty"]

    def test_shares_off_100_rejected(self):
        bad = _profile_section(share_a=30.0, share_other=50.0)  # sums to 80
        assert any("expected 100" in e for e in bench._validate_profile(bad))

    def test_negative_share_rejected(self):
        bad = _profile_section(share_a=-5.0, share_other=105.0)
        assert any("negative" in e for e in bench._validate_profile(bad))

    def test_missing_scopes_rejected(self):
        bad = _profile_section()
        del bad["scopes"]
        assert any("scopes" in e for e in bench._validate_profile(bad))

    def test_validate_bench_checks_embedded_profiles(self):
        doc = _valid_doc()
        doc["profile"] = _profile_section(share_a=30.0, share_other=50.0)
        errors = bench.validate_bench(doc)
        assert any("profile" in e and "expected 100" in e for e in errors)
        doc["profile"] = _profile_section()
        doc["macro"]["LU/4/ScalableBulk"]["profile"] = _profile_section()
        assert bench.validate_bench(doc) == []


class TestCompare:
    def test_identical_documents_have_no_regressions(self):
        doc = _valid_doc()
        assert bench.compare_bench(doc, copy.deepcopy(doc)) == []

    def test_large_slowdown_flagged(self):
        old, new = _valid_doc(), _valid_doc()
        new["micro"]["signature_insert"]["ops_per_sec"] = 50_000.0  # -50%
        regressions = bench.compare_bench(old, new, threshold=0.20)
        assert len(regressions) == 1
        assert "micro/signature_insert" in regressions[0]

    def test_small_slowdown_within_threshold_passes(self):
        old, new = _valid_doc(), _valid_doc()
        new["micro"]["signature_insert"]["ops_per_sec"] = 90_000.0  # -10%
        assert bench.compare_bench(old, new, threshold=0.20) == []

    def test_calibration_normalization_cancels_host_speed(self):
        # New host is 2x faster (calibration doubled) and raw throughput
        # doubled too: normalized ratio unchanged -> no regression.
        old = _valid_doc(calibration=1_000_000.0)
        new = _valid_doc(calibration=2_000_000.0)
        new["micro"]["signature_insert"]["ops_per_sec"] = 200_000.0
        new["macro"]["LU/4/ScalableBulk"]["cycles_per_sec"] = 20_000.0
        assert bench.compare_bench(old, new, threshold=0.20) == []

    def test_same_raw_speed_on_faster_host_is_a_regression(self):
        # Host got 2x faster but the simulator did not: normalized
        # throughput halved -> regression.
        old = _valid_doc(calibration=1_000_000.0)
        new = _valid_doc(calibration=2_000_000.0)
        regressions = bench.compare_bench(old, new, threshold=0.20)
        assert len(regressions) == 2  # micro + macro both halved

    def test_speedup_is_never_a_regression(self):
        old, new = _valid_doc(), _valid_doc()
        new["micro"]["signature_insert"]["ops_per_sec"] = 1e9
        new["macro"]["LU/4/ScalableBulk"]["cycles_per_sec"] = 1e9
        assert bench.compare_bench(old, new) == []

    def test_only_shared_keys_compared(self):
        old, new = _valid_doc(), _valid_doc()
        old["micro"]["gone"] = {"ops": 1, "seconds": 1.0, "ops_per_sec": 1e12}
        new["micro"]["new"] = {"ops": 1, "seconds": 1.0, "ops_per_sec": 1.0}
        assert bench.compare_bench(old, new) == []


class TestMacroReliability:
    def test_jobs_within_cores_is_reliable(self):
        assert bench.macro_reliable(_valid_doc(jobs=2, cpus=4))

    def test_oversubscribed_run_is_unreliable(self):
        assert not bench.macro_reliable(_valid_doc(jobs=4, cpus=1))

    def test_oversubscribed_macro_slowdown_is_not_gated(self):
        # Wall-clock doubled because two workers shared one core; the
        # comparator must not blame the simulator for it.
        old = _valid_doc()
        new = _valid_doc(jobs=2, cpus=1)
        new["macro"]["LU/4/ScalableBulk"]["cycles_per_sec"] = 1_000.0
        assert bench.compare_bench(old, new, threshold=0.20) == []
        # ... but a micro regression in the same document still gates
        new["micro"]["signature_insert"]["ops_per_sec"] = 1_000.0
        assert len(bench.compare_bench(old, new, threshold=0.20)) == 1


class TestMicroBenches:
    @pytest.mark.parametrize("name", sorted(bench.MICRO_BENCHES))
    def test_micro_bench_reports_sane_numbers(self, name):
        result = bench.MICRO_BENCHES[name](512)
        assert result["ops"] >= 512
        assert result["seconds"] > 0
        assert result["ops_per_sec"] > 0

    def test_run_micro_best_of_repeat(self):
        result = bench.run_micro("signature_insert", quick=True, repeat=2)
        assert result["best_of"] == 2
        assert result["ops"] == bench.MICRO_OPS["signature_insert"][1]


class TestMacroWorker:
    def test_worker_returns_plain_record(self):
        record = bench._macro_worker({"app": "LU", "n_cores": 4, "chunks": 1,
                                      "protocol": "ScalableBulk"})
        assert record["total_cycles"] > 0
        assert record["cycles_per_sec"] > 0
        assert record["chunks_committed"] == 4
        json.dumps(record)  # must be JSON-serializable as-is


class TestCli:
    def test_validate_file_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(_valid_doc()))
        assert bench.main(["--validate-file", str(path)]) == 0
        path.write_text(json.dumps({"schema": "bad"}))
        assert bench.main(["--validate-file", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_check_regression_exit_codes(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        old.write_text(json.dumps(_valid_doc()))
        doc = _valid_doc()
        doc["micro"]["signature_insert"]["ops_per_sec"] = 10.0
        new.write_text(json.dumps(doc))
        assert bench.main(["--check-regression", str(old), str(old)]) == 0
        assert bench.main(["--check-regression", str(old), str(new)]) == 1
        assert "regression" in capsys.readouterr().out
        # a looser threshold lets the same pair pass
        assert bench.main(["--check-regression", str(old), str(new),
                           "--threshold", "1.0"]) == 0
