"""Behavioural tests for the SEQ-PRO baseline."""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine
from repro.network.message import MessageType
from protocol_bench import ProtocolBench


def build(specs_by_core, n_cores=4, **overrides):
    config = SystemConfig(n_cores=n_cores, seed=3,
                          protocol=ProtocolKind.SEQ, **overrides)
    remaining = {c: list(s) for c, s in specs_by_core.items()}

    def next_spec(core_id):
        lst = remaining.get(core_id)
        return lst.pop(0) if lst else None

    return Machine(config, next_spec=next_spec)


def disjoint_specs(core, n=3):
    base = 32 * (7000 + 300 * core)
    return [ChunkSpec(200, [ChunkAccess(1, base + 32 * i, True)])
            for i in range(n)]


def same_dir_disjoint_specs(core, n=2):
    base = 32 * 8192 + 32 * core
    return [ChunkSpec(400, [ChunkAccess(1, base, True)]) for _ in range(n)]


class TestOccupation:
    def test_all_chunks_commit(self):
        m = build({c: disjoint_specs(c) for c in range(4)})
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 12

    def test_modules_freed_at_quiescence(self):
        m = build({c: disjoint_specs(c) for c in range(4)})
        m.run()
        for d in m.directories:
            assert d.occupant is None
            assert not d.queue

    def test_occupation_counts(self):
        m = build({0: disjoint_specs(0, n=2)})
        m.run()
        assert sum(d.occupations for d in m.directories) >= 2

    def test_ascending_occupation_order(self):
        """Occupy messages for a multi-dir commit go lowest module first."""
        m = build({0: [ChunkSpec(300, [
            ChunkAccess(1, 32 * 128 * 100, True),    # page 100 -> dir 1
            ChunkAccess(1, 32 * 128 * 228, True),    # page 228 -> dir 3
        ])]}, n_cores=4)
        m.page_mapper.premap(100, 1)
        m.page_mapper.premap(228, 3)
        occupies = []
        orig_send = m.network.send

        def spy(msg):
            if msg.mtype is MessageType.SEQ_OCCUPY:
                occupies.append(m.network.tile_of(msg.dst))
            return orig_send(msg)

        m.network.send = spy
        m.run()
        assert occupies == sorted(occupies)
        assert len(occupies) >= 2

    def test_same_dir_commits_serialize(self):
        m = build({c: same_dir_disjoint_specs(c) for c in range(4)})
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 8

    def test_queue_forms_under_contention(self):
        m = build({c: same_dir_disjoint_specs(c, n=3) for c in range(4)})
        m.run()
        assert max(m.protocol.stats.queue_samples, default=0) >= 1


class TestConflictsAndAborts:
    def test_conflicting_chunks_recover(self):
        line = 32 * 9000
        specs = lambda: [ChunkSpec(300, [ChunkAccess(1, line, True),
                                         ChunkAccess(1, line + 32, False)])
                         for _ in range(3)]
        m = build({0: specs(), 1: specs()})
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 6
        for d in m.directories:
            assert d.occupant is None

    def test_release_drains_queues(self):
        line = 32 * 9000
        specs = lambda: [ChunkSpec(250, [ChunkAccess(1, line, True)])
                         for _ in range(4)]
        m = build({c: specs() for c in range(4)})
        m.run()
        assert all(c.finished for c in m.cores)
        for d in m.directories:
            assert not d.queue
