"""Determinism lint (SB301-SB304): repo clean under baseline, defects caught."""

import textwrap

from repro.analysis import Baseline, lint_determinism, lint_source
from repro.analysis.findings import apply_pragmas, repo_paths


def run_snippet(code: str):
    return lint_source("src/repro/_synthetic.py", textwrap.dedent(code))


def codes(findings):
    return {f.code for f in findings}


class TestRepoIsClean:
    def test_no_fresh_findings(self):
        _, repo_root = repo_paths()
        baseline = Baseline.load(repo_root / "lint-baseline.txt")
        kept, _pragma = apply_pragmas(lint_determinism(), repo_root)
        fresh, _suppressed, _stale = baseline.split(kept)
        fresh = [f for f in fresh if f.code.startswith("SB3")]
        assert fresh == [], "\n".join(f.render() for f in fresh)

    def test_wall_clock_reads_are_pragma_suppressed(self):
        """The bench/sweep wall-clock reads moved from baseline entries to
        inline `# repro: allow SB304` pragmas on their own lines."""
        _, repo_root = repo_paths()
        sb304 = [f for f in lint_determinism() if f.code == "SB304"]
        assert sb304, "expected wall-clock findings in bench/sweep"
        _kept, pragma = apply_pragmas(sb304, repo_root)
        assert {f.key for f in pragma} == {f.key for f in sb304}

    def test_rng_module_exempt_from_sb302(self):
        findings = [f for f in lint_determinism()
                    if f.code == "SB302" and "engine/rng" in f.path]
        assert findings == []


class TestSeededDefects:
    """Acceptance criterion (c): set iteration feeding the scheduler."""

    def test_set_iteration_into_scheduler_is_sb301(self):
        findings = run_snippet('''
            class Directory:
                def flush(self, pending):
                    for core in set(pending):
                        self.sim.schedule(1, lambda: None)
        ''')
        assert codes(findings) == {"SB301"}
        assert "set" in findings[0].message

    def test_annotated_set_attribute_is_sb301(self):
        findings = run_snippet('''
            from typing import Set

            class Directory:
                def __init__(self):
                    self.waiting: Set[int] = set()

                def kick(self):
                    for core in self.waiting:
                        self.network.unicast("x", None, core)
        ''')
        assert "SB301" in codes(findings)

    def test_helper_reaching_scheduler_is_sb301(self):
        """Interprocedural: the send is one self-call away from the loop."""
        findings = run_snippet('''
            class Directory:
                def sweep(self, table):
                    for entry in table.values():
                        self._fail(entry)

                def _fail(self, entry):
                    self.network.multicast("g_failure", None, [])
        ''')
        assert "SB301" in codes(findings)

    def test_sorted_iteration_is_clean(self):
        findings = run_snippet('''
            class Directory:
                def flush(self, pending):
                    for core in sorted(set(pending)):
                        self.sim.schedule(1, lambda: None)
        ''')
        assert findings == []

    def test_loop_without_scheduling_is_clean(self):
        findings = run_snippet('''
            def census(cores):
                total = 0
                for c in set(cores):
                    total += 1
                return total
        ''')
        assert findings == []

    def test_import_random_is_sb302(self):
        findings = run_snippet('''
            import random

            def jitter():
                return random.random()
        ''')
        assert "SB302" in codes(findings)

    def test_numpy_random_is_sb302(self):
        findings = run_snippet('''
            import numpy as np

            def noise():
                return np.random.rand()
        ''')
        assert "SB302" in codes(findings)

    def test_id_sort_key_is_sb303(self):
        findings = run_snippet('''
            def stable(chunks):
                return sorted(chunks, key=lambda c: id(c))
        ''')
        assert "SB303" in codes(findings)

    def test_id_membership_is_clean(self):
        """id() for identity membership (cpu/core.py idiom) is fine."""
        findings = run_snippet('''
            def survivors(chunks, victims):
                dead = {id(c) for c in victims}
                return [c for c in chunks if id(c) not in dead]
        ''')
        assert findings == []

    def test_wall_clock_is_sb304(self):
        findings = run_snippet('''
            import time

            def stamp(sim):
                return time.time() - sim.now
        ''')
        assert "SB304" in codes(findings)


class TestAnchors:
    def test_anchor_is_enclosing_qualname(self):
        findings = run_snippet('''
            import time

            class Harness:
                def run(self):
                    return time.perf_counter()
        ''')
        assert findings[0].anchor == "Harness.run"
