"""Cross-cutting property-based tests (hypothesis)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import SystemConfig
from repro.engine.events import Simulator
from repro.memory.hierarchy import CacheHierarchy
from repro.network.message import MessageType, core_node
from repro.network.noc import Network
from repro.signatures.bulk_signature import SignatureFactory


class TestNocProperties:
    @given(st.lists(st.sampled_from([MessageType.G, MessageType.BULK_INV,
                                     MessageType.COMMIT_REQUEST]),
                    min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_same_pair_fifo_ordering(self, mtypes):
        """Messages between one (src, dst) pair arrive in send order, even
        with mixed sizes and link contention."""
        config = SystemConfig(n_cores=16, network_contention=True)
        sim = Simulator()
        net = Network(config, sim)
        arrivals = []
        net.register(core_node(9), lambda m: arrivals.append(m.payload["i"]))
        for i, mt in enumerate(mtypes):
            net.unicast(mt, core_node(0), core_node(9), ctag="c", i=i)
        sim.run()
        assert arrivals == sorted(arrivals)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_delivery_always_happens(self, src, dst):
        config = SystemConfig(n_cores=16)
        sim = Simulator()
        net = Network(config, sim)
        got = []
        net.register(core_node(dst), got.append)
        net.unicast(MessageType.G, core_node(src), core_node(dst), ctag="c",
                    inval_vec=set(), order=())
        sim.run()
        assert len(got) == 1

    def test_contention_never_faster_than_ideal(self):
        for contention in (False, True):
            config = SystemConfig(n_cores=16,
                                  network_contention=contention)
            sim = Simulator()
            net = Network(config, sim)
            times = []
            net.register(core_node(5), lambda m: times.append(sim.now))
            for _ in range(5):
                net.unicast(MessageType.BULK_INV, core_node(0), core_node(5),
                            ctag="c")
            sim.run()
            if contention:
                contended_last = times[-1]
            else:
                ideal_last = times[-1]
        assert contended_last >= ideal_last


class TestHierarchyProperties:
    @given(st.lists(st.tuples(st.integers(0, 200), st.booleans()),
                    min_size=1, max_size=150))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_spec_marks_consistent_with_tracking(self, accesses):
        config = SystemConfig(n_cores=4)
        hier = CacheHierarchy(0, config)
        for line, is_write in accesses:
            res = hier.access(line, is_write, "tag")
            if res.remote:
                hier.fill_remote(line, is_write=is_write, ctag="tag")
        # every L2 line marked speculative must be tracked (or vice versa:
        # tracked lines that are still resident must be marked)
        tracked = hier.spec_lines.get("tag", set())
        for line in tracked:
            l2line = hier.l2.peek(line)
            if l2line is not None:
                assert l2line.spec_writer == "tag"

    @given(st.lists(st.tuples(st.integers(0, 200), st.booleans()),
                    min_size=1, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_commit_clears_all_spec_marks(self, accesses):
        config = SystemConfig(n_cores=4)
        hier = CacheHierarchy(0, config)
        for line, is_write in accesses:
            res = hier.access(line, is_write, "tag")
            if res.remote:
                hier.fill_remote(line, is_write=is_write, ctag="tag")
        hier.commit_chunk("tag")
        for line in hier.l2.resident_lines():
            assert hier.l2.peek(line).spec_writer != "tag"

    @given(st.lists(st.tuples(st.integers(0, 200), st.booleans()),
                    min_size=1, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_squash_removes_all_written_lines(self, accesses):
        config = SystemConfig(n_cores=4)
        hier = CacheHierarchy(0, config)
        written = set()
        for line, is_write in accesses:
            res = hier.access(line, is_write, "tag")
            if res.remote:
                hier.fill_remote(line, is_write=is_write, ctag="tag")
            if is_write:
                written.add(line)
        hier.squash_chunk("tag")
        for line in hier.l2.resident_lines():
            assert hier.l2.peek(line).spec_writer is None


class TestSignatureAnalytics:
    @given(st.integers(10, 120))
    @settings(max_examples=15, deadline=None)
    def test_empirical_fp_matches_analytic_order(self, n_lines):
        factory = SignatureFactory(total_bits=2048, n_banks=4, seed=3)
        sig = factory.from_lines(range(n_lines))
        analytic = sig.false_positive_probability()
        probes = 30_000
        fp = sum(1 for i in range(probes) if sig.contains(10**7 + i))
        empirical = fp / probes
        # same order of magnitude (loose: within 10x either way, plus an
        # absolute floor for tiny rates)
        assert empirical <= analytic * 10 + 3e-4
        if analytic > 1e-3:
            assert empirical >= analytic / 10
