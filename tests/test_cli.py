"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_run_command(self, capsys):
        assert main(["run", "LU", "--cores", "4", "--chunks", "1"]) == 0
        out = capsys.readouterr().out
        assert "LU on 4 cores" in out
        assert "Useful" in out

    def test_run_with_protocol(self, capsys):
        assert main(["run", "LU", "--cores", "4", "--chunks", "1",
                     "--protocol", "seq"]) == 0
        assert "SEQ" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert main(["compare", "LU", "--cores", "4", "--chunks", "1"]) == 0
        out = capsys.readouterr().out
        for proto in ("ScalableBulk", "TCC", "SEQ", "BulkSC"):
            assert proto in out

    def test_apps_command(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "Radix" in out and "Facesim" in out
        assert out.count("splash2") == 11
        assert out.count("parsec") == 7

    def test_sweep_delegation(self, tmp_path, capsys):
        rc = main(["sweep", "--apps", "LU", "--cores", "4", "--chunks", "1",
                   "--json", str(tmp_path / "s.json"),
                   "--markdown", str(tmp_path / "m.md")])
        assert rc == 0
        assert (tmp_path / "m.md").exists()

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "LU", "--protocol", "mesi"])


class TestExploreCli:
    def test_explore_list(self, capsys):
        assert main(["explore", "--list"]) == 0
        out = capsys.readouterr().out
        assert "cross3" in out and "drop-commit-nack" in out

    def test_explore_single_scenario_clean(self, capsys):
        assert main(["explore", "--scenario", "pair",
                     "--schedules", "10"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_explore_catches_mutation_and_replays(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["explore", "--mutate", "skip-w-intersection",
                     "--schedules", "40", "--save", str(trace)]) == 0
        assert "caught" in capsys.readouterr().out
        assert trace.exists()
        assert main(["explore", "--replay", str(trace)]) == 0

    def test_explore_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "--scenario", "nope"])

    def test_run_with_oracle_flag(self, capsys):
        assert main(["run", "LU", "--cores", "4", "--chunks", "1",
                     "--oracle"]) == 0
        assert "LU on 4 cores" in capsys.readouterr().out
