"""Shared fixtures: small machines that keep the protocol behaviour intact."""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.engine.events import Simulator
from repro.signatures.bulk_signature import SignatureFactory


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def sig_factory():
    return SignatureFactory(total_bits=2048, n_banks=4, seed=7)


@pytest.fixture
def small_config():
    """A 4-core machine (2x2 torus) with the Table 2 cache geometry."""
    return SystemConfig(n_cores=4, seed=7)


@pytest.fixture
def nine_config():
    """A 9-core machine, handy for multi-directory group scenarios."""
    return SystemConfig(n_cores=9, seed=7)


def make_config(n_cores=4, protocol=ProtocolKind.SCALABLEBULK, **kw):
    return SystemConfig(n_cores=n_cores, protocol=protocol, seed=7, **kw)


@pytest.fixture
def config_factory():
    return make_config
