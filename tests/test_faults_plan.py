"""FaultPlan/FaultSpec: validation and the JSON fixed-point property."""

import json

import pytest

from repro.faults.campaign import generate_campaign
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec, PLAN_VERSION


class TestFaultSpec:
    def test_make_validates_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec.make("meteor-strike", start=0, duration=1)

    def test_make_rejects_missing_params(self):
        with pytest.raises(ValueError, match="missing params"):
            FaultSpec.make("latency-spike", start=0, duration=1, extra=5)

    def test_make_rejects_extra_params(self):
        with pytest.raises(ValueError, match="unexpected"):
            FaultSpec.make("squash-storm", start=0, duration=1, prob=0.5,
                           color="red")

    def test_getitem(self):
        spec = FaultSpec.make("dir-stall", dir=2, start=10, duration=100,
                              extra=7)
        assert spec["dir"] == 2
        assert spec["extra"] == 7
        with pytest.raises(KeyError):
            spec["nope"]

    def test_every_kind_round_trips(self):
        samples = {
            "latency-spike": dict(start=0, duration=9, extra=3, jitter=2),
            "link-hotspot": dict(tile=1, start=5, duration=9, extra=3),
            "dir-stall": dict(dir=0, start=5, duration=9, extra=3),
            "squash-storm": dict(start=5, duration=9, prob=0.66),
            "core-jitter": dict(core=2, start=5, duration=9, max_extra=4),
        }
        assert set(samples) == set(FAULT_KINDS)
        for kind, params in samples.items():
            spec = FaultSpec.make(kind, **params)
            assert FaultSpec.from_json(spec.to_json()) == spec


class TestFaultPlanJson:
    def _plan(self):
        return FaultPlan(name="p", seed=42, faults=(
            FaultSpec.make("latency-spike", start=0, duration=100, extra=9,
                           jitter=4),
            FaultSpec.make("squash-storm", start=50, duration=500, prob=0.8),
        ))

    def test_serialize_deserialize_serialize_fixed_point(self):
        """The property the campaign machinery leans on everywhere."""
        plan = self._plan()
        once = plan.dumps()
        twice = FaultPlan.loads(once).dumps()
        assert once == twice
        assert FaultPlan.loads(once) == plan

    def test_generated_plans_hold_the_fixed_point(self):
        for _scenario, plan in generate_campaign(seed=3, n_plans=14):
            assert FaultPlan.loads(plan.dumps()).dumps() == plan.dumps()

    def test_version_gate(self):
        bad = json.loads(self._plan().dumps())
        bad["version"] = PLAN_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_json(bad)

    def test_empty_plan(self):
        plan = FaultPlan.empty(seed=7)
        assert plan.faults == ()
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_with_faults_keeps_identity(self):
        plan = self._plan()
        shrunk = plan.with_faults([plan.faults[1]])
        assert shrunk.name == plan.name
        assert shrunk.seed == plan.seed
        assert shrunk.faults == (plan.faults[1],)


class TestCampaignGeneration:
    def test_same_seed_same_campaign(self):
        a = generate_campaign(seed=5, n_plans=10)
        b = generate_campaign(seed=5, n_plans=10)
        assert a == b

    def test_different_seed_different_campaign(self):
        a = generate_campaign(seed=5, n_plans=10)
        b = generate_campaign(seed=6, n_plans=10)
        assert a != b

    def test_campaign_prefix_stable(self):
        """Raising --plans only appends: each plan's substream is keyed by
        its index, never by draw order."""
        short = generate_campaign(seed=5, n_plans=5)
        long = generate_campaign(seed=5, n_plans=10)
        assert long[:5] == short

    def test_no_squash_storm_on_baseline_scenarios(self):
        for scenario, plan in generate_campaign(seed=1, n_plans=28):
            if scenario in ("tcc3", "bulksc3", "seq3"):
                kinds = {f.kind for f in plan.faults}
                assert "squash-storm" not in kinds, (scenario, kinds)
