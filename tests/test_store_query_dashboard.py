"""Trend extraction, regression gating and the HTML dashboard exporter."""

import pytest

from repro.store import dashboard, query
from repro.store.db import ResultStore
from repro.store.schema import (KIND_BENCH_MICRO, KIND_SWEEP, Record,
                                STATUS_FAILED)


@pytest.fixture()
def store(tmp_path):
    with ResultStore(tmp_path / "r.db") as s:
        yield s


def put_series(store, kind, series, values_by_rev, metric="cycles_per_sec",
               extra_metrics=None, **kw):
    """One row per (rev, value) for a series."""
    for rev, value in values_by_rev.items():
        metrics = {metric: value}
        if extra_metrics:
            metrics.update(extra_metrics)
        store.put(Record(kind=kind, cell_key=f"{series}@{rev}",
                         series=series, git_rev=rev, metrics=metrics,
                         payload={"v": value}, **kw))


class TestTrend:
    def test_points_follow_first_seen_revision_order(self, store):
        put_series(store, KIND_SWEEP, "LU/8/TCC/8",
                   {"r1": 100.0, "r2": 110.0, "r3": 90.0})
        points = query.trend(store, KIND_SWEEP, "cycles_per_sec",
                             series="LU/8/TCC/8")
        assert [(p.git_rev, p.value) for p in points] \
            == [("r1", 100.0), ("r2", 110.0), ("r3", 90.0)]

    def test_same_rev_rows_average(self, store):
        store.put(Record(kind=KIND_SWEEP, cell_key="a", series="s",
                         git_rev="r1", app="LU",
                         metrics={"cycles_per_sec": 100.0}))
        store.put(Record(kind=KIND_SWEEP, cell_key="b", series="s2",
                         git_rev="r1", app="LU",
                         metrics={"cycles_per_sec": 300.0}))
        points = query.trend(store, KIND_SWEEP, "cycles_per_sec", app="LU")
        assert len(points) == 1
        assert points[0].value == pytest.approx(200.0)
        assert points[0].n_samples == 2

    def test_last_window_and_failed_rows_excluded(self, store):
        put_series(store, KIND_SWEEP, "s",
                   {"r1": 1.0, "r2": 2.0, "r3": 3.0})
        store.put(Record(kind=KIND_SWEEP, cell_key="s@r4", series="s",
                         git_rev="r4", status=STATUS_FAILED,
                         metrics={"cycles_per_sec": 999.0}))
        points = query.trend(store, KIND_SWEEP, "cycles_per_sec",
                             series="s", last=2)
        assert [p.git_rev for p in points] == ["r2", "r3"]

    def test_calibration_normalization(self, store):
        put_series(store, KIND_BENCH_MICRO, "sig", {"r1": 100.0},
                   metric="ops_per_sec", extra_metrics={"calibration": 4.0})
        raw = query.trend(store, KIND_BENCH_MICRO, "ops_per_sec",
                          series="sig")
        norm = query.trend(store, KIND_BENCH_MICRO, "ops_per_sec",
                           series="sig", normalize=True)
        assert raw[0].value == 100.0
        assert norm[0].value == pytest.approx(25.0)


class TestCheckRegressions:
    def test_higher_is_better_regression_detected(self, store):
        put_series(store, KIND_SWEEP, "s", {"r1": 100.0, "r2": 80.0})
        regs = query.check_regressions(store, KIND_SWEEP, "cycles_per_sec",
                                       threshold=0.10)
        assert len(regs) == 1
        assert regs[0].baseline_rev == "r1"
        assert regs[0].drop_pct == pytest.approx(20.0)
        assert "worse than rev r1" in regs[0].render()

    def test_within_threshold_passes(self, store):
        put_series(store, KIND_SWEEP, "s", {"r1": 100.0, "r2": 95.0})
        assert query.check_regressions(store, KIND_SWEEP, "cycles_per_sec",
                                       threshold=0.10) == []

    def test_lower_is_better_inferred_from_name(self, store):
        put_series(store, KIND_SWEEP, "s", {"r1": 50.0, "r2": 80.0},
                   metric="mean_commit_latency")
        regs = query.check_regressions(store, KIND_SWEEP,
                                       "mean_commit_latency",
                                       threshold=0.10)
        assert len(regs) == 1  # latency went up: that's the regression

    def test_single_revision_passes_vacuously(self, store):
        put_series(store, KIND_SWEEP, "s", {"r1": 100.0})
        assert query.check_regressions(store, KIND_SWEEP,
                                       "cycles_per_sec") == []

    def test_window_forgets_ancient_baselines(self, store):
        # r1 was the all-time best, but only the last 2 revisions gate
        put_series(store, KIND_SWEEP, "s",
                   {"r1": 1000.0, "r2": 100.0, "r3": 95.0})
        assert query.check_regressions(store, KIND_SWEEP, "cycles_per_sec",
                                       threshold=0.10, last=2) == []
        assert len(query.check_regressions(store, KIND_SWEEP,
                                           "cycles_per_sec",
                                           threshold=0.10, last=3)) == 1

    def test_improvement_never_flags(self, store):
        put_series(store, KIND_SWEEP, "s", {"r1": 100.0, "r2": 200.0})
        assert query.check_regressions(store, KIND_SWEEP,
                                       "cycles_per_sec") == []


class TestDashboard:
    def test_empty_store_renders_placeholder(self, store, tmp_path):
        out = tmp_path / "dash.html"
        dashboard.write_dashboard(store, out)
        html = out.read_text()
        assert "<svg" not in html
        assert "No plottable records yet" in html

    def test_charts_series_and_table(self, store, tmp_path):
        put_series(store, KIND_SWEEP, "LU/8/TCC/8",
                   {"r1": 100.0, "r2": 120.0},
                   extra_metrics={"mean_commit_latency": 30.0,
                                  "squash_rate": 0.01})
        put_series(store, KIND_BENCH_MICRO, "signature_insert",
                   {"r1": 5.0, "r2": 6.0}, metric="ops_per_sec")
        out = tmp_path / "dash.html"
        dashboard.write_dashboard(store, out, title="Test trends")
        html = out.read_text()
        assert "<svg" in html
        assert "Test trends" in html
        assert "LU/8/TCC/8" in html
        assert "signature_insert" in html
        assert "<details>" in html          # data-table fallback
        assert "prefers-color-scheme: dark" in html
        assert "<title>" in html            # per-marker tooltips

    def test_failed_cells_listed(self, store, tmp_path):
        store.put(Record(kind=KIND_SWEEP, cell_key="LU/8/TCC/8/c1/s0",
                         series="LU/8/TCC/8", git_rev="r1",
                         status=STATUS_FAILED,
                         error="ValueError('boom')", payload={}))
        out = tmp_path / "dash.html"
        dashboard.write_dashboard(store, out)
        html = out.read_text()
        assert "Failed cells" in html
        assert "ValueError" in html

    def test_series_cap_folds_to_table(self, store, tmp_path):
        for i in range(12):
            put_series(store, KIND_BENCH_MICRO, f"bench_{i:02d}",
                       {"r1": float(i + 1), "r2": float(i + 2)},
                       metric="ops_per_sec")
        out = tmp_path / "dash.html"
        dashboard.write_dashboard(store, out)
        html = out.read_text()
        # at most 8 plotted series; the rest are table-only
        assert html.count('class="line"') <= 8 * html.count("<svg")
        assert "bench_11" in html  # still present in the data table

    def test_perfetto_trace_links(self, store, tmp_path):
        store.put(Record(kind=KIND_SWEEP, cell_key="LU/8/TCC/8",
                         series="LU/8/TCC/8", git_rev="r1",
                         metrics={"cycles_per_sec": 1.0},
                         payload={"total_cycles": 5,
                                  "trace_out": "traces/lu.json"}))
        out = tmp_path / "dash.html"
        dashboard.write_dashboard(store, out)
        assert "traces/lu.json" in out.read_text()
