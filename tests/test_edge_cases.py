"""Edge-case coverage: overflow truncation, deep pipelines, odd configs."""

import pytest

from repro.config import CacheConfig, ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine
from repro.network.message import NodeRef, arbiter_node, core_node
from repro.network.noc import Network
from repro.engine.events import Simulator


def tiny_cache_config(**kw):
    """A machine whose L1/L2 are so small that chunks overflow."""
    tiny_l1 = CacheConfig(size_bytes=4 * 32, assoc=2, line_bytes=32,
                          round_trip_cycles=2, mshr_entries=8)
    tiny_l2 = CacheConfig(size_bytes=8 * 32, assoc=2, line_bytes=32,
                          round_trip_cycles=8, mshr_entries=8)
    return SystemConfig(n_cores=4, seed=3, l1=tiny_l1, l2=tiny_l2,
                        protocol=ProtocolKind.SCALABLEBULK, **kw)


def build(config, specs_by_core):
    remaining = {c: list(s) for c, s in specs_by_core.items()}

    def next_spec(core_id):
        lst = remaining.get(core_id)
        return lst.pop(0) if lst else None

    return Machine(config, next_spec=next_spec)


class TestCacheOverflowTruncation:
    def test_spec_overflow_truncates_chunk(self):
        config = tiny_cache_config()
        # write far more distinct lines than the 16-line L2 can hold as
        # speculative data: the chunk must end early and still commit
        accesses = [ChunkAccess(1, 32 * (1000 + i * 8), True)
                    for i in range(24)]
        m = build(config, {0: [ChunkSpec(500, accesses)]})
        m.run()
        core = m.cores[0]
        assert core.stats.chunks_committed == 1
        assert core.stats.overflow_truncations >= 1
        rec = m.protocol.stats.commits[0]
        assert rec.n_dirs >= 1

    def test_overflow_then_more_chunks(self):
        config = tiny_cache_config()
        heavy = ChunkSpec(500, [ChunkAccess(1, 32 * (1000 + i * 8), True)
                                for i in range(24)])
        light = ChunkSpec(100, [ChunkAccess(1, 32 * 5000, False)])
        m = build(config, {0: [heavy, light]})
        m.run()
        assert m.cores[0].stats.chunks_committed == 2


class TestDeepCommitPipeline:
    def test_three_active_chunks(self):
        config = SystemConfig(n_cores=4, seed=3,
                              max_active_chunks_per_core=3)
        specs = [ChunkSpec(150, [ChunkAccess(1, 32 * (100 + 8 * i), True)])
                 for i in range(5)]
        m = build(config, {0: specs})
        m.run()
        assert m.cores[0].stats.chunks_committed == 5

    def test_single_active_chunk(self):
        config = SystemConfig(n_cores=4, seed=3,
                              max_active_chunks_per_core=1)
        specs = [ChunkSpec(150, [ChunkAccess(1, 32 * (100 + 8 * i), True)])
                 for i in range(3)]
        m = build(config, {0: specs})
        m.run()
        assert m.cores[0].stats.chunks_committed == 3


class TestMlpConfig:
    def test_mlp_disabled_still_works(self):
        config = SystemConfig(n_cores=4, seed=3, mlp_lookahead=1)
        specs = [ChunkSpec(300, [ChunkAccess(1, 32 * (100 + 128 * i), False)
                                 for i in range(4)])]
        m = build(config, {0: specs})
        m.run()
        assert m.cores[0].stats.chunks_committed == 1

    def test_mlp_reduces_stall(self):
        def run(mlp):
            config = SystemConfig(n_cores=4, seed=3, mlp_lookahead=mlp)
            specs = [ChunkSpec(300, [
                ChunkAccess(1, 32 * (100 + 128 * i), False)
                for i in range(6)])]
            m = build(config, {0: specs})
            m.run(prewarm=False) if hasattr(m.run, "prewarm") else m.run()
            return m.cores[0].stats.miss_stall_cycles

        assert run(4) < run(1)


class TestNetworkEdges:
    def test_agent_nodes_addressable(self):
        config = SystemConfig(n_cores=16)
        sim = Simulator()
        net = Network(config, sim)
        agent = arbiter_node(net.topology.center_tile())
        assert net.tile_of(agent) == net.topology.center_tile()

    def test_unknown_node_kind_rejected(self):
        config = SystemConfig(n_cores=16)
        net = Network(config, Simulator())
        with pytest.raises(ValueError):
            net.tile_of(NodeRef("ghost", 0))

    def test_link_snapshot(self):
        config = SystemConfig(n_cores=16)
        sim = Simulator()
        net = Network(config, sim)
        net.register(core_node(5), lambda m: None)
        from repro.network.message import MessageType
        net.unicast(MessageType.G, core_node(0), core_node(5), ctag="c",
                    inval_vec=set(), order=())
        snap = net.link_utilization_snapshot()
        assert snap  # at least one link was reserved


class TestWorkloadEdges:
    def test_zero_shared_pages_per_chunk(self):
        from repro.workloads.profiles import AppProfile
        from repro.workloads.generator import SyntheticWorkload
        profile = AppProfile(name="x", suite="splash2",
                             shared_pages_per_chunk=(0, 0), shared_frac=0.0)
        config = SystemConfig(n_cores=4, seed=3)
        w = SyntheticWorkload(profile, config, active_cores=4,
                              chunks_per_partition=1)
        spec = w.generate_chunk(0, 0)
        assert spec.n_accesses > 0

    def test_single_partition_machine(self):
        from repro.workloads.generator import SyntheticWorkload
        from repro.workloads.profiles import get_profile
        config = SystemConfig(n_cores=4, seed=3)
        w = SyntheticWorkload(get_profile("LU"), config, active_cores=1,
                              chunks_per_partition=2, n_partitions=1)
        m = Machine(config, workload=w)
        m.run()
        assert m.cores[0].stats.chunks_committed == 2
