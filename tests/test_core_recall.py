"""Surgical tests for the commit-recall paths (Section 3.4).

The recall rides a bulk_inv_ack and then a commit_done; the Collision
module must fail the recalled group whether the recall arrives before or
after the group's own messages — and must discard it if the group already
failed (Table 5's orderings).
"""

import pytest

from repro.cpu.chunk import ChunkTag
from repro.network.message import MessageType, core_node, dir_node
from protocol_bench import ProtocolBench


@pytest.fixture
def bench():
    return ProtocolBench(n_cores=9)


class TestRecallAtCollisionModule:
    def test_recall_before_messages_arms_watch(self, bench):
        d = bench.directories[2]
        failed_cid = (ChunkTag(1, 0, 0), 0)
        d._handle_recall(failed_cid)
        assert failed_cid in d.recall_watch
        assert bench.protocol.stats.commit_recalls == 1

    def test_armed_watch_fails_group_when_messages_assemble(self, bench):
        d = bench.directories[2]
        failed_cid = (ChunkTag(1, 0, 0), 0)
        d._handle_recall(failed_cid)
        # now the squashed chunk's commit_request arrives (singleton group)
        w = bench.line_homed_at(2)
        bench.send_commit(proc=1, writes=[w], seq=0)
        bench.run()
        # the group must have been failed, not formed
        assert ("failure", failed_cid) in bench.outcomes(1)
        assert failed_cid not in d.cst
        assert failed_cid not in d.recall_watch

    def test_recall_after_failure_discarded(self, bench):
        d = bench.directories[2]
        failed_cid = (ChunkTag(1, 0, 0), 0)
        d.failed_cids.add(failed_cid)  # g_failure already went out
        d._handle_recall(failed_cid)
        assert failed_cid not in d.recall_watch

    def test_recall_travels_in_commit_done(self, bench):
        """A commit_done carrying a recall triggers the watch at exactly
        the collision module named in it."""
        # give dir 2 a live CST entry for the winner so commit_done lands
        w = bench.line_homed_at(2)
        bench.add_sharer(w, proc=6)
        win_cid, _ = bench.send_commit(proc=0, writes=[w])
        bench.sim.run(until=15)  # entry exists, not yet complete
        failed_cid = (ChunkTag(3, 0, 0), 0)
        bench.network.unicast(
            MessageType.COMMIT_DONE, dir_node(1), dir_node(2),
            ctag=win_cid,
            recalls=[{"failed_cid": failed_cid, "collision_dir": 2}])
        bench.run()
        assert failed_cid in bench.directories[2].recall_watch

    def test_recall_for_other_module_ignored(self, bench):
        w = bench.line_homed_at(2)
        bench.add_sharer(w, proc=6)
        win_cid, _ = bench.send_commit(proc=0, writes=[w])
        bench.sim.run(until=15)
        failed_cid = (ChunkTag(3, 0, 0), 0)
        bench.network.unicast(
            MessageType.COMMIT_DONE, dir_node(1), dir_node(2),
            ctag=win_cid,
            recalls=[{"failed_cid": failed_cid, "collision_dir": 5}])
        bench.run()
        assert failed_cid not in bench.directories[2].recall_watch


class TestRecallEndToEnd:
    def test_oci_window_produces_recall(self):
        """Force the OCI window: a winner's bulk_inv reaches a processor
        whose own conflicting commit is in flight."""
        from repro.config import ProtocolKind, SystemConfig
        from repro.cpu.chunk import ChunkAccess, ChunkSpec
        from repro.harness.runner import Machine

        config = SystemConfig(n_cores=4, seed=1, oci=True,
                              protocol=ProtocolKind.SCALABLEBULK,
                              # long expansion widens the in-flight window
                              signature_expand_cycles=60)
        line = 32 * 128 * 777
        spec = lambda extra: ChunkSpec(
            200, [ChunkAccess(1, line, True),
                  ChunkAccess(1, line + 32 * extra, True)])
        remaining = {0: [spec(1) for _ in range(4)],
                     1: [spec(2) for _ in range(4)],
                     2: [spec(3) for _ in range(4)]}

        def next_spec(core_id):
            lst = remaining.get(core_id)
            return lst.pop(0) if lst else None

        m = Machine(config, next_spec=next_spec)
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 12
        # conflicts happened; the protocol stayed live and consistent
        assert sum(c.stats.squashes_conflict for c in m.cores) >= 1
        for d in m.directories:
            assert not d.cst
