"""`python -m repro lint` CLI: exit codes, pragmas, baselines, --jobs."""

import json

import pytest

from repro.analysis.cli import main as lint_main, run_all
from repro.analysis.findings import Baseline, repo_paths


class TestExitCodeMatrix:
    """code 0 = clean or fully suppressed; code 1 = fresh findings."""

    def test_repo_with_baseline_is_clean(self):
        assert lint_main([]) == 0

    def test_repo_with_races_and_baseline_is_clean(self):
        assert lint_main(["--races"]) == 0

    def test_races_without_baseline_fails(self):
        assert lint_main(["--no-baseline", "--races"]) == 1

    def test_non_races_passes_are_source_clean(self):
        """SB304 lives in inline pragmas and SB004 is resolved by the
        piggyback model: nothing left for the baseline to suppress."""
        assert lint_main(["--no-baseline"]) == 0

    def test_rules_filter_scopes_the_gate(self):
        assert lint_main(["--no-baseline", "--races", "--rules", "SB2"]) == 0
        assert lint_main(["--no-baseline", "--races", "--rules", "SB50"]) == 1


class TestJsonGolden:
    def payload(self, capsys, *args):
        lint_main(["--format", "json", *args])
        return json.loads(capsys.readouterr().out)

    def test_shape_and_counts(self, capsys):
        payload = self.payload(capsys, "--no-baseline", "--races")
        assert {"findings", "suppressed", "stale_baseline_keys",
                "pragma_suppressed"} <= set(payload)
        assert payload["suppressed"] == 0
        assert payload["pragma_suppressed"] > 0          # the SB304 pragmas
        assert len(payload["findings"]) >= 10            # the SB5xx tree
        for f in payload["findings"]:
            assert {"code", "path", "anchor", "message", "why"} <= set(f)
            assert f["code"].startswith("SB5") or not f["code"]

    def test_findings_sorted_by_code_path_anchor(self, capsys):
        """The merged report is ordered by (code, path, anchor) — the same
        total order regardless of --jobs or pass scheduling."""
        payload = self.payload(capsys, "--no-baseline", "--races", "--flows")
        got = [(f["code"], f["path"], f["anchor"])
               for f in payload["findings"]]
        assert got == sorted(got)

    def test_suppressed_run_reports_counts_only(self, capsys):
        payload = self.payload(capsys, "--races")
        assert payload["findings"] == []
        assert payload["suppressed"] > 0


class TestBaselineRoundTrip:
    def test_write_baseline_preserves_justifications(self, tmp_path, capsys):
        path = tmp_path / "baseline.txt"
        assert lint_main(["--races", "--write-baseline",
                          "--baseline", str(path)]) == 0
        first = Baseline.load(path)
        assert first.keys, "expected SB5xx entries"
        # hand-edit one justification, as a reviewer would
        chosen = sorted(first.keys)[0]
        text = path.read_text().replace(
            f"{chosen}  TODO: justify this entry",
            f"{chosen}  reviewed: per-cid entries are isolated")
        path.write_text(text)
        # regenerate: the hand-written justification must survive
        assert lint_main(["--races", "--write-baseline",
                          "--baseline", str(path)]) == 0
        again = Baseline.load(path)
        assert again.justifications[chosen] == \
            "reviewed: per-cid entries are isolated"
        others = [k for k in again.keys if k != chosen]
        assert all("TODO" in again.justifications[k] for k in others)
        assert lint_main(["--races", "--baseline", str(path)]) == 0

    def test_repo_baseline_round_trips_unchanged(self, tmp_path):
        """Rendering the real baseline back preserves every justification."""
        _, repo_root = repo_paths()
        live = Baseline.load(repo_root / "lint-baseline.txt")
        out = tmp_path / "b.txt"
        from repro.analysis.races import lint_races
        out.write_text(Baseline.render(lint_races(), live.justifications))
        rendered = Baseline.load(out)
        assert rendered.keys == live.keys
        assert all(rendered.justifications[k] == live.justifications[k]
                   for k in live.keys)

    def test_stale_sb5xx_keys_ignored_without_races(self, capsys):
        """The repo baseline carries SB5xx entries; a non-races run must
        not report them stale."""
        assert lint_main([]) == 0
        assert "stale baseline entry" not in capsys.readouterr().out


class TestSelect:
    """--select <prefix>: one pass runs and baselines in isolation."""

    def test_select_flows_is_clean(self):
        assert lint_main(["--select", "SB6"]) == 0

    def test_select_races_uses_baseline(self):
        assert lint_main(["--select", "SB5"]) == 0
        assert lint_main(["--no-baseline", "--select", "SB5"]) == 1

    def test_select_filters_within_a_pass(self, capsys):
        lint_main(["--format", "json", "--no-baseline", "--select", "SB501"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]
        assert all(f["code"] == "SB501" for f in payload["findings"])

    def test_select_no_match_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            lint_main(["--select", "SB9"])
        assert exc.value.code == 2

    def test_unselected_baseline_entries_not_stale(self, capsys):
        """SB5xx baseline entries must not be stale under --select SB6."""
        assert lint_main(["--select", "SB6"]) == 0
        assert "stale baseline entry" not in capsys.readouterr().out

    def test_select_write_baseline_keeps_other_passes(self, tmp_path, capsys):
        path = tmp_path / "baseline.txt"
        assert lint_main(["--races", "--write-baseline",
                          "--baseline", str(path)]) == 0
        before = Baseline.load(path)
        assert any(k.startswith("SB5") for k in before.keys)
        # rewriting only the flows slice must not drop the SB5xx entries
        assert lint_main(["--select", "SB6", "--write-baseline",
                          "--baseline", str(path)]) == 0
        after = Baseline.load(path)
        assert after.keys == before.keys
        assert after.justifications == before.justifications


class TestParallelLint:
    def test_jobs_produce_identical_findings(self):
        serial = run_all(races=True, jobs=1)
        fanned = run_all(races=True, jobs=3)
        assert [f.key for f in serial] == [f.key for f in fanned]

    def test_jobs_flag_exits_clean(self):
        assert lint_main(["--races", "--jobs", "2"]) == 0


class TestPkgDirOverride:
    def test_pkg_dir_matches_default(self, capsys):
        pkg_dir, _ = repo_paths()
        lint_main(["--format", "json", "--no-baseline", "--races"])
        default = json.loads(capsys.readouterr().out)
        lint_main(["--format", "json", "--no-baseline", "--races",
                   "--pkg-dir", str(pkg_dir)])
        overridden = json.loads(capsys.readouterr().out)
        assert default["findings"] == overridden["findings"]
        assert default["pragma_suppressed"] == overridden["pragma_suppressed"]

    def test_pkg_dir_hidden_from_help(self, capsys):
        with pytest.raises(SystemExit):
            lint_main(["--help"])
        assert "--pkg-dir" not in capsys.readouterr().out


class TestExplain:
    def test_explain_covers_all_rule_families(self, capsys):
        assert lint_main(["--explain"]) == 0
        out = capsys.readouterr().out
        for code in ("SB001", "SB004", "SB201", "SB301", "SB304",
                     "SB501", "SB502", "SB503", "SB504",
                     "SB601", "SB602", "SB603", "SB604"):
            assert code in out, code
