"""Unit + property tests for Bulk signatures and their hash families."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.signatures.bulk_signature import (
    BulkSignature, SignatureFactory, definitely_disjoint, exact_conflict,
)
from repro.signatures.hashing import (
    H3HashFamily, MultiplicativeHashFamily, make_hash_family,
)

lines = st.integers(min_value=0, max_value=2**40)
line_sets = st.sets(lines, min_size=0, max_size=80)


@pytest.fixture(params=["mult", "h3"])
def factory(request):
    return SignatureFactory(total_bits=2048, n_banks=4,
                            hash_kind=request.param, seed=11)


class TestHashFamilies:
    @pytest.mark.parametrize("kind", ["mult", "h3"])
    def test_indices_in_range(self, kind):
        fam = make_hash_family(kind, 4, 512, seed=3)
        for addr in [0, 1, 17, 2**20 + 5, 2**39]:
            for bank in range(4):
                assert 0 <= fam.bit_index(bank, addr) < 512

    @pytest.mark.parametrize("kind", ["mult", "h3"])
    def test_deterministic(self, kind):
        a = make_hash_family(kind, 4, 512, seed=3)
        b = make_hash_family(kind, 4, 512, seed=3)
        for addr in range(0, 1000, 37):
            for bank in range(4):
                assert a.bit_index(bank, addr) == b.bit_index(bank, addr)

    def test_banks_are_independent(self):
        fam = MultiplicativeHashFamily(4, 512, seed=3)
        addrs = range(2000)
        per_bank = [
            {fam.bit_index(b, a) for a in addrs} for b in range(4)
        ]
        # each bank should use most of its index space over 2000 addresses
        for used in per_bank:
            assert len(used) > 400

    def test_non_power_of_two_bank_rejected(self):
        with pytest.raises(ValueError):
            MultiplicativeHashFamily(4, 500)
        with pytest.raises(ValueError):
            H3HashFamily(4, 500)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_hash_family("sha", 4, 512)

    def test_dispersion_reasonable(self):
        fam = MultiplicativeHashFamily(4, 512, seed=3)
        hits = [0] * 512
        for a in range(4096):
            hits[fam.bit_index(0, a)] += 1
        # no bucket should collect a grossly disproportionate share
        assert max(hits) < 40


class TestMembership:
    def test_no_false_negatives(self, factory):
        sig = factory.empty()
        inserted = [5, 99, 12345, 2**30 + 7]
        for line in inserted:
            sig.insert(line)
        for line in inserted:
            assert sig.contains(line)

    @given(line_sets)
    @settings(max_examples=40, deadline=None)
    def test_no_false_negatives_property(self, addrs):
        factory = SignatureFactory(seed=11)
        sig = factory.from_lines(addrs)
        assert all(sig.contains(a) for a in addrs)

    def test_empty_contains_nothing(self, factory):
        sig = factory.empty()
        assert not sig.contains(123)
        assert sig.is_empty()

    def test_false_positive_rate_low_at_chunk_density(self):
        """At ~64 lines per signature the per-line membership FP rate must
        be small — this is what keeps the paper's aliasing squashes ~2%."""
        factory = SignatureFactory(total_bits=2048, n_banks=4, seed=11)
        sig = factory.from_lines(range(1000, 1064))
        probes = range(10**6, 10**6 + 20000)
        fp = sum(1 for p in probes if sig.contains(p))
        assert fp / 20000 < 0.01


class TestIntersection:
    def test_disjoint_small_sets(self, factory):
        a = factory.from_lines([1, 2, 3])
        b = factory.from_lines([10**6, 10**6 + 1])
        # banked AND may false-positive but usually not at this density
        assert definitely_disjoint(a, b) or True  # smoke; exactness below

    def test_overlap_always_detected(self, factory):
        a = factory.from_lines([7, 8, 9])
        b = factory.from_lines([9, 100, 200])
        assert a.intersects(b)

    def test_empty_never_intersects(self, factory):
        a = factory.empty()
        b = factory.from_lines([1, 2])
        assert not a.intersects(b)
        assert not b.intersects(a)

    @given(line_sets, line_sets)
    @settings(max_examples=40, deadline=None)
    def test_intersection_no_false_negatives(self, xs, ys):
        factory = SignatureFactory(seed=11)
        a = factory.from_lines(xs)
        b = factory.from_lines(ys)
        if xs & ys:
            assert a.intersects(b)

    def test_union_superset(self, factory):
        a = factory.from_lines([1, 2])
        b = factory.from_lines([3, 4])
        u = a.union(b)
        for line in (1, 2, 3, 4):
            assert u.contains(line)

    def test_union_update_in_place(self, factory):
        a = factory.from_lines([1])
        a.union_update(factory.from_lines([2]))
        assert a.contains(1) and a.contains(2)


class TestLifecycle:
    def test_clear_deallocates(self, factory):
        sig = factory.from_lines(range(50))
        sig.clear()
        assert sig.is_empty()
        assert sig.inserts == 0
        assert sig.bit_count() == 0

    def test_copy_is_independent(self, factory):
        a = factory.from_lines([1, 2])
        b = a.copy()
        b.insert(999)
        assert not a.contains(999) or a == b  # copy must not alias storage
        assert b.contains(999)

    def test_expand_filters_candidates(self, factory):
        sig = factory.from_lines([10, 20, 30])
        expanded = sig.expand([10, 20, 30, 40, 50])
        assert {10, 20, 30} <= set(expanded)

    def test_equality_by_bits(self, factory):
        a = factory.from_lines([5, 6])
        b = factory.from_lines([5, 6])
        assert a == b

    def test_bit_count_bounded_by_banks(self, factory):
        sig = factory.from_lines(range(10))
        assert sig.bit_count() <= 10 * factory.n_banks

    def test_fp_probability_monotone(self, factory):
        a = factory.from_lines(range(10))
        b = factory.from_lines(range(100))
        assert a.false_positive_probability() <= b.false_positive_probability()


class TestFactory:
    def test_bits_must_divide_banks(self):
        with pytest.raises(ValueError):
            SignatureFactory(total_bits=2048, n_banks=3)

    def test_incompatible_factories_rejected(self):
        f1 = SignatureFactory(total_bits=2048, n_banks=4)
        f2 = SignatureFactory(total_bits=1024, n_banks=2)
        with pytest.raises(ValueError):
            f1.empty().intersects(f2.empty())

    def test_same_geometry_different_seed_rejected(self):
        """Regression: equal bits/banks but a different hash seed used to be
        accepted — bit positions disagree, so ``intersects`` can silently
        report disjoint for overlapping sets (a missed conflict)."""
        f1 = SignatureFactory(total_bits=2048, n_banks=4, seed=2010)
        f2 = SignatureFactory(total_bits=2048, n_banks=4, seed=2011)
        a = f1.from_lines([1, 2, 3])
        b = f2.from_lines([1, 2, 3])
        with pytest.raises(ValueError, match="incompatible"):
            a.intersects(b)
        with pytest.raises(ValueError, match="incompatible"):
            a.union_update(b)

    def test_same_geometry_different_hash_kind_rejected(self):
        f_mult = SignatureFactory(total_bits=2048, n_banks=4, hash_kind="mult")
        f_h3 = SignatureFactory(total_bits=2048, n_banks=4, hash_kind="h3")
        with pytest.raises(ValueError, match="incompatible"):
            f_mult.from_lines([7]).intersects(f_h3.from_lines([7]))

    def test_equal_hash_params_accepted_across_instances(self):
        """Two factories with identical parameters map addresses to the
        same bits, so cross-factory tests are meaningful and allowed."""
        f1 = SignatureFactory(total_bits=2048, n_banks=4, seed=2010)
        f2 = SignatureFactory(total_bits=2048, n_banks=4, seed=2010)
        assert f1.hash_params == f2.hash_params
        assert f1.from_lines([1, 2]).intersects(f2.from_lines([2, 9]))
        assert not f1.from_lines([1, 2]).intersects(f2.from_lines([40, 41]))

    def test_line_masks_memoized_and_consistent(self):
        """The memoized per-line masks must agree with direct hashing."""
        f = SignatureFactory(total_bits=2048, n_banks=4, seed=7)
        for line in (0, 1, 17, 2**40 + 3):
            masks = f.line_masks(line)
            assert masks is f.line_masks(line)  # cached object reused
            for b, mask in enumerate(masks):
                assert mask == 1 << f.hashes.bit_index(b, line)
        sig = f.from_lines([5, 6])
        assert sig.contains(5) and sig.contains(6)


class TestExactConflict:
    def test_read_write(self):
        assert exact_conflict({1, 2}, set(), {2})

    def test_write_write(self):
        assert exact_conflict(set(), {5}, {5})

    def test_disjoint(self):
        assert not exact_conflict({1}, {2}, {3})
