"""A message-level test bench for driving directory engines directly.

Builds the full network + directories of a protocol but replaces the cores
with recording stubs, so tests can inject commit requests with exact
read/write sets and observe every message each endpoint receives — the
level at which the paper's Tables 4 and 5 specify behaviour.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.config import ProtocolKind, SystemConfig
from repro.core.group import order_gvec
from repro.cpu.chunk import ChunkTag
from repro.engine.events import Simulator
from repro.memory.directory import LineInfo
from repro.memory.page_map import PageMapper
from repro.network.message import Message, MessageType, core_node, dir_node
from repro.network.noc import Network
from repro.protocols import make_protocol
from repro.signatures.bulk_signature import SignatureFactory


class ProtocolBench:
    """Directories + network + protocol, with stub cores that record."""

    def __init__(self, n_cores: int = 9,
                 protocol: ProtocolKind = ProtocolKind.SCALABLEBULK,
                 **overrides) -> None:
        self.config = SystemConfig(n_cores=n_cores, protocol=protocol,
                                   seed=13, **overrides)
        self.sim = Simulator()
        self.network = Network(self.config, self.sim)
        self.page_mapper = PageMapper(self.config.page_bytes,
                                      self.config.n_directories)
        self.sig_factory = SignatureFactory(
            total_bits=self.config.signature_bits,
            n_banks=self.config.signature_banks, seed=13)
        self.protocol = make_protocol(self.config, self.sim, self.network,
                                      self.page_mapper, self.sig_factory)
        self.protocol.setup_agents()
        self.directories = [self.protocol.create_directory(d)
                            for d in range(self.config.n_directories)]
        for d, module in enumerate(self.directories):
            self.network.register(dir_node(d), module.handle_message)
        #: messages received by each stub core, in arrival order
        self.core_log: Dict[int, List[Message]] = defaultdict(list)
        #: every message delivered anywhere: (time, dst, message)
        self.wire_log: List[Tuple[int, object, Message]] = []
        for c in range(self.config.n_cores):
            self.network.register(core_node(c),
                                  self._make_core_stub(c))
        self._tap_directories()
        self._next_page = 1000

    # ------------------------------------------------------------------
    def _make_core_stub(self, core_id: int):
        def handler(msg: Message) -> None:
            self.core_log[core_id].append(msg)
            self.wire_log.append((self.sim.now, core_node(core_id), msg))
            if msg.mtype is MessageType.FWD_READ:
                reply = (MessageType.DATA_FROM_OWNER
                         if msg.payload.get("dirty")
                         else MessageType.DATA_FROM_SHARER)
                self.network.unicast(
                    reply, core_node(core_id),
                    core_node(msg.payload["requester"]),
                    line=msg.payload["line"])
            elif msg.mtype is MessageType.BULK_INV:
                # stub cores always ack immediately, no squash
                self.network.unicast(
                    MessageType.BULK_INV_ACK, core_node(core_id),
                    dir_node(msg.payload["leader"]), ctag=msg.ctag,
                    recall=None)
            elif msg.mtype in (MessageType.TCC_INV,):
                self.network.unicast(MessageType.TCC_INV_ACK,
                                     core_node(core_id), msg.src,
                                     ctag=msg.ctag)
            elif msg.mtype in (MessageType.SEQ_INV,):
                self.network.unicast(MessageType.SEQ_INV_ACK,
                                     core_node(core_id), msg.src,
                                     ctag=msg.ctag)
        return handler

    def _tap_directories(self) -> None:
        for d, module in enumerate(self.directories):
            original = module.handle_message

            def tapped(msg, d=d, original=original):
                self.wire_log.append((self.sim.now, dir_node(d), msg))
                original(msg)

            self.network._handlers[dir_node(d)] = tapped

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def line_homed_at(self, dir_id: int, index: int = 0) -> int:
        """A line address whose page is homed at ``dir_id``."""
        page = self._next_page
        self._next_page += 1
        self.page_mapper.premap(page, dir_id)
        return page * self.config.lines_per_page + index

    def add_sharer(self, line: int, proc: int) -> None:
        """Register ``proc`` as caching ``line`` at its home directory."""
        page = line * self.config.line_bytes // self.config.page_bytes
        home = self.page_mapper.lookup(page)
        assert home is not None, "line must be homed first"
        info = self.directories[home].lines.setdefault(line, LineInfo())
        info.sharers.add(proc)

    # ------------------------------------------------------------------
    # Commit injection (ScalableBulk wire format)
    # ------------------------------------------------------------------
    def send_commit(self, proc: int, reads=(), writes=(), seq: int = 0,
                    attempt: int = 0, offset: int = 0):
        """Inject a ScalableBulk commit_request; returns its cid."""
        tag = ChunkTag(proc, seq, 0)
        cid = (tag, attempt)
        r_sig = self.sig_factory.from_lines(reads)
        w_sig = self.sig_factory.from_lines(writes)
        dirs = set()
        for line in list(reads) + list(writes):
            page = line * self.config.line_bytes // self.config.page_bytes
            home = self.page_mapper.lookup(page)
            assert home is not None
            dirs.add(home)
        order = order_gvec(dirs, self.config.n_directories, offset)
        for d in order:
            self.network.unicast(
                MessageType.COMMIT_REQUEST, core_node(proc), dir_node(d),
                ctag=cid, proc=proc, r_sig=r_sig, w_sig=w_sig, order=order,
                write_lines=frozenset(writes))
        return cid, order

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run(self, guard: int = 1_000_000) -> None:
        self.sim.run(max_events=guard)

    def outcomes(self, proc: int) -> List[Tuple[str, object]]:
        """(success|failure, cid) messages delivered to a core stub."""
        out = []
        for msg in self.core_log[proc]:
            if msg.mtype is MessageType.COMMIT_SUCCESS:
                out.append(("success", msg.ctag))
            elif msg.mtype is MessageType.COMMIT_FAILURE:
                out.append(("failure", msg.ctag))
        return out

    def messages_at(self, dir_id: int, mtype: Optional[MessageType] = None):
        return [m for t, dst, m in self.wire_log
                if dst == dir_node(dir_id)
                and (mtype is None or m.mtype is mtype)]

    def sent_types_in_order(self, dst) -> List[MessageType]:
        return [m.mtype for t, d, m in self.wire_log if d == dst]


__all__ = ["ProtocolBench"]
