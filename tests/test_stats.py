"""Tests for metrics collection: attempts, bottleneck ratio, histograms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.histograms import Histogram, bucketize, distribution_percentages
from repro.stats.metrics import AttemptPhase, MachineStats


class TestHistogram:
    def test_mean(self):
        h = Histogram()
        for v in (1, 2, 3):
            h.add(v)
        assert h.mean() == 2.0

    def test_percentile(self):
        h = Histogram()
        for v in range(1, 101):
            h.add(v)
        assert h.percentile(50) == 50
        assert h.percentile(90) == 90

    def test_percentages_with_overflow(self):
        h = Histogram()
        for v in (0, 1, 1, 20):
            h.add(v)
        pct = h.percentages(upper=14)
        assert pct[0] == 25.0
        assert pct[1] == 50.0
        assert pct["more"] == 25.0

    def test_empty_histogram(self):
        h = Histogram()
        assert h.mean() == 0.0
        assert h.percentile(50) == 0
        assert h.percentages(3)["more"] == 0.0

    def test_percentile_single_sample(self):
        h = Histogram()
        h.add(42)
        for p in (0.1, 1, 50, 99, 100):
            assert h.percentile(p) == 42

    def test_percentile_all_equal_samples(self):
        h = Histogram()
        for _ in range(10):
            h.add(7)
        for p in (1, 50, 100):
            assert h.percentile(p) == 7

    def test_percentile_extremes(self):
        h = Histogram()
        for v in range(1, 101):
            h.add(v)
        assert h.percentile(100) == 100
        assert h.percentile(0.5) == 1   # smallest value covering 0.5%

    def test_percentile_zero_returns_smallest_value(self):
        h = Histogram()
        for v in (5, 9, 17):
            h.add(v)
        assert h.percentile(0) == 5

    def test_percentile_hundred_returns_largest_value(self):
        h = Histogram()
        for v in (5, 9, 17):
            h.add(v)
        assert h.percentile(100) == 17

    def test_percentile_single_bucket_many_samples(self):
        h = Histogram()
        for _ in range(1000):
            h.add(3)
        for p in (0, 25, 50, 75, 100):
            assert h.percentile(p) == 3

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200),
           st.floats(0, 100))
    def test_percentile_properties(self, values, p):
        h = Histogram()
        for v in values:
            h.add(v)
        q = h.percentile(p)
        # result is always an observed value within [min, max]
        assert q in values
        assert min(values) <= q <= max(values)
        # the defining property: at least p% of samples are <= q
        at_most = sum(1 for v in values if v <= q)
        assert at_most >= len(values) * p / 100.0
        # boundaries pin to the extremes
        assert h.percentile(0) == min(values)
        assert h.percentile(100) == max(values)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=100))
    def test_percentile_monotone_in_p(self, values):
        h = Histogram()
        for v in values:
            h.add(v)
        qs = [h.percentile(p) for p in (0, 10, 25, 50, 75, 90, 100)]
        assert qs == sorted(qs)

    def test_bucketize(self):
        buckets = bucketize([5, 55, 55, 1000], bucket_width=50, n_buckets=4)
        assert buckets[0] == (0, 1)
        assert buckets[1] == (50, 2)
        assert buckets[3] == (150, 1)  # clamped to last bucket

    def test_distribution_percentages(self):
        pct = distribution_percentages([1, 1, 2], upper=3)
        assert pct[1] == pytest.approx(66.667, abs=0.01)


class TestAttemptBookkeeping:
    def test_commit_record_roundtrip(self):
        s = MachineStats()
        s.record_commit("c", 0, n_dirs=3, n_write_dirs=2, latency=100,
                        total_latency=150, retries=1)
        assert s.n_commits == 1
        assert s.mean_commit_latency() == 100
        assert s.mean_dirs_per_commit() == 3
        assert s.mean_read_only_dirs_per_commit() == 1

    def test_bottleneck_sample_taken_at_formation(self):
        s = MachineStats()
        s.attempt_started("a", 0)
        s.attempt_started("b", 0)
        s.attempt_group_formed("a")
        assert len(s.bottleneck_samples) == 1
        forming, committing = s.bottleneck_samples[0]
        assert committing == 1      # "a" just formed
        assert len(forming) == 1    # "b" still forming

    def test_bottleneck_excludes_failed_attempts(self):
        s = MachineStats()
        s.attempt_started("a", 0)
        s.attempt_started("b", 0)
        s.attempt_group_formed("a")  # sample: b forming, a committing
        s.attempt_finished("b", success=False)
        s.attempt_finished("a", success=True)
        assert s.bottleneck_ratio() == 0.0  # b failed -> excluded

    def test_bottleneck_excludes_unresolved_attempts(self):
        # the retrospective exclusion rule: an attempt still unresolved
        # when the run ends never resolved to success, so it must not
        # count toward the numerator
        s = MachineStats()
        s.attempt_started("a", 0)
        s.attempt_started("b", 0)
        s.attempt_group_formed("a")  # sample: b forming, a committing
        s.attempt_finished("a", success=True)
        # "b" never finishes: the run was cut off mid-formation
        assert s.bottleneck_ratio() == 0.0

    def test_bottleneck_mixed_resolved_and_unresolved(self):
        s = MachineStats()
        s.attempt_started("a", 0)
        s.attempt_started("b", 0)
        s.attempt_started("c", 0)
        s.attempt_group_formed("a")  # sample: {b, c} forming, a committing
        s.attempt_finished("b", success=True)
        s.attempt_finished("a", success=True)
        # "c" unresolved -> only "b" counts: ratio 1/1
        assert s.bottleneck_ratio() == 1.0

    def test_bottleneck_counts_successful_forming(self):
        s = MachineStats()
        s.attempt_started("a", 0)
        s.attempt_started("b", 0)
        s.attempt_group_formed("a")
        s.attempt_finished("b", success=True)
        s.attempt_finished("a", success=True)
        assert s.bottleneck_ratio() == 1.0

    def test_queue_probe_overrides_phase_count(self):
        s = MachineStats()
        s.queue_probe = lambda: 7
        s.attempt_started("a", 0)
        s.attempt_group_formed("a")
        assert s.queue_samples == [7]

    def test_queued_phase_counted_without_probe(self):
        s = MachineStats()
        s.attempt_started("q", 0, queued=True)
        s.attempt_started("a", 0)
        s.attempt_group_formed("a")
        assert s.queue_samples == [1]

    def test_failures_counted(self):
        s = MachineStats()
        s.attempt_started("a", 0)
        s.attempt_finished("a", success=False)
        assert s.commit_failures == 1

    def test_finished_attempts_leave_live_sets(self):
        s = MachineStats()
        s.attempt_started("a", 0)
        s.attempt_group_formed("a")
        s.attempt_finished("a", success=True)
        assert not s._live_by_ctag
        for phase in AttemptPhase:
            assert not s._live_by_phase[phase]

    def test_mean_queue_length(self):
        s = MachineStats()
        s.queue_samples.extend([0, 2, 4])
        assert s.mean_queue_length() == 2.0
