"""Message-ordering tests for the appendix Tables 4 and 5.

Each test reconstructs one row of the tables from the wire log of a
driven scenario: what a leader / member / collision module / post-collision
module receives and sends, in order.
"""

import pytest

from repro.network.message import MessageType, core_node, dir_node
from protocol_bench import ProtocolBench


def times_of(bench, dst, mtype, ctag=None):
    return [t for t, d, m in bench.wire_log
            if d == dst and m.mtype is mtype
            and (ctag is None or m.ctag == ctag)]


class TestTable4SuccessfulCommit:
    """Leader: R:commit_request -> S:g -> R:g -> (commit_success & g_success*
    & bulk_inv*) -> R:bulk_inv_ack* -> S:commit_done*.
    Member: (R:commit_request & R:g) -> S:g -> R:g_success -> R:commit_done.
    """

    @pytest.fixture
    def run(self):
        bench = ProtocolBench(n_cores=9)
        lines = [bench.line_homed_at(d) for d in (1, 2, 5)]
        bench.add_sharer(lines[0], proc=6)
        cid, order = bench.send_commit(proc=0, writes=lines)
        bench.run()
        return bench, cid

    def test_leader_receives_request_before_returned_g(self, run):
        bench, cid = run
        req = times_of(bench, dir_node(1), MessageType.COMMIT_REQUEST, cid)
        g_back = times_of(bench, dir_node(1), MessageType.G, cid)
        assert req and g_back and req[0] < g_back[0]

    def test_member_g_after_both_inputs(self, run):
        bench, cid = run
        # dir 5 (last member) receives request and g, in either order,
        # then g_success strictly afterwards
        req = times_of(bench, dir_node(5), MessageType.COMMIT_REQUEST, cid)
        g = times_of(bench, dir_node(5), MessageType.G, cid)
        gs = times_of(bench, dir_node(5), MessageType.G_SUCCESS, cid)
        assert req and g and gs
        assert gs[0] > max(req[0], g[0])

    def test_commit_done_is_last_directory_message(self, run):
        bench, cid = run
        for d in (2, 5):
            done = times_of(bench, dir_node(d), MessageType.COMMIT_DONE, cid)
            others = [t for t, dst, m in bench.wire_log
                      if dst == dir_node(d) and m.ctag == cid
                      and m.mtype is not MessageType.COMMIT_DONE]
            assert done and done[0] >= max(others)

    def test_commit_success_before_commit_done(self, run):
        bench, cid = run
        succ = times_of(bench, core_node(0), MessageType.COMMIT_SUCCESS, cid)
        done = times_of(bench, dir_node(5), MessageType.COMMIT_DONE, cid)
        assert succ and done and succ[0] < done[0]

    def test_bulk_inv_before_commit_done(self, run):
        bench, cid = run
        inv = times_of(bench, core_node(6), MessageType.BULK_INV, cid)
        done = times_of(bench, dir_node(2), MessageType.COMMIT_DONE, cid)
        assert inv and done and inv[0] < done[0]


class TestTable5FailedCommit:
    """Collision module is not the loser's leader: the leader (before the
    collision) sends g and receives g_failure; modules after the collision
    receive commit_request & g_failure but never a g."""

    @pytest.fixture
    def run(self):
        bench = ProtocolBench(n_cores=9)
        shared2 = bench.line_homed_at(2)
        line5 = bench.line_homed_at(5)
        bench.add_sharer(shared2, proc=6)
        # winner: {2, 5}
        win_cid, _ = bench.send_commit(proc=0, writes=[shared2, line5])
        bench.sim.run(until=18)  # winner holds module 2 by now
        # loser: {1, 2, 5}; leader 1 is before the collision module 2
        line1 = bench.line_homed_at(1)
        line5b = bench.line_homed_at(5, index=3)
        lose_cid, lose_order = bench.send_commit(
            proc=1, writes=[line1, shared2, line5b], seq=0)
        bench.run()
        return bench, win_cid, lose_cid

    def test_exactly_one_group_succeeds(self, run):
        bench, win_cid, lose_cid = run
        assert ("success", win_cid) in bench.outcomes(0)
        assert ("failure", lose_cid) in bench.outcomes(1)

    def test_loser_leader_sent_g_then_got_failure(self, run):
        bench, _, lose_cid = run
        # dir 2 (collision) received the loser's g from leader 1
        g = times_of(bench, dir_node(2), MessageType.G, lose_cid)
        gf = times_of(bench, dir_node(1), MessageType.G_FAILURE, lose_cid)
        assert g and gf and g[0] < gf[0]

    def test_after_collision_module_never_sees_g(self, run):
        bench, _, lose_cid = run
        assert times_of(bench, dir_node(5), MessageType.COMMIT_REQUEST,
                        lose_cid)
        assert times_of(bench, dir_node(5), MessageType.G_FAILURE, lose_cid)
        assert not times_of(bench, dir_node(5), MessageType.G, lose_cid)

    def test_commit_failure_from_leader(self, run):
        bench, _, lose_cid = run
        fails = [m for m in bench.core_log[1]
                 if m.mtype is MessageType.COMMIT_FAILURE]
        assert len(fails) == 1
        assert fails[0].src == dir_node(1)

    def test_loser_entries_deallocated_everywhere(self, run):
        bench, _, lose_cid = run
        for d in (1, 2, 5):
            assert lose_cid not in bench.directories[d].cst


class TestCollisionModuleIsLeader:
    """Table 4, right column: the loser's leader itself detects the
    collision: R:commit_request -> (S:g_failure* & S:commit_failure)."""

    def test_leader_as_collision_module(self):
        bench = ProtocolBench(n_cores=9)
        shared1 = bench.line_homed_at(1)
        bench.add_sharer(shared1, proc=6)
        win_cid, _ = bench.send_commit(proc=0, writes=[shared1])
        bench.sim.run(until=18)
        line5 = bench.line_homed_at(5)
        lose_cid, order = bench.send_commit(proc=1,
                                            writes=[shared1, line5], seq=0)
        assert order[0] == 1  # loser's leader is the collision module
        bench.run()
        assert ("failure", lose_cid) in bench.outcomes(1)
        # module 5 was told via g_failure even though formation never
        # reached it
        assert times_of(bench, dir_node(5), MessageType.G_FAILURE, lose_cid)
