"""Calibration regression tests: pin each application's characteristics.

These encode the paper-derived targets the workload models were calibrated
to (directory spread per Figs. 9/10, squash-rate band, commit health), with
tolerances wide enough to survive benign refactoring but tight enough to
catch an accidental recalibration.  Run at 16 cores for speed; the full
64-core numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.harness.runner import SimulationRunner

#: (app, min_dirs, max_dirs, min_write_share) at 16 cores
DIR_SPREAD_BANDS = [
    ("Radix", 6.0, 11.0, 0.80),       # the outlier: big, write-dominated
    ("Canneal", 4.0, 9.0, 0.35),
    ("Blackscholes", 3.5, 8.5, 0.30),
    ("Barnes", 3.5, 8.0, 0.25),
    ("FMM", 2.0, 6.0, 0.25),
    ("Water-N", 2.0, 6.0, 0.25),
    ("Radiosity", 2.0, 6.0, 0.25),
    ("Vips", 1.8, 5.5, 0.25),
    ("Dedup", 1.8, 5.5, 0.30),
    ("Raytrace", 1.8, 6.0, 0.15),
    ("Cholesky", 1.2, 4.5, 0.30),
    ("Swaptions", 1.0, 4.0, 0.30),
    ("FFT", 1.0, 3.5, 0.40),
    ("LU", 1.0, 3.0, 0.40),
    ("Ocean", 1.0, 3.5, 0.35),
    ("Water-S", 1.0, 3.5, 0.35),
    ("Fluidanimate", 1.0, 3.5, 0.35),
    ("Facesim", 1.0, 3.5, 0.35),
]


def run(app, **kw):
    config = SystemConfig(n_cores=16, protocol=ProtocolKind.SCALABLEBULK)
    return SimulationRunner(app, config, chunks_per_partition=2, **kw).run()


class TestDirectorySpreadBands:
    @pytest.mark.parametrize("app,lo,hi,wshare", DIR_SPREAD_BANDS)
    def test_dirs_per_commit_in_band(self, app, lo, hi, wshare):
        r = run(app)
        assert lo <= r.mean_dirs_per_commit <= hi, (
            f"{app}: {r.mean_dirs_per_commit:.2f} outside [{lo}, {hi}]")
        assert r.mean_write_dirs_per_commit / r.mean_dirs_per_commit >= wshare

    def test_radix_is_the_outlier(self):
        radix = run("Radix").mean_dirs_per_commit
        others = [run(a).mean_dirs_per_commit for a in ("LU", "FFT", "Ocean")]
        assert radix > 2.5 * max(others)


class TestProtocolHealthBands:
    @pytest.mark.parametrize("app", ["Radix", "Barnes", "Canneal", "LU"])
    def test_squash_rate_band(self, app):
        r = run(app)
        rate = (r.squashes_conflict + r.squashes_alias) / r.chunks_committed
        assert rate <= 0.12, f"{app}: squash rate {rate:.2%} too high"

    @pytest.mark.parametrize("app", ["Radix", "LU", "Canneal"])
    def test_scalablebulk_commit_stall_negligible(self, app):
        r = run(app)
        assert r.breakdown_fractions()["Commit"] < 0.03

    @pytest.mark.parametrize("app", ["Barnes", "LU"])
    def test_useful_fraction_reasonable(self, app):
        """Chunks must be compute-bound enough that commits matter."""
        r = run(app)
        assert r.breakdown_fractions()["Useful"] > 0.35

    def test_every_profile_simulates(self):
        from repro.workloads.profiles import APP_PROFILES
        for app in APP_PROFILES:
            r = run(app)
            assert r.chunks_committed == 32, app
