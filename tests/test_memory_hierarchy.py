"""Unit tests for the per-core L1+L2 hierarchy with speculative tracking."""

import pytest

from repro.config import SystemConfig
from repro.memory.hierarchy import CacheHierarchy


@pytest.fixture
def hier(small_config):
    return CacheHierarchy(0, small_config)


class TestAccessPath:
    def test_cold_miss_is_remote(self, hier):
        res = hier.access(100, is_write=False, ctag="t")
        assert res.remote

    def test_fill_then_l1_hit(self, hier):
        hier.fill_remote(100)
        res = hier.access(100, is_write=False, ctag="t")
        assert not res.remote and res.stall_cycles == 0

    def test_l2_hit_costs_round_trip(self, hier, small_config):
        hier.fill_remote(100)
        # evict from L1 by filling conflicting lines (same L1 set)
        n_sets = small_config.l1.n_sets
        for i in range(1, small_config.l1.assoc + 1):
            hier.fill_remote(100 + i * n_sets)
        res = hier.access(100, is_write=False, ctag="t")
        assert not res.remote
        assert res.stall_cycles == small_config.l2.round_trip_cycles

    def test_write_marks_speculative(self, hier):
        hier.fill_remote(50)
        hier.access(50, is_write=True, ctag="tag1")
        assert 50 in hier.spec_lines["tag1"]
        assert hier.l2.peek(50).spec_writer == "tag1"

    def test_write_on_remote_fill(self, hier):
        res = hier.access(60, is_write=True, ctag="tag1")
        assert res.remote
        hier.fill_remote(60, is_write=True, ctag="tag1")
        assert 60 in hier.spec_lines["tag1"]


class TestChunkLifecycle:
    def test_commit_promotes_lines(self, hier):
        hier.fill_remote(50)
        hier.access(50, is_write=True, ctag="t")
        hier.commit_chunk("t")
        assert "t" not in hier.spec_lines
        line = hier.l2.peek(50)
        assert line.dirty and line.spec_writer is None

    def test_squash_discards_lines(self, hier):
        hier.fill_remote(50)
        hier.access(50, is_write=True, ctag="t")
        n = hier.squash_chunk("t")
        assert n == 1
        assert not hier.caches_line(50)

    def test_squash_leaves_other_chunks(self, hier):
        hier.fill_remote(50)
        hier.fill_remote(51)
        hier.access(50, is_write=True, ctag="a")
        hier.access(51, is_write=True, ctag="b")
        hier.squash_chunk("a")
        assert hier.caches_line(51)
        assert not hier.caches_line(50)

    def test_commit_unknown_tag_noop(self, hier):
        hier.commit_chunk("ghost")  # must not raise

    def test_invalidate_both_levels(self, hier):
        hier.fill_remote(70)
        assert hier.invalidate(70)
        assert not hier.caches_line(70)
        assert not hier.invalidate(70)


class TestWriteback:
    def test_dirty_l2_eviction_calls_back(self, small_config):
        written_back = []
        hier = CacheHierarchy(0, small_config, written_back.append)
        hier.fill_remote(10)
        hier.access(10, is_write=True, ctag="t")
        hier.commit_chunk("t")  # line 10 now committed-dirty
        # force eviction: fill the L2 set full of other lines
        n_sets = small_config.l2.n_sets
        for i in range(1, small_config.l2.assoc + 1):
            hier.fill_remote(10 + i * n_sets)
        assert written_back == [10]

    def test_inclusion_l2_eviction_drops_l1(self, small_config):
        hier = CacheHierarchy(0, small_config)
        hier.fill_remote(10)
        n_sets = small_config.l2.n_sets
        for i in range(1, small_config.l2.assoc + 1):
            hier.fill_remote(10 + i * n_sets)
        assert 10 not in hier.l1
        assert 10 not in hier.l2
