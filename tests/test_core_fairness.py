"""Fairness and forward progress under sustained collisions (Section 3.2.2).

The baseline lowest-id-first policy favours processors near low-numbered
directories; leader-priority rotation redistributes wins.  Starvation
reservations guarantee every chunk eventually commits even when it keeps
losing collisions.
"""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine


def contended_machine(n_cores=9, chunks=5, rotation=0, max_squashes=12,
                      seed=3):
    """Every core's every chunk writes the same two pages: max collision."""
    config = SystemConfig(n_cores=n_cores, seed=seed,
                          protocol=ProtocolKind.SCALABLEBULK,
                          priority_rotation_interval=rotation,
                          starvation_max_squashes=max_squashes)
    pages = (500, 900)
    def specs(core):
        return [ChunkSpec(300, [
            ChunkAccess(1, 32 * 128 * pages[0] + 32 * core, True),
            ChunkAccess(1, 32 * 128 * pages[1] + 32 * core, True),
            ChunkAccess(1, 32 * 128 * pages[0] + 32 * ((core + 1) % n_cores),
                        False),
        ]) for _ in range(chunks)]

    remaining = {c: specs(c) for c in range(n_cores)}

    def next_spec(core_id):
        lst = remaining.get(core_id)
        return lst.pop(0) if lst else None

    machine = Machine(config, next_spec=next_spec)
    machine.page_mapper.premap(pages[0], 2)
    machine.page_mapper.premap(pages[1], 7)
    return machine


class TestForwardProgress:
    def test_all_chunks_commit_under_max_contention(self):
        m = contended_machine()
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 45

    def test_progress_with_tiny_starvation_threshold(self):
        m = contended_machine(max_squashes=1)
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 45

    def test_progress_with_rotation(self):
        m = contended_machine(rotation=200)
        m.run()
        assert sum(c.stats.chunks_committed for c in m.cores) == 45

    def test_no_commit_failure_storm(self):
        """Failures happen, but bounded: the collision rule lets one group
        through every round."""
        m = contended_machine()
        m.run()
        commits = sum(c.stats.chunks_committed for c in m.cores)
        failures = m.protocol.stats.commit_failures
        assert failures < commits * 12


class TestFairness:
    def _failure_spread(self, rotation):
        m = contended_machine(rotation=rotation, chunks=6, seed=7)
        m.run()
        # per-core retry counts: how often each core lost a formation
        per_core = [0] * len(m.cores)
        for rec in m.protocol.stats.commits:
            per_core[rec.core] += rec.retries
        return per_core

    def test_rotation_preserves_total_commits(self):
        fixed = self._failure_spread(rotation=0)
        rotated = self._failure_spread(rotation=150)
        # the knob must not change correctness: both complete all chunks
        # (counted indirectly: retry lists cover every core)
        assert len(fixed) == len(rotated) == 9

    def test_rotated_leaders_are_not_always_lowest(self):
        m = contended_machine(rotation=150, chunks=6, seed=7)
        leaders = []
        for engine in m.protocol.engines:
            orig = engine.send_commit_request

            def spy(chunk, orig=orig):
                orig(chunk)
                leaders.append(chunk.commit_order[0])

            engine.send_commit_request = spy
        m.run()
        # groups span dirs {2, 7}; under rotation the leader must not
        # always be the lowest-numbered member
        assert any(ld != 2 for ld in leaders)
        assert len(set(leaders)) >= 2
