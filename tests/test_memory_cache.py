"""Unit tests for the set-associative cache with speculative lines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.memory.cache import Cache


def tiny_cache(assoc=2, sets=4):
    return Cache(CacheConfig(size_bytes=sets * assoc * 32, assoc=assoc,
                             line_bytes=32, round_trip_cycles=2,
                             mshr_entries=8))


class TestLookupFill:
    def test_miss_then_hit(self):
        c = tiny_cache()
        assert c.lookup(5) is None
        c.fill(5)
        assert c.lookup(5) is not None
        assert c.hits == 1 and c.misses == 1

    def test_fill_same_line_idempotent(self):
        c = tiny_cache()
        c.fill(5)
        result = c.fill(5)
        assert result.line is None
        assert c.occupancy == 1

    def test_lru_eviction_order(self):
        c = tiny_cache(assoc=2, sets=1)
        c.fill(0)
        c.fill(1)
        c.lookup(0)        # 0 becomes MRU
        ev = c.fill(2)     # must evict 1
        assert ev.line.line_addr == 1
        assert 0 in c and 2 in c and 1 not in c

    def test_sets_isolate_lines(self):
        c = tiny_cache(assoc=1, sets=4)
        c.fill(0)
        c.fill(1)  # different set (line % 4)
        assert 0 in c and 1 in c

    def test_peek_does_not_touch(self):
        c = tiny_cache(assoc=2, sets=1)
        c.fill(0)
        c.fill(1)
        c.peek(0)          # no LRU update
        ev = c.fill(2)
        assert ev.line.line_addr == 0

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded(self, addrs):
        c = tiny_cache(assoc=2, sets=4)
        for a in addrs:
            c.fill(a)
        assert c.occupancy <= 8
        for s in c._sets.values():
            assert len(s) <= 2


class TestSpeculativeLines:
    def test_spec_line_not_evicted_when_alternative(self):
        c = tiny_cache(assoc=2, sets=1)
        c.fill(0)
        c.fill(1)
        c.mark_spec_write(0, "chunk-a")  # 0 is LRU but speculative
        ev = c.fill(2)
        assert ev.line.line_addr == 1    # non-spec victim preferred
        assert ev.overflow_ctag is None

    def test_overflow_when_all_ways_spec(self):
        c = tiny_cache(assoc=2, sets=1)
        c.fill(0)
        c.fill(1)
        c.mark_spec_write(0, "a")
        c.mark_spec_write(1, "b")
        ev = c.fill(2)
        assert ev.overflow_ctag == "a"   # LRU way's owner reported

    def test_commit_spec_promotes_to_dirty(self):
        c = tiny_cache()
        c.fill(7)
        c.mark_spec_write(7, "t")
        assert c.commit_spec(7, "t")
        line = c.peek(7)
        assert line.dirty and line.spec_writer is None

    def test_commit_spec_wrong_tag_rejected(self):
        c = tiny_cache()
        c.fill(7)
        c.mark_spec_write(7, "t")
        assert not c.commit_spec(7, "other")

    def test_mark_spec_absent_line(self):
        c = tiny_cache()
        assert not c.mark_spec_write(9, "t")

    def test_invalidate_returns_line(self):
        c = tiny_cache()
        c.fill(3)
        assert c.invalidate(3).line_addr == 3
        assert c.invalidate(3) is None

    def test_dirty_victim_reported(self):
        c = tiny_cache(assoc=1, sets=1)
        c.fill(0)
        c.mark_spec_write(0, "t")
        c.commit_spec(0, "t")
        ev = c.fill(1)
        assert ev.wrote_back

    def test_clear_dirty(self):
        c = tiny_cache()
        c.fill(0)
        c.mark_spec_write(0, "t")
        c.commit_spec(0, "t")
        c.clear_dirty(0)
        assert not c.peek(0).dirty


class TestStats:
    def test_hit_rate(self):
        c = tiny_cache()
        c.fill(0)
        c.lookup(0)
        c.lookup(1)
        assert c.hit_rate == 0.5

    def test_resident_lines(self):
        c = tiny_cache()
        for a in (1, 2, 3):
            c.fill(a)
        assert set(c.resident_lines()) == {1, 2, 3}
