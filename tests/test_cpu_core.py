"""Unit tests for the core FSM: bursts, commit queue, squash, accounting.

These use a real small Machine (4 cores, ScalableBulk) with hand-built
chunk specs, so core behaviour is tested against the full substrate.
"""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec, ChunkState
from repro.harness.runner import Machine


def spec_of(accesses, n_instr=100):
    return ChunkSpec(n_instructions=n_instr, accesses=accesses)


def make_machine(specs_by_core, n_cores=4, protocol=ProtocolKind.SCALABLEBULK,
                 **overrides):
    """Machine fed by explicit per-core chunk spec lists."""
    config = SystemConfig(n_cores=n_cores, protocol=protocol, seed=3,
                          **overrides)
    remaining = {c: list(s) for c, s in specs_by_core.items()}

    def next_spec(core_id):
        lst = remaining.get(core_id)
        return lst.pop(0) if lst else None

    return Machine(config, next_spec=next_spec)


class TestBasicExecution:
    def test_single_chunk_commits(self):
        m = make_machine({0: [spec_of([ChunkAccess(1, 320, False)])]})
        m.run()
        assert m.cores[0].stats.chunks_committed == 1
        assert m.cores[0].finished

    def test_all_cores_finish_empty_workload(self):
        m = make_machine({})
        m.run()
        assert all(c.finished for c in m.cores)

    def test_useful_cycles_equal_instructions(self):
        m = make_machine({0: [spec_of([ChunkAccess(1, 320, False)], 100)]})
        m.run()
        assert m.cores[0].stats.useful_cycles == 100

    def test_multiple_chunks_in_order(self):
        specs = [spec_of([ChunkAccess(1, 320 + 32 * i, False)]) for i in range(4)]
        m = make_machine({0: specs})
        m.run()
        assert m.cores[0].stats.chunks_committed == 4
        # committed tags must be sequential
        tags = [rec.ctag.seq for rec in m.protocol.stats.commits
                if rec.core == 0]
        assert tags == sorted(tags)

    def test_chunk_with_no_accesses_commits_trivially(self):
        m = make_machine({0: [spec_of([], 50)]})
        m.run()
        assert m.cores[0].stats.chunks_committed == 1
        rec = m.protocol.stats.commits[0]
        assert rec.n_dirs == 0

    def test_miss_stall_accounted(self):
        m = make_machine({0: [spec_of([ChunkAccess(1, 320, False)])]})
        m.run()
        # single cold miss: stall includes the memory round trip
        assert m.cores[0].stats.miss_stall_cycles >= \
            m.config.memory_round_trip_cycles


class TestCommitPipelining:
    def test_two_active_chunks_overlap(self):
        # Both chunks hit only local lines; commit of chunk 0 overlaps
        # execution of chunk 1 (max_active=2).
        specs = [spec_of([ChunkAccess(1, 320, True)], 500),
                 spec_of([ChunkAccess(1, 352, True)], 500)]
        m = make_machine({0: specs})
        m.run()
        assert m.cores[0].stats.chunks_committed == 2
        assert m.cores[0].stats.commit_stall_cycles >= 0

    def test_max_active_one_serializes(self):
        specs = [spec_of([ChunkAccess(1, 320, True)], 200)] * 2
        m = make_machine({0: specs}, max_active_chunks_per_core=1)
        m.run()
        stats = m.cores[0].stats
        assert stats.chunks_committed == 2
        # with no overlap, every commit latency is exposed as stall
        assert stats.commit_stall_cycles > 0

    def test_finish_time_recorded(self):
        m = make_machine({0: [spec_of([ChunkAccess(1, 320, False)])]})
        m.run()
        assert m.cores[0].stats.finish_time == m.sim.now or \
            m.cores[0].stats.finish_time <= m.sim.now


class TestSquashAccounting:
    def _conflicting_machine(self):
        """Cores 0 and 1 write the same line -> one squashes."""
        line = 32 * 1000
        specs0 = [spec_of([ChunkAccess(1, line, True)], 400)]
        specs1 = [spec_of([ChunkAccess(1, line, True),
                           ChunkAccess(390, line + 32, False)], 400)]
        return make_machine({0: specs0, 1: specs1})

    def test_conflicting_writes_one_squashes_then_commits(self):
        m = self._conflicting_machine()
        m.run()
        total = sum(c.stats.chunks_committed for c in m.cores)
        assert total == 2  # both eventually commit
        squashes = sum(c.stats.squashes_conflict + c.stats.squashes_alias
                       for c in m.cores)
        # a squash may or may not occur depending on timing, but if one
        # occurred the wasted cycles must be accounted
        for c in m.cores:
            if c.stats.squashes_conflict or c.stats.squashes_alias:
                assert c.stats.squash_cycles > 0

    def test_no_lost_commit_after_squash(self):
        m = self._conflicting_machine()
        m.run()
        assert all(c.finished for c in m.cores)


class TestAccountingInvariants:
    def test_accounted_cycles_bounded_by_wallclock(self):
        specs = [spec_of([ChunkAccess(1, 320 + 32 * i, i % 2 == 0)], 300)
                 for i in range(3)]
        m = make_machine({0: specs, 1: list(specs)})
        m.run()
        for core in m.cores:
            s = core.stats
            if s.chunks_started:
                assert s.total_accounted <= m.sim.now + 1
