"""Tests for the SQLite result store (schema, upsert, query, integrity)."""

import pytest

from repro.store.db import ResultStore, StoreError, StoreSchemaError
from repro.store.schema import (KIND_BENCH_MICRO, KIND_SWEEP, Record,
                                SCHEMA, STATUS_FAILED, STATUS_OK)


def rec(**kw):
    base = dict(kind=KIND_SWEEP, cell_key="LU/8/TCC/8", config_hash="abc",
                seed=2010, git_rev="deadbee", app="LU", protocol="TCC",
                n_cores=8, metrics={"total_cycles": 100}, payload={"x": 1})
    base.update(kw)
    return Record(**base)


class TestSchema:
    def test_create_and_reopen(self, tmp_path):
        path = tmp_path / "r.db"
        with ResultStore(path) as store:
            assert store.meta()["schema"] == SCHEMA
        with ResultStore(path, create=False) as store:
            assert store.meta()["schema"] == SCHEMA

    def test_missing_without_create(self, tmp_path):
        with pytest.raises(StoreError):
            ResultStore(tmp_path / "absent.db", create=False)

    def test_non_store_database_rejected(self, tmp_path):
        import sqlite3
        path = tmp_path / "other.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE t (x)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreSchemaError):
            ResultStore(path)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "r.db"
        with ResultStore(path) as store:
            store._conn.execute(
                "UPDATE meta SET value = 'repro-store-v999' "
                "WHERE key = 'schema'")
        with pytest.raises(StoreSchemaError):
            ResultStore(path)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            rec(kind="nonsense")

    def test_series_defaults_to_cell_key(self):
        assert rec(series=None).series == "LU/8/TCC/8"


class TestUpsert:
    def test_put_and_query(self, tmp_path):
        with ResultStore(tmp_path / "r.db") as store:
            store.put(rec())
            rows = store.query(KIND_SWEEP)
            assert len(rows) == 1
            assert rows[0].metrics["total_cycles"] == 100
            assert rows[0].payload == {"x": 1}

    def test_same_cache_key_replaces(self, tmp_path):
        with ResultStore(tmp_path / "r.db") as store:
            store.put(rec(metrics={"total_cycles": 100}))
            store.put(rec(metrics={"total_cycles": 200}))
            rows = store.query(KIND_SWEEP)
            assert len(rows) == 1
            assert rows[0].metrics["total_cycles"] == 200

    def test_new_revision_adds_a_row(self, tmp_path):
        with ResultStore(tmp_path / "r.db") as store:
            store.put(rec(git_rev="aaaaaaa"))
            store.put(rec(git_rev="bbbbbbb"))
            assert len(store.query(KIND_SWEEP)) == 2
            assert store.revisions(KIND_SWEEP) == ["aaaaaaa", "bbbbbbb"]

    def test_put_many_is_all_or_nothing(self, tmp_path):
        with ResultStore(tmp_path / "r.db") as store:
            good = rec()
            with pytest.raises(AttributeError):
                store.put_many([good, "not a record"])
            assert store.query() == []  # no partial batch visible

    def test_status_of(self, tmp_path):
        with ResultStore(tmp_path / "r.db") as store:
            r = rec()
            assert store.status_of(r.kind, r.config_hash, r.seed,
                                   r.git_rev, r.cell_key) is None
            store.put(r)
            assert store.status_of(r.kind, r.config_hash, r.seed,
                                   r.git_rev, r.cell_key) == STATUS_OK
            # any-revision match
            assert store.status_of(r.kind, r.config_hash, r.seed,
                                   None, r.cell_key) == STATUS_OK
            assert store.status_of(r.kind, r.config_hash, r.seed,
                                   "fffffff", r.cell_key) is None

    def test_failed_rows_are_first_class(self, tmp_path):
        with ResultStore(tmp_path / "r.db") as store:
            store.put(rec(status=STATUS_FAILED, metrics={},
                          error="ValueError('boom')",
                          traceback="Traceback ..."))
            row = store.query(status=STATUS_FAILED)[0]
            assert row.error == "ValueError('boom')"
            assert "Traceback" in row.traceback


class TestQueryFilters:
    @pytest.fixture()
    def store(self, tmp_path):
        with ResultStore(tmp_path / "r.db") as store:
            store.put(rec(cell_key="LU/8/TCC/8", app="LU", protocol="TCC"))
            store.put(rec(cell_key="LU/16/TCC/16", app="LU",
                          protocol="TCC", n_cores=16))
            store.put(rec(cell_key="Radix/8/SEQ/8", app="Radix",
                          protocol="SEQ"))
            store.put(Record(kind=KIND_BENCH_MICRO, cell_key="d.x/sig",
                             series="sig", git_rev="deadbee",
                             metrics={"ops_per_sec": 5.0}))
            yield store

    def test_filter_by_kind(self, store):
        assert len(store.query(KIND_SWEEP)) == 3
        assert len(store.query(KIND_BENCH_MICRO)) == 1
        assert len(store.query()) == 4

    def test_filter_by_app_protocol_cores(self, store):
        assert len(store.query(app="LU")) == 2
        assert len(store.query(protocol="SEQ")) == 1
        assert len(store.query(n_cores=16)) == 1
        assert len(store.query(app="LU", n_cores=16)) == 1

    def test_filter_by_series_and_limit(self, store):
        assert store.query(series="sig")[0].kind == KIND_BENCH_MICRO
        assert len(store.query(limit=2)) == 2

    def test_counts_and_integrity(self, store):
        assert store.counts() == {KIND_SWEEP: 3, KIND_BENCH_MICRO: 1}
        assert store.integrity_check() == "ok"

    def test_metric_helper(self, store):
        row = store.query(series="sig")[0]
        assert row.metric("ops_per_sec") == 5.0
        assert row.metric("absent") is None
