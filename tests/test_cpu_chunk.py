"""Unit tests for chunk specs, tags, and runtime chunk state."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.chunk import Chunk, ChunkAccess, ChunkSpec, ChunkState, ChunkTag
from repro.signatures.bulk_signature import SignatureFactory


@pytest.fixture
def factory():
    return SignatureFactory(seed=5)


def make_chunk(factory, tag=None, spec=None):
    spec = spec or ChunkSpec(n_instructions=100, accesses=[
        ChunkAccess(2, 32 * 10, False),
        ChunkAccess(3, 32 * 20, True),
    ])
    return Chunk(tag=tag or ChunkTag(0, 0, 0), spec=spec,
                 sig_factory=factory, line_bytes=32)


class TestChunkTag:
    def test_next_gen_bumps_generation(self):
        t = ChunkTag(3, 7, 0)
        assert t.next_gen() == ChunkTag(3, 7, 1)

    def test_str_format(self):
        assert str(ChunkTag(2, 5, 1)) == "P2.c5.g1"

    def test_tags_hashable_distinct(self):
        assert len({ChunkTag(0, 0, 0), ChunkTag(0, 0, 1), ChunkTag(0, 1, 0)}) == 3


class TestChunkSpec:
    def test_rejects_overcommitted_accesses(self):
        with pytest.raises(ValueError):
            ChunkSpec(n_instructions=3, accesses=[
                ChunkAccess(2, 0, False), ChunkAccess(2, 32, False)])

    def test_n_accesses(self):
        spec = ChunkSpec(10, [ChunkAccess(0, 0, False)] * 3)
        assert spec.n_accesses == 3


class TestRecording:
    def test_read_goes_to_read_set(self, factory):
        c = make_chunk(factory)
        c.record(10, is_write=False, home_dir=2)
        assert 10 in c.read_lines and 10 not in c.write_lines
        assert c.r_sig.contains(10)
        assert c.dirs == {2} and not c.dirs_written

    def test_write_goes_to_write_set(self, factory):
        c = make_chunk(factory)
        c.record(11, is_write=True, home_dir=3)
        assert 11 in c.write_lines
        assert c.w_sig.contains(11)
        assert c.dirs_written == {3}

    def test_g_vec_sorted(self, factory):
        c = make_chunk(factory)
        for line, home in ((1, 5), (2, 1), (3, 3)):
            c.record(line, False, home)
        assert c.g_vec() == (1, 3, 5)


class TestDisambiguation:
    def test_invalidation_hits_read_set(self, factory):
        c = make_chunk(factory)
        c.record(10, False, 0)
        assert c.hit_by_invalidation([10])

    def test_invalidation_hits_write_set(self, factory):
        c = make_chunk(factory)
        c.record(11, True, 0)
        assert c.hit_by_invalidation([11])

    def test_disjoint_invalidation_usually_misses(self, factory):
        c = make_chunk(factory)
        c.record(10, False, 0)
        hits = sum(bool(c.hit_by_invalidation([10_000 + i]))
                   for i in range(500))
        assert hits < 10  # membership FPs only

    @given(st.sets(st.integers(0, 10**6), min_size=1, max_size=40),
           st.sets(st.integers(0, 10**6), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_no_false_negative_disambiguation(self, mine, theirs):
        factory = SignatureFactory(seed=5)
        c = make_chunk(factory)
        for line in mine:
            c.record(line, False, 0)
        if mine & theirs:
            assert c.hit_by_invalidation(theirs)

    def test_true_conflict_exact(self, factory):
        c = make_chunk(factory)
        c.record(10, False, 0)
        assert c.true_conflict_with({10})
        assert not c.true_conflict_with({11})


class TestRetry:
    def test_reset_for_retry_fresh_state(self, factory):
        c = make_chunk(factory)
        c.record(10, True, 0)
        c.state = ChunkState.SQUASHED
        fresh = c.reset_for_retry()
        assert fresh.tag == c.tag.next_gen()
        assert not fresh.write_lines and fresh.w_sig.is_empty()
        assert fresh.state is ChunkState.EXECUTING
        assert fresh.spec is c.spec

    def test_is_active_states(self, factory):
        c = make_chunk(factory)
        assert c.is_active
        c.state = ChunkState.COMMITTED
        assert not c.is_active
