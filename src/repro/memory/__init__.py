"""Memory hierarchy substrate: caches, page mapping, directory state.

Per Table 2 of the paper, each tile has a private write-through L1 and a
private write-back L2; physical pages are assigned to directory modules
first-touch; one directory module per tile tracks sharers/owner per line.

Writes are *lazy*: a chunk's stores stay speculative in the local caches
(tagged with the chunk tag) and only become architecturally visible when
the chunk commits.  Squashing a chunk discards its speculative lines.
"""

from repro.memory.cache import Cache, CacheLine, EvictionResult
from repro.memory.hierarchy import AccessResult, CacheHierarchy
from repro.memory.page_map import PageMapper
from repro.memory.directory import DirectoryModule, LineInfo

__all__ = [
    "AccessResult",
    "Cache",
    "CacheHierarchy",
    "CacheLine",
    "DirectoryModule",
    "EvictionResult",
    "LineInfo",
    "PageMapper",
]
