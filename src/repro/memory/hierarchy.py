"""Per-core cache hierarchy: write-through L1 over write-back private L2.

Speculative (uncommitted chunk) writes are tracked per chunk tag so that a
squash can discard exactly the squashed chunk's lines and a commit can
promote them to committed-dirty in one pass.  Dirty L2 evictions notify the
home directory through a caller-supplied writeback callback, keeping
directory owner state consistent with the caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.config import SystemConfig


@dataclass
class AccessResult:
    """Outcome of a load/store against the local hierarchy."""

    stall_cycles: int = 0          #: local stall (0 = L1 hit, hidden)
    remote: bool = False           #: missed both levels; go to the home dir
    overflow_ctag: Optional[object] = None  #: a chunk ran out of spec space


class CacheHierarchy:
    """L1 + L2 for one core, with speculative-line bookkeeping."""

    def __init__(self, core_id: int, config: SystemConfig,
                 writeback_cb: Optional[Callable[[int], None]] = None) -> None:
        # Imported here to avoid a cycle with memory/__init__.
        from repro.memory.cache import Cache

        self.core_id = core_id
        self.config = config
        self.l1 = Cache(config.l1)
        self.l2 = Cache(config.l2)
        self._writeback_cb = writeback_cb
        #: chunk tag -> speculatively written lines not yet committed
        self.spec_lines: Dict[object, Set[int]] = {}
        self.overflows = 0

    def set_writeback_callback(self, cb: Callable[[int], None]) -> None:
        self._writeback_cb = cb

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(self, line_addr: int, is_write: bool, ctag: object) -> AccessResult:
        """Perform one access; the caller handles the remote path."""
        if self.l1.lookup(line_addr) is not None:
            # L1 round trip is hidden behind the 1-IPC pipeline.
            self.l2.lookup(line_addr)  # keep L2 LRU warm (write-through pairing)
            if is_write:
                self._mark_spec(line_addr, ctag)
            return AccessResult(stall_cycles=0)

        if self.l2.lookup(line_addr) is not None:
            result = self._fill_l1(line_addr)
            if is_write:
                self._mark_spec(line_addr, ctag)
            result.stall_cycles = self.config.l2.round_trip_cycles
            return result

        return AccessResult(remote=True)

    def fill_remote(self, line_addr: int, is_write: bool = False,
                    ctag: object = None) -> AccessResult:
        """Install a line that arrived from the home directory."""
        result = AccessResult()
        ev2 = self.l2.fill(line_addr)
        if ev2.overflow_ctag is not None:
            self.overflows += 1
            result.overflow_ctag = ev2.overflow_ctag
            self._drop_spec_line(ev2.overflow_ctag, ev2.line.line_addr)
        if ev2.line is not None:
            self.l1.invalidate(ev2.line.line_addr)  # inclusion
            if ev2.line.dirty and self._writeback_cb is not None:
                self._writeback_cb(ev2.line.line_addr)
        l1_result = self._fill_l1(line_addr)
        if result.overflow_ctag is None:
            result.overflow_ctag = l1_result.overflow_ctag
        if is_write and ctag is not None:
            self._mark_spec(line_addr, ctag)
        return result

    def _fill_l1(self, line_addr: int) -> AccessResult:
        ev = self.l1.fill(line_addr)
        # An L1 eviction of a speculative line is harmless: write-through
        # means the L2 still holds the speculative copy.
        return AccessResult()

    def _mark_spec(self, line_addr: int, ctag: object) -> None:
        self.l1.mark_spec_write(line_addr, ctag)
        self.l2.mark_spec_write(line_addr, ctag)
        self.spec_lines.setdefault(ctag, set()).add(line_addr)

    def _drop_spec_line(self, ctag: object, line_addr: int) -> None:
        lines = self.spec_lines.get(ctag)
        if lines is not None:
            lines.discard(line_addr)

    # ------------------------------------------------------------------
    # Chunk lifecycle
    # ------------------------------------------------------------------
    def commit_chunk(self, ctag: object) -> None:
        """Promote a committed chunk's lines to committed-dirty."""
        for line_addr in self.spec_lines.pop(ctag, ()):  # noqa: B020
            self.l2.commit_spec(line_addr, ctag)
            self.l1.commit_spec(line_addr, ctag)

    def squash_chunk(self, ctag: object) -> int:
        """Discard a squashed chunk's speculative lines; returns the count."""
        lines = self.spec_lines.pop(ctag, set())
        for line_addr in lines:
            self.l1.invalidate(line_addr)
            self.l2.invalidate(line_addr)
        return len(lines)

    def invalidate(self, line_addr: int) -> bool:
        """Bulk-invalidation of one line; True if it was resident."""
        in_l1 = self.l1.invalidate(line_addr) is not None
        in_l2 = self.l2.invalidate(line_addr) is not None
        return in_l1 or in_l2

    def caches_line(self, line_addr: int) -> bool:
        return line_addr in self.l1 or line_addr in self.l2

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CacheHierarchy(core={self.core_id}, "
                f"l1={self.l1.occupancy}, l2={self.l2.occupancy})")


__all__ = ["AccessResult", "CacheHierarchy"]
