"""First-touch virtual-page -> directory-module mapping (paper Section 5).

"A simple first-touch policy is used to map virtual pages to physical pages
in the directory modules": the first core to touch a page becomes its home
tile, so thread-private data is homed locally and shared data is spread by
whoever touched it first.
"""

from __future__ import annotations

from typing import Dict


class PageMapper:
    """Assigns each page a home directory on first touch."""

    def __init__(self, page_bytes: int, n_directories: int) -> None:
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError("page size must be a positive power of two")
        self.page_bytes = page_bytes
        self.n_directories = n_directories
        self._home: Dict[int, int] = {}
        self.first_touches = 0

    def page_of(self, byte_addr: int) -> int:
        return byte_addr // self.page_bytes

    def home_of_line(self, line_addr: int, line_bytes: int, toucher: int) -> int:
        """Home directory of a line, allocating the page on first touch."""
        return self.home_of_page(line_addr * line_bytes // self.page_bytes, toucher)

    def home_of_page(self, page: int, toucher: int) -> int:
        """Home directory of ``page``; ``toucher`` claims it on first touch."""
        home = self._home.get(page)
        if home is None:
            home = toucher % self.n_directories
            self._home[page] = home
            self.first_touches += 1
        return home

    def premap(self, page: int, home: int) -> None:
        """Pre-assign a page's home (models the application's
        initialization phase, whose first touches happened before the
        measured region begins)."""
        self._home[page] = home % self.n_directories

    def lookup(self, page: int):
        """Home of an already-mapped page, or None."""
        return self._home.get(page)

    @property
    def mapped_pages(self) -> int:
        return len(self._home)

    def distribution(self) -> Dict[int, int]:
        """Pages homed per directory (load-balance diagnostics)."""
        counts: Dict[int, int] = {}
        for home in self._home.values():
            counts[home] = counts.get(home, 0) + 1
        return counts


__all__ = ["PageMapper"]
