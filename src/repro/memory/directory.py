"""Directory module substrate: per-line sharer/owner tracking + read misses.

One directory module lives on every tile (Figure 1).  This base class
implements what is common to *all four* protocols:

* sharer/owner bookkeeping per line (the directory's "conventional" role),
* servicing read misses — from memory (``DATA_FROM_MEM``), from a clean
  remote sharer (``DATA_FROM_SHARER``) or from the dirty owner
  (``DATA_FROM_OWNER``), matching the traffic classes of Figs. 18/19,
* nacking reads that touch lines locked by an in-flight chunk commit
  (the *preventing access to a set of directory entries* primitive,
  Section 3.1) via the :meth:`read_blocked` hook that each protocol
  overrides,
* applying a committed chunk's write-set to directory state.

Protocol-specific commit handling lives in subclasses
(:mod:`repro.core.directory_engine` and :mod:`repro.baselines`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Set

from repro.config import SystemConfig
from repro.engine.events import Simulator
from repro.network.message import Message, MessageType, NodeRef, core_node, dir_node
from repro.network.noc import Network
from repro.obs.bus import NULL_BUS, NullBus


@dataclass(slots=True)
class LineInfo:
    """Directory state for one tracked line."""

    sharers: Set[int] = field(default_factory=set)  #: cores that may cache it
    owner: Optional[int] = None                     #: core holding it dirty


class DirectoryModule:
    """Base directory module: sharer tracking + read-miss service."""

    def __init__(self, dir_id: int, config: SystemConfig, sim: Simulator,
                 network: Network) -> None:
        self.dir_id = dir_id
        self.config = config
        self.sim = sim
        self.network = network
        self.node = dir_node(dir_id)
        self.obs: NullBus = NULL_BUS  #: instrumentation sink (repro.obs)
        #: Host-time self-profiler (repro.obs.profile); None = fast path.
        self.profiler: Optional[Any] = None
        self.lines: Dict[int, LineInfo] = {}
        # statistics
        self.read_requests = 0
        self.read_nacks = 0
        self.memory_fetches = 0
        self.cache_to_cache = 0

    # ------------------------------------------------------------------
    # Protocol hooks (overridden by protocol directory engines)
    # ------------------------------------------------------------------
    def read_blocked(self, line_addr: int) -> bool:
        """True if an in-flight commit locks this line (Section 3.1)."""
        return False

    def handle_protocol_message(self, msg: Message) -> None:
        """Protocol-specific messages; the base class knows none."""
        raise NotImplementedError(
            f"directory {self.dir_id} cannot handle {msg.mtype}"
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle_message(self, msg: Message) -> None:
        prof = self.profiler
        if prof is None:
            self._dispatch(msg)
        else:
            prof.enter("dir.handler")
            try:
                self._dispatch(msg)
            finally:
                prof.exit()

    def _dispatch(self, msg: Message) -> None:
        if msg.mtype is MessageType.READ_REQ:
            self._handle_read(msg)
        elif msg.mtype is MessageType.WRITEBACK:
            self._handle_writeback(msg)
        else:
            self.handle_protocol_message(msg)

    # ------------------------------------------------------------------
    # Read-miss service
    # ------------------------------------------------------------------
    def _handle_read(self, msg: Message) -> None:
        line_addr = msg.payload["line"]
        requester: int = msg.payload["requester"]
        self.read_requests += 1

        if self.read_blocked(line_addr):
            self.read_nacks += 1
            self.network.unicast(
                MessageType.READ_NACK, self.node, core_node(requester),
                line=line_addr,
            )
            return

        info = self.lines.setdefault(line_addr, LineInfo())
        lookup = self.config.dir_lookup_cycles

        if info.owner is not None and info.owner != requester:
            # Dirty in a remote cache: forward, owner supplies the data.
            self.cache_to_cache += 1
            self.sim.schedule(lookup, lambda owner=info.owner: self.network.unicast(
                MessageType.FWD_READ, self.node, core_node(owner),
                line=line_addr, requester=requester, dirty=True,
            ))
        else:
            remote_sharers = [s for s in info.sharers if s != requester]
            if remote_sharers:
                # Clean in a remote cache: forward to the closest sharer.
                self.cache_to_cache += 1
                src_tile = self.network.tile_of(core_node(requester))
                closest = min(
                    remote_sharers,
                    key=lambda s: self.network.topology.hop_distance(
                        self.network.tile_of(core_node(s)), src_tile),
                )
                self.sim.schedule(lookup, lambda: self.network.unicast(
                    MessageType.FWD_READ, self.node, core_node(closest),
                    line=line_addr, requester=requester, dirty=False,
                ))
            else:
                # Nobody caches it: fetch from memory.
                self.memory_fetches += 1
                delay = lookup + self.config.memory_round_trip_cycles
                self.sim.schedule(delay, lambda: self.network.unicast(
                    MessageType.DATA_FROM_MEM, self.node, core_node(requester),
                    line=line_addr,
                ))
        info.sharers.add(requester)

    def _handle_writeback(self, msg: Message) -> None:
        line_addr = msg.payload["line"]
        writer: int = msg.payload["writer"]
        info = self.lines.get(line_addr)
        if info is not None:
            if info.owner == writer:
                info.owner = None  # memory now holds the data
            info.sharers.discard(writer)

    # ------------------------------------------------------------------
    # Commit-time state updates
    # ------------------------------------------------------------------
    def sharers_to_invalidate(self, written_lines: Iterable[int],
                              writer: int) -> Set[int]:
        """Cores (other than the writer) that may cache any written line."""
        victims: Set[int] = set()
        for line_addr in written_lines:
            info = self.lines.get(line_addr)
            if info is None:
                continue
            victims |= info.sharers
            if info.owner is not None:
                victims.add(info.owner)
        victims.discard(writer)
        return victims

    def apply_commit(self, written_lines: Iterable[int], writer: int) -> None:
        """Publish a committed chunk's writes: writer becomes dirty owner."""
        for line_addr in written_lines:
            info = self.lines.setdefault(line_addr, LineInfo())
            info.sharers = {writer}
            info.owner = writer

    def home_lines(self, lines: Iterable[int]) -> Iterable[int]:
        """Subset of ``lines`` that this module has ever tracked."""
        return [l for l in lines if l in self.lines]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(id={self.dir_id}, lines={len(self.lines)})"


# Imported at module bottom: repro.protocols.__init__ eagerly imports
# protocols.base, which imports this module — a top-level import of
# repro.protocols.spec here would close that cycle before DirectoryModule
# exists.
from repro.protocols.spec import ProtocolSpec  # noqa: E402

#: The plain read-sharing substrate every protocol variant runs on:
#: demand reads, forwarding through the dirty owner, and writebacks.
#: FWD_READ is deliberately not declared as a request — its data reply
#: goes to the original requester, not back to the directory that
#: forwarded it.  Checked by `repro lint --flows` (SB6xx).
PROTOCOL_SPEC = ProtocolSpec(
    family="substrate",
    edges=(
        ("core", "READ_REQ", "dir"),
        ("dir", "READ_NACK", "core"),
        ("dir", "DATA_FROM_MEM", "core"),
        ("dir", "FWD_READ", "core"),
        ("core", "DATA_FROM_SHARER", "core"),
        ("core", "DATA_FROM_OWNER", "core"),
        ("core", "WRITEBACK", "dir"),
    ),
    replies={
        "READ_REQ": ("DATA_FROM_MEM", "DATA_FROM_SHARER",
                     "DATA_FROM_OWNER", "READ_NACK"),
    },
    retries=("READ_NACK",),
)

__all__ = ["DirectoryModule", "LineInfo", "PROTOCOL_SPEC"]
