"""Set-associative cache with LRU replacement and speculative-line support.

Lines are identified by *line address* (byte address // line size).  Each
line can carry a speculative-writer tag (the chunk that wrote it before
committing).  The replacement policy avoids evicting speculative lines when
a non-speculative victim exists; if every way in a set is speculative the
eviction reports an *overflow*, which forces the owning chunk to commit
early (paper Section 2.2: "cache overflows ... can further reduce the
average size" of chunks).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import CacheConfig


@dataclass
class CacheLine:
    """Metadata for one resident line."""

    line_addr: int
    dirty: bool = False                 #: committed-dirty (owner copy)
    spec_writer: Optional[object] = None  #: chunk tag of uncommitted write


@dataclass
class EvictionResult:
    """Outcome of a fill that displaced a resident line."""

    line: Optional[CacheLine] = None    #: the victim (None if a way was free)
    overflow_ctag: Optional[object] = None  #: set when only speculative victims existed

    @property
    def wrote_back(self) -> bool:
        return self.line is not None and self.line.dirty


class Cache:
    """One level of set-associative cache, LRU within each set."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        # set index -> OrderedDict[line_addr, CacheLine]; LRU order = insertion
        self._sets: Dict[int, OrderedDict] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self.n_sets

    def _set_for(self, line_addr: int) -> OrderedDict:
        return self._sets.setdefault(self._set_index(line_addr), OrderedDict())

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------
    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line or None; updates LRU on hit."""
        s = self._sets.get(self._set_index(line_addr))
        if s is None or line_addr not in s:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            s.move_to_end(line_addr)
        return s[line_addr]

    def peek(self, line_addr: int) -> Optional[CacheLine]:
        """Lookup without LRU update or hit/miss accounting."""
        s = self._sets.get(self._set_index(line_addr))
        return s.get(line_addr) if s else None

    def fill(self, line_addr: int) -> EvictionResult:
        """Insert a line, evicting the LRU non-speculative way if needed."""
        s = self._set_for(line_addr)
        if line_addr in s:
            s.move_to_end(line_addr)
            return EvictionResult()
        result = EvictionResult()
        if len(s) >= self.assoc:
            victim_addr = None
            for addr, line in s.items():  # iterates LRU -> MRU
                if line.spec_writer is None:
                    victim_addr = addr
                    break
            if victim_addr is None:
                # Every way holds uncommitted speculative data: overflow.
                # Report the LRU way's owner; the caller must commit it early.
                lru_addr, lru_line = next(iter(s.items()))
                result.overflow_ctag = lru_line.spec_writer
                victim_addr = lru_addr
            result.line = s.pop(victim_addr)
            self.evictions += 1
        s[line_addr] = CacheLine(line_addr)
        return result

    # ------------------------------------------------------------------
    # State changes
    # ------------------------------------------------------------------
    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        """Drop a line (bulk invalidation / squash). Returns it if present."""
        s = self._sets.get(self._set_index(line_addr))
        if s and line_addr in s:
            return s.pop(line_addr)
        return None

    def mark_spec_write(self, line_addr: int, ctag: object) -> bool:
        """Tag a resident line as speculatively written by ``ctag``."""
        line = self.peek(line_addr)
        if line is None:
            return False
        line.spec_writer = ctag
        return True

    def commit_spec(self, line_addr: int, ctag: object) -> bool:
        """Promote a speculative line to committed-dirty state."""
        line = self.peek(line_addr)
        if line is None or line.spec_writer != ctag:
            return False
        line.spec_writer = None
        line.dirty = True
        return True

    def clear_dirty(self, line_addr: int) -> None:
        line = self.peek(line_addr)
        if line is not None:
            line.dirty = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resident_lines(self):
        """Iterate all resident line addresses (tests / validators)."""
        for s in self._sets.values():
            yield from s.keys()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, line_addr: int) -> bool:
        s = self._sets.get(self._set_index(line_addr))
        return bool(s) and line_addr in s

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Cache(sets={self.n_sets}, assoc={self.assoc}, "
                f"occupancy={self.occupancy})")


__all__ = ["Cache", "CacheLine", "EvictionResult"]
