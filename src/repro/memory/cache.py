"""Set-associative cache with LRU replacement and speculative-line support.

Lines are identified by *line address* (byte address // line size).  Each
line can carry a speculative-writer tag (the chunk that wrote it before
committing).  The replacement policy avoids evicting speculative lines when
a non-speculative victim exists; if every way in a set is speculative the
eviction reports an *overflow*, which forces the owning chunk to commit
early (paper Section 2.2: "cache overflows ... can further reduce the
average size" of chunks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.config import CacheConfig


@dataclass(slots=True)
class CacheLine:
    """Metadata for one resident line."""

    line_addr: int
    dirty: bool = False                 #: committed-dirty (owner copy)
    spec_writer: Optional[object] = None  #: chunk tag of uncommitted write


@dataclass(slots=True)
class EvictionResult:
    """Outcome of a fill that displaced a resident line."""

    line: Optional[CacheLine] = None    #: the victim (None if a way was free)
    overflow_ctag: Optional[object] = None  #: set when only speculative victims existed

    @property
    def wrote_back(self) -> bool:
        return self.line is not None and self.line.dirty


class Cache:
    """One level of set-associative cache, LRU within each set."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        # set index -> {line_addr: CacheLine}; LRU order = insertion order
        # (plain dicts preserve it, and re-insertion moves a key to MRU —
        # OrderedDict semantics without its per-op overhead)
        self._sets: Dict[int, Dict[int, CacheLine]] = {}
        #: set index -> {line_addr: None} shadow sets from a bulk prewarm
        #: fill, materialized into CacheLine dicts on first access.  A
        #: short run touches a fraction of the prewarmed sets, so deferring
        #: object creation keeps prewarm cost proportional to what the run
        #: actually uses.  Empty on caches that never bulk-fill.
        self._lazy: Dict[int, Dict[int, None]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self.n_sets

    def _set_at(self, idx: int) -> Optional[Dict[int, CacheLine]]:
        """The set at ``idx``, materializing a pending shadow set."""
        s = self._sets.get(idx)
        if s is None and self._lazy:
            pend = self._lazy.pop(idx, None)
            if pend is not None:
                s = self._sets[idx] = {a: CacheLine(a) for a in pend}
        return s

    def _materialize_all(self) -> None:
        if self._lazy:
            sets = self._sets
            for idx, pend in self._lazy.items():
                sets[idx] = {a: CacheLine(a) for a in pend}
            self._lazy.clear()

    def _set_for(self, line_addr: int) -> Dict[int, CacheLine]:
        idx = line_addr % self.n_sets
        s = self._set_at(idx)
        if s is None:
            s = self._sets[idx] = {}
        return s

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------
    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line or None; updates LRU on hit."""
        s = self._set_at(line_addr % self.n_sets)
        if s is None:
            self.misses += 1
            return None
        line = s.get(line_addr)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            # re-insertion moves the key to the MRU (last) position
            del s[line_addr]
            s[line_addr] = line
        return line

    def peek(self, line_addr: int) -> Optional[CacheLine]:
        """Lookup without LRU update or hit/miss accounting."""
        s = self._set_at(line_addr % self.n_sets)
        return s.get(line_addr) if s else None

    def fill(self, line_addr: int) -> EvictionResult:
        """Insert a line, evicting the LRU non-speculative way if needed."""
        s = self._set_for(line_addr)
        resident = s.pop(line_addr, None)
        if resident is not None:
            s[line_addr] = resident  # re-insert at MRU
            return EvictionResult()
        result = EvictionResult()
        if len(s) >= self.assoc:
            victim_addr = None
            for addr, line in s.items():  # iterates LRU -> MRU
                if line.spec_writer is None:
                    victim_addr = addr
                    break
            if victim_addr is None:
                # Every way holds uncommitted speculative data: overflow.
                # Report the LRU way's owner; the caller must commit it early.
                lru_addr, lru_line = next(iter(s.items()))
                result.overflow_ctag = lru_line.spec_writer
                victim_addr = lru_addr
            result.line = s.pop(victim_addr)
            self.evictions += 1
        s[line_addr] = CacheLine(line_addr)
        return result

    def fill_many(self, lines: Iterable[int]) -> None:
        """Bulk fill (prewarm): same residency, LRU order and eviction
        count as repeated :meth:`fill` calls, without allocating an
        :class:`EvictionResult` per line.  Victims are dropped — prewarm
        installs clean lines, so there is nothing to write back."""
        if self._sets or self._lazy:
            self._fill_many_resident(lines)
            return
        # Fast path for an empty cache (the prewarm case): every inserted
        # line is clean, so replacement is pure LRU and the whole sequence
        # can be replayed on shadow int-key dicts — same insertion order,
        # re-touch moves, first-key evictions and eviction count as the
        # real process — materializing CacheLine objects only for the
        # lines that survive.
        n_sets = self.n_sets
        assoc = self.assoc
        shadow: Dict[int, Dict[int, None]] = {}
        shadow_get = shadow.get
        evictions = 0
        for line_addr in lines:
            idx = line_addr % n_sets
            s = shadow_get(idx)
            if s is None:
                shadow[idx] = {line_addr: None}
                continue
            if line_addr in s:
                del s[line_addr]       # re-touch: move to MRU
                s[line_addr] = None
                continue
            if len(s) >= assoc:
                del s[next(iter(s))]   # LRU way (no spec lines exist here)
                evictions += 1
            s[line_addr] = None
        self.evictions += evictions
        self._lazy = shadow

    def _fill_many_resident(self, lines: Iterable[int]) -> None:
        """fill_many over a cache that already holds lines (exact replay,
        honouring speculative-victim avoidance)."""
        n_sets = self.n_sets
        assoc = self.assoc
        for line_addr in lines:
            idx = line_addr % n_sets
            s = self._set_at(idx)
            if s is None:
                s = self._sets[idx] = {}
            resident = s.pop(line_addr, None)
            if resident is not None:
                s[line_addr] = resident  # re-insert at MRU
                continue
            if len(s) >= assoc:
                victim = None
                for addr, line in s.items():  # iterates LRU -> MRU
                    if line.spec_writer is None:
                        victim = addr
                        break
                if victim is None:
                    victim = next(iter(s))
                del s[victim]
                self.evictions += 1
            s[line_addr] = CacheLine(line_addr)

    # ------------------------------------------------------------------
    # State changes
    # ------------------------------------------------------------------
    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        """Drop a line (bulk invalidation / squash). Returns it if present."""
        s = self._set_at(line_addr % self.n_sets)
        if s and line_addr in s:
            return s.pop(line_addr)
        return None

    def mark_spec_write(self, line_addr: int, ctag: object) -> bool:
        """Tag a resident line as speculatively written by ``ctag``."""
        line = self.peek(line_addr)
        if line is None:
            return False
        line.spec_writer = ctag
        return True

    def commit_spec(self, line_addr: int, ctag: object) -> bool:
        """Promote a speculative line to committed-dirty state."""
        line = self.peek(line_addr)
        if line is None or line.spec_writer != ctag:
            return False
        line.spec_writer = None
        line.dirty = True
        return True

    def clear_dirty(self, line_addr: int) -> None:
        line = self.peek(line_addr)
        if line is not None:
            line.dirty = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resident_lines(self):
        """Iterate all resident line addresses (tests / validators)."""
        self._materialize_all()
        for s in self._sets.values():
            yield from s.keys()

    @property
    def occupancy(self) -> int:
        return (sum(len(s) for s in self._sets.values())
                + sum(len(s) for s in self._lazy.values()))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, line_addr: int) -> bool:
        s = self._set_at(line_addr % self.n_sets)
        return bool(s) and line_addr in s

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Cache(sets={self.n_sets}, assoc={self.assoc}, "
                f"occupancy={self.occupancy})")


__all__ = ["Cache", "CacheLine", "EvictionResult"]
