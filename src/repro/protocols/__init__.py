"""Chunk-commit protocol framework.

:mod:`repro.protocols.base` defines the machine-level `Protocol` object and
the per-core `ProcessorEngine` that every protocol implements.  The paper's
contribution (ScalableBulk) lives in :mod:`repro.core`; the three baselines
of Table 3 live in :mod:`repro.baselines`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import ProtocolKind, SystemConfig

if TYPE_CHECKING:
    from repro.protocols.base import Protocol


def __getattr__(name: str):
    # Lazy re-exports (PEP 562).  protocols.base imports cpu.core, which
    # is mid-import when a protocol module pulls in protocols.spec — an
    # eager import here would close that cycle.
    if name in ("Protocol", "ProcessorEngine"):
        from repro.protocols import base
        return getattr(base, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def make_protocol(config: SystemConfig, sim, network, page_mapper, sig_factory
                  ) -> Protocol:
    """Instantiate the protocol selected by ``config.protocol`` (Table 3)."""
    # Imported lazily: the concrete protocols import this package's base.
    from repro.core.protocol import ScalableBulkProtocol
    from repro.baselines.bulksc import BulkSCProtocol
    from repro.baselines.tcc import ScalableTCCProtocol
    from repro.baselines.seq import SeqProtocol

    classes = {
        ProtocolKind.SCALABLEBULK: ScalableBulkProtocol,
        ProtocolKind.TCC: ScalableTCCProtocol,
        ProtocolKind.SEQ: SeqProtocol,
        ProtocolKind.BULKSC: BulkSCProtocol,
    }
    return classes[config.protocol](config, sim, network, page_mapper, sig_factory)


__all__ = ["Protocol", "ProcessorEngine", "make_protocol"]
