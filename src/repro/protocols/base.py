"""Shared machinery for all four commit protocols.

A *protocol* is a machine-level object that builds one directory engine per
tile and one processor engine per core, plus any central agents (the BulkSC
arbiter, the Scalable TCC TID vendor).  The per-core `ProcessorEngine`
receives every message addressed to its core: data replies and read nacks
are forwarded to the core; forwarded reads are answered from the local
cache; everything else is protocol-specific.

Common commit bookkeeping (latency, directory spread, attempt phases for
the bottleneck ratio) lives here so each protocol only implements its wire
behaviour.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import Chunk, ChunkState
from repro.cpu.core import Core
from repro.engine.events import Simulator
from repro.memory.directory import DirectoryModule
from repro.memory.page_map import PageMapper
from repro.network.message import Message, MessageType, core_node, dir_node
from repro.network.noc import Network
from repro.obs.bus import NULL_BUS, NullBus
from repro.signatures.bulk_signature import BulkSignature, SignatureFactory
from repro.stats.metrics import MachineStats


class Protocol:
    """Machine-level protocol object; subclassed per Table 3 entry."""

    kind: ProtocolKind

    def __init__(self, config: SystemConfig, sim: Simulator, network: Network,
                 page_mapper: PageMapper, sig_factory: SignatureFactory) -> None:
        self.config = config
        self.sim = sim
        self.network = network
        self.page_mapper = page_mapper
        self.sig_factory = sig_factory
        self.stats = MachineStats()
        self.directories: List[DirectoryModule] = []
        self.engines: List["ProcessorEngine"] = []

    # -- construction hooks (called by the runner) -----------------------
    def create_directory(self, dir_id: int) -> DirectoryModule:
        raise NotImplementedError

    def create_engine(self, core: Core) -> "ProcessorEngine":
        raise NotImplementedError

    def setup_agents(self) -> None:
        """Register central agents on the network (arbiter / TID vendor)."""

    # -- shared helpers ----------------------------------------------------
    def home_of_line(self, line_addr: int, toucher: int) -> int:
        page = line_addr * self.config.line_bytes // self.config.page_bytes
        return self.page_mapper.home_of_page(page, toucher)

    def lines_by_dir(self, lines: Iterable[int], toucher: int
                     ) -> Dict[int, List[int]]:
        """Group lines by home directory module."""
        out: Dict[int, List[int]] = {}
        for line in lines:
            out.setdefault(self.home_of_line(line, toucher), []).append(line)
        return out

    def engine_for(self, core_id: int) -> "ProcessorEngine":
        return self.engines[core_id]

    def directory_for(self, dir_id: int) -> DirectoryModule:
        return self.directories[dir_id]


class ProcessorEngine:
    """Per-core protocol endpoint: owns the core's commit conversation."""

    def __init__(self, protocol: Protocol, core: Core) -> None:
        self.protocol = protocol
        self.core = core
        self.config = protocol.config
        self.sim = protocol.sim
        self.network = protocol.network
        self.stats = protocol.stats
        self.node = core_node(core.core_id)
        self.obs: NullBus = NULL_BUS  #: instrumentation sink (repro.obs)
        core.engine = self

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, msg: Message) -> None:
        mtype = msg.mtype
        if mtype in (MessageType.DATA_FROM_MEM, MessageType.DATA_FROM_SHARER,
                     MessageType.DATA_FROM_OWNER):
            self.core.on_data(msg.payload["line"])
        elif mtype is MessageType.READ_NACK:
            self.core.on_read_nack(msg.payload["line"])
        elif mtype is MessageType.FWD_READ:
            self._answer_forwarded_read(msg)
        else:
            self.handle_protocol_message(msg)

    def handle_protocol_message(self, msg: Message) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} cannot handle {msg.mtype}")

    def _answer_forwarded_read(self, msg: Message) -> None:
        """Supply a line to a remote requester (cache-to-cache transfer)."""
        line = msg.payload["line"]
        requester = msg.payload["requester"]
        dirty = msg.payload.get("dirty", False)
        reply = (MessageType.DATA_FROM_OWNER if dirty
                 else MessageType.DATA_FROM_SHARER)
        # The local L2 nominally supplies the data; if it was silently
        # evicted we still reply (memory would supply it in a real machine;
        # the timing difference is second-order).
        delay = self.config.l2.round_trip_cycles
        self.sim.schedule(delay, lambda: self.network.unicast(
            reply, self.node, core_node(requester), line=line))

    # ------------------------------------------------------------------
    # Commit entry point
    # ------------------------------------------------------------------
    @staticmethod
    def _cid(chunk: Chunk):
        """The commit-instance id: (tag, retry attempt).  All protocol
        messages and attempt bookkeeping are keyed by this, so a retried
        commit is a fresh conversation."""
        return (chunk.tag, chunk.commit_failures)

    def request_commit(self, chunk: Chunk) -> None:
        """Called by the core when ``chunk`` reaches the head of its queue."""
        if self.obs.enabled:
            self.obs.commit_request(self.sim.now, self.core.core_id,
                                    self._cid(chunk), sorted(chunk.dirs))
        if not chunk.dirs:
            # A chunk with no memory accesses commits trivially.
            self.sim.schedule(1, lambda: self._trivial_commit(chunk))
            return
        self.stats.attempt_started(self._cid(chunk), self.sim.now,
                                   queued=self.starts_queued())
        self.send_commit_request(chunk)

    def starts_queued(self) -> bool:
        """Whether a fresh attempt begins in the QUEUED phase (TCC/SEQ)."""
        return False

    def send_commit_request(self, chunk: Chunk) -> None:
        raise NotImplementedError

    def _trivial_commit(self, chunk: Chunk) -> None:
        if chunk.state is not ChunkState.COMMITTING:
            return
        self.stats.record_commit(
            ctag=chunk.tag, core=self.core.core_id, n_dirs=0, n_write_dirs=0,
            latency=self.sim.now - chunk.commit_request_time,
            total_latency=self.sim.now - chunk.first_commit_request_time,
            retries=chunk.commit_failures,
        )
        self.core.on_commit_success(chunk)

    # ------------------------------------------------------------------
    # Shared completion / failure bookkeeping
    # ------------------------------------------------------------------
    def finish_commit_success(self, chunk: Chunk) -> None:
        """Record a successful commit and release the core."""
        if chunk.state is not ChunkState.COMMITTING:
            return  # stale success for a chunk squashed in the meantime
        self.stats.attempt_finished(self._cid(chunk), success=True)
        self.stats.record_commit(
            ctag=chunk.tag, core=self.core.core_id,
            n_dirs=len(chunk.dirs), n_write_dirs=len(chunk.dirs_written),
            latency=self.sim.now - chunk.commit_request_time,
            total_latency=self.sim.now - chunk.first_commit_request_time,
            retries=chunk.commit_failures,
        )
        self.core.on_commit_success(chunk)

    def retry_commit_later(self, chunk: Chunk) -> None:
        """Group formation failed: back off, then re-request (same tag).

        The backoff carries a deterministic per-retry jitter: fixed-period
        retry loops on both sides of a conflict can phase-lock (e.g. an
        invalidation that always arrives while the victim is awaiting its
        own arbiter outcome and therefore nacks it — a livelock).
        """
        if self.obs.enabled:
            self.obs.commit_retry(self.sim.now, self.core.core_id,
                                  self._cid(chunk))
        self.stats.attempt_finished(self._cid(chunk), success=False)
        chunk.commit_failures += 1
        base = self.config.commit_retry_backoff_cycles
        jitter = (chunk.commit_failures * 13 + self.core.core_id * 7) % base
        self.sim.schedule(base + jitter, lambda: self._retry_if_alive(chunk))

    def _retry_if_alive(self, chunk: Chunk) -> None:
        if chunk.state is not ChunkState.COMMITTING:
            return  # squashed while backing off
        if self.core.committing_head is not chunk:
            return
        chunk.commit_request_time = self.sim.now
        if self.obs.enabled:
            # A retry is a fresh protocol conversation with a new cid.
            self.obs.commit_request(self.sim.now, self.core.core_id,
                                    self._cid(chunk), sorted(chunk.dirs))
        self.stats.attempt_started(self._cid(chunk), self.sim.now,
                                   queued=self.starts_queued())
        self.send_commit_request(chunk)

    # ------------------------------------------------------------------
    # Disambiguation helpers
    # ------------------------------------------------------------------
    def find_inv_conflict(self, write_lines) -> Optional[Chunk]:
        """Oldest active chunk whose signatures capture an invalidated line.

        This is the hardware disambiguation path: every line of the
        incoming (expanded) write-set probes the local R/W signatures.
        """
        for chunk in self.core.active_chunks():
            if chunk.hit_by_invalidation(write_lines):
                return chunk
        return None

    def find_exact_conflict(self, write_lines: Set[int]) -> Optional[Chunk]:
        """Oldest active chunk truly conflicting with ``write_lines``."""
        for chunk in self.core.active_chunks():
            if chunk.true_conflict_with(write_lines):
                return chunk
        return None

    def squash(self, chunk: Chunk, write_lines: Set[int]) -> None:
        """Squash ``chunk`` (+younger), classifying conflict vs aliasing."""
        true_conflict = chunk.true_conflict_with(write_lines)
        self.core.squash_from(chunk, true_conflict=true_conflict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(core={self.core.core_id})"


__all__ = ["Protocol", "ProcessorEngine"]
