"""Declarative protocol specs: the conversation a protocol *intends*.

Each protocol family declares, next to its engine, a ``PROTOCOL_SPEC``
describing its message-flow automaton at the role level:

* ``edges`` — every legal flow ``(sender_role, MESSAGE_TYPE, receiver_role)``
  with roles drawn from :data:`repro.network.message.ROLES`
  (``core`` = processor engine, ``dir`` = directory module, ``agent`` =
  centralized arbiter / TID vendor);
* ``replies`` — for each *request* type, the message types that conclude
  its conversation back at the requester (success **and** failure
  outcomes both count — a nack is a reply);
* ``retries`` — types that merely restart a conversation (backoff /
  re-solicitation edges).  The SB603 deadlock-candidate rule accepts
  them as evidence that a conversation returns to the requester.

The declaration must be a **pure literal** (string role/type names, no
computed values): the SB6xx flow pass (:mod:`repro.analysis.flows`) reads
it from the module *source* via the AST — never by importing the module —
so seeded-mutation fixtures that doctor a protocol file bring their own
spec along.  Importing the module still constructs the object, which is
when :meth:`ProtocolSpec.__post_init__` validation runs for the real tree.

See ``docs/protocol.md`` for the declaration format and
``docs/analysis.md`` (Pass 5) for the rules checked against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.network.message import ROLES

#: one legal flow: (sender role, MessageType name, receiver role)
FlowEdge = Tuple[str, str, str]


@dataclass(frozen=True)
class ProtocolSpec:
    """The declared message-flow automaton of one protocol family."""

    family: str
    edges: Tuple[FlowEdge, ...]
    #: request type -> reply types accepted back at the requester role
    replies: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: types that restart a conversation (retry/backoff edges)
    retries: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for edge in self.edges:
            if len(edge) != 3:
                raise ValueError(f"{self.family}: malformed edge {edge!r}")
            src, mtype, dst = edge
            for role in (src, dst):
                if role not in ROLES:
                    raise ValueError(
                        f"{self.family}: unknown role {role!r} in edge "
                        f"{edge!r} (expected one of {ROLES})")
            if not mtype or not mtype.isupper():
                raise ValueError(
                    f"{self.family}: edge {edge!r} must name a MessageType "
                    f"constant (upper-case)")
        declared = {m for (_, m, _) in self.edges}
        for request, answers in self.replies.items():
            if request not in declared:
                raise ValueError(
                    f"{self.family}: replies declared for {request}, which "
                    f"no edge carries")
            for reply in answers:
                if reply not in declared:
                    raise ValueError(
                        f"{self.family}: reply {reply} to {request} appears "
                        f"on no edge")

    def edge_set(self) -> frozenset[FlowEdge]:
        return frozenset(self.edges)


__all__ = ["FlowEdge", "ProtocolSpec"]
