"""System configuration (paper Table 2) and protocol selection (Table 3).

`SystemConfig` carries every architectural parameter of the simulated
machine.  The defaults reproduce the configuration in Table 2 of the paper:

=========================  =====================================
Cores                      32 or 64 (``n_cores``)
Signature                  2 Kbit, Bulk-style banked Bloom
Max active chunks/core     2
Chunk size                 2000 instructions
Interconnect               2D torus, 7-cycle link latency
D-L1 (write-through)       32 KB / 4-way / 32 B lines, 2-cycle RT, 8 MSHRs
L2 (write-back, private)   512 KB / 8-way / 32 B lines, 8-cycle RT, 64 MSHRs
Memory round trip          300 cycles
=========================  =====================================

A 32-core machine is laid out as a 4x8 torus and a 64-core machine as an
8x8 torus (the most-square factorization is chosen automatically).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Tuple


class ProtocolKind(Enum):
    """The four simulated coherence protocols (paper Table 3)."""

    SCALABLEBULK = "ScalableBulk"   #: the protocol proposed by the paper
    TCC = "TCC"                     #: Scalable TCC [Chafi et al., HPCA'07]
    SEQ = "SEQ"                     #: SEQ-PRO from SRC [Pugsley et al., PACT'08]
    BULKSC = "BulkSC"               #: BulkSC [Ceze et al., ISCA'07], central arbiter

    def __str__(self) -> str:
        return self.value


def torus_shape(n_tiles: int) -> Tuple[int, int]:
    """Most-square (rows, cols) factorization of ``n_tiles`` for a 2D torus."""
    if n_tiles <= 0:
        raise ValueError("need a positive tile count")
    best = (1, n_tiles)
    for rows in range(1, int(math.isqrt(n_tiles)) + 1):
        if n_tiles % rows == 0:
            best = (rows, n_tiles // rows)
    return best


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    round_trip_cycles: int
    mshr_entries: int

    @property
    def n_sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(f"cache geometry yields non-power-of-two sets: {sets}")
        return sets

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class SystemConfig:
    """Full machine + protocol configuration for one simulation run."""

    # --- machine scale -------------------------------------------------
    n_cores: int = 64
    protocol: ProtocolKind = ProtocolKind.SCALABLEBULK

    # --- chunking (Section 2.2: BulkSC-style uninstrumented chunks) ----
    chunk_size_instructions: int = 2000
    max_active_chunks_per_core: int = 2
    #: memory-level parallelism: the paper's cores overlap misses through
    #: a reorder buffer and MSHRs; we model that by issuing up to this many
    #: outstanding line fetches when a burst blocks on a miss
    mlp_lookahead: int = 4

    # --- signatures (Bulk [4]) ------------------------------------------
    signature_bits: int = 2048
    #: bank count: 4 banks of 512 bits.  At the 50-100 distinct lines a
    #: 2000-instruction chunk touches, per-line membership probes false-
    #: positive at a few 1e-4 — which integrates to the paper's ~2%
    #: aliasing-squash rate over a chunk's invalidation traffic.  (8 banks
    #: would be closer to the Bloom optimum and makes aliasing vanish.)
    signature_banks: int = 4
    #: signature storage backend: "python" (packed big-int), "numpy"
    #: (packed uint64 word array), or "auto" — defer to the
    #: REPRO_SIG_BACKEND environment variable, falling back to python.
    #: Backends are bit-for-bit equivalent; this knob only trades per-op
    #: cost against signature width.
    signature_backend: str = "auto"

    # --- interconnect ----------------------------------------------------
    link_latency_cycles: int = 7
    link_width_bytes: int = 32
    router_latency_cycles: int = 1
    network_contention: bool = True

    # --- memory hierarchy ------------------------------------------------
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024, assoc=4, line_bytes=32,
            round_trip_cycles=2, mshr_entries=8,
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=512 * 1024, assoc=8, line_bytes=32,
            round_trip_cycles=8, mshr_entries=64,
        )
    )
    memory_round_trip_cycles: int = 300
    page_bytes: int = 4096

    # --- ScalableBulk protocol knobs (Section 3) -------------------------
    oci: bool = True                      #: Optimistic Commit Initiation
    starvation_max_squashes: int = 12     #: per-directory reservation threshold
    priority_rotation_interval: int = 0   #: cycles between leader-priority rotations (0 = off)
    commit_retry_backoff_cycles: int = 30
    nack_retry_backoff_cycles: int = 20

    # --- directory service timing ----------------------------------------
    dir_lookup_cycles: int = 2            #: per-message directory occupancy
    dir_line_update_cycles: int = 6       #: per written line: directory state
                                          #: read-modify-write + invalidation
                                          #: generation
    signature_expand_cycles: int = 8      #: W-signature expansion before g can be forwarded
    arbiter_base_service_cycles: int = 8  #: BulkSC arbiter fixed cost per request
    arbiter_per_chunk_cycles: int = 5     #: BulkSC arbiter cost per in-flight chunk checked
    tid_vendor_service_cycles: int = 4    #: Scalable TCC central TID agent service time

    # --- reproducibility --------------------------------------------------
    seed: int = 2010

    # ----------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.signature_bits % self.signature_banks:
            raise ValueError("signature_bits must divide evenly into banks")
        if self.page_bytes % self.l2.line_bytes:
            raise ValueError("page size must be a whole number of cache lines")
        if self.max_active_chunks_per_core < 1:
            raise ValueError("need at least one active chunk per core")
        if self.signature_backend not in ("python", "numpy", "auto"):
            raise ValueError(
                f"unknown signature_backend {self.signature_backend!r}")

    # --- derived geometry -------------------------------------------------
    @property
    def mesh_shape(self) -> Tuple[int, int]:
        """(rows, cols) of the 2D torus; one tile per core."""
        return torus_shape(self.n_cores)

    @property
    def n_directories(self) -> int:
        """One directory module per tile, as in Figure 1."""
        return self.n_cores

    @property
    def line_bytes(self) -> int:
        return self.l2.line_bytes

    @property
    def lines_per_page(self) -> int:
        return self.page_bytes // self.line_bytes

    def with_(self, **overrides) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


def table2_config(n_cores: int, protocol: ProtocolKind = ProtocolKind.SCALABLEBULK,
                  **overrides) -> SystemConfig:
    """Build the paper's Table 2 machine at the requested core count."""
    return SystemConfig(n_cores=n_cores, protocol=protocol, **overrides)


#: Exact Table 2 configurations, keyed by core count.
TABLE2_CONFIGS = {
    32: table2_config(32),
    64: table2_config(64),
}

__all__ = [
    "CacheConfig",
    "ProtocolKind",
    "SystemConfig",
    "TABLE2_CONFIGS",
    "table2_config",
    "torus_shape",
]
