"""Machine-level protocol metrics.

The protocols report three kinds of events here:

* **commit attempts** move through phases (FORMING -> COMMITTING -> done);
  every transition to COMMITTING ("a new group is formed") takes a
  bottleneck-ratio sample and a chunk-queue-length sample, exactly as the
  paper describes in Section 6.4;
* **successful commits** record their latency and their directory spread
  (write group vs read-only group);
* squashes, retries, nacks, recalls and reservations are counted.

The bottleneck ratio's numerator must exclude "chunks that are forming
groups that will later be squashed" — unknowable online, so samples store
attempt ids and the ratio is computed retrospectively from attempt
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.stats.histograms import Histogram


class AttemptPhase(Enum):
    FORMING = "forming"        #: commit requested; group not yet formed
    COMMITTING = "committing"  #: group formed; completing the commit
    QUEUED = "queued"          #: waiting behind other commits (TCC/SEQ)


@dataclass
class CommitRecord:
    """One successful chunk commit."""

    ctag: object
    core: int
    n_dirs: int
    n_write_dirs: int
    latency: int            #: last request -> success (paper's commit latency)
    total_latency: int      #: first request -> success, including retries
    retries: int


@dataclass
class _Attempt:
    ctag: object
    phase: AttemptPhase
    started: int
    succeeded: Optional[bool] = None


class MachineStats:
    """Aggregated protocol-level statistics for one simulation run."""

    def __init__(self) -> None:
        self.commits: List[CommitRecord] = []
        self.commit_latency_hist = Histogram()
        self.dirs_per_commit_hist = Histogram()
        self.write_dirs_per_commit_hist = Histogram()

        self._attempts: Dict[int, _Attempt] = {}
        self._next_attempt_id = 0
        self._live_by_ctag: Dict[object, int] = {}
        self._live_by_phase: Dict[AttemptPhase, Set[int]] = {
            phase: set() for phase in AttemptPhase}

        #: (forming attempt ids, committing count, queued count) snapshots
        self.bottleneck_samples: List[Tuple[Tuple[int, ...], int]] = []
        self.queue_samples: List[int] = []

        self.commit_failures = 0      #: group-formation losses
        self.commit_recalls = 0
        self.reservations = 0
        self.group_collisions = 0
        self.bulk_inv_nacks = 0

        #: Optional protocol-supplied probe for the chunk-queue-length
        #: metric (TCC/SEQ count chunks sitting in directory queues, which
        #: the generic phase bookkeeping cannot see).
        self.queue_probe = None

    # ------------------------------------------------------------------
    # Attempt lifecycle (called by protocol engines)
    # ------------------------------------------------------------------
    def attempt_started(self, ctag: object, now: int,
                        queued: bool = False) -> int:
        """A commit request went out (or was queued).  Returns attempt id."""
        aid = self._next_attempt_id
        self._next_attempt_id += 1
        phase = AttemptPhase.QUEUED if queued else AttemptPhase.FORMING
        self._attempts[aid] = _Attempt(ctag=ctag, phase=phase, started=now)
        self._live_by_ctag[ctag] = aid
        self._live_by_phase[phase].add(aid)
        return aid

    def _set_phase(self, aid: int, phase: AttemptPhase) -> None:
        attempt = self._attempts[aid]
        self._live_by_phase[attempt.phase].discard(aid)
        attempt.phase = phase
        self._live_by_phase[phase].add(aid)

    def attempt_forming(self, ctag: object) -> None:
        aid = self._live_by_ctag.get(ctag)
        if aid is not None:
            self._set_phase(aid, AttemptPhase.FORMING)

    def attempt_group_formed(self, ctag: object) -> None:
        """The group formed: take the Section 6.4 samples, flip the phase."""
        aid = self._live_by_ctag.get(ctag)
        if aid is None:
            return
        self._set_phase(aid, AttemptPhase.COMMITTING)
        forming = tuple(self._live_by_phase[AttemptPhase.FORMING])
        committing = len(self._live_by_phase[AttemptPhase.COMMITTING])
        if self.queue_probe is not None:
            queued = self.queue_probe()
        else:
            queued = len(self._live_by_phase[AttemptPhase.QUEUED])
        self.bottleneck_samples.append((forming, committing))
        self.queue_samples.append(queued)

    def attempt_finished(self, ctag: object, success: bool) -> None:
        aid = self._live_by_ctag.pop(ctag, None)
        if aid is not None:
            self._attempts[aid].succeeded = success
            self._live_by_phase[self._attempts[aid].phase].discard(aid)
        if not success:
            self.commit_failures += 1

    # ------------------------------------------------------------------
    # Commit records
    # ------------------------------------------------------------------
    def record_commit(self, ctag: object, core: int, n_dirs: int,
                      n_write_dirs: int, latency: int, total_latency: int,
                      retries: int) -> None:
        rec = CommitRecord(ctag, core, n_dirs, n_write_dirs, latency,
                           total_latency, retries)
        self.commits.append(rec)
        self.commit_latency_hist.add(latency)
        self.dirs_per_commit_hist.add(n_dirs)
        self.write_dirs_per_commit_hist.add(n_write_dirs)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def mean_commit_latency(self) -> float:
        return self.commit_latency_hist.mean()

    def mean_dirs_per_commit(self) -> float:
        return self.dirs_per_commit_hist.mean()

    def mean_write_dirs_per_commit(self) -> float:
        return self.write_dirs_per_commit_hist.mean()

    def mean_read_only_dirs_per_commit(self) -> float:
        return self.mean_dirs_per_commit() - self.mean_write_dirs_per_commit()

    def bottleneck_ratio(self) -> float:
        """Mean over samples of |forming, eventually-successful| / |committing|.

        Computed retrospectively: the numerator counts only attempts whose
        outcome resolved to success by the end of the run.  Attempts that
        failed — or never resolved at all (still forming when the run was
        cut off) — are excluded, per the Section 6.4 definition: a chunk
        whose group never commits was never going to relieve the
        bottleneck.  Samples with an empty denominator contribute the
        numerator count directly against a denominator of 1 (a group just
        formed, so the machine is never truly idle at a sample point).
        """
        if not self.bottleneck_samples:
            return 0.0
        ratios = []
        for forming_ids, committing in self.bottleneck_samples:
            good_forming = sum(
                1 for aid in forming_ids
                if self._attempts[aid].succeeded is True
            )
            ratios.append(good_forming / max(1, committing))
        return sum(ratios) / len(ratios)

    def mean_queue_length(self) -> float:
        if not self.queue_samples:
            return 0.0
        return sum(self.queue_samples) / len(self.queue_samples)

    @property
    def n_commits(self) -> int:
        return len(self.commits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MachineStats(commits={self.n_commits}, "
                f"failures={self.commit_failures})")


__all__ = ["AttemptPhase", "CommitRecord", "MachineStats"]
