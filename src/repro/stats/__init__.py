"""Measurement: everything the paper's evaluation section reports.

* execution-time breakdown per core (Useful / Cache Miss / Commit / Squash,
  Figs. 7-8) — collected by :class:`repro.cpu.core.CoreStats`;
* commit latency distribution and means (Fig. 13);
* directories accessed per chunk commit, split into write group and
  read-only group (Figs. 9-12);
* bottleneck ratio, sampled at every group formation (Figs. 14-15);
* chunk queue length (Figs. 16-17);
* traffic characterization by message class (Figs. 18-19) — collected by
  :class:`repro.network.noc.TrafficStats`.
"""

from repro.stats.metrics import AttemptPhase, CommitRecord, MachineStats
from repro.stats.histograms import Histogram, bucketize, distribution_percentages

__all__ = [
    "AttemptPhase",
    "CommitRecord",
    "Histogram",
    "MachineStats",
    "bucketize",
    "distribution_percentages",
]
