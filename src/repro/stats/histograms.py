"""Small histogram utilities for the distribution figures (11, 12, 13)."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple


class Histogram:
    """Integer-valued histogram with percentage and percentile views."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self.n = 0

    def add(self, value: int) -> None:
        self._counts[int(value)] += 1
        self.n += 1

    def counts(self) -> Dict[int, int]:
        return dict(self._counts)

    def mean(self) -> float:
        if not self.n:
            return 0.0
        return sum(v * c for v, c in self._counts.items()) / self.n

    def percentile(self, p: float) -> int:
        """Smallest value v such that at least p% of samples are <= v."""
        if not self.n:
            return 0
        target = self.n * p / 100.0
        cum = 0
        for v in sorted(self._counts):
            cum += self._counts[v]
            if cum >= target:
                return v
        return max(self._counts)

    def percentages(self, upper: int, overflow_label: str = "more"
                    ) -> Dict[object, float]:
        """Percent of samples at each value 0..upper, rest under ``overflow_label``.

        Matches the x-axes of Figures 11/12 (0..14 plus "more").
        """
        out: Dict[object, float] = {}
        overflow = 0
        for v, c in self._counts.items():
            if v <= upper:
                out[v] = out.get(v, 0.0) + c
            else:
                overflow += c
        result: Dict[object, float] = {
            v: (100.0 * out.get(v, 0.0) / self.n if self.n else 0.0)
            for v in range(upper + 1)
        }
        result[overflow_label] = 100.0 * overflow / self.n if self.n else 0.0
        return result

    def __len__(self) -> int:
        return self.n


def bucketize(values: Sequence[float], bucket_width: float,
              n_buckets: int) -> List[Tuple[float, int]]:
    """Fixed-width bucketing for latency distributions (Fig. 13)."""
    buckets = [0] * n_buckets
    for v in values:
        idx = min(int(v // bucket_width), n_buckets - 1)
        buckets[idx] += 1
    return [(i * bucket_width, c) for i, c in enumerate(buckets)]


def distribution_percentages(values: Iterable[int], upper: int
                             ) -> Dict[object, float]:
    """One-shot helper: histogram then percentages."""
    h = Histogram()
    for v in values:
        h.add(v)
    return h.percentages(upper)


__all__ = ["Histogram", "bucketize", "distribution_percentages"]
