"""Terminal charts for the paper's figures (no plotting libraries needed).

Three chart shapes cover every figure in the evaluation:

* :func:`stacked_bars` — the Figs. 7/8 execution-time breakdowns
  (Useful / Cache Miss / Commit / Squash as distinct fill characters);
* :func:`grouped_bars` — Figs. 9/10 (write group vs read group) and the
  per-protocol comparisons of Figs. 14-17;
* :func:`distribution_plot` — Figs. 11-13 (percentage vs bucket).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

#: fill characters for stacked segments, in legend order
SEGMENT_CHARS = ("#", "=", "+", "x", "o", "*")


def _scale(value: float, vmax: float, width: int) -> int:
    if vmax <= 0:
        return 0
    return max(0, min(width, round(value / vmax * width)))


def hbar_chart(items: Mapping[str, float], width: int = 50,
               title: str = "", unit: str = "") -> str:
    """One horizontal bar per item, annotated with its value."""
    lines: List[str] = [title] if title else []
    if not items:
        return "\n".join(lines + ["(no data)"])
    vmax = max(items.values()) or 1.0
    label_w = max(len(k) for k in items)
    for label, value in items.items():
        bar = "#" * _scale(value, vmax, width)
        lines.append(f"{label:>{label_w}s} |{bar:<{width}s}| "
                     f"{value:g}{unit}")
    return "\n".join(lines)


def stacked_bars(labels: Sequence[str],
                 segments: Mapping[str, Sequence[float]],
                 width: int = 50, title: str = "") -> str:
    """Stacked horizontal bars: one row per label, one fill char per segment.

    ``segments`` maps segment name -> per-label values (all equal length).
    """
    lines: List[str] = [title] if title else []
    names = list(segments)
    for name, values in segments.items():
        if len(values) != len(labels):
            raise ValueError(f"segment {name!r} has {len(values)} values "
                             f"for {len(labels)} labels")
    totals = [sum(segments[name][i] for name in names)
              for i in range(len(labels))]
    vmax = max(totals, default=0) or 1.0
    label_w = max((len(l) for l in labels), default=1)

    legend = "  ".join(f"{SEGMENT_CHARS[i % len(SEGMENT_CHARS)]}={name}"
                       for i, name in enumerate(names))
    lines.append(legend)
    for i, label in enumerate(labels):
        bar = ""
        for j, name in enumerate(names):
            bar += SEGMENT_CHARS[j % len(SEGMENT_CHARS)] * _scale(
                segments[name][i], vmax, width)
        lines.append(f"{label:>{label_w}s} |{bar:<{width}s}| "
                     f"{totals[i]:.3g}")
    return "\n".join(lines)


def grouped_bars(labels: Sequence[str],
                 groups: Mapping[str, Sequence[float]],
                 width: int = 40, title: str = "", unit: str = "") -> str:
    """Adjacent bars per label, one row per (label, group)."""
    lines: List[str] = [title] if title else []
    vmax = max((v for vs in groups.values() for v in vs), default=0) or 1.0
    label_w = max((len(l) for l in labels), default=1)
    group_w = max((len(g) for g in groups), default=1)
    for i, label in enumerate(labels):
        for gname, values in groups.items():
            bar = "#" * _scale(values[i], vmax, width)
            lines.append(f"{label:>{label_w}s} {gname:<{group_w}s} "
                         f"|{bar:<{width}s}| {values[i]:g}{unit}")
        lines.append("")
    return "\n".join(lines).rstrip()


def distribution_plot(buckets: Mapping[object, float], width: int = 40,
                      title: str = "", unit: str = "%") -> str:
    """Bucketed distribution: one bar per bucket, in key order."""
    lines: List[str] = [title] if title else []
    if not buckets:
        return "\n".join(lines + ["(no data)"])
    vmax = max(buckets.values()) or 1.0
    for key, value in buckets.items():
        bar = "#" * _scale(value, vmax, width)
        lines.append(f"{key!s:>6s} |{bar:<{width}s}| {value:.1f}{unit}")
    return "\n".join(lines)


def breakdown_chart(bars, width: int = 50, title: str = "") -> str:
    """Figs. 7/8 directly from `BreakdownBar` objects."""
    labels = [f"{b.app}_{b.n_cores} {b.protocol.value}" for b in bars]
    segments = {
        "Useful": [b.useful for b in bars],
        "Cache Miss": [b.cache_miss for b in bars],
        "Commit": [b.commit for b in bars],
        "Squash": [b.squash for b in bars],
    }
    return stacked_bars(labels, segments, width=width, title=title)


__all__ = ["SEGMENT_CHARS", "breakdown_chart", "distribution_plot",
           "grouped_bars", "hbar_chart", "stacked_bars"]
