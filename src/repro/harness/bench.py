"""Performance benchmark harness: the repo's perf trajectory.

Every optimization PR needs a number to beat.  This module measures

* **micro** benchmarks — the simulator's hottest primitives in isolation:
  signature insert and intersect (:mod:`repro.signatures`), event-queue
  churn (:mod:`repro.engine.events`) and NoC transit
  (:mod:`repro.network.noc`);
* **macro** benchmarks — wall-clock for a fixed (app, cores, protocol)
  matrix through the full stack, reported as simulated cycles per second.

Results are written to ``BENCH_<date>.json``.  Raw wall-clock numbers are
host-specific, so every document also records a *calibration* score (a
fixed pure-Python busy loop timed on the same host at the same moment);
:func:`compare_bench` divides every throughput metric by it, which cancels
raw host speed to first order and makes the >20% CI regression gate
meaningful across machines.

Usage::

    python -m repro bench --quick --jobs 2           # smoke tier
    python -m repro bench --out BENCH_$(date +%F).json
    python -m repro bench --validate-file BENCH_2026-08-08.json
    python -m repro bench --check-regression BENCH_old.json BENCH_new.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

SCHEMA = "repro-bench-v1"

#: Macro matrix: (app, n_cores, chunks) — all four protocols run on each.
MACRO_MATRIX = [("Radix", 16, 2), ("LU", 16, 2), ("Barnes", 16, 2),
                ("Canneal", 16, 2)]
MACRO_MATRIX_QUICK = [("Radix", 8, 1), ("LU", 8, 1)]

#: Micro op counts (full / quick).
MICRO_OPS = {"signature_insert": (200_000, 40_000),
             "signature_intersect": (200_000, 40_000),
             "event_queue_churn": (200_000, 40_000),
             "noc_transit": (60_000, 12_000)}


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
def calibrate(n: int = 2_000_000) -> float:
    """Fixed busy-loop score (ops/sec): a host-speed proxy.

    Dividing every benchmark throughput by this number yields a roughly
    host-independent ratio, so baselines recorded on one machine can gate
    regressions measured on another.
    """
    t0 = time.perf_counter()  # repro: allow SB304
    acc = 0
    for i in range(n):
        acc += i * i
    dt = time.perf_counter() - t0  # repro: allow SB304
    assert acc >= 0
    return n / dt if dt > 0 else float("inf")


# ----------------------------------------------------------------------
# Micro benchmarks
# ----------------------------------------------------------------------
def bench_signature_insert(n_ops: int) -> Dict[str, Any]:
    """Hot-path insert: repeated line inserts through the memoized masks."""
    from repro.signatures.bulk_signature import SignatureFactory
    factory = SignatureFactory(total_bits=2048, n_banks=4, seed=2010)
    sig = factory.empty()
    lines = [(i * 2654435761) % (1 << 34) for i in range(512)]
    t0 = time.perf_counter()  # repro: allow SB304
    for i in range(n_ops):
        sig.insert(lines[i & 511])
    dt = time.perf_counter() - t0  # repro: allow SB304
    return {"ops": n_ops, "seconds": dt, "ops_per_sec": n_ops / dt}


def bench_signature_intersect(n_ops: int) -> Dict[str, Any]:
    """Directory-side conflict test: W-sig against R/W-sig pairs."""
    from repro.signatures.bulk_signature import SignatureFactory
    factory = SignatureFactory(total_bits=2048, n_banks=4, seed=2010)
    a = factory.from_lines(range(0, 640, 10))
    b = factory.from_lines(range(5, 645, 10))
    c = factory.from_lines(range(10_000, 10_640, 10))
    t0 = time.perf_counter()  # repro: allow SB304
    hits = 0
    for i in range(n_ops):
        if a.intersects(b if i & 1 else c):
            hits += 1
    dt = time.perf_counter() - t0  # repro: allow SB304
    assert hits >= 0
    return {"ops": n_ops, "seconds": dt, "ops_per_sec": n_ops / dt}


def bench_event_queue_churn(n_ops: int) -> Dict[str, Any]:
    """Schedule/cancel/execute churn plus quiescence polling.

    Exercises the heap push/pop path and the O(1) live-event counter the
    conservation checks poll (``quiescent()`` used to be a full heap scan).
    """
    from repro.engine.events import Simulator
    sim = Simulator()
    noop = (lambda: None)
    t0 = time.perf_counter()  # repro: allow SB304
    batch = 512
    scheduled = 0
    while scheduled < n_ops:
        events = [sim.schedule(j & 63, noop) for j in range(batch)]
        for ev in events[::4]:
            ev.cancel()
        sim.run()
        assert sim.quiescent()
        scheduled += batch
    dt = time.perf_counter() - t0  # repro: allow SB304
    return {"ops": scheduled, "seconds": dt, "ops_per_sec": scheduled / dt}


def bench_noc_transit(n_ops: int) -> Dict[str, Any]:
    """Message injection + routed delivery on a contended 4x4 torus."""
    from repro.config import SystemConfig
    from repro.engine.events import Simulator
    from repro.network.message import Message, MessageType, core_node
    from repro.network.noc import Network
    config = SystemConfig(n_cores=16, network_contention=True)
    sim = Simulator()
    net = Network(config, sim)
    delivered = []
    for i in range(16):
        net.register(core_node(i), lambda m: delivered.append(1))
    t0 = time.perf_counter()  # repro: allow SB304
    batch = 256
    sent = 0
    while sent < n_ops:
        for j in range(batch):
            src, dst = j & 15, (j * 7 + 3) & 15
            if src == dst:
                dst = (dst + 1) & 15
            net.send(Message(MessageType.G, core_node(src), core_node(dst),
                             ctag=j))
        sim.run()
        sent += batch
    dt = time.perf_counter() - t0  # repro: allow SB304
    assert len(delivered) == sent
    return {"ops": sent, "seconds": dt, "ops_per_sec": sent / dt}


MICRO_BENCHES: Dict[str, Callable[[int], Dict[str, Any]]] = {
    "signature_insert": bench_signature_insert,
    "signature_intersect": bench_signature_intersect,
    "event_queue_churn": bench_event_queue_churn,
    "noc_transit": bench_noc_transit,
}


def run_micro(name: str, quick: bool, repeat: int) -> Dict[str, Any]:
    """Best-of-``repeat`` run of one micro benchmark."""
    full, small = MICRO_OPS[name]
    n_ops = small if quick else full
    best: Optional[Dict[str, Any]] = None
    for _ in range(max(1, repeat)):
        result = MICRO_BENCHES[name](n_ops)
        if best is None or result["seconds"] < best["seconds"]:
            best = result
    assert best is not None
    best["best_of"] = max(1, repeat)
    return best


# ----------------------------------------------------------------------
# Macro benchmarks
# ----------------------------------------------------------------------
def _macro_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool worker: one full simulation, timed (best of N).

    ``payload["repeat"]`` re-runs the (deterministic) simulation and keeps
    the fastest wall-clock: host noise only ever inflates a measurement,
    so the minimum is the best estimate of the simulator's actual speed —
    the same rationale as ``run_micro``'s best-of.
    """
    from repro.config import ProtocolKind
    from repro.harness.sweep import run_one
    record = None
    for _ in range(max(1, int(payload.get("repeat", 1)))):
        attempt = run_one(payload["app"], payload["n_cores"],
                          ProtocolKind(payload["protocol"]),
                          chunks=payload["chunks"],
                          profile=payload.get("profile", False))
        if record is None or (attempt.get("wall_seconds_raw", attempt["wall_seconds"])
                              < record.get("wall_seconds_raw", record["wall_seconds"])):
            record = attempt
    # Prefer the unrounded wall-clock when run_one provides it (the
    # display field is rounded to 2 decimals, which quantizes sub-0.2s
    # runs by up to ~15%); clamp so a sub-10ms run cannot explode
    # cycles_per_sec.
    wall = max(record.get("wall_seconds_raw", record["wall_seconds"]), 0.01)
    out = {
        "app": payload["app"],
        "protocol": payload["protocol"],
        "n_cores": payload["n_cores"],
        "chunks": payload["chunks"],
        "config_hash": record["config_hash"],
        "wall_seconds": record["wall_seconds"],
        "total_cycles": record["total_cycles"],
        "chunks_committed": record["chunks_committed"],
        "cycles_per_sec": record["total_cycles"] / wall,
    }
    if "profile" in record:
        out["profile"] = record["profile"]
    return out


def run_macro(quick: bool, jobs: int, log=print,
              profile: bool = False,
              repeat: int = 1) -> Dict[str, Dict[str, Any]]:
    from repro.config import ProtocolKind
    from repro.harness.parallel import run_ordered
    matrix = MACRO_MATRIX_QUICK if quick else MACRO_MATRIX
    # Profiled runs are attribution captures, not timing measurements:
    # best-of-N would just multiply the timer overhead, so they run once.
    payloads = [{"app": app, "n_cores": n, "chunks": chunks,
                 "protocol": proto.value, "profile": profile,
                 "repeat": 1 if profile else max(1, repeat)}
                for app, n, chunks in matrix for proto in ProtocolKind]
    out: Dict[str, Dict[str, Any]] = {}

    def merge(_i, payload, record) -> None:
        key = f"{payload['app']}/{payload['n_cores']}/{payload['protocol']}"
        out[key] = record
        line = (f"  macro {key}: {record['total_cycles']} cycles in "
                f"{record['wall_seconds']:.2f}s "
                f"({record['cycles_per_sec']:.0f} cy/s)")
        if "profile" in record:
            from repro.obs.profile import render_share_line
            line += f"\n    host time: " \
                    f"{render_share_line(record['profile']['shares'])}"
        log(line)

    run_ordered(_macro_worker, payloads, jobs=jobs, on_result=merge)
    return out


# ----------------------------------------------------------------------
# Document assembly / validation / comparison
# ----------------------------------------------------------------------
def collect_bench(quick: bool = False, jobs: int = 1, repeat: int = 3,
                  log=print, profile: bool = False) -> Dict[str, Any]:
    """Run everything and assemble a schema-valid benchmark document.

    ``profile`` attaches the host-time self-profiler to every macro run:
    each macro record carries its own attribution report and the document
    gains an aggregated ``profile`` section (shares sum to 100% ± 1).
    The profiled wall-clocks include timer overhead, so don't mix
    profiled and unprofiled documents in ``--check-regression``.
    """
    from repro.provenance import git_rev
    log("calibrating host ...")
    calibration = calibrate()
    micro: Dict[str, Any] = {}
    for name in MICRO_BENCHES:
        # best-of-N in the quick tier too: a single noisy shot can swing
        # a quick micro by 30% on a busy host, which is far beyond the CI
        # regression threshold — the gate needs the stable minimum.
        micro[name] = run_micro(name, quick, repeat)
        log(f"  micro {name}: {micro[name]['ops_per_sec']:.0f} ops/s "
            f"({micro[name]['ops']} ops)")
    macro = run_macro(quick, jobs, log=log, profile=profile, repeat=repeat)
    doc: Dict[str, Any] = {
        "schema": SCHEMA,
        "date": datetime.date.today().isoformat(),  # repro: allow SB304
        "git_rev": git_rev(),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count() or 1,
        },
        "config": {"quick": quick, "jobs": jobs,
                   "repeat": repeat, "profile": profile},
        "calibration_ops_per_sec": calibration,
        "micro": micro,
        "macro": macro,
    }
    if profile:
        from repro.obs.profile import aggregate_profiles, render_share_line
        doc["profile"] = aggregate_profiles(
            [rec["profile"] for rec in macro.values() if "profile" in rec])
        log(f"  host-time attribution (all macro runs): "
            f"{render_share_line(doc['profile']['shares'])}")
    return doc


def validate_bench(doc: Any) -> List[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(doc.get("date"), str):
        errors.append("date missing or not a string")
    host = doc.get("host")
    if not isinstance(host, dict) \
            or not {"python", "platform", "cpus"} <= set(host or {}):
        errors.append("host must carry python/platform/cpus")
    cal = doc.get("calibration_ops_per_sec")
    if not isinstance(cal, (int, float)) or cal <= 0:
        errors.append("calibration_ops_per_sec missing or non-positive")
    micro = doc.get("micro")
    if not isinstance(micro, dict) or not micro:
        errors.append("micro section missing or empty")
    else:
        for name, rec in micro.items():
            for field, kind in (("ops", int), ("seconds", (int, float)),
                                ("ops_per_sec", (int, float))):
                if not isinstance(rec.get(field), kind):
                    errors.append(f"micro[{name}].{field} missing or mistyped")
            if isinstance(rec.get("ops_per_sec"), (int, float)) \
                    and rec["ops_per_sec"] <= 0:
                errors.append(f"micro[{name}].ops_per_sec non-positive")
    macro = doc.get("macro")
    if not isinstance(macro, dict) or not macro:
        errors.append("macro section missing or empty")
    else:
        for key, rec in macro.items():
            for field in ("wall_seconds", "total_cycles", "cycles_per_sec",
                          "app", "protocol", "n_cores"):
                if field not in (rec or {}):
                    errors.append(f"macro[{key}].{field} missing")
            if isinstance(rec, dict) and rec.get("total_cycles", 1) <= 0:
                errors.append(f"macro[{key}].total_cycles non-positive")
            if isinstance(rec, dict) and "profile" in rec:
                errors.extend(f"macro[{key}].profile: {e}"
                              for e in _validate_profile(rec["profile"]))
    # Additive (profiled documents only): the aggregated attribution.
    if "profile" in doc:
        errors.extend(f"profile: {e}"
                      for e in _validate_profile(doc["profile"]))
    return errors


def _validate_profile(section: Any) -> List[str]:
    """Check an embedded host-profiler attribution (shares sum to ~100)."""
    if not isinstance(section, dict):
        return ["not an object"]
    errors: List[str] = []
    shares = section.get("shares")
    if not isinstance(shares, dict) or not shares:
        return ["shares missing or empty"]
    bad = [k for k, v in shares.items()
           if not isinstance(v, (int, float)) or v < 0]
    if bad:
        errors.append(f"negative or mistyped shares: {bad}")
    total = sum(v for v in shares.values() if isinstance(v, (int, float)))
    if abs(total - 100.0) > 1.0:
        errors.append(f"shares sum to {total:.2f}, expected 100 +- 1")
    scopes = section.get("scopes")
    if not isinstance(scopes, dict) or not scopes:
        errors.append("scopes missing or empty")
    return errors


def macro_reliable(doc: Dict[str, Any]) -> bool:
    """False when the macro matrix oversubscribed the host's cores.

    With more worker processes than cores, each worker's wall-clock
    includes time spent descheduled — a contention artifact, not
    simulator speed — so macro numbers from such a run must not gate
    regressions.  (The serial calibration loop cannot correct for this.)
    """
    return int(doc.get("config", {}).get("jobs", 1)) \
        <= int(doc.get("host", {}).get("cpus", 1))


def compare_bench(old: Dict[str, Any], new: Dict[str, Any],
                  threshold: float = 0.20) -> List[str]:
    """Calibration-normalized regressions beyond ``threshold``.

    Every throughput metric is divided by its document's calibration
    score before comparison, so an old baseline from a faster (or slower)
    host still gates meaningfully.  Returns human-readable regression
    lines; empty means the new run is no more than ``threshold`` slower
    on every shared metric.
    """
    regressions: List[str] = []
    cal_old = float(old["calibration_ops_per_sec"])
    cal_new = float(new["calibration_ops_per_sec"])

    def check(label: str, a: float, b: float) -> None:
        norm_old, norm_new = a / cal_old, b / cal_new
        if norm_old > 0 and norm_new < norm_old * (1.0 - threshold):
            drop = 100.0 * (1.0 - norm_new / norm_old)
            regressions.append(
                f"{label}: {drop:.1f}% slower (normalized "
                f"{norm_old:.4g} -> {norm_new:.4g})")

    for name in sorted(set(old.get("micro", {})) & set(new.get("micro", {}))):
        check(f"micro/{name}",
              old["micro"][name]["ops_per_sec"],
              new["micro"][name]["ops_per_sec"])
    if macro_reliable(old) and macro_reliable(new):
        for key in sorted(set(old.get("macro", {})) & set(new.get("macro", {}))):
            check(f"macro/{key}",
                  old["macro"][key]["cycles_per_sec"],
                  new["macro"][key]["cycles_per_sec"])
    return regressions


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="micro + macro performance benchmarks "
                    "(see docs/performance.md)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke tier: smaller op counts, 2-app macro "
                             "matrix, single repetition")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the macro matrix "
                             "(0 = all cores); micro benches always run "
                             "serially for stable timing")
    parser.add_argument("--repeat", type=int, default=3,
                        help="micro benches: best-of-N repetitions")
    parser.add_argument("--profile", action="store_true",
                        help="attach the host-time self-profiler to every "
                             "macro run and emit the per-subsystem "
                             "breakdown next to cycles/sec (timer overhead "
                             "inflates wall-clocks; don't gate regressions "
                             "against unprofiled baselines)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default BENCH_<date>.json)")
    parser.add_argument("--validate-file", type=Path, metavar="PATH",
                        help="schema-validate an existing document and exit")
    parser.add_argument("--check-regression", nargs=2, type=Path,
                        metavar=("BASELINE", "NEW"),
                        help="compare two documents (calibration-"
                             "normalized) and exit 1 on regression")
    parser.add_argument("--store", type=Path, default=None, metavar="DB",
                        help="also record the collected document in this "
                             "result store (python -m repro store)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="regression threshold for --check-regression "
                             "(default 20%%)")
    args = parser.parse_args(argv)

    if args.validate_file:
        doc = json.loads(args.validate_file.read_text())
        errors = validate_bench(doc)
        if errors:
            for err in errors:
                print(f"INVALID {args.validate_file}: {err}")
            return 1
        print(f"{args.validate_file}: valid {SCHEMA} document "
              f"({len(doc['micro'])} micro, {len(doc['macro'])} macro)")
        return 0

    if args.check_regression:
        old_path, new_path = args.check_regression
        old = json.loads(old_path.read_text())
        new = json.loads(new_path.read_text())
        for label, doc in (("baseline", old), ("new", new)):
            errors = validate_bench(doc)
            if errors:
                print(f"INVALID {label} document: {errors[0]}")
                return 1
        if not (macro_reliable(old) and macro_reliable(new)):
            print("note: macro metrics skipped — a document was produced "
                  "with more workers than host cores, so its wall-clocks "
                  "measure CPU contention, not simulator speed")
        regressions = compare_bench(old, new, args.threshold)
        if regressions:
            print(f"{len(regressions)} regression(s) beyond "
                  f"{args.threshold:.0%}:")
            for line in regressions:
                print(f"  {line}")
            return 1
        print(f"no regression beyond {args.threshold:.0%} "
              f"({old_path} -> {new_path})")
        return 0

    from repro.harness.parallel import resolve_jobs
    doc = collect_bench(quick=args.quick, jobs=resolve_jobs(args.jobs),
                        repeat=args.repeat, profile=args.profile)
    out = args.out or Path(f"BENCH_{doc['date']}.json")
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    errors = validate_bench(doc)
    if errors:  # pragma: no cover - a bug in this module itself
        for err in errors:
            print(f"self-check failed: {err}")
        return 1
    print(f"wrote {out} (calibration "
          f"{doc['calibration_ops_per_sec']:.0f} ops/s)")
    if args.store is not None:
        from repro.store.db import ResultStore
        from repro.store.ingest import ingest_bench
        with ResultStore(args.store) as store:
            stored = ingest_bench(store, doc, source=str(out))
        print(f"stored {len(stored)} bench records in {args.store}")
    return 0


__all__ = ["MICRO_BENCHES", "SCHEMA", "calibrate", "collect_bench",
           "compare_bench", "macro_reliable", "main", "run_macro",
           "run_micro", "validate_bench"]


if __name__ == "__main__":
    sys.exit(main())
