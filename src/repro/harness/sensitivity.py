"""Sensitivity studies around the paper's design arguments.

Section 2.2 ("Is Commit Really Critical?") argues that earlier studies saw
no commit bottleneck because their transactions were 10k-40k instructions,
while uninstrumented BulkSC-style chunks are ~2k — an order of magnitude
more commits to hide.  :func:`chunk_size_sweep` reproduces that argument
directly: as chunks grow, every protocol's commit overhead fades and the
protocols converge; at small chunks they separate.

:func:`signature_sweep` explores the aliasing/space trade-off of the
2 Kbit signature (Section 2.3), and :func:`backoff_sweep` the retry-policy
sensitivity of group formation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.config import ProtocolKind, SystemConfig
from repro.harness.runner import RunResult, SimulationRunner


@dataclass
class SweepPoint:
    """One (x, protocol) measurement of a sensitivity sweep."""

    x: int
    protocol: ProtocolKind
    total_cycles: int
    commit_fraction: float
    squash_fraction: float
    mean_commit_latency: float
    commits_per_kcycle: float
    squashes_alias: int


def _point(x: int, result: RunResult) -> SweepPoint:
    frac = result.breakdown_fractions()
    return SweepPoint(
        x=x, protocol=result.protocol,
        total_cycles=result.total_cycles,
        commit_fraction=frac["Commit"],
        squash_fraction=frac["Squash"],
        mean_commit_latency=result.mean_commit_latency,
        commits_per_kcycle=(1000.0 * result.chunks_committed
                            / max(1, result.total_cycles)),
        squashes_alias=result.squashes_alias,
    )


def chunk_size_sweep(app: str = "Radix", n_cores: int = 16,
                     chunk_sizes: Sequence[int] = (1000, 2000, 8000, 20000),
                     protocols: Sequence[ProtocolKind] = (
                         ProtocolKind.SCALABLEBULK, ProtocolKind.SEQ),
                     chunks_per_partition: int = 3) -> List[SweepPoint]:
    """Commit criticality vs chunk size (the Section 2.2 argument).

    The total work is held constant: bigger chunks -> proportionally fewer
    of them.  The per-chunk footprint scales with chunk size (more
    instructions touch more lines), mirroring how software-defined
    transactions batch more work per commit.
    """
    points: List[SweepPoint] = []
    base_chunk = 2000
    total_chunks = chunks_per_partition  # per partition at base size
    for size in chunk_sizes:
        scale = size / base_chunk
        cpp = max(1, round(total_chunks * base_chunk / size))
        for proto in protocols:
            config = SystemConfig(n_cores=n_cores, protocol=proto,
                                  chunk_size_instructions=size)
            runner = SimulationRunner(app, config,
                                      chunks_per_partition=cpp,
                                      access_scale=scale)
            points.append(_point(size, runner.run()))
    return points


def signature_sweep(app: str = "Barnes", n_cores: int = 16,
                    configs: Sequence = ((512, 2), (1024, 4), (2048, 4),
                                         (2048, 8)),
                    chunks_per_partition: int = 3) -> List[SweepPoint]:
    """Aliasing squashes vs signature geometry (bits, banks)."""
    points: List[SweepPoint] = []
    for bits, banks in configs:
        config = SystemConfig(n_cores=n_cores,
                              protocol=ProtocolKind.SCALABLEBULK,
                              signature_bits=bits, signature_banks=banks)
        runner = SimulationRunner(app, config,
                                  chunks_per_partition=chunks_per_partition)
        points.append(_point(bits, runner.run()))
    return points


def backoff_sweep(app: str = "Canneal", n_cores: int = 16,
                  backoffs: Sequence[int] = (10, 30, 100, 300),
                  chunks_per_partition: int = 3) -> List[SweepPoint]:
    """Retry-backoff sensitivity of group formation under contention."""
    points: List[SweepPoint] = []
    for backoff in backoffs:
        config = SystemConfig(n_cores=n_cores,
                              protocol=ProtocolKind.SCALABLEBULK,
                              commit_retry_backoff_cycles=backoff)
        runner = SimulationRunner(app, config,
                                  chunks_per_partition=chunks_per_partition)
        points.append(_point(backoff, runner.run()))
    return points


def render_sweep(points: List[SweepPoint], x_name: str) -> str:
    """Text table of a sensitivity sweep."""
    lines = [f"{x_name:>10s} {'protocol':14s} {'cycles':>9s} "
             f"{'commit%':>8s} {'squash%':>8s} {'lat':>8s} "
             f"{'commits/kcy':>11s}"]
    for p in points:
        lines.append(
            f"{p.x:10d} {p.protocol.value:14s} {p.total_cycles:9d} "
            f"{p.commit_fraction * 100:7.1f}% {p.squash_fraction * 100:7.1f}% "
            f"{p.mean_commit_latency:8.1f} {p.commits_per_kcycle:11.2f}")
    return "\n".join(lines)


__all__ = ["SweepPoint", "backoff_sweep", "chunk_size_sweep",
           "render_sweep", "signature_sweep"]
