"""Machine assembly and single-run execution.

A :class:`Machine` owns every simulated component, wired exactly like
Figure 1 of the paper: one tile per core with a private L1/L2 and a
directory module, all on a 2D torus, plus whatever central agent the
selected protocol needs.  :func:`run_app` is the one-call entry point used
by examples, tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Dict, List, Optional

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.core import Core
from repro.engine.events import Simulator
from repro.memory.directory import LineInfo
from repro.memory.page_map import PageMapper
from repro.network.message import core_node, dir_node
from repro.network.noc import Network
from repro.obs.bus import InstrumentationBus, attach_bus
from repro.protocols import make_protocol
from repro.signatures.bulk_signature import SignatureFactory
from repro.validation.oracle import attach_oracle
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import AppProfile, get_profile

#: Hard cap on simulator events per run — a livelocked protocol bug fails
#: loudly instead of hanging the suite.
DEFAULT_EVENT_GUARD = 200_000_000

#: prewarm page-memo sentinel ("not looked up yet" vs "unmapped page")
_UNRESOLVED = object()


@dataclass
class RunResult:
    """Everything a figure needs from one simulation run."""

    app: str
    protocol: ProtocolKind
    n_cores: int
    active_cores: int
    total_cycles: int

    useful_cycles: int
    miss_stall_cycles: int
    commit_stall_cycles: int
    squash_cycles: int

    chunks_committed: int
    squashes_conflict: int
    squashes_alias: int
    read_nacks: int

    mean_commit_latency: float
    mean_dirs_per_commit: float
    mean_write_dirs_per_commit: float
    bottleneck_ratio: float
    mean_queue_length: float

    traffic_by_class: Dict[str, int]
    total_messages: int

    machine: Optional["Machine"] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def breakdown_fractions(self) -> Dict[str, float]:
        """Useful/CacheMiss/Commit/Squash as fractions of accounted cycles."""
        total = (self.useful_cycles + self.miss_stall_cycles
                 + self.commit_stall_cycles + self.squash_cycles)
        if total == 0:
            return {"Useful": 0.0, "Cache Miss": 0.0, "Commit": 0.0,
                    "Squash": 0.0}
        return {
            "Useful": self.useful_cycles / total,
            "Cache Miss": self.miss_stall_cycles / total,
            "Commit": self.commit_stall_cycles / total,
            "Squash": self.squash_cycles / total,
        }

    def normalized_time(self, baseline_cycles: int) -> float:
        """Execution time normalized to a baseline run (Figs. 7/8 bars)."""
        return self.total_cycles / baseline_cycles if baseline_cycles else 0.0

    def speedup(self, baseline_cycles: int) -> float:
        return baseline_cycles / self.total_cycles if self.total_cycles else 0.0


class Machine:
    """A fully wired simulated multicore (Figure 1)."""

    def __init__(self, config: SystemConfig,
                 workload: Optional[SyntheticWorkload] = None,
                 next_spec=None) -> None:
        if workload is None and next_spec is None:
            raise ValueError("need a workload or a next_spec callback")
        self.config = config
        self.sim = Simulator()
        self.network = Network(config, self.sim)
        self.page_mapper = PageMapper(config.page_bytes, config.n_directories)
        self.sig_factory = SignatureFactory(
            total_bits=config.signature_bits, n_banks=config.signature_banks,
            seed=config.seed, backend=config.signature_backend)
        self.workload = workload
        spec_source = next_spec or workload.next_spec
        if workload is not None:
            workload.premap_pages(self.page_mapper)

        self.protocol = make_protocol(config, self.sim, self.network,
                                      self.page_mapper, self.sig_factory)
        self.protocol.setup_agents()

        self.directories = []
        for d in range(config.n_directories):
            module = self.protocol.create_directory(d)
            self.network.register(dir_node(d), module.handle_message)
            self.directories.append(module)

        self.cores = []
        for c in range(config.n_cores):
            core = Core(c, config, self.sim, self.network, self.page_mapper,
                        self.sig_factory, spec_source)
            engine = self.protocol.create_engine(core)
            self.network.register(core_node(c), engine.handle_message)
            self.cores.append(core)

    # ------------------------------------------------------------------
    def prewarm(self) -> int:
        """Install the steady-state working sets (see the workload's
        ``prewarm_plan``), registering each fill as a sharer at the line's
        home directory so commit-time invalidation stays conservative."""
        if self.workload is None:
            return 0
        runs_source = getattr(self.workload, "prewarm_runs", None)
        if runs_source is not None:
            runs = runs_source()
        else:
            # Workloads without a run-level plan (e.g. trace files) fall
            # back to unit runs; the flattened fill sequence is identical.
            runs = ((core, line, 1)
                    for core, line in self.workload.prewarm_plan())
        filled = 0
        lines_per_page = self.config.page_bytes // self.config.line_bytes
        directories = self.directories
        lookup = self.page_mapper.lookup
        # page -> the home directory's line table (None if unmapped); pages
        # hold many lines, so memoizing the home lookup per page takes the
        # mapper out of the per-line loop
        home_lines: Dict[int, Optional[Dict[int, LineInfo]]] = {}
        # Pass 1: directory registration in plan order (the line-table
        # insertion order is observable downstream, so it must not change),
        # collecting each core's fill runs for the bulk pass.
        per_core_fills: List[List[range]] = [[] for _ in self.cores]
        for core_id, start, count in runs:
            end = start + count
            per_core_fills[core_id].append(range(start, end))
            filled += count
            line = start
            while line < end:
                page = line // lines_per_page
                # a run usually sits inside one page; a shared-slice run
                # can straddle a boundary, so register page segments
                seg_end = min(end, (page + 1) * lines_per_page)
                lines = home_lines.get(page, _UNRESOLVED)
                first_visit = lines is _UNRESOLVED
                if first_visit:
                    home = lookup(page)
                    lines = None if home is None else directories[home].lines
                    home_lines[page] = lines
                if lines is None:
                    line = seg_end
                    continue
                if first_visit:
                    # no line of this page can be tracked yet (only this
                    # loop registers prewarm lines, page by page)
                    for addr in range(line, seg_end):
                        lines[addr] = LineInfo({core_id})
                else:
                    lines_get = lines.get
                    for addr in range(line, seg_end):
                        info = lines_get(addr)
                        if info is None:
                            lines[addr] = LineInfo({core_id})
                        else:
                            info.sharers.add(core_id)
                line = seg_end
        # Pass 2: bulk-fill each L2.  Caches are per-core, so splitting the
        # interleaved plan by core preserves every cache's fill order (and
        # therefore residency, LRU state and eviction count) exactly.
        for core_id, fills in enumerate(per_core_fills):
            if fills:
                self.cores[core_id].hierarchy.l2.fill_many(
                    chain.from_iterable(fills))
        return filled

    def run(self, max_events: int = DEFAULT_EVENT_GUARD,
            prewarm: bool = True) -> None:
        if prewarm:
            self.prewarm()
        for core in self.cores:
            core.start()
        self.sim.run(max_events=max_events)
        unfinished = [c.core_id for c in self.cores if not c.finished]
        if unfinished:
            raise RuntimeError(
                f"simulation quiesced with unfinished cores {unfinished} "
                f"at cycle {self.sim.now}")

    # ------------------------------------------------------------------
    def result(self, app: str, active_cores: int,
               keep_machine: bool = False) -> RunResult:
        stats = self.protocol.stats
        traffic = self.network.stats
        active = [c for c in self.cores if c.stats.chunks_started > 0]
        finish = max((c.stats.finish_time for c in self.cores), default=0)
        return RunResult(
            app=app,
            protocol=self.config.protocol,
            n_cores=self.config.n_cores,
            active_cores=active_cores,
            total_cycles=finish,
            useful_cycles=sum(c.stats.useful_cycles for c in active),
            miss_stall_cycles=sum(c.stats.miss_stall_cycles for c in active),
            commit_stall_cycles=sum(c.stats.commit_stall_cycles for c in active),
            squash_cycles=sum(c.stats.squash_cycles for c in active),
            chunks_committed=sum(c.stats.chunks_committed for c in active),
            squashes_conflict=sum(c.stats.squashes_conflict for c in active),
            squashes_alias=sum(c.stats.squashes_alias for c in active),
            read_nacks=sum(c.stats.read_nacks for c in active),
            mean_commit_latency=stats.mean_commit_latency(),
            mean_dirs_per_commit=stats.mean_dirs_per_commit(),
            mean_write_dirs_per_commit=stats.mean_write_dirs_per_commit(),
            bottleneck_ratio=stats.bottleneck_ratio(),
            mean_queue_length=stats.mean_queue_length(),
            traffic_by_class={
                tc.value: n for tc, n in traffic.messages_by_class.items()},
            total_messages=traffic.total_messages,
            machine=self if keep_machine else None,
        )


class SimulationRunner:
    """Convenience wrapper: profile + parameters -> RunResult."""

    def __init__(self, app: str, config: SystemConfig, *,
                 active_cores: Optional[int] = None,
                 chunks_per_partition: int = 4,
                 n_partitions: Optional[int] = None,
                 access_scale: float = 1.0) -> None:
        self.profile: AppProfile = get_profile(app)
        self.config = config
        self.active_cores = active_cores or config.n_cores
        self.workload = SyntheticWorkload(
            self.profile, config, active_cores=self.active_cores,
            chunks_per_partition=chunks_per_partition,
            n_partitions=n_partitions, access_scale=access_scale)

    def run(self, keep_machine: bool = False,
            max_events: int = DEFAULT_EVENT_GUARD,
            oracle: bool = False,
            bus: Optional[InstrumentationBus] = None,
            faults=None, watchdog: Optional[int] = None,
            profile=None) -> RunResult:
        machine = Machine(self.config, workload=self.workload)
        # Fault injectors install first so the oracle and the bus observe
        # the injured machine exactly as they observe a nominal one.  An
        # empty plan installs nothing: the run stays byte-identical.
        if faults is not None:
            from repro.faults.injectors import apply_plan
            apply_plan(faults, machine)
        if bus is not None:
            attach_bus(machine, bus)
        if watchdog is not None:
            from repro.faults.watchdog import attach_watchdog
            attach_watchdog(machine, window=watchdog, bus=bus)
        if profile is not None:
            from repro.obs.profile import HostProfiler, attach_profiler
            if profile is True:
                profile = HostProfiler()
            attach_profiler(machine, profile)
        checker = attach_oracle(machine) if oracle else None
        machine.run(max_events=max_events)
        if profile is not None:
            profile.stop(machine.sim.now)
        if checker is not None:
            checker.assert_clean()
        return machine.result(self.profile.name, self.active_cores,
                              keep_machine=keep_machine)


def run_app(app: str, *, n_cores: int = 16,
            protocol: ProtocolKind = ProtocolKind.SCALABLEBULK,
            active_cores: Optional[int] = None, chunks_per_partition: int = 4,
            n_partitions: Optional[int] = None, access_scale: float = 1.0,
            keep_machine: bool = False, oracle: bool = False,
            bus: Optional[InstrumentationBus] = None,
            faults=None, watchdog: Optional[int] = None,
            profile=None, **config_overrides) -> RunResult:
    """One-call experiment: build the Table 2 machine and run one app.

    ``oracle=True`` attaches the global invalidation oracle and raises at
    the end of the run if any commit missed a conflicting chunk.
    ``bus`` attaches an instrumentation bus (repro.obs) before the run.
    ``faults`` installs a :class:`repro.faults.FaultPlan`'s injectors and
    ``watchdog`` attaches the liveness watchdog with the given window
    (both imported lazily: nominal runs never touch repro.faults).
    ``profile`` attaches a host-time self-profiler
    (:class:`repro.obs.profile.HostProfiler`, or ``True`` for a fresh
    one; imported lazily) — host-side observation only, the simulated
    run is identical with or without it.
    """
    config = SystemConfig(n_cores=n_cores, protocol=protocol,
                          **config_overrides)
    runner = SimulationRunner(
        app, config, active_cores=active_cores,
        chunks_per_partition=chunks_per_partition,
        n_partitions=n_partitions, access_scale=access_scale)
    return runner.run(keep_machine=keep_machine, oracle=oracle, bus=bus,
                      faults=faults, watchdog=watchdog, profile=profile)


__all__ = ["DEFAULT_EVENT_GUARD", "Machine", "RunResult", "SimulationRunner",
           "run_app"]
