"""Plain-text renderers that print the paper's rows/series.

Each renderer takes the output of the corresponding
:mod:`repro.harness.experiments` function and produces the same structure
the paper's figure shows (stacked-bar components, per-app series,
normalized message mixes), as text tables suitable for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.config import ProtocolKind
from repro.harness.experiments import DirsPerCommitRow, Figure7Result
from repro.network.message import TrafficClass
from repro.stats.histograms import bucketize


def _fmt(x: float, width: int = 7, prec: int = 3) -> str:
    return f"{x:{width}.{prec}f}"


def render_breakdown(fig: Figure7Result, protocols: Sequence[ProtocolKind],
                     core_counts: Sequence[int]) -> str:
    """Figures 7/8 as text: one row per (app, cores, protocol) bar."""
    lines = [
        f"{'app':14s} {'cores':>5s} {'protocol':12s} {'norm.T':>7s} "
        f"{'speedup':>7s} {'useful':>7s} {'miss':>7s} {'commit':>7s} "
        f"{'squash':>7s}"
    ]
    apps = sorted({b.app for b in fig.bars})
    for app in apps:
        for n in core_counts:
            for proto in protocols:
                try:
                    b = fig.bar(app, proto, n)
                except KeyError:
                    continue
                lines.append(
                    f"{app:14s} {n:5d} {proto.value:12s} "
                    f"{_fmt(b.normalized_time)} {b.speedup:7.1f} "
                    f"{_fmt(b.useful)} {_fmt(b.cache_miss)} "
                    f"{_fmt(b.commit)} {_fmt(b.squash)}"
                )
    for n in core_counts:
        for proto in protocols:
            avg = fig.average_speedup(proto, n)
            if avg:
                lines.append(
                    f"{'AVERAGE':14s} {n:5d} {proto.value:12s} "
                    f"{'':7s} {avg:7.1f}")
    return "\n".join(lines)


def render_dirs_per_commit(rows: Iterable[DirsPerCommitRow]) -> str:
    """Figures 9/10 as text: write-group / read-group split per app."""
    lines = [f"{'app':14s} {'cores':>5s} {'dirs':>6s} {'write':>6s} "
             f"{'read-only':>9s}"]
    for r in rows:
        lines.append(
            f"{r.app:14s} {r.n_cores:5d} {r.mean_dirs:6.2f} "
            f"{r.mean_write_dirs:6.2f} {r.mean_read_only_dirs:9.2f}")
    return "\n".join(lines)


def render_distribution(dist: Mapping[str, Mapping[object, float]],
                        upper: int = 14) -> str:
    """Figures 11/12 as text: percentage at each directory count."""
    cols = list(range(upper + 1)) + ["more"]
    header = f"{'app':14s} " + " ".join(f"{c!s:>5s}" for c in cols)
    lines = [header]
    for app, pct in dist.items():
        row = " ".join(f"{pct.get(c, 0.0):5.1f}" for c in cols)
        lines.append(f"{app:14s} {row}")
    return "\n".join(lines)


def render_commit_latency(samples: Mapping[ProtocolKind, List[int]],
                          bucket_width: int = 50, n_buckets: int = 16) -> str:
    """Figure 13 as text: per-protocol mean and latency histogram."""
    lines = []
    for proto, values in samples.items():
        if not values:
            lines.append(f"{proto.value:12s} (no commits)")
            continue
        mean = sum(values) / len(values)
        lines.append(f"{proto.value:12s} mean={mean:8.1f} cycles  "
                     f"n={len(values)}")
        for lo, count in bucketize(values, bucket_width, n_buckets):
            pct = 100.0 * count / len(values)
            bar = "#" * int(pct / 2)
            lines.append(f"  {int(lo):>6d}+ {pct:5.1f}% {bar}")
    return "\n".join(lines)


def render_ratio_table(data: Mapping[str, Mapping[ProtocolKind, float]],
                       title: str) -> str:
    """Figures 14-17 as text: one row per app, one column per protocol."""
    protos: List[ProtocolKind] = []
    for per_app in data.values():
        for p in per_app:
            if p not in protos:
                protos.append(p)
    header = f"{'app':14s} " + " ".join(f"{p.value:>12s}" for p in protos)
    lines = [title, header]
    for app, per_app in data.items():
        row = " ".join(f"{per_app.get(p, 0.0):12.2f}" for p in protos)
        lines.append(f"{app:14s} {row}")
    if data:
        avg_row = []
        for p in protos:
            vals = [per_app[p] for per_app in data.values() if p in per_app]
            avg_row.append(sum(vals) / len(vals) if vals else 0.0)
        lines.append(f"{'AVERAGE':14s} " +
                     " ".join(f"{v:12.2f}" for v in avg_row))
    return "\n".join(lines)


#: Display order for the traffic figures (read classes then commit classes).
TRAFFIC_ORDER = ("MemRd", "RemoteShRd", "RemoteDirtyRd", "LargeCMessage",
                 "SmallCMessage")


def normalize_traffic(per_proto: Mapping[ProtocolKind, Mapping[str, int]]
                      ) -> Dict[ProtocolKind, Dict[str, float]]:
    """Normalize message counts to TCC's total, folding request/forward
    control traffic ('Other') into the read class mix as the paper does."""
    def folded(counts: Mapping[str, int]) -> Dict[str, float]:
        out = {k: float(counts.get(k, 0)) for k in TRAFFIC_ORDER}
        other = float(counts.get(TrafficClass.OTHER.value, 0))
        reads = out["MemRd"] + out["RemoteShRd"] + out["RemoteDirtyRd"]
        if reads > 0:
            for k in ("MemRd", "RemoteShRd", "RemoteDirtyRd"):
                out[k] += other * out[k] / reads
        else:
            out["MemRd"] += other
        return out

    tcc = per_proto.get(ProtocolKind.TCC)
    tcc_total = sum(folded(tcc).values()) if tcc else None
    result: Dict[ProtocolKind, Dict[str, float]] = {}
    for proto, counts in per_proto.items():
        f = folded(counts)
        denom = tcc_total or sum(f.values()) or 1.0
        result[proto] = {k: 100.0 * v / denom for k, v in f.items()}
    return result


def render_traffic(data: Mapping[str, Mapping[ProtocolKind, Mapping[str, int]]]
                   ) -> str:
    """Figures 18/19 as text: message mix normalized to TCC per app."""
    lines = [f"{'app':14s} {'protocol':12s} " +
             " ".join(f"{k:>14s}" for k in TRAFFIC_ORDER) + f" {'total':>8s}"]
    for app, per_proto in data.items():
        norm = normalize_traffic(per_proto)
        for proto, mix in norm.items():
            total = sum(mix.values())
            row = " ".join(f"{mix[k]:14.1f}" for k in TRAFFIC_ORDER)
            lines.append(f"{app:14s} {proto.value:12s} {row} {total:8.1f}")
    return "\n".join(lines)


__all__ = [
    "TRAFFIC_ORDER",
    "normalize_traffic",
    "render_breakdown",
    "render_commit_latency",
    "render_dirs_per_commit",
    "render_distribution",
    "render_ratio_table",
    "render_traffic",
]
