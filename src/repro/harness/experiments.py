"""One entry point per paper table/figure (the per-experiment index of
DESIGN.md).

Every function takes scale knobs (``apps``, ``n_cores``,
``chunks_per_partition``) so the pytest-benchmark suite can run a
shape-preserving scaled-down version, while ``python -m
repro.harness.sweep`` runs the full matrix for EXPERIMENTS.md.

The single-processor baseline of Figures 7/8 runs the *same machine* with
one active core executing every partition, exactly as the paper
normalizes ("normalized to the execution time of single-processor runs on
the same architecture with ScalableBulk").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import ProtocolKind, SystemConfig
from repro.harness.runner import RunResult, SimulationRunner
from repro.workloads.profiles import PARSEC_APPS, SPLASH2_APPS

ALL_PROTOCOLS = (ProtocolKind.SCALABLEBULK, ProtocolKind.TCC,
                 ProtocolKind.SEQ, ProtocolKind.BULKSC)

#: Distributed protocols shown in the bottleneck-ratio figures (BulkSC
#: forms no groups, so the paper omits it there).
GROUPING_PROTOCOLS = (ProtocolKind.SCALABLEBULK, ProtocolKind.TCC,
                      ProtocolKind.SEQ)

#: Protocols with directory queues (Figures 16/17).
QUEUEING_PROTOCOLS = (ProtocolKind.TCC, ProtocolKind.SEQ)


def _run(app: str, n_cores: int, protocol: ProtocolKind,
         chunks_per_partition: int, active_cores: Optional[int] = None,
         n_partitions: Optional[int] = None, **overrides) -> RunResult:
    config = SystemConfig(n_cores=n_cores, protocol=protocol, **overrides)
    runner = SimulationRunner(app, config, active_cores=active_cores,
                              chunks_per_partition=chunks_per_partition,
                              n_partitions=n_partitions)
    return runner.run()


@dataclass
class BreakdownBar:
    """One bar of Figures 7/8: normalized time split into four categories."""

    app: str
    protocol: ProtocolKind
    n_cores: int
    normalized_time: float
    speedup: float
    useful: float
    cache_miss: float
    commit: float
    squash: float

    @classmethod
    def from_result(cls, result: RunResult, baseline_cycles: int
                    ) -> "BreakdownBar":
        frac = result.breakdown_fractions()
        norm = result.normalized_time(baseline_cycles)
        return cls(
            app=result.app, protocol=result.protocol, n_cores=result.n_cores,
            normalized_time=norm,
            speedup=result.speedup(baseline_cycles),
            useful=norm * frac["Useful"],
            cache_miss=norm * frac["Cache Miss"],
            commit=norm * frac["Commit"],
            squash=norm * frac["Squash"],
        )


@dataclass
class Figure7Result:
    """Figures 7/8: bars per (app, core count, protocol) + baselines."""

    bars: List[BreakdownBar] = field(default_factory=list)
    baselines: Dict[str, int] = field(default_factory=dict)  #: app -> 1p cycles

    def bar(self, app: str, protocol: ProtocolKind, n_cores: int
            ) -> BreakdownBar:
        for b in self.bars:
            if b.app == app and b.protocol == protocol and b.n_cores == n_cores:
                return b
        raise KeyError((app, protocol, n_cores))

    def average_speedup(self, protocol: ProtocolKind, n_cores: int) -> float:
        xs = [b.speedup for b in self.bars
              if b.protocol == protocol and b.n_cores == n_cores]
        return sum(xs) / len(xs) if xs else 0.0

    def average_commit_fraction(self, protocol: ProtocolKind,
                                n_cores: int) -> float:
        bars = [b for b in self.bars
                if b.protocol == protocol and b.n_cores == n_cores]
        if not bars:
            return 0.0
        return sum(b.commit / max(b.normalized_time, 1e-12) for b in bars) / len(bars)


def run_execution_time_figure(apps: Sequence[str],
                              core_counts: Sequence[int] = (16, 64),
                              protocols: Sequence[ProtocolKind] = ALL_PROTOCOLS,
                              chunks_per_partition: int = 3,
                              **overrides) -> Figure7Result:
    """Figures 7 (SPLASH-2) / 8 (PARSEC): execution-time breakdowns.

    The 1-processor ScalableBulk baseline is run once per app on the
    largest machine in ``core_counts``.
    """
    out = Figure7Result()
    base_cores = max(core_counts)
    for app in apps:
        # strong scaling: the partition count (total work) is pinned to
        # the largest machine for every run of this app
        baseline = _run(app, base_cores, ProtocolKind.SCALABLEBULK,
                        chunks_per_partition, active_cores=1,
                        n_partitions=base_cores, **overrides)
        out.baselines[app] = baseline.total_cycles
        for n in core_counts:
            for proto in protocols:
                res = _run(app, n, proto, chunks_per_partition,
                           n_partitions=base_cores, **overrides)
                out.bars.append(
                    BreakdownBar.from_result(res, baseline.total_cycles))
    return out


def run_figure7(core_counts=(16, 64), chunks_per_partition=3,
                apps: Optional[Sequence[str]] = None, **overrides
                ) -> Figure7Result:
    """Figure 7: SPLASH-2 execution times."""
    return run_execution_time_figure(apps or SPLASH2_APPS, core_counts,
                                     chunks_per_partition=chunks_per_partition,
                                     **overrides)


def run_figure8(core_counts=(16, 64), chunks_per_partition=3,
                apps: Optional[Sequence[str]] = None, **overrides
                ) -> Figure7Result:
    """Figure 8: PARSEC execution times."""
    return run_execution_time_figure(apps or PARSEC_APPS, core_counts,
                                     chunks_per_partition=chunks_per_partition,
                                     **overrides)


@dataclass
class DirsPerCommitRow:
    """One bar of Figures 9/10 (split into write group and read group)."""

    app: str
    n_cores: int
    mean_dirs: float
    mean_write_dirs: float

    @property
    def mean_read_only_dirs(self) -> float:
        return self.mean_dirs - self.mean_write_dirs


def run_dirs_per_commit(apps: Sequence[str], core_counts=(16, 64),
                        chunks_per_partition: int = 3, **overrides
                        ) -> List[DirsPerCommitRow]:
    """Figures 9/10: average directories per chunk commit (ScalableBulk)."""
    rows = []
    for app in apps:
        for n in core_counts:
            res = _run(app, n, ProtocolKind.SCALABLEBULK,
                       chunks_per_partition, **overrides)
            rows.append(DirsPerCommitRow(
                app=app, n_cores=n, mean_dirs=res.mean_dirs_per_commit,
                mean_write_dirs=res.mean_write_dirs_per_commit))
    return rows


def run_dirs_distribution(apps: Sequence[str], n_cores: int = 64,
                          chunks_per_partition: int = 3, upper: int = 14,
                          **overrides) -> Dict[str, Dict[object, float]]:
    """Figures 11/12: distribution of directories per commit at 64p."""
    out: Dict[str, Dict[object, float]] = {}
    for app in apps:
        config = SystemConfig(n_cores=n_cores,
                              protocol=ProtocolKind.SCALABLEBULK, **overrides)
        runner = SimulationRunner(app, config,
                                  chunks_per_partition=chunks_per_partition)
        res = runner.run(keep_machine=True)
        hist = res.machine.protocol.stats.dirs_per_commit_hist
        out[app] = hist.percentages(upper)
    return out


def run_commit_latency(apps: Sequence[str], n_cores: int = 64,
                       protocols: Sequence[ProtocolKind] = ALL_PROTOCOLS,
                       chunks_per_partition: int = 3, **overrides
                       ) -> Dict[ProtocolKind, List[int]]:
    """Figure 13: pooled commit-latency samples per protocol."""
    out: Dict[ProtocolKind, List[int]] = {p: [] for p in protocols}
    for proto in protocols:
        for app in apps:
            config = SystemConfig(n_cores=n_cores, protocol=proto, **overrides)
            runner = SimulationRunner(app, config,
                                      chunks_per_partition=chunks_per_partition)
            res = runner.run(keep_machine=True)
            hist = res.machine.protocol.stats.commit_latency_hist
            for value, count in hist.counts().items():
                out[proto].extend([value] * count)
    return out


def run_bottleneck_ratio(apps: Sequence[str], n_cores: int = 64,
                         protocols: Sequence[ProtocolKind] = GROUPING_PROTOCOLS,
                         chunks_per_partition: int = 3, **overrides
                         ) -> Dict[str, Dict[ProtocolKind, float]]:
    """Figures 14/15: bottleneck ratio per app per protocol."""
    out: Dict[str, Dict[ProtocolKind, float]] = {}
    for app in apps:
        out[app] = {}
        for proto in protocols:
            res = _run(app, n_cores, proto, chunks_per_partition, **overrides)
            out[app][proto] = res.bottleneck_ratio
    return out


def run_queue_length(apps: Sequence[str], n_cores: int = 64,
                     protocols: Sequence[ProtocolKind] = QUEUEING_PROTOCOLS,
                     chunks_per_partition: int = 3, **overrides
                     ) -> Dict[str, Dict[ProtocolKind, float]]:
    """Figures 16/17: average chunk queue length per app (TCC/SEQ)."""
    out: Dict[str, Dict[ProtocolKind, float]] = {}
    for app in apps:
        out[app] = {}
        for proto in protocols:
            res = _run(app, n_cores, proto, chunks_per_partition, **overrides)
            out[app][proto] = res.mean_queue_length
    return out


def run_traffic(apps: Sequence[str], n_cores: int = 64,
                protocols: Sequence[ProtocolKind] = ALL_PROTOCOLS,
                chunks_per_partition: int = 3, **overrides
                ) -> Dict[str, Dict[ProtocolKind, Dict[str, int]]]:
    """Figures 18/19: message counts by class, per app per protocol.

    The figure normalizes each app's bars to TCC's total message count.
    """
    out: Dict[str, Dict[ProtocolKind, Dict[str, int]]] = {}
    for app in apps:
        out[app] = {}
        for proto in protocols:
            res = _run(app, n_cores, proto, chunks_per_partition, **overrides)
            out[app][proto] = dict(res.traffic_by_class)
    return out


__all__ = [
    "ALL_PROTOCOLS",
    "BreakdownBar",
    "DirsPerCommitRow",
    "Figure7Result",
    "GROUPING_PROTOCOLS",
    "QUEUEING_PROTOCOLS",
    "run_bottleneck_ratio",
    "run_commit_latency",
    "run_dirs_distribution",
    "run_dirs_per_commit",
    "run_execution_time_figure",
    "run_figure7",
    "run_figure8",
    "run_queue_length",
    "run_traffic",
]
