"""Experiment harness: machine assembly, run results, figure regeneration.

* :mod:`repro.harness.runner` — builds a full machine (cores, caches,
  NoC, directories, protocol engines) and runs one workload to completion.
* :mod:`repro.harness.experiments` — one entry point per paper table and
  figure, with scale knobs so the bench suite stays fast.
* :mod:`repro.harness.tables` — plain-text renderers that print rows/series
  shaped like the paper's figures.
* ``python -m repro.harness.sweep`` — the full experiment matrix used to
  produce EXPERIMENTS.md.
"""

from repro.harness.runner import Machine, RunResult, SimulationRunner, run_app

__all__ = ["Machine", "RunResult", "SimulationRunner", "run_app"]
