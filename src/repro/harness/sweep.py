"""Full experiment sweep: every table and figure, all 18 applications.

Runs each (application, core count, protocol) combination once — plus the
single-processor ScalableBulk baselines — extracts everything the paper's
figures need, caches raw records as JSON (so interrupted sweeps resume),
and renders EXPERIMENTS.md-ready markdown.

Usage::

    python -m repro.harness.sweep --cores 32 64 --chunks 3 \
        --json results/sweep.json --markdown results/experiments.md
    python -m repro.harness.sweep --quick     # 16-core smoke sweep
    python -m repro.harness.sweep --quick --jobs 4   # process-pool fan-out

``--jobs N`` fans the matrix out over N worker processes
(:mod:`repro.harness.parallel`); results merge into the JSON cache in the
same deterministic order as a serial sweep, so the cache contents are
identical modulo per-run wall-clock fields.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.config import ProtocolKind, SystemConfig
from repro.harness.runner import SimulationRunner
from repro.harness.tables import TRAFFIC_ORDER, normalize_traffic
from repro.obs.bus import InstrumentationBus
from repro.obs.critical_path import analyze_commit_paths
from repro.provenance import config_hash
from repro.workloads.profiles import PARSEC_APPS, SPLASH2_APPS

PROTOCOLS = (ProtocolKind.SCALABLEBULK, ProtocolKind.TCC, ProtocolKind.SEQ,
             ProtocolKind.BULKSC)


def run_one(app: str, n_cores: int, protocol: ProtocolKind,
            chunks: int, active_cores: Optional[int] = None,
            n_partitions: Optional[int] = None,
            bus: Optional[InstrumentationBus] = None,
            profile: bool = False, seed: Optional[int] = None) -> dict:
    """One simulation -> a JSON-serializable record.

    ``n_partitions`` fixes the total work across machine sizes (strong
    scaling): every run of one application must use the same partition
    count or speedups are meaningless.  ``bus`` optionally instruments
    the run (used by ``--critical-paths``); ``profile`` attaches the
    host-time self-profiler and embeds its attribution report.  ``seed``
    overrides the config's reproducibility seed (campaign matrices sweep
    it; ``None`` keeps the Table 2 default).
    """
    config = SystemConfig(n_cores=n_cores, protocol=protocol)
    if seed is not None:
        config = config.with_(seed=seed)
    runner = SimulationRunner(app, config, active_cores=active_cores,
                              chunks_per_partition=chunks,
                              n_partitions=n_partitions)
    profiler = None
    if profile:
        from repro.obs.profile import HostProfiler
        from repro.provenance import provenance
        profiler = HostProfiler(provenance=provenance(config))
    t0 = time.time()  # repro: allow SB304
    result = runner.run(keep_machine=True, bus=bus, profile=profiler)
    wall = time.time() - t0  # repro: allow SB304
    stats = result.machine.protocol.stats
    record = {
        "config_hash": config_hash(config),
        "seed": config.seed,
        "app": app,
        "protocol": protocol.value,
        "n_cores": n_cores,
        "active_cores": result.active_cores,
        "total_cycles": result.total_cycles,
        "useful": result.useful_cycles,
        "miss": result.miss_stall_cycles,
        "commit": result.commit_stall_cycles,
        "squash": result.squash_cycles,
        "chunks_committed": result.chunks_committed,
        "squashes_conflict": result.squashes_conflict,
        "squashes_alias": result.squashes_alias,
        "mean_commit_latency": result.mean_commit_latency,
        "mean_dirs": result.mean_dirs_per_commit,
        "mean_write_dirs": result.mean_write_dirs_per_commit,
        "bottleneck_ratio": result.bottleneck_ratio,
        "mean_queue": result.mean_queue_length,
        "traffic": result.traffic_by_class,
        "dirs_hist": {str(k): v for k, v in
                      stats.dirs_per_commit_hist.counts().items()},
        "latency_hist": {str(k): v for k, v in
                         stats.commit_latency_hist.counts().items()},
        "wall_seconds": round(wall, 2),
        # unrounded twin of wall_seconds: the bench harness computes
        # cycles/sec from this so sub-0.2s runs are not quantized by the
        # 2-decimal display rounding above
        "wall_seconds_raw": wall,
    }
    if profiler is not None:
        record["profile"] = profiler.report().to_json()
    return record


def key_of(app: str, n_cores: int, protocol: str, active: int) -> str:
    return f"{app}/{n_cores}/{protocol}/{active}"


def atomic_write_text(path: Path, text: str) -> None:
    """Durable single-file checkpoint: temp file + ``os.replace``.

    The temp file lives in the target's own directory so the final
    rename never crosses a filesystem boundary; a crash between write
    and replace leaves the previous file untouched.
    """
    tmp = path.parent / f".{path.name}.tmp{os.getpid()}"
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


#: One matrix cell, picklable: (app, n_cores, protocol value, chunks,
#: active_cores, n_partitions, instrument critical paths?, profile?).
SweepTask = tuple


def _sweep_worker(task: SweepTask) -> tuple:
    """Process-pool worker: one matrix cell -> (record, cpath summary)."""
    (app, n_cores, proto_value, chunks, active, n_partitions, want_cp,
     want_profile) = task
    bus = InstrumentationBus(record_messages=False) if want_cp else None
    record = run_one(app, n_cores, ProtocolKind(proto_value), chunks,
                     active_cores=active, n_partitions=n_partitions, bus=bus,
                     profile=want_profile)
    cpath = analyze_commit_paths(bus).summary() if bus is not None else None
    return record, cpath


def _matrix(apps: Sequence[str], core_counts: Sequence[int], chunks: int,
            want_cp: bool, want_profile: bool = False) -> List[tuple]:
    """The full (key, task) matrix in canonical serial order."""
    big = max(core_counts)
    cells: List[tuple] = []
    for app in apps:
        cells.append((key_of(app, big, "baseline1p", 1),
                      (app, big, ProtocolKind.SCALABLEBULK.value, chunks,
                       1, big, want_cp, want_profile)))
        for n in core_counts:
            for proto in PROTOCOLS:
                cells.append((key_of(app, n, proto.value, n),
                              (app, n, proto.value, chunks, None, big,
                               want_cp, want_profile)))
    return cells


def collect(apps: Sequence[str], core_counts: Sequence[int], chunks: int,
            cache_path: Optional[Path] = None,
            log=print,
            critical_paths_path: Optional[Path] = None,
            jobs: int = 1, profile: bool = False) -> Dict[str, dict]:
    """Run the matrix, reusing any cached records.

    ``critical_paths_path`` additionally instruments every fresh run and
    writes a per-configuration commit critical-path summary (phase-latency
    breakdown, per-directory hop dwell) there.  Records already cached
    keep whatever summary they had — only new runs gain one.

    ``jobs > 1`` fans uncached cells out over a process pool while merging
    results (and saving the resumable cache) in canonical matrix order, so
    the cache is identical to a serial sweep's modulo wall-clock fields.
    """
    records: Dict[str, dict] = {}
    if cache_path and cache_path.exists():
        records = json.loads(cache_path.read_text())
        log(f"loaded {len(records)} cached records from {cache_path}")
    cpaths: Dict[str, dict] = {}
    if critical_paths_path and critical_paths_path.exists():
        cpaths = json.loads(critical_paths_path.read_text())

    def save() -> None:
        # Atomic: the cache IS the resumability mechanism, so a SIGINT
        # mid-write must leave the previous checkpoint intact instead of
        # truncated JSON.  Write a sibling temp file, then os.replace()
        # (atomic within one filesystem).
        if cache_path:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(cache_path, json.dumps(records))
        if critical_paths_path and cpaths:
            critical_paths_path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(critical_paths_path,
                              json.dumps(cpaths, indent=2, sort_keys=True))

    def make_bus() -> Optional[InstrumentationBus]:
        if critical_paths_path is None:
            return None
        return InstrumentationBus(record_messages=False)

    def finish(key: str, bus: Optional[InstrumentationBus]) -> None:
        if bus is not None:
            cpaths[key] = analyze_commit_paths(bus).summary()

    if jobs > 1:
        from repro.harness.parallel import run_ordered
        cells = _matrix(apps, core_counts, chunks,
                        critical_paths_path is not None, profile)
        pending = [(key, task) for key, task in cells if key not in records]
        log(f"{len(cells) - len(pending)} cached, {len(pending)} to run "
            f"on {jobs} workers")

        def merge(i: int, _payload: tuple, result: tuple) -> None:
            key = pending[i][0]
            record, cpath = result
            records[key] = record
            if cpath is not None:
                cpaths[key] = cpath
            save()
            log(f"[{i + 1}/{len(pending)}] {key}: "
                f"{record['total_cycles']} cycles "
                f"({record['wall_seconds']}s)")

        run_ordered(_sweep_worker, [task for _, task in pending], jobs=jobs,
                    on_result=merge)
        save()
        return records

    big = max(core_counts)
    total = len(apps) * (1 + len(core_counts) * len(PROTOCOLS))
    done = 0
    for app in apps:
        # single-processor ScalableBulk baseline on the big machine;
        # n_partitions is pinned to the big machine everywhere so every
        # run of the app executes the identical total work
        k = key_of(app, big, "baseline1p", 1)
        if k not in records:
            bus = make_bus()
            records[k] = run_one(app, big, ProtocolKind.SCALABLEBULK,
                                 chunks, active_cores=1, n_partitions=big,
                                 bus=bus, profile=profile)
            finish(k, bus)
            save()
        done += 1
        log(f"[{done}/{total}] {k}: {records[k]['total_cycles']} cycles "
            f"({records[k]['wall_seconds']}s)")
        for n in core_counts:
            for proto in PROTOCOLS:
                k = key_of(app, n, proto.value, n)
                if k not in records:
                    bus = make_bus()
                    records[k] = run_one(app, n, proto, chunks,
                                         n_partitions=big, bus=bus,
                                         profile=profile)
                    finish(k, bus)
                    save()
                done += 1
                log(f"[{done}/{total}] {k}: "
                    f"{records[k]['total_cycles']} cycles "
                    f"({records[k]['wall_seconds']}s)")
    save()
    return records


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _norm(rec: dict, base: dict) -> dict:
    """Per-bar normalized breakdown (Figs. 7/8)."""
    total = max(1, rec["useful"] + rec["miss"] + rec["commit"] + rec["squash"])
    norm_time = rec["total_cycles"] / max(1, base["total_cycles"])
    return {
        "norm": norm_time,
        "speedup": base["total_cycles"] / max(1, rec["total_cycles"]),
        "useful": norm_time * rec["useful"] / total,
        "miss": norm_time * rec["miss"] / total,
        "commit": norm_time * rec["commit"] / total,
        "squash": norm_time * rec["squash"] / total,
    }


def render_markdown(records: Dict[str, dict], apps: Sequence[str],
                    core_counts: Sequence[int], chunks: int) -> str:
    big = max(core_counts)
    lines: List[str] = []
    w = lines.append

    def rec(app, n, proto):
        return records[key_of(app, n, proto, n)]

    def base(app):
        return records[key_of(app, big, "baseline1p", 1)]

    splash = [a for a in apps if a in SPLASH2_APPS]
    parsec = [a for a in apps if a in PARSEC_APPS]

    w(f"Sweep parameters: cores={list(core_counts)}, "
      f"chunks/partition={chunks}, "
      f"chunk={SystemConfig().chunk_size_instructions} instructions, "
      f"{len(apps)} applications.\n")

    # Figures 7/8 ------------------------------------------------------
    for figno, suite, suite_apps in (("7", "SPLASH-2", splash),
                                     ("8", "PARSEC", parsec)):
        if not suite_apps:
            continue
        w(f"### Figure {figno} — {suite} execution time "
          f"(normalized to 1p ScalableBulk)\n")
        w("| app | cores | protocol | norm. time | speedup | useful | "
          "miss | commit | squash |")
        w("|---|---|---|---|---|---|---|---|---|")
        for app in suite_apps:
            for n in core_counts:
                for proto in PROTOCOLS:
                    r = rec(app, n, proto.value)
                    nb = _norm(r, base(app))
                    w(f"| {app} | {n} | {proto.value} | {nb['norm']:.4f} | "
                      f"{nb['speedup']:.1f} | {nb['useful']:.4f} | "
                      f"{nb['miss']:.4f} | {nb['commit']:.4f} | "
                      f"{nb['squash']:.4f} |")
        w("")
        for n in core_counts:
            for proto in PROTOCOLS:
                speedups = [_norm(rec(a, n, proto.value), base(a))["speedup"]
                            for a in suite_apps]
                avg = sum(speedups) / len(speedups)
                w(f"* AVERAGE speedup, {proto.value} @ {n}p: **{avg:.1f}**")
        w("")

    # Figures 9/10 ------------------------------------------------------
    for figno, suite, suite_apps in (("9", "SPLASH-2", splash),
                                     ("10", "PARSEC", parsec)):
        if not suite_apps:
            continue
        w(f"### Figure {figno} — directories per chunk commit ({suite})\n")
        w("| app | cores | dirs/commit | write group | read-only group |")
        w("|---|---|---|---|---|")
        for app in suite_apps:
            for n in core_counts:
                r = rec(app, n, ProtocolKind.SCALABLEBULK.value)
                w(f"| {app} | {n} | {r['mean_dirs']:.2f} | "
                  f"{r['mean_write_dirs']:.2f} | "
                  f"{r['mean_dirs'] - r['mean_write_dirs']:.2f} |")
        w("")

    # Figures 11/12 -----------------------------------------------------
    for figno, suite, suite_apps in (("11", "SPLASH-2", splash),
                                     ("12", "PARSEC", parsec)):
        if not suite_apps:
            continue
        w(f"### Figure {figno} — distribution of dirs/commit "
          f"({suite}, {big}p, % of commits)\n")
        cols = list(range(15)) + ["more"]
        w("| app | " + " | ".join(str(c) for c in cols) + " |")
        w("|---|" + "---|" * len(cols))
        for app in suite_apps:
            hist = rec(app, big, ProtocolKind.SCALABLEBULK.value)["dirs_hist"]
            n_total = sum(hist.values()) or 1
            pct = {}
            more = 0.0
            for k, v in hist.items():
                ki = int(k)
                if ki <= 14:
                    pct[ki] = pct.get(ki, 0) + 100 * v / n_total
                else:
                    more += 100 * v / n_total
            row = " | ".join(f"{pct.get(c, 0):.0f}" for c in range(15))
            w(f"| {app} | {row} | {more:.0f} |")
        w("")

    # Figure 13 ----------------------------------------------------------
    w(f"### Figure 13 — commit latency ({big}p, mean cycles over all apps)\n")
    w("| protocol | measured mean | paper mean (64p) |")
    w("|---|---|---|")
    paper_means = {"ScalableBulk": 91, "TCC": 411, "SEQ": 153,
                   "BulkSC": 2954}
    for proto in PROTOCOLS:
        lats, count = 0.0, 0
        for app in apps:
            hist = rec(app, big, proto.value)["latency_hist"]
            for k, v in hist.items():
                lats += int(k) * v
                count += v
        mean = lats / count if count else 0.0
        w(f"| {proto.value} | {mean:.0f} | {paper_means[proto.value]} |")
    w("")
    if len(core_counts) > 1:
        small = min(core_counts)
        w(f"At {small}p, measured means: " + ", ".join(
            f"{proto.value}="
            f"{_mean_latency(records, apps, small, proto.value):.0f}"
            for proto in PROTOCOLS)
          + " (paper at 32p: ScalableBulk=74, TCC=402, SEQ=107, BulkSC=98)\n")

    # Figures 14/15 -------------------------------------------------------
    for figno, suite, suite_apps in (("14", "SPLASH-2", splash),
                                     ("15", "PARSEC", parsec)):
        if not suite_apps:
            continue
        w(f"### Figure {figno} — bottleneck ratio ({suite}, {big}p)\n")
        w("| app | ScalableBulk | TCC | SEQ |")
        w("|---|---|---|---|")
        for app in suite_apps:
            vals = [rec(app, big, p.value)["bottleneck_ratio"]
                    for p in (ProtocolKind.SCALABLEBULK, ProtocolKind.TCC,
                              ProtocolKind.SEQ)]
            w(f"| {app} | " + " | ".join(f"{v:.2f}" for v in vals) + " |")
        w("")

    # Figures 16/17 -------------------------------------------------------
    for figno, suite, suite_apps in (("16", "SPLASH-2", splash),
                                     ("17", "PARSEC", parsec)):
        if not suite_apps:
            continue
        w(f"### Figure {figno} — chunk queue length ({suite}, {big}p)\n")
        w("| app | TCC | SEQ | ScalableBulk |")
        w("|---|---|---|---|")
        for app in suite_apps:
            vals = [rec(app, big, p.value)["mean_queue"]
                    for p in (ProtocolKind.TCC, ProtocolKind.SEQ,
                              ProtocolKind.SCALABLEBULK)]
            w(f"| {app} | " + " | ".join(f"{v:.2f}" for v in vals) + " |")
        w("")

    # Figures 18/19 --------------------------------------------------------
    for figno, suite, suite_apps in (("18", "SPLASH-2", splash),
                                     ("19", "PARSEC", parsec)):
        if not suite_apps:
            continue
        w(f"### Figure {figno} — message mix ({suite}, {big}p, % of TCC "
          f"total)\n")
        w("| app | protocol | " + " | ".join(TRAFFIC_ORDER) + " | total |")
        w("|---|---|" + "---|" * (len(TRAFFIC_ORDER) + 1))
        for app in suite_apps:
            per_proto = {p: rec(app, big, p.value)["traffic"]
                         for p in PROTOCOLS}
            norm = normalize_traffic(per_proto)
            for proto in PROTOCOLS:
                mix = norm[proto]
                total = sum(mix.values())
                row = " | ".join(f"{mix[k]:.1f}" for k in TRAFFIC_ORDER)
                w(f"| {app} | {proto.value} | {row} | {total:.1f} |")
        w("")

    # Squash summary (Section 6.1 numbers) ---------------------------------
    w(f"### Squash rates (ScalableBulk, {big}p; paper: 1.5% conflicts + "
      f"2.3% aliasing)\n")
    total_chunks = total_conf = total_alias = 0
    for app in apps:
        r = rec(app, big, ProtocolKind.SCALABLEBULK.value)
        total_chunks += r["chunks_committed"]
        total_conf += r["squashes_conflict"]
        total_alias += r["squashes_alias"]
    w(f"* conflicts: {100 * total_conf / max(1, total_chunks):.1f}% of "
      f"chunks; aliasing: {100 * total_alias / max(1, total_chunks):.1f}%\n")

    return "\n".join(lines)


def _mean_latency(records, apps, n, proto) -> float:
    lats = count = 0
    for app in apps:
        hist = records[key_of(app, n, proto, n)]["latency_hist"]
        for k, v in hist.items():
            lats += int(k) * v
            count += v
    return lats / count if count else 0.0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cores", type=int, nargs="+", default=[32, 64])
    parser.add_argument("--chunks", type=int, default=3)
    parser.add_argument("--apps", nargs="+",
                        default=list(SPLASH2_APPS) + list(PARSEC_APPS))
    parser.add_argument("--json", type=Path,
                        default=Path("results/sweep.json"))
    parser.add_argument("--markdown", type=Path,
                        default=Path("results/experiments.md"))
    parser.add_argument("--quick", action="store_true",
                        help="16-core, 4-app smoke sweep")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the matrix (0 = all "
                             "cores); results merge deterministically, so "
                             "the cache matches a serial sweep")
    parser.add_argument("--critical-paths", action="store_true",
                        help="instrument every run and write per-config "
                             "commit critical-path summaries next to the "
                             "JSON cache (critical_paths.json)")
    parser.add_argument("--profile", action="store_true",
                        help="attach the host-time self-profiler to every "
                             "fresh run and embed its attribution report "
                             "in each cached record")
    parser.add_argument("--store", type=Path, default=None, metavar="DB",
                        help="additionally write every sweep record "
                             "through to a repro.store SQLite result "
                             "store (see docs/experiments.md)")
    args = parser.parse_args(argv)

    if args.quick:
        args.cores = [16]
        args.apps = ["Radix", "LU", "Barnes", "Canneal"]
        args.chunks = 2

    from repro.harness.parallel import resolve_jobs
    cp_path = (args.json.parent / "critical_paths.json"
               if args.critical_paths else None)
    records = collect(args.apps, args.cores, args.chunks,
                      cache_path=args.json, critical_paths_path=cp_path,
                      jobs=resolve_jobs(args.jobs), profile=args.profile)
    md = render_markdown(records, args.apps, args.cores, args.chunks)
    args.markdown.parent.mkdir(parents=True, exist_ok=True)
    args.markdown.write_text(md)
    print(f"\nwrote {args.markdown} ({len(md.splitlines())} lines), "
          f"raw records in {args.json}")
    if cp_path is not None:
        print(f"critical-path summaries in {cp_path}")
    if args.store is not None:
        from repro.store.db import ResultStore
        from repro.store.ingest import ingest_sweep
        with ResultStore(args.store) as store:
            stored = ingest_sweep(store, records, source=str(args.json))
        print(f"stored {len(stored)} sweep records in {args.store}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
