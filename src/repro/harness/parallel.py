"""Process-pool fan-out with deterministic ordered merging.

Every ``--jobs N`` flag in the harness (``sweep``, ``compare``, ``bench``,
``explore``) routes through :func:`run_ordered`: tasks execute on a pool of
worker *processes* (the simulator is pure CPU-bound Python, so threads
would serialize on the GIL), while results are consumed strictly in
submission order.  That ordering is the whole trick — the resumable JSON
caches, logs and rendered tables are filled in exactly the sequence the
serial code would have produced, so a parallel run's output is identical
to the serial run's modulo wall-clock fields.

Workers must be top-level (picklable) functions and payloads must be
picklable values; every worker in this package re-derives its machine from
a plain description (app name, core count, protocol value) for exactly
that reason.

With ``jobs <= 1`` no pool is created at all: the task loop is a plain
in-process ``for``, byte-identical to the pre-parallel code path.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: worker(payload) -> result; must be defined at module top level.
Worker = Callable[[T], R]
#: on_result(index, payload, result) — invoked in submission order.
ResultHook = Callable[[int, T, R], None]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means "all cores"."""
    if not jobs:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def run_ordered(worker: Worker, payloads: Sequence[T], jobs: int = 1,
                on_result: Optional[ResultHook] = None) -> List[R]:
    """Run ``worker`` over ``payloads``; return results in payload order.

    ``jobs <= 1`` runs serially in-process (no pool, no pickling — the
    exact legacy code path).  Otherwise a :class:`ProcessPoolExecutor`
    with ``jobs`` workers executes tasks concurrently; results are still
    handed to ``on_result`` and returned in submission order, so callers
    that persist incremental state (the sweep's resumable JSON cache) see
    the same deterministic merge order as a serial run.

    A worker exception cancels all not-yet-started tasks and re-raises.
    """
    jobs = max(1, int(jobs))
    results: List[R] = []
    if jobs == 1 or len(payloads) <= 1:
        for i, payload in enumerate(payloads):
            result = worker(payload)
            results.append(result)
            if on_result is not None:
                on_result(i, payload, result)
        return results

    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        futures = [pool.submit(worker, payload) for payload in payloads]
        try:
            for i, (payload, fut) in enumerate(zip(payloads, futures)):
                result = fut.result()
                results.append(result)
                if on_result is not None:
                    on_result(i, payload, result)
        except BaseException:
            for fut in futures:
                fut.cancel()
            raise
    return results


# ----------------------------------------------------------------------
# Shared picklable workers
# ----------------------------------------------------------------------
def run_protocol_record(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker for ``repro compare --jobs``: one protocol, one app.

    Returns only plain data (no Machine, no bus): the comparison row
    fields, plus optional Perfetto-export bookkeeping when a trace path
    is requested — the trace file itself is written inside the worker.
    """
    from repro.config import ProtocolKind
    from repro.harness.runner import run_app

    protocol = ProtocolKind(payload["protocol"])
    bus = None
    if payload.get("trace_out"):
        from repro.obs.bus import InstrumentationBus
        bus = InstrumentationBus()
    result = run_app(payload["app"], n_cores=payload["n_cores"],
                     protocol=protocol,
                     chunks_per_partition=payload["chunks"],
                     oracle=payload.get("oracle", False), bus=bus)
    record: Dict[str, Any] = {
        "protocol": protocol.value,
        "total_cycles": result.total_cycles,
        "mean_commit_latency": result.mean_commit_latency,
        "commit_frac": result.breakdown_fractions()["Commit"],
        "mean_queue_length": result.mean_queue_length,
    }
    if bus is not None:
        from repro.obs.export import to_perfetto
        doc = to_perfetto(bus, payload["trace_out"])
        record["trace_out"] = payload["trace_out"]
        record["trace_events"] = len(doc["traceEvents"])
    return record


__all__ = ["ResultHook", "Worker", "resolve_jobs", "run_ordered",
           "run_protocol_record"]
