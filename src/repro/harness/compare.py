"""Compare two sweep result files and report significant drifts.

Usage::

    python -m repro.harness.compare results/old.json results/new.json \
        [--threshold 0.10]

Prints per-(app, cores, protocol) relative changes in total cycles, commit
latency and squash counts that exceed the threshold — the tool to run
after touching the protocol or the workload models, so a calibration
regression is caught before it silently rewrites EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

#: metrics compared, with the minimum absolute magnitude worth reporting
METRICS = {
    "total_cycles": 500,
    "mean_commit_latency": 20,
    "mean_dirs": 0.5,
    "mean_queue": 0.5,
    "squashes_conflict": 2,
}


@dataclass
class Drift:
    key: str
    metric: str
    old: float
    new: float

    @property
    def relative(self) -> float:
        if self.old == 0:
            return float("inf") if self.new else 0.0
        return (self.new - self.old) / abs(self.old)

    def __str__(self) -> str:
        rel = self.relative
        arrow = "▲" if rel > 0 else "▼"
        rel_s = "new" if rel == float("inf") else f"{rel * 100:+.1f}%"
        return (f"{self.key:40s} {self.metric:20s} "
                f"{self.old:10.1f} -> {self.new:10.1f}  {arrow} {rel_s}")


def compare_records(old: Dict[str, dict], new: Dict[str, dict],
                    threshold: float = 0.10) -> List[Drift]:
    """All metric drifts beyond ``threshold`` (relative) between sweeps."""
    drifts: List[Drift] = []
    for key in sorted(set(old) & set(new)):
        for metric, floor in METRICS.items():
            a = float(old[key].get(metric, 0) or 0)
            b = float(new[key].get(metric, 0) or 0)
            if abs(b - a) < floor:
                continue
            if a == 0 or abs(b - a) / abs(a) >= threshold:
                drifts.append(Drift(key, metric, a, b))
    return drifts


def missing_keys(old: Dict[str, dict], new: Dict[str, dict]):
    """Runs present in one sweep but not the other."""
    return sorted(set(old) - set(new)), sorted(set(new) - set(old))


def render(drifts: Sequence[Drift], gone, added) -> str:
    lines: List[str] = []
    if gone:
        lines.append(f"runs only in OLD ({len(gone)}): "
                     + ", ".join(gone[:5]) + ("..." if len(gone) > 5 else ""))
    if added:
        lines.append(f"runs only in NEW ({len(added)}): "
                     + ", ".join(added[:5])
                     + ("..." if len(added) > 5 else ""))
    if not drifts:
        lines.append("no significant drifts")
    else:
        lines.append(f"{len(drifts)} significant drift(s):")
        lines.extend(str(d) for d in drifts)
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", type=Path)
    parser.add_argument("new", type=Path)
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative change worth reporting (default 10%%)")
    args = parser.parse_args(argv)

    old = json.loads(args.old.read_text())
    new = json.loads(args.new.read_text())
    drifts = compare_records(old, new, args.threshold)
    gone, added = missing_keys(old, new)
    print(render(drifts, gone, added))
    return 1 if drifts else 0


if __name__ == "__main__":
    sys.exit(main())
