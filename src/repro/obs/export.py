"""Exporters for instrumentation-bus recordings: JSONL, CSV, Perfetto.

The Perfetto exporter emits Chrome trace-event JSON (the ``traceEvents``
array format) that loads directly in https://ui.perfetto.dev.  Track
layout — one process row per concern, one thread track per component:

=====  ======================  ============================================
pid    process                 tracks (tid)
=====  ======================  ============================================
1      ``cores: execution``    one per core — ``X`` slices exec_start ->
                               exec_done, ``i`` instants for squashes
2      ``cores: commit``       one per core — ``X`` slices commit_request
                               -> outcome, instants for retries/recalls
3      ``directories``         one per module — async ``b``/``e`` spans
                               for group lifetime (formed -> finished),
                               instants for grab traffic, failures, nacks
4      ``agents``              central arbiter / vendor decisions
5      ``gauges``              one counter (``C``) track per gauge series
=====  ======================  ============================================

Simulated cycles are written as microseconds (``ts`` is 1 µs granularity
in the trace-event format), so the Perfetto timeline reads directly in
cycles.  Events are sorted by ``(pid, tid, ts)``: ``ts`` is monotone
non-decreasing within every track, which the round-trip test asserts and
some consumers require.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.bus import (
    ARBITER_DECISION, COMMIT_COMPLETE, COMMIT_FINISHED, COMMIT_REQUEST,
    COMMIT_RETRY, DIR_NACK, EXEC_DONE, EXEC_START, GRAB_ADMIT, GRAB_RECV,
    GROUP_FAILED, GROUP_FORMED, MSG_RECV, MSG_SEND, OCI_RECALL, SQUASH,
    InstrumentationBus, ctag_str,
)

PathLike = Union[str, Path]

PID_EXEC = 1
PID_COMMIT = 2
PID_DIRS = 3
PID_AGENTS = 4
PID_GAUGES = 5
PID_PROFILE = 6

_PROCESS_NAMES = {
    PID_EXEC: "cores: execution",
    PID_COMMIT: "cores: commit",
    PID_DIRS: "directories",
    PID_AGENTS: "agents",
    PID_GAUGES: "gauges",
    PID_PROFILE: "host profiler",
}


# ----------------------------------------------------------------------
# Flat exporters
# ----------------------------------------------------------------------
def to_jsonl(bus: InstrumentationBus, path: PathLike) -> int:
    """One JSON object per recorded event, deterministic key order."""
    with open(path, "w", encoding="utf-8") as fh:
        for ev in bus.events:
            fh.write(json.dumps(ev.to_json(), sort_keys=True) + "\n")
    return len(bus.events)


def to_csv(bus: InstrumentationBus, path: PathLike) -> int:
    """Fixed columns (time, kind, src, ctag) + the payload as JSON.

    Wrapped gauge rings append one ``gauge_truncated`` row per affected
    series — no silent caps in exported telemetry.  The return value
    stays the recorded *event* count.
    """
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", "kind", "src", "ctag", "fields"])
        for ev in bus.events:
            payload = {k: sorted(v) if isinstance(v, (set, frozenset)) else v
                       for k, v in ev.fields.items()}
            writer.writerow([ev.time, ev.kind, ev.src, ctag_str(ev.ctag),
                             json.dumps(payload, sort_keys=True, default=str)])
        for name, dropped in bus.gauges.dropped_samples().items():
            series = bus.gauges.get(name)
            retained = series.samples()
            writer.writerow([
                retained[0][0] if retained else 0, "gauge_truncated", name, "",
                json.dumps({"dropped_samples": dropped,
                            "capacity": series.capacity,
                            "total_samples": series.total_samples},
                           sort_keys=True)])
    return len(bus.events)


# ----------------------------------------------------------------------
# Perfetto / Chrome trace-event
# ----------------------------------------------------------------------
def _meta(pid: int, tid: int, process: str, thread: str) -> List[dict]:
    return [
        {"ph": "M", "pid": pid, "tid": tid, "name": "process_name",
         "args": {"name": process}},
        {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
         "args": {"name": thread}},
    ]


def _instant(pid: int, tid: int, ts: int, name: str,
             args: Optional[Dict[str, Any]] = None) -> dict:
    ev: Dict[str, Any] = {"ph": "i", "pid": pid, "tid": tid, "ts": ts,
                          "name": name, "s": "t"}
    if args:
        ev["args"] = args
    return ev


def to_perfetto(bus: InstrumentationBus,
                path: Optional[PathLike] = None,
                profile_snapshots: Optional[List[Dict[str, Any]]] = None
                ) -> Dict[str, Any]:
    """Build (and optionally write) the Chrome trace-event document.

    ``profile_snapshots`` (kept metrics snapshots from a profiled run)
    adds the host-profiler process row next to the simulated tracks.
    """
    out: List[dict] = []
    tracks: Dict[Tuple[int, int], str] = {}

    def track(pid: int, tid: int, thread: str) -> None:
        tracks.setdefault((pid, tid), thread)

    # open slices awaiting their end event
    exec_open: Dict[Any, Tuple[int, int]] = {}     # tag -> (core, start)
    commit_open: Dict[Any, Tuple[int, int]] = {}   # cid -> (core, start)
    tag_to_cid: Dict[int, Any] = {}                # core -> in-flight cid

    def close_commit(cid: Any, ts: int, outcome: str) -> None:
        opened = commit_open.pop(cid, None)
        if opened is None:
            return
        core, start = opened
        out.append({"ph": "X", "pid": PID_COMMIT, "tid": core, "ts": start,
                    "dur": max(0, ts - start),
                    "name": f"commit {ctag_str(cid)}",
                    "args": {"outcome": outcome}})

    for ev in bus.events:
        kind, ts = ev.kind, ev.time
        if kind == EXEC_START:
            core = ev.fields["core"]
            track(PID_EXEC, core, f"core{core}")
            exec_open[ev.ctag] = (core, ts)
        elif kind == EXEC_DONE:
            opened = exec_open.pop(ev.ctag, None)
            if opened is not None:
                core, start = opened
                out.append({"ph": "X", "pid": PID_EXEC, "tid": core,
                            "ts": start, "dur": max(0, ts - start),
                            "name": f"exec {ctag_str(ev.ctag)}"})
        elif kind == SQUASH:
            core = ev.fields["core"]
            track(PID_EXEC, core, f"core{core}")
            out.append(_instant(PID_EXEC, core, ts,
                                f"squash {ctag_str(ev.ctag)}",
                                {"reason": ev.fields["reason"]}))
            opened = exec_open.pop(ev.ctag, None)
            if opened is not None:  # squashed mid-execution
                out.append({"ph": "X", "pid": PID_EXEC, "tid": core,
                            "ts": opened[1], "dur": max(0, ts - opened[1]),
                            "name": f"exec {ctag_str(ev.ctag)} (squashed)"})
            cid = tag_to_cid.get(core)
            if cid is not None and (not isinstance(cid, tuple)
                                    or cid[0] == ev.ctag):
                close_commit(cid, ts, "squashed")
                tag_to_cid.pop(core, None)
        elif kind == COMMIT_REQUEST:
            core = ev.fields["core"]
            track(PID_COMMIT, core, f"core{core}")
            commit_open[ev.ctag] = (core, ts)
            tag_to_cid[core] = ev.ctag
        elif kind == COMMIT_RETRY:
            close_commit(ev.ctag, ts, "retry")
            out.append(_instant(PID_COMMIT, ev.fields["core"], ts,
                                f"retry {ctag_str(ev.ctag)}"))
        elif kind == COMMIT_COMPLETE:
            core = ev.fields["core"]
            cid = tag_to_cid.pop(core, None)
            if cid is not None:
                close_commit(cid, ts, "committed")
            track(PID_COMMIT, core, f"core{core}")
            out.append(_instant(PID_COMMIT, core, ts,
                                f"committed {ctag_str(ev.ctag)}",
                                {"n_dirs": ev.fields["n_dirs"]}))
        elif kind == OCI_RECALL:
            out.append(_instant(PID_COMMIT, ev.fields["core"], ts,
                                f"oci recall {ctag_str(ev.ctag)}",
                                {"collision_dir": ev.fields["collision_dir"]}))
            close_commit(ev.ctag, ts, "recalled")
        elif kind in (GRAB_RECV, GRAB_ADMIT, DIR_NACK, GROUP_FAILED,
                      COMMIT_FINISHED) or (kind == GROUP_FORMED
                                           and ev.fields["dir"] is not None):
            d = ev.fields["dir"]
            track(PID_DIRS, d, f"dir{d}")
            label = f"{kind} {ctag_str(ev.ctag)}"
            if kind == GROUP_FORMED:
                out.append({"ph": "b", "cat": "group", "pid": PID_DIRS,
                            "tid": d, "ts": ts,
                            "id": f"{ctag_str(ev.ctag)}@d{d}",
                            "name": f"group {ctag_str(ev.ctag)}",
                            "args": {"order": ev.fields["order"],
                                     "proc": ev.fields["proc"]}})
            elif kind == COMMIT_FINISHED:
                out.append({"ph": "e", "cat": "group", "pid": PID_DIRS,
                            "tid": d, "ts": ts,
                            "id": f"{ctag_str(ev.ctag)}@d{d}",
                            "name": f"group {ctag_str(ev.ctag)}"})
            else:
                out.append(_instant(PID_DIRS, d, ts, label))
        elif kind == GROUP_FORMED:  # dir is None: central agent
            track(PID_AGENTS, 0, "agent")
            out.append(_instant(PID_AGENTS, 0, ts,
                                f"group {ctag_str(ev.ctag)}",
                                {"proc": ev.fields["proc"]}))
        elif kind == ARBITER_DECISION:
            track(PID_AGENTS, 0, "agent")
            verdict = "ok" if ev.fields["ok"] else "nack"
            out.append(_instant(PID_AGENTS, 0, ts,
                                f"arbiter {verdict} {ctag_str(ev.ctag)}",
                                {"in_flight": ev.fields["in_flight"]}))
        elif kind in (MSG_SEND, MSG_RECV):
            continue  # per-message detail stays in JSONL/CSV exports

    # unterminated slices: close at the last recorded time
    end_ts = bus.events[-1].time if bus.events else 0
    for tag, (core, start) in exec_open.items():
        out.append({"ph": "X", "pid": PID_EXEC, "tid": core, "ts": start,
                    "dur": max(0, end_ts - start),
                    "name": f"exec {ctag_str(tag)} (unfinished)"})
    for cid, (core, start) in commit_open.items():
        out.append({"ph": "X", "pid": PID_COMMIT, "tid": core, "ts": start,
                    "dur": max(0, end_ts - start),
                    "name": f"commit {ctag_str(cid)} (unfinished)"})

    # gauge counter tracks
    for idx, (name, series) in enumerate(sorted(bus.gauges.series().items())):
        track(PID_GAUGES, idx, name)
        retained = series.samples()
        if series.dropped_samples:
            # No silent caps: a wrapped ring announces its truncation at
            # the first retained sample so the timeline shows where the
            # series really starts.
            first_ts = retained[0][0] if retained else 0
            out.append(_instant(
                PID_GAUGES, idx, first_ts, f"TRUNCATED {name}",
                {"dropped_samples": series.dropped_samples,
                 "capacity": series.capacity,
                 "total_samples": series.total_samples}))
        for t, v in retained:
            out.append({"ph": "C", "pid": PID_GAUGES, "tid": idx, "ts": t,
                        "name": name, "args": {"value": v}})

    if profile_snapshots:
        prof_events, prof_tracks = profile_track_events(profile_snapshots)
        out.extend(prof_events)
        tracks.update(prof_tracks)

    out.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    events: List[dict] = []
    for (pid, tid), thread in sorted(tracks.items()):
        events.extend(_meta(pid, tid, _PROCESS_NAMES[pid], thread))
    events.extend(out)
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
    return doc


# ----------------------------------------------------------------------
# Host-profiler tracks (from streaming-metrics snapshots)
# ----------------------------------------------------------------------
def profile_track_events(snapshots: List[Dict[str, Any]]
                         ) -> Tuple[List[dict], Dict[Tuple[int, int], str]]:
    """Trace events + track names for kept metrics snapshots.

    Snapshots are the dicts a :class:`repro.obs.metrics.MetricsStream`
    retains with ``keep=True`` (see ``repro profile --perfetto``).  Two
    kinds of track, all under ``pid`` :data:`PID_PROFILE`:

    * tid 0 ``intervals`` — one ``X`` slice per snapshot interval whose
      args carry the interval's cycles/sec (host throughput over sim
      time, directly comparable with the bench numbers);
    * tid 1.. — one counter (``C``) track per profiled scope sampling
      cumulative self-time milliseconds at each snapshot.
    """
    out: List[dict] = []
    tracks: Dict[Tuple[int, int], str] = {}
    snaps = [s for s in snapshots if s.get("kind") == "snapshot"]
    if not snaps:
        return out, tracks

    scope_names = sorted({name for s in snaps
                          for name in s.get("profile", {})})
    scope_tid = {name: 1 + i for i, name in enumerate(scope_names)}
    tracks[(PID_PROFILE, 0)] = "intervals"
    for name, tid in scope_tid.items():
        tracks[(PID_PROFILE, tid)] = f"self ms: {name}"

    prev: Optional[Dict[str, Any]] = None
    for snap in snaps:
        ts = int(snap["sim_time"])
        if prev is not None:
            t0 = int(prev["sim_time"])
            delta_cycles = ts - t0
            delta_ns = (snap["host_elapsed_ns"] - prev["host_elapsed_ns"])
            rate = delta_cycles * 1e9 / delta_ns if delta_ns > 0 else 0.0
            out.append({"ph": "X", "pid": PID_PROFILE, "tid": 0, "ts": t0,
                        "dur": max(0, delta_cycles),
                        "name": f"interval {int(prev.get('seq', 0))}",
                        "args": {"cycles_per_sec": round(rate, 1),
                                 "host_ms": round(delta_ns / 1e6, 3)}})
        for name, rec in snap.get("profile", {}).items():
            out.append({"ph": "C", "pid": PID_PROFILE,
                        "tid": scope_tid[name], "ts": ts, "name": name,
                        "args": {"self_ms":
                                 round(rec["self_ns"] / 1e6, 3)}})
        prev = snap
    return out, tracks


def to_perfetto_profile(snapshots: List[Dict[str, Any]],
                        path: Optional[PathLike] = None) -> Dict[str, Any]:
    """Standalone Perfetto document holding only the profiler tracks."""
    out, tracks = profile_track_events(snapshots)
    out.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    events: List[dict] = []
    for (pid, tid), thread in sorted(tracks.items()):
        events.extend(_meta(pid, tid, _PROCESS_NAMES[pid], thread))
    events.extend(out)
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
    return doc


_VALID_PH = {"M", "X", "i", "C", "b", "e"}


def validate_perfetto(doc: Dict[str, Any]) -> List[str]:
    """Schema-check a trace-event document; returns a list of problems."""
    errors: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts: Dict[Tuple[int, int], int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PH:
            errors.append(f"event {i}: bad ph {ph!r}")
            continue
        for key in ("pid", "tid", "name"):
            if key not in ev:
                errors.append(f"event {i}: missing {key}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, int) or ts < 0:
            errors.append(f"event {i}: bad ts {ts!r}")
            continue
        if ph == "X" and ev.get("dur", -1) < 0:
            errors.append(f"event {i}: X slice with bad dur")
        key = (ev.get("pid"), ev.get("tid"))
        if ts < last_ts.get(key, 0):
            errors.append(f"event {i}: ts {ts} not monotone on track {key}")
        last_ts[key] = ts
    return errors


__all__ = [
    "PID_AGENTS", "PID_COMMIT", "PID_DIRS", "PID_EXEC", "PID_GAUGES",
    "PID_PROFILE", "profile_track_events", "to_csv", "to_jsonl",
    "to_perfetto", "to_perfetto_profile", "validate_perfetto",
]
