"""The unified instrumentation bus: typed hook points, zero-cost when off.

Every instrumented component (simulator, NoC, cores, directory modules,
processor engines, central agents) owns an ``obs`` attribute that defaults
to :data:`NULL_BUS` — a shared :class:`NullBus` whose hook methods are all
no-ops and whose ``enabled`` flag is ``False``.  Emit sites are written as::

    if self.obs.enabled:
        self.obs.group_formed(self.sim.now, self.dir_id, cid, proc, order)

so a run with no sink attached pays one attribute load and one falsy check
per hook point, never builds event payloads, and schedules exactly the same
simulator events as a build with no instrumentation at all.  The
determinism regression tests assert this: stats and event order are
byte-identical with and without an attached bus.

:class:`InstrumentationBus` is the live sink.  Each typed hook appends one
:class:`ObsEvent` to ``bus.events`` (messages can be muted with
``record_messages=False``) and feeds the on-event gauge rings in
``bus.gauges`` (see :mod:`repro.obs.gauges`).  Exporters, the commit
critical-path analyzer and the legacy :mod:`repro.tracing` shim all consume
the same recorded stream.

Hook-point catalog (see ``docs/observability.md`` for the full table):

=================  =================================  =====================
hook               emitted from                       payload
=================  =================================  =====================
``sim_step``       engine/events.py (gauge only)      event-queue depth
``msg_send``       network/noc.py                     type, src, dst, lat
``msg_recv``       network/noc.py                     type, src, dst
``exec_start``     cpu/core.py                        core, chunk tag
``exec_done``      cpu/core.py                        core, chunk tag
``squash``         cpu/core.py                        victim tag, reason
``commit_request`` protocols/base.py                  cid, touched dirs
``commit_retry``   protocols/base.py                  cid
``commit_complete`` cpu/core.py                       chunk tag, n_dirs
``grab_recv``      core/directory_engine.py           dir, cid
``grab_admit``     core/directory_engine.py           dir, cid, successor
``group_formed``   directory / baseline engines       dir (None = agent)
``group_failed``   core/directory_engine.py           dir, cid, genuine
``commit_finished`` core/directory_engine.py          leader dir, cid
``dir_occupancy``  directories (gauge only)           CST / queue depth
``dir_nack``       directory engines                  dir, cid, nacker
``oci_recall``     core/processor_engine.py           cid, collision dir
``arbiter_decision`` baselines/bulksc.py              cid, ok, in-flight
``watchdog_fire``  faults/watchdog.py                 fires, commits, state
``state_access``   analysis/races/sanitizer.py        cls, handler, attr, op
=================  =================================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.gauges import DEFAULT_CAPACITY, GaugeSet

# -- event kinds (the typed hook points) -------------------------------
SIM_STEP = "sim_step"
MSG_SEND = "msg_send"
MSG_RECV = "msg_recv"
EXEC_START = "exec_start"
EXEC_DONE = "exec_done"
SQUASH = "squash"
COMMIT_REQUEST = "commit_request"
COMMIT_RETRY = "commit_retry"
COMMIT_COMPLETE = "commit_complete"
GRAB_RECV = "grab_recv"
GRAB_ADMIT = "grab_admit"
GROUP_FORMED = "group_formed"
GROUP_FAILED = "group_failed"
COMMIT_FINISHED = "commit_finished"
DIR_OCCUPANCY = "dir_occupancy"
DIR_NACK = "dir_nack"
OCI_RECALL = "oci_recall"
ARBITER_DECISION = "arbiter_decision"
WATCHDOG_FIRE = "watchdog_fire"
STATE_ACCESS = "state_access"

#: Hooks that feed gauges only and never enter the event stream.
GAUGE_ONLY_KINDS = frozenset({SIM_STEP, DIR_OCCUPANCY})


def ctag_str(ctag: Any) -> Optional[str]:
    """Stable, human-readable form of a chunk tag or commit id.

    Commit ids are ``(ChunkTag, attempt)`` tuples; they render as
    ``P0.c1.g0#2`` (attempt 2 of chunk P0.c1.g0).  Plain tags render via
    their own ``__str__``.
    """
    if ctag is None:
        return None
    if isinstance(ctag, tuple) and len(ctag) == 2 and isinstance(ctag[1], int):
        return f"{ctag[0]}#{ctag[1]}"
    return str(ctag)


@dataclass
class ObsEvent:
    """One recorded hook firing."""

    time: int
    kind: str
    src: str                               #: "core3" | "dir5" | "noc" | "arbiter"
    ctag: Any = None                       #: chunk tag or commit id (raw object)
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "time": self.time, "kind": self.kind, "src": self.src,
            "ctag": ctag_str(self.ctag),
        }
        for key, value in self.fields.items():
            if isinstance(value, (set, frozenset)):
                value = sorted(value)
            elif isinstance(value, tuple):
                value = list(value)
            out[key] = value
        return out


class NullBus:
    """The default sink: every hook is a no-op, ``enabled`` is False.

    Components call hooks only behind an ``if self.obs.enabled:`` guard, so
    with the null bus attached no payload is ever built; these methods
    exist so an unguarded call is still safe and so the live bus inherits
    one canonical hook signature set.
    """

    enabled: bool = False

    # -- engine --------------------------------------------------------
    def sim_step(self, time: int, queue_depth: int) -> None:
        """One simulator event executed; ``queue_depth`` is the heap size."""

    # -- NoC -----------------------------------------------------------
    def msg_send(self, time: int, msg: Any, latency: int, hops: int) -> None:
        """A message was injected into the network."""

    def msg_recv(self, time: int, msg: Any) -> None:
        """A message was delivered to its endpoint handler."""

    # -- cores ---------------------------------------------------------
    def exec_start(self, time: int, core: int, tag: Any) -> None:
        """A chunk attempt began executing."""

    def exec_done(self, time: int, core: int, tag: Any) -> None:
        """A chunk attempt finished executing (entering WAIT_COMMIT)."""

    def squash(self, time: int, core: int, tag: Any, reason: str) -> None:
        """A chunk attempt was squashed (``reason``: conflict | alias)."""

    def commit_complete(self, time: int, core: int, tag: Any,
                        n_dirs: int) -> None:
        """The core retired a committed chunk."""

    # -- protocol engines (all protocols) ------------------------------
    def commit_request(self, time: int, core: int, cid: Any,
                       dirs: Sequence[int]) -> None:
        """A commit attempt's request left the processor."""

    def commit_retry(self, time: int, core: int, cid: Any) -> None:
        """A commit attempt failed; the processor will back off and retry."""

    # -- ScalableBulk directories --------------------------------------
    def grab_recv(self, time: int, dir_id: int, cid: Any) -> None:
        """A ``g`` (grab) message arrived at a directory module."""

    def grab_admit(self, time: int, dir_id: int, cid: Any,
                   next_dir: Optional[int]) -> None:
        """The module set its h bit; ``next_dir`` receives the grab next."""

    def group_formed(self, time: int, dir_id: Optional[int], cid: Any,
                     proc: int, order: Sequence[int]) -> None:
        """A commit group formed (``dir_id`` None = a central agent)."""

    def group_failed(self, time: int, dir_id: int, cid: Any, proc: int,
                     genuine: bool, leader_here: bool) -> None:
        """This module failed the group (collision or reservation)."""

    def commit_finished(self, time: int, dir_id: int, cid: Any) -> None:
        """The leader collected all acks and released the group."""

    def dir_occupancy(self, time: int, dir_id: int, depth: int) -> None:
        """CST / service-queue depth changed (gauge only)."""

    def dir_nack(self, time: int, dir_id: int, cid: Any, proc: int) -> None:
        """A conservative processor bounced this module's invalidation."""

    # -- processor engines ---------------------------------------------
    def oci_recall(self, time: int, core: int, cid: Any,
                   collision_dir: int) -> None:
        """OCI killed an in-flight commit; a recall is being piggy-backed."""

    # -- central agents (baselines) ------------------------------------
    def arbiter_decision(self, time: int, cid: Any, ok: bool,
                         in_flight: int) -> None:
        """The BulkSC arbiter granted (ok) or nacked a commit request."""

    # -- fault injection (repro.faults) --------------------------------
    def watchdog_fire(self, time: int, fires: int, commits: int,
                      snapshot: Dict[str, Any]) -> None:
        """The liveness watchdog saw a commit-free window; ``snapshot`` is
        the live group/CST/reservation state it dumped."""

    # -- state-access sanitizer (repro.analysis.races) -----------------
    def state_access(self, time: int, src: str, cls: str, handler: str,
                     attr: str, op: str, ctag: Any) -> None:
        """The access sanitizer observed a tracked attribute change
        (``op``: grow | release | write) inside a handler invocation."""


#: The shared default sink.  Never mutated; safe to share machine-wide.
NULL_BUS = NullBus()


class InstrumentationBus(NullBus):
    """A live sink: records typed events and feeds on-event gauges."""

    enabled = True

    def __init__(self, *, record_messages: bool = True,
                 gauge_capacity: int = DEFAULT_CAPACITY) -> None:
        self.events: List[ObsEvent] = []
        self.gauges = GaugeSet(gauge_capacity)
        self.record_messages = record_messages

    # ------------------------------------------------------------------
    def _emit(self, time: int, kind: str, src: str, ctag: Any = None,
              **fields: Any) -> None:
        self.events.append(ObsEvent(time, kind, src, ctag, fields))

    # -- engine --------------------------------------------------------
    def sim_step(self, time: int, queue_depth: int) -> None:
        self.gauges.sample("sim_queue", time, queue_depth)

    # -- NoC -----------------------------------------------------------
    def msg_send(self, time: int, msg: Any, latency: int, hops: int) -> None:
        self.gauges.bump("noc_inflight", time, +1)
        if self.record_messages:
            self._emit(time, MSG_SEND, "noc", msg.ctag,
                       mtype=msg.mtype.value, src_node=str(msg.src),
                       dst_node=str(msg.dst), latency=latency, hops=hops,
                       bytes=msg.size_bytes)

    def msg_recv(self, time: int, msg: Any) -> None:
        self.gauges.bump("noc_inflight", time, -1)
        if self.record_messages:
            self._emit(time, MSG_RECV, "noc", msg.ctag,
                       mtype=msg.mtype.value, src_node=str(msg.src),
                       dst_node=str(msg.dst))

    # -- cores ---------------------------------------------------------
    def exec_start(self, time: int, core: int, tag: Any) -> None:
        self._emit(time, EXEC_START, f"core{core}", tag, core=core)

    def exec_done(self, time: int, core: int, tag: Any) -> None:
        self._emit(time, EXEC_DONE, f"core{core}", tag, core=core)

    def squash(self, time: int, core: int, tag: Any, reason: str) -> None:
        self._emit(time, SQUASH, f"core{core}", tag, core=core, reason=reason)

    def commit_complete(self, time: int, core: int, tag: Any,
                        n_dirs: int) -> None:
        self._emit(time, COMMIT_COMPLETE, f"core{core}", tag, core=core,
                   n_dirs=n_dirs)

    # -- protocol engines ----------------------------------------------
    def commit_request(self, time: int, core: int, cid: Any,
                       dirs: Sequence[int]) -> None:
        self._emit(time, COMMIT_REQUEST, f"core{core}", cid, core=core,
                   dirs=list(dirs))

    def commit_retry(self, time: int, core: int, cid: Any) -> None:
        self._emit(time, COMMIT_RETRY, f"core{core}", cid, core=core)

    # -- ScalableBulk directories --------------------------------------
    def grab_recv(self, time: int, dir_id: int, cid: Any) -> None:
        self._emit(time, GRAB_RECV, f"dir{dir_id}", cid, dir=dir_id)

    def grab_admit(self, time: int, dir_id: int, cid: Any,
                   next_dir: Optional[int]) -> None:
        self._emit(time, GRAB_ADMIT, f"dir{dir_id}", cid, dir=dir_id,
                   next_dir=next_dir)

    def group_formed(self, time: int, dir_id: Optional[int], cid: Any,
                     proc: int, order: Sequence[int]) -> None:
        src = "arbiter" if dir_id is None else f"dir{dir_id}"
        self._emit(time, GROUP_FORMED, src, cid, dir=dir_id, proc=proc,
                   order=list(order))
        if dir_id is not None:
            self.gauges.bump("groups_live", time, +1)

    def group_failed(self, time: int, dir_id: int, cid: Any, proc: int,
                     genuine: bool, leader_here: bool) -> None:
        self._emit(time, GROUP_FAILED, f"dir{dir_id}", cid, dir=dir_id,
                   proc=proc, genuine=genuine, leader_here=leader_here)

    def commit_finished(self, time: int, dir_id: int, cid: Any) -> None:
        self._emit(time, COMMIT_FINISHED, f"dir{dir_id}", cid, dir=dir_id)
        self.gauges.bump("groups_live", time, -1)

    def dir_occupancy(self, time: int, dir_id: int, depth: int) -> None:
        self.gauges.sample(f"dir{dir_id}_cst", time, depth)

    def dir_nack(self, time: int, dir_id: int, cid: Any, proc: int) -> None:
        self._emit(time, DIR_NACK, f"dir{dir_id}", cid, dir=dir_id, proc=proc)
        self.gauges.bump("nacks_total", time, +1)

    # -- processor engines ---------------------------------------------
    def oci_recall(self, time: int, core: int, cid: Any,
                   collision_dir: int) -> None:
        self._emit(time, OCI_RECALL, f"core{core}", cid, core=core,
                   collision_dir=collision_dir)

    # -- central agents -------------------------------------------------
    def arbiter_decision(self, time: int, cid: Any, ok: bool,
                         in_flight: int) -> None:
        self._emit(time, ARBITER_DECISION, "arbiter", cid, ok=ok,
                   in_flight=in_flight)

    # -- fault injection -------------------------------------------------
    def watchdog_fire(self, time: int, fires: int, commits: int,
                      snapshot: Dict[str, Any]) -> None:
        self._emit(time, WATCHDOG_FIRE, "watchdog", None, fires=fires,
                   commits=commits, snapshot=snapshot)

    # -- state-access sanitizer ------------------------------------------
    def state_access(self, time: int, src: str, cls: str, handler: str,
                     attr: str, op: str, ctag: Any) -> None:
        self._emit(time, STATE_ACCESS, src, ctag, cls=cls, handler=handler,
                   attr=attr, op=op)

    # ------------------------------------------------------------------
    def of_kind(self, *kinds: str) -> List[ObsEvent]:
        return [e for e in self.events if e.kind in kinds]

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"InstrumentationBus(events={len(self.events)}, "
                f"series={len(self.gauges.series())})")


def attach_bus(machine: Any, bus: Optional[InstrumentationBus] = None
               ) -> InstrumentationBus:
    """Attach ``bus`` (or a fresh one) to every component of ``machine``.

    Call before ``machine.run()``.  Attaching replaces any previously
    attached bus; the null-sink default is restored only by building a new
    machine.
    """
    if bus is None:
        bus = InstrumentationBus()
    machine.obs = bus
    machine.sim.obs = bus
    machine.network.obs = bus
    for core in machine.cores:
        core.obs = bus
    for directory in machine.directories:
        directory.obs = bus
    protocol = machine.protocol
    for engine in getattr(protocol, "engines", ()):
        engine.obs = bus
    for agent_attr in ("arbiter", "vendor"):
        agent = getattr(protocol, agent_attr, None)
        if agent is not None:
            agent.obs = bus
    return bus


__all__ = [
    "ARBITER_DECISION", "COMMIT_COMPLETE", "COMMIT_FINISHED",
    "COMMIT_REQUEST", "COMMIT_RETRY", "DIR_NACK", "DIR_OCCUPANCY",
    "EXEC_DONE", "EXEC_START", "GAUGE_ONLY_KINDS", "GRAB_ADMIT",
    "GRAB_RECV", "GROUP_FAILED", "GROUP_FORMED", "MSG_RECV", "MSG_SEND",
    "NULL_BUS", "NullBus", "InstrumentationBus", "ObsEvent", "OCI_RECALL",
    "SIM_STEP", "SQUASH", "STATE_ACCESS", "WATCHDOG_FIRE", "attach_bus",
    "ctag_str",
]
