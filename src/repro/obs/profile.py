"""Deterministic host-time self-profiler: where do the cycles/sec go?

The macro benchmark says the simulator runs at ~10-12k simulated cycles
per host second; this module says *why*.  Lightweight scoped timers sit
at the hot triangle the ROADMAP's compiled-core item targets —

=====================  ===============================================
``engine.dispatch``    one scope per executed simulator event
                       (:meth:`repro.engine.events.Simulator.step`)
``noc.transit``        message injection + latency model + scheduling
                       (:meth:`repro.network.noc.Network.send`)
``dir.handler``        directory-side message handling, all protocols
                       (:meth:`repro.memory.directory.DirectoryModule`)
``sig.insert``         signature line insert
``sig.member``         signature membership probe (expansion path)
``sig.intersect``      signature intersection (conflict tests)
=====================  ===============================================

— and aggregate into a per-scope attribution (call count, inclusive
wall time, *self* time with nested scopes subtracted).  Because the
scopes nest (a directory handler intersects signatures and sends NoC
messages, all inside one dispatched event), the self-time shares plus
the unprofiled remainder ("other": heap ops, workload generation, stats)
sum to 100% of run wall time by construction.

**Quarantine rule.**  This is the one module (with the benchmark
harness) allowed to read the host clock — every ``perf_counter_ns`` call
carries an ``# repro: allow SB304`` pragma and its value flows only into
profiler state, never into simulation state.  Components guard every
hook behind ``if profiler is not None`` exactly like the NULL_BUS
discipline, so a run with profiling off executes the identical event
sequence (byte-identical RunResult, regression-tested), and even with
profiling *on* the RunResult is unchanged — the profiler only observes.

Overhead note: with profiling on, each scope entry/exit costs two host
clock reads, so the *absolute* wall time of a profiled run is inflated
(most visibly for the very short signature scopes); the attribution is
for steering optimization effort, not for quoting absolute throughput —
quote ``repro bench`` numbers without ``--profile`` for that.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, MetricsStream

SCHEMA = "repro-profile-v1"

# -- scope names (the profiled subsystems) -----------------------------
ENGINE_DISPATCH = "engine.dispatch"
NOC_TRANSIT = "noc.transit"
DIR_HANDLER = "dir.handler"
SIG_INSERT = "sig.insert"
SIG_MEMBER = "sig.member"
SIG_INTERSECT = "sig.intersect"

#: Share of wall time outside every profiled scope (event-queue heap
#: operations, core/workload callbacks' own work, stats, interpreter).
OTHER = "other"

HOT_SCOPES = (ENGINE_DISPATCH, NOC_TRANSIT, DIR_HANDLER, SIG_INSERT,
              SIG_MEMBER, SIG_INTERSECT)

_CLOCK = time.perf_counter_ns  # repro: allow SB304


class ScopeStats:
    """Aggregate for one scope name."""

    __slots__ = ("count", "total_ns", "self_ns")

    def __init__(self) -> None:
        self.count = 0
        self.total_ns = 0
        self.self_ns = 0


class HostProfiler:
    """Scoped host-time aggregation with self-time attribution.

    ``enter``/``exit`` maintain an explicit scope stack; exiting charges
    the elapsed time to the scope's total, the elapsed time minus nested
    children to its self time, and records the (parent, child) edge for
    the flame-style rendering.  All state is host-side only.
    """

    __slots__ = ("_stack", "scopes", "edges", "_t_start_ns", "_t_stop_ns",
                 "stream", "provenance", "_clock")

    def __init__(self, stream: Optional[MetricsStream] = None,
                 provenance: Optional[Dict[str, Any]] = None,
                 _clock: Callable[[], int] = _CLOCK) -> None:
        self._stack: List[list] = []
        self.scopes: Dict[str, ScopeStats] = {}
        #: (parent scope or None, child scope) -> [count, total_ns]
        self.edges: Dict[Tuple[Optional[str], str], List[int]] = {}
        self._t_start_ns: Optional[int] = None
        self._t_stop_ns: Optional[int] = None
        self.stream = stream
        self.provenance = dict(provenance or {})
        self._clock = _clock

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Anchor the run's wall clock (first call wins; attach calls it)."""
        if self._t_start_ns is None:
            self._t_start_ns = self._clock()

    def stop(self, sim_time: int = 0) -> None:
        """Stop the wall clock and flush the final metrics snapshot."""
        if self._t_stop_ns is None:
            self._t_stop_ns = self._clock()
        if self.stream is not None:
            self.stream.close(sim_time, self._t_stop_ns, self)

    @property
    def wall_ns(self) -> int:
        if self._t_start_ns is None:
            return 0
        end = self._t_stop_ns if self._t_stop_ns is not None else self._clock()
        return end - self._t_start_ns

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def enter(self, name: str) -> None:
        self._stack.append([name, self._clock(), 0])

    def exit(self) -> None:
        frame = self._stack.pop()
        dt = self._clock() - frame[1]
        name = frame[0]
        stats = self.scopes.get(name)
        if stats is None:
            stats = ScopeStats()
            self.scopes[name] = stats
        stats.count += 1
        stats.total_ns += dt
        stats.self_ns += dt - frame[2]
        stack = self._stack
        if stack:
            parent = stack[-1]
            parent[2] += dt
            key: Tuple[Optional[str], str] = (parent[0], name)
        else:
            key = (None, name)
        edge = self.edges.get(key)
        if edge is None:
            self.edges[key] = [1, dt]
        else:
            edge[0] += 1
            edge[1] += dt

    def exit_dispatch(self, sim_time: int) -> None:
        """Exit the dispatch scope + drive the metrics snapshot clock.

        Called once per executed simulator event; the snapshot check is
        one integer compare when no interval boundary was crossed.
        """
        self.exit()
        stream = self.stream
        if stream is not None and sim_time >= stream.next_time:
            stream.take(sim_time, self._clock(), self)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def scope_json(self) -> Dict[str, Dict[str, int]]:
        """Cumulative per-scope numbers (used by metrics snapshots)."""
        return {name: {"count": s.count, "total_ns": s.total_ns,
                       "self_ns": s.self_ns}
                for name, s in sorted(self.scopes.items())}

    def report(self) -> "ProfileReport":
        return ProfileReport(self)


class ProfileReport:
    """Attribution report: per-scope shares of run wall time."""

    def __init__(self, profiler: HostProfiler) -> None:
        self.wall_ns = max(1, profiler.wall_ns)
        self.scopes = {name: (s.count, s.total_ns, s.self_ns)
                       for name, s in profiler.scopes.items()}
        self.edges = {key: (e[0], e[1]) for key, e in profiler.edges.items()}
        self.provenance = dict(profiler.provenance)

    # ------------------------------------------------------------------
    def shares(self) -> Dict[str, float]:
        """Self-time share of wall per scope, plus ``other``; sums to 100.

        Self times are disjoint by construction (nested child time is
        subtracted from the parent), so their sum is the total time
        spent inside profiled scopes; ``other`` is the remainder.
        """
        out = {name: 100.0 * self_ns / self.wall_ns
               for name, (_, _, self_ns) in sorted(self.scopes.items())}
        out[OTHER] = max(0.0, 100.0 - sum(out.values()))
        return out

    # ------------------------------------------------------------------
    def _children(self, parent: Optional[str]) -> List[Tuple[str, int, int]]:
        """(name, count, edge total) under ``parent``, biggest first."""
        kids = [(child, cnt, total)
                for (par, child), (cnt, total) in self.edges.items()
                if par == parent]
        return sorted(kids, key=lambda k: (-k[2], k[0]))

    @staticmethod
    def _fmt_ns(ns: float) -> str:
        if ns >= 1e9:
            return f"{ns / 1e9:.2f} s"
        if ns >= 1e6:
            return f"{ns / 1e6:.1f} ms"
        return f"{ns / 1e3:.0f} us"

    def render(self) -> str:
        """Flame-style text tree + the flat share table."""
        lines: List[str] = []
        total_events = self.scopes.get(ENGINE_DISPATCH, (0, 0, 0))[0]
        lines.append(
            f"host-time attribution — wall {self._fmt_ns(self.wall_ns)}"
            + (f", {total_events:,} events dispatched" if total_events else ""))
        lines.append(f"  {'scope':28s} {'calls':>12s} {'total':>10s} "
                     f"{'self':>10s} {'self%':>6s}")

        # A scope can sit under several parents (noc.transit is called
        # both from dispatched callbacks and from inside dir.handler);
        # self time is per *scope*, so print it only at the first
        # (edge-heaviest) occurrence and mark repeats with a dot.
        seen: set = set()

        def walk(parent: Optional[str], depth: int) -> None:
            for child, cnt, edge_total in self._children(parent):
                label = "  " * depth + child
                if child in seen:
                    lines.append(f"  {label:28s} {cnt:12,d} "
                                 f"{self._fmt_ns(edge_total):>10s} "
                                 f"{'·':>10s} {'·':>6s}")
                else:
                    seen.add(child)
                    _, _, self_ns = self.scopes[child]
                    share = 100.0 * self_ns / self.wall_ns
                    bar = "#" * max(0, min(20, round(share / 5)))
                    lines.append(f"  {label:28s} {cnt:12,d} "
                                 f"{self._fmt_ns(edge_total):>10s} "
                                 f"{self._fmt_ns(self_ns):>10s} "
                                 f"{share:5.1f}% {bar}")
                walk(child, depth + 1)

        walk(None, 0)
        other = self.shares()[OTHER]
        lines.append(f"  {OTHER + ' (unprofiled: heap, cores, stats)':28s} "
                     f"{'-':>12s} {'-':>10s} "
                     f"{self._fmt_ns(self.wall_ns * other / 100):>10s} "
                     f"{other:5.1f}% {'#' * max(0, min(20, round(other / 5)))}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "schema": SCHEMA,
            "wall_ns": self.wall_ns,
            "scopes": {name: {"count": cnt, "total_ns": total,
                              "self_ns": self_ns}
                       for name, (cnt, total, self_ns)
                       in sorted(self.scopes.items())},
            "edges": [[par, child, cnt, total]
                      for (par, child), (cnt, total)
                      in sorted(self.edges.items(),
                                key=lambda kv: (kv[0][0] or "", kv[0][1]))],
            "shares": self.shares(),
        }
        doc.update(self.provenance)
        return doc


def aggregate_profiles(docs: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-run ``ProfileReport.to_json()`` documents into one.

    Counts, totals and wall time add; shares are recomputed against the
    summed wall so they still sum to 100% ± rounding.
    """
    wall = 0
    scopes: Dict[str, Dict[str, int]] = {}
    for doc in docs:
        wall += int(doc.get("wall_ns", 0))
        for name, rec in doc.get("scopes", {}).items():
            agg = scopes.setdefault(
                name, {"count": 0, "total_ns": 0, "self_ns": 0})
            for key in agg:
                agg[key] += int(rec.get(key, 0))
    wall = max(1, wall)
    shares = {name: 100.0 * rec["self_ns"] / wall
              for name, rec in sorted(scopes.items())}
    shares[OTHER] = max(0.0, 100.0 - sum(shares.values()))
    return {"schema": SCHEMA, "runs": len(docs), "wall_ns": wall,
            "scopes": scopes, "shares": shares}


def render_share_line(shares: Dict[str, float], top: int = 4) -> str:
    """One-line breakdown, biggest subsystems first (bench output)."""
    ranked = sorted(((v, k) for k, v in shares.items() if k != OTHER),
                    reverse=True)
    parts = [f"{name} {value:.1f}%" for value, name in ranked[:top]]
    parts.append(f"{OTHER} {shares.get(OTHER, 0.0):.1f}%")
    return " | ".join(parts)


# ----------------------------------------------------------------------
# Attachment
# ----------------------------------------------------------------------
def attach_profiler(machine: Any,
                    profiler: Optional[HostProfiler] = None) -> HostProfiler:
    """Attach ``profiler`` (or a fresh one) to every profiled hot path.

    Call before ``machine.run()``.  The profiler reads the host clock
    and writes only its own state: simulation behaviour is unchanged
    whether or not one is attached.
    """
    if profiler is None:
        profiler = HostProfiler()
    machine.sim.profiler = profiler
    machine.network.profiler = profiler
    machine.sig_factory.profiler = profiler
    for directory in machine.directories:
        directory.profiler = profiler
    profiler.start()
    return profiler


def make_profiler(config: Any = None, *, metrics_interval: Optional[int] = None,
                  metrics_out: Any = None,
                  keep_snapshots: bool = False) -> HostProfiler:
    """Build a profiler, optionally with a provenance-stamped metrics stream.

    ``metrics_interval`` (simulated cycles) without ``metrics_out``
    streams to an in-memory sink (snapshots still drive the bounded
    registry and, with ``keep_snapshots``, the Perfetto tracks).
    """
    from repro.provenance import provenance
    prov = provenance(config)
    stream = None
    if metrics_interval:
        import io
        sink = str(metrics_out) if metrics_out else io.StringIO()
        stream = MetricsStream(sink, metrics_interval,
                               registry=MetricsRegistry(), provenance=prov,
                               keep=keep_snapshots)
    return HostProfiler(stream=stream, provenance=prov)


# ----------------------------------------------------------------------
# CLI: ``python -m repro profile``
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="run one app with the host-time self-profiler attached "
                    "(see docs/performance.md, 'Profiling the simulator')")
    parser.add_argument("app", help="application profile (see `repro apps`)")
    parser.add_argument("--cores", type=int, default=16)
    parser.add_argument("--protocol", default="scalablebulk")
    parser.add_argument("--chunks", type=int, default=3,
                        help="chunks per partition")
    parser.add_argument("--partitions", type=int, default=None,
                        help="total partitions (fixes total work; large "
                             "values make long fixed-footprint runs)")
    parser.add_argument("--metrics-interval", type=int, metavar="CYCLES",
                        help="stream a bounded metrics snapshot every "
                             "CYCLES simulated cycles")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="JSONL destination for metrics snapshots "
                             "(default: in-memory)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the attribution report as JSON")
    parser.add_argument("--perfetto", metavar="PATH",
                        help="write profiler counter/slice tracks as a "
                             "Perfetto trace (needs --metrics-interval)")
    args = parser.parse_args(argv)

    if args.perfetto and not args.metrics_interval:
        parser.error("--perfetto needs --metrics-interval (the snapshots "
                     "become the counter samples)")

    from repro.config import ProtocolKind, SystemConfig
    from repro.harness.runner import run_app

    proto = {p.value.lower(): p for p in ProtocolKind}[args.protocol.lower()]
    config = SystemConfig(n_cores=args.cores, protocol=proto)
    profiler = make_profiler(config, metrics_interval=args.metrics_interval,
                             metrics_out=args.metrics_out,
                             keep_snapshots=bool(args.perfetto))
    result = run_app(args.app, n_cores=args.cores, protocol=proto,
                     chunks_per_partition=args.chunks,
                     n_partitions=args.partitions, profile=profiler)

    wall_s = profiler.wall_ns / 1e9
    print(f"{args.app} on {args.cores} cores ({proto.value}): "
          f"{result.total_cycles:,} cycles, "
          f"{result.chunks_committed} chunks committed, "
          f"{result.total_cycles / max(wall_s, 1e-9):,.0f} cycles/sec "
          f"(profiled)")
    print()
    report = profiler.report()
    print(report.render())

    stream = profiler.stream
    if stream is not None:
        registry_size = stream.registry.size()
        print(f"\nmetrics: {stream.snapshots_written} snapshots every "
              f"{stream.interval} cycles ({registry_size[0]} counters, "
              f"{registry_size[1]} fixed histograms — bounded)"
              + (f" -> {args.metrics_out}" if args.metrics_out else
                 " (in-memory sink)"))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        print(f"report JSON -> {args.json}")
    if args.perfetto:
        from repro.obs.export import to_perfetto_profile, validate_perfetto
        assert stream is not None
        doc = to_perfetto_profile(stream.snapshots, args.perfetto)
        problems = validate_perfetto(doc)
        print(f"perfetto profile tracks ({len(doc['traceEvents'])} events) "
              f"-> {args.perfetto}"
              + (f" [INVALID: {problems[0]}]" if problems else ""))
        if problems:
            return 1
    return 0


__all__ = ["DIR_HANDLER", "ENGINE_DISPATCH", "HOT_SCOPES", "HostProfiler",
           "NOC_TRANSIT", "OTHER", "ProfileReport", "SCHEMA", "SIG_INSERT",
           "SIG_INTERSECT", "SIG_MEMBER", "ScopeStats", "aggregate_profiles",
           "attach_profiler", "main", "make_profiler", "render_share_line"]


if __name__ == "__main__":
    sys.exit(main())
