"""Time-series gauges: bounded ring buffers sampled on-event.

Every gauge series is a fixed-capacity ring of ``(time, value)`` samples;
once full, the oldest sample is overwritten.  Gauges are fed by the
instrumentation bus as events pass through it (there is no polling clock),
so a series' sample density follows the activity it measures: a hot
directory produces a dense occupancy series, an idle one a sparse one.

Series shipped by :class:`~repro.obs.bus.InstrumentationBus`:

================  =====================================================
``noc_inflight``  messages injected but not yet delivered
``sim_queue``     simulator event-queue depth, sampled per event
``dir{N}_cst``    live CST/queue entries at directory module ``N``
``groups_live``   groups formed but not yet fully committed
``nacks_total``   cumulative bulk-invalidation nacks (rate = slope)
================  =====================================================
"""

from __future__ import annotations

from typing import Dict, List, Tuple

DEFAULT_CAPACITY = 4096

Sample = Tuple[int, float]


class RingSeries:
    """One gauge series: a drop-oldest ring of ``(time, value)`` samples."""

    __slots__ = ("name", "capacity", "_buf", "_head", "total_samples")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"gauge capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._buf: List[Sample] = []
        self._head = 0          #: next overwrite slot once the ring is full
        self.total_samples = 0  #: lifetime count, including dropped samples

    def append(self, time: int, value: float) -> None:
        self.total_samples += 1
        if len(self._buf) < self.capacity:
            self._buf.append((time, value))
            return
        self._buf[self._head] = (time, value)
        self._head = (self._head + 1) % self.capacity

    def samples(self) -> List[Sample]:
        """Retained samples in chronological order."""
        return self._buf[self._head:] + self._buf[:self._head]

    @property
    def dropped_samples(self) -> int:
        """Samples lost to ring wrap-around (total seen − retained)."""
        return self.total_samples - len(self._buf)

    #: Back-compat alias; ``dropped_samples`` is the documented name.
    dropped = dropped_samples

    def last(self) -> Sample:
        if not self._buf:
            raise IndexError(f"gauge {self.name} has no samples")
        return self._buf[(self._head - 1) % len(self._buf)]

    def __len__(self) -> int:
        return len(self._buf)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RingSeries({self.name!r}, n={len(self._buf)}, "
                f"dropped={self.dropped})")


class GaugeSet:
    """A named collection of ring-buffer series plus counter helpers."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._series: Dict[str, RingSeries] = {}
        self._counters: Dict[str, float] = {}

    def sample(self, name: str, time: int, value: float) -> None:
        """Record an absolute value for ``name`` at ``time``."""
        series = self._series.get(name)
        if series is None:
            series = RingSeries(name, self.capacity)
            self._series[name] = series
        series.append(time, value)

    def bump(self, name: str, time: int, delta: float) -> float:
        """Adjust a running counter and sample its new value."""
        value = self._counters.get(name, 0.0) + delta
        self._counters[name] = value
        self.sample(name, time, value)
        return value

    def value(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def series(self) -> Dict[str, RingSeries]:
        """All series keyed by name (insertion order = first sample order)."""
        return dict(self._series)

    def get(self, name: str) -> RingSeries:
        return self._series[name]

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def dropped_samples(self) -> Dict[str, int]:
        """Per-series wrap losses, only for series that actually wrapped.

        Empty dict means every sample of every series is retained; a
        non-empty dict is what the exporters surface as a truncation
        warning (no silent caps in exported telemetry).
        """
        return {name: s.dropped_samples
                for name, s in sorted(self._series.items())
                if s.dropped_samples}

    def to_json(self) -> Dict[str, List[List[float]]]:
        """Chronological samples per series, sorted by series name."""
        return {name: [[t, v] for t, v in s.samples()]
                for name, s in sorted(self._series.items())}


__all__ = ["DEFAULT_CAPACITY", "GaugeSet", "RingSeries", "Sample"]
