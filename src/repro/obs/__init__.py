"""Unified observability layer: instrumentation bus, gauges, exporters.

See ``docs/observability.md`` for the hook-point catalog and a Perfetto
walkthrough.  The package replaces the method-wrapping ``ChunkTracer``
(:mod:`repro.tracing`, now a thin compatibility shim) with typed emit
calls built into the simulator, NoC, cores, directory engines and
baseline protocols — all behind a null-sink fast path so an
uninstrumented run is byte-identical to one with no tracing at all.
"""

from repro.obs.bus import (
    NULL_BUS, InstrumentationBus, NullBus, ObsEvent, attach_bus, ctag_str,
)
from repro.obs.critical_path import (
    CommitPath, CriticalPathReport, analyze_commit_paths,
)
from repro.obs.export import (
    to_csv, to_jsonl, to_perfetto, to_perfetto_profile, validate_perfetto,
)
from repro.obs.gauges import GaugeSet, RingSeries
from repro.obs.metrics import (
    CounterMetric, FixedHistogram, MetricsRegistry, MetricsStream,
    validate_metrics_jsonl,
)
from repro.obs.profile import (
    HostProfiler, ProfileReport, aggregate_profiles, attach_profiler,
    make_profiler,
)

__all__ = [
    "NULL_BUS", "NullBus", "InstrumentationBus", "ObsEvent",
    "attach_bus", "ctag_str",
    "CommitPath", "CriticalPathReport", "analyze_commit_paths",
    "to_csv", "to_jsonl", "to_perfetto", "to_perfetto_profile",
    "validate_perfetto",
    "GaugeSet", "RingSeries",
    "CounterMetric", "FixedHistogram", "MetricsRegistry", "MetricsStream",
    "validate_metrics_jsonl",
    "HostProfiler", "ProfileReport", "aggregate_profiles", "attach_profiler",
    "make_profiler",
]
