"""``python -m repro trace``: run one app with full instrumentation.

Runs a single application with an :class:`InstrumentationBus` attached,
writes the recording in the requested format, and prints the commit
critical-path breakdown.  Also provides ``--validate-file`` so CI can
schema-check a previously exported Perfetto trace without re-running.

Examples::

    python -m repro trace Radix --cores 4 --chunks 2 -o radix.json
    python -m repro trace Barnes --format jsonl -o barnes.jsonl
    python -m repro trace --validate-file radix.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.obs.bus import InstrumentationBus
from repro.obs.critical_path import analyze_commit_paths
from repro.obs.export import to_csv, to_jsonl, to_perfetto, validate_perfetto

FORMATS = ("perfetto", "jsonl", "csv")


def write_trace(bus: InstrumentationBus, out: str, fmt: str) -> int:
    """Export ``bus`` to ``out``; returns the exported event count."""
    if fmt == "perfetto":
        doc = to_perfetto(bus, out)
        return len(doc["traceEvents"])
    if fmt == "jsonl":
        return to_jsonl(bus, out)
    if fmt == "csv":
        return to_csv(bus, out)
    raise ValueError(f"unknown trace format {fmt!r}")


def _validate_file(path: str) -> int:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    errors = validate_perfetto(doc)
    if errors:
        for err in errors[:20]:
            print(f"INVALID: {err}", file=sys.stderr)
        print(f"{path}: {len(errors)} schema problems", file=sys.stderr)
        return 1
    n = len(doc.get("traceEvents", []))
    print(f"{path}: OK ({n} trace events)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="run one app with the instrumentation bus attached")
    parser.add_argument("app", nargs="?",
                        help="application profile (see `repro apps`)")
    parser.add_argument("--cores", type=int, default=16)
    parser.add_argument("--protocol", default="scalablebulk")
    parser.add_argument("--chunks", type=int, default=3,
                        help="chunks per partition")
    parser.add_argument("-o", "--out", default="trace.json",
                        help="output path (default trace.json)")
    parser.add_argument("--format", choices=FORMATS, default="perfetto")
    parser.add_argument("--no-messages", action="store_true",
                        help="skip per-message send/recv events "
                             "(smaller traces)")
    parser.add_argument("--paths", type=int, default=10, metavar="N",
                        help="commit attempts to show in the breakdown")
    parser.add_argument("--validate-file", metavar="TRACE",
                        help="schema-check an existing Perfetto trace "
                             "and exit")
    args = parser.parse_args(argv)

    if args.validate_file:
        return _validate_file(args.validate_file)
    if not args.app:
        parser.error("an app is required (or use --validate-file)")

    from repro.config import ProtocolKind
    from repro.harness.runner import run_app

    proto = {p.value.lower(): p for p in ProtocolKind}[args.protocol.lower()]
    bus = InstrumentationBus(record_messages=not args.no_messages)
    result = run_app(args.app, n_cores=args.cores, protocol=proto,
                     chunks_per_partition=args.chunks, bus=bus)

    n = write_trace(bus, args.out, args.format)
    print(f"{args.app} on {args.cores} cores ({proto.value}): "
          f"{result.total_cycles:,} cycles, "
          f"{result.chunks_committed} chunks committed")
    print(f"wrote {n} events to {args.out} ({args.format})")
    if args.format == "perfetto":
        print("open in https://ui.perfetto.dev (one track per core "
              "and per directory)")
    print()
    print(analyze_commit_paths(bus).render(limit=args.paths))
    return 0


if __name__ == "__main__":
    sys.exit(main())
