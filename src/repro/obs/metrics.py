"""Bounded streaming metrics: counters, fixed-bucket histograms, JSONL.

The retained-trace observability path (:mod:`repro.obs.bus` events, gauge
rings) is sized for figure-scale runs; a million-chunk open-loop run would
grow ``bus.events`` without bound.  This module is the long-run path:

* :class:`CounterMetric` — a monotonic counter, O(1) memory;
* :class:`FixedHistogram` — a histogram over *fixed* bucket bounds chosen
  at construction.  Observing a sample updates one bucket plus the
  count/sum/min/max summary; memory never grows with sample count;
* :class:`MetricsRegistry` — a named, bounded collection of both;
* :class:`MetricsStream` — periodic interval snapshots written as JSON
  Lines.  Each snapshot serializes the registry (and, when attached, the
  host profiler's cumulative per-scope numbers) and is then forgotten:
  the stream retains nothing between snapshots unless ``keep=True``
  (used by the ``repro profile`` CLI to build Perfetto tracks).

Nothing in this module reads the host clock: host timestamps always
arrive as arguments from :mod:`repro.obs.profile`, the one module allowed
to call ``time.perf_counter_ns`` (see the SB304 determinism rule).  Sim
time likewise arrives from the caller, so the metrics layer can never
perturb simulation state.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import IO, Any, Dict, List, Optional, Sequence, Tuple, Union

SCHEMA = "repro-metrics-v1"

#: Default bucket bounds for host-throughput rates (cycles/sec per
#: snapshot interval): half-decade steps from 100 to 10M.
RATE_BOUNDS: Tuple[float, ...] = tuple(
    round(10 ** (e / 2)) for e in range(4, 15))


class CounterMetric:
    """A monotonic counter (O(1) memory)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, delta: float = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name}: negative increment {delta}")
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CounterMetric({self.name!r}, value={self.value})"


class FixedHistogram:
    """A histogram with fixed bucket bounds: memory independent of samples.

    ``bounds`` are the strictly-increasing upper bucket edges; a sample
    lands in the first bucket whose edge is >= the value, or in the
    overflow bucket past the last edge.  ``len(bounds) + 1`` bucket
    counts plus a count/sum/min/max summary is all that is ever stored.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError(f"histogram {name}: need at least one bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name}: bounds must be strictly increasing")
        self.name = name
        self.bounds = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        # bucket i holds values in (bounds[i-1], bounds[i]]; the final
        # slot is the overflow bucket for values past the last edge
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FixedHistogram({self.name!r}, n={self.count}, "
                f"buckets={len(self.bucket_counts)})")


class MetricsRegistry:
    """Named counters and fixed histograms; size set by metric names only."""

    def __init__(self) -> None:
        self._counters: Dict[str, CounterMetric] = {}
        self._histograms: Dict[str, FixedHistogram] = {}

    def counter(self, name: str) -> CounterMetric:
        metric = self._counters.get(name)
        if metric is None:
            metric = CounterMetric(name)
            self._counters[name] = metric
        return metric

    def histogram(self, name: str,
                  bounds: Sequence[float] = RATE_BOUNDS) -> FixedHistogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = FixedHistogram(name, bounds)
            self._histograms[name] = metric
        return metric

    def size(self) -> Tuple[int, int]:
        """(counter count, histogram count) — the boundedness witness."""
        return len(self._counters), len(self._histograms)

    def snapshot(self) -> Dict[str, Any]:
        """Serializable current state, deterministic key order."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "histograms": {n: h.to_json()
                           for n, h in sorted(self._histograms.items())},
        }


class MetricsStream:
    """Interval snapshots of a registry, streamed to JSONL.

    Drive it with ``maybe(sim_time, host_ns)`` from a hot path (one
    integer compare when no snapshot is due) and ``close(...)`` at run
    end for the final snapshot.  ``host_ns`` is an absolute monotonic
    nanosecond reading supplied by the caller (normally the host
    profiler); the first reading anchors elapsed time.

    The stream writes and forgets: resident memory does not grow with
    run length.  ``keep=True`` opts into retaining snapshot dicts in
    ``self.snapshots`` for callers that post-process a (small, known)
    number of intervals.
    """

    def __init__(self, sink: Union[str, IO[str]], interval: int, *,
                 registry: Optional[MetricsRegistry] = None,
                 provenance: Optional[Dict[str, Any]] = None,
                 keep: bool = False) -> None:
        if interval <= 0:
            raise ValueError(f"snapshot interval must be positive: {interval}")
        self.interval = int(interval)
        self.next_time = self.interval
        self.registry = registry if registry is not None else MetricsRegistry()
        self.snapshots_written = 0
        self.keep = keep
        self.snapshots: List[Dict[str, Any]] = []
        self._anchor_ns: Optional[int] = None
        self._last_sim = 0
        self._last_ns: Optional[int] = None
        self._owns_fh = isinstance(sink, str)
        self._fh: IO[str] = (open(sink, "w", encoding="utf-8")
                             if isinstance(sink, str) else sink)
        self._closed = False
        header: Dict[str, Any] = {"schema": SCHEMA, "kind": "header",
                                  "interval": self.interval}
        header.update(provenance or {})
        self._write(header)

    # ------------------------------------------------------------------
    def _write(self, doc: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()

    def maybe(self, sim_time: int, host_ns: int,
              profiler: Optional[Any] = None) -> bool:
        """Take a snapshot if ``sim_time`` crossed the next boundary."""
        if sim_time < self.next_time:
            return False
        self.take(sim_time, host_ns, profiler)
        return True

    def take(self, sim_time: int, host_ns: int,
             profiler: Optional[Any] = None) -> Dict[str, Any]:
        """Snapshot now: serialize the registry and stream one JSONL line."""
        if self._anchor_ns is None:
            self._anchor_ns = host_ns
        if self._last_ns is not None:
            delta_cycles = sim_time - self._last_sim
            delta_ns = host_ns - self._last_ns
            if delta_ns > 0:
                self.registry.histogram(
                    "interval_cycles_per_sec", RATE_BOUNDS).observe(
                        delta_cycles * 1e9 / delta_ns)
        doc: Dict[str, Any] = {
            "schema": SCHEMA,
            "kind": "snapshot",
            "seq": self.snapshots_written,
            "sim_time": sim_time,
            "host_elapsed_ns": host_ns - self._anchor_ns,
        }
        doc.update(self.registry.snapshot())
        if profiler is not None:
            doc["profile"] = profiler.scope_json()
        self._write(doc)
        self.snapshots_written += 1
        self._last_sim = sim_time
        self._last_ns = host_ns
        while self.next_time <= sim_time:
            self.next_time += self.interval
        if self.keep:
            self.snapshots.append(doc)
        return doc

    def close(self, sim_time: int, host_ns: int,
              profiler: Optional[Any] = None) -> None:
        """Final snapshot + release the sink (idempotent)."""
        if self._closed:
            return
        self.take(sim_time, host_ns, profiler)
        self._closed = True
        if self._owns_fh:
            self._fh.close()


def validate_metrics_jsonl(lines: Sequence[str]) -> List[str]:
    """Schema-check a streamed metrics document; returns problems."""
    errors: List[str] = []
    if not lines:
        return ["empty document"]
    seq = -1
    for i, line in enumerate(lines):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {i}: not JSON ({exc})")
            continue
        if doc.get("schema") != SCHEMA:
            errors.append(f"line {i}: schema is {doc.get('schema')!r}")
            continue
        kind = doc.get("kind")
        if i == 0:
            if kind != "header":
                errors.append("line 0: expected the header line")
            continue
        if kind != "snapshot":
            errors.append(f"line {i}: bad kind {kind!r}")
            continue
        for key in ("seq", "sim_time", "host_elapsed_ns", "counters",
                    "histograms"):
            if key not in doc:
                errors.append(f"line {i}: missing {key}")
        if doc.get("seq", -1) <= seq:
            errors.append(f"line {i}: seq not increasing")
        seq = doc.get("seq", seq)
    return errors


__all__ = ["SCHEMA", "RATE_BOUNDS", "CounterMetric", "FixedHistogram",
           "MetricsRegistry", "MetricsStream", "validate_metrics_jsonl"]
