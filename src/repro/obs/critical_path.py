"""Commit critical-path analyzer: where did each commit's cycles go?

Reconstructs every commit attempt recorded on an
:class:`~repro.obs.bus.InstrumentationBus` as

    request --> per-hop grab circulation --> group formed --> completion

and attributes latency to each phase (paper Figs. 13-17 are aggregate
views of exactly these phases):

``request``
    commit_request leaving the processor until the first directory module
    admits the group (sets its h bit).  Covers the NoC flight of the
    request plus signature expansion at the first module.
``circulation``
    first admission until the group is formed at the leader — the ``g``
    grab message circulating through the group's directory order.  The
    per-hop breakdown attributes this span to individual modules:
    ``hops[i].dwell`` is the time from the previous admission (or the
    request, for the first hop) to module ``hops[i].dir`` admitting.
``completion``
    group formed until the processor retires the chunk
    (bulk invalidations, acks, commit_success flight).

Attempts that never form a group are classified ``failed`` (collision /
reservation / recall) or ``squashed`` (killed by an invalidation);
attempts still in flight when the run ends are ``unresolved``.  Baseline
protocols (BulkSC / TCC / SEQ) have no grab circulation: their attempts
show an empty hop list and the request phase runs to group formation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.bus import (
    COMMIT_COMPLETE, COMMIT_REQUEST, COMMIT_RETRY, GRAB_ADMIT, GROUP_FAILED,
    GROUP_FORMED, SQUASH, InstrumentationBus, ObsEvent, ctag_str,
)

#: Outcome classification for one commit attempt.
COMMITTED = "committed"
FAILED = "failed"
SQUASHED = "squashed"
UNRESOLVED = "unresolved"


@dataclass
class Hop:
    """One directory module's admission on the grab circulation path."""

    dir_id: int
    admit_time: int
    dwell: int  #: cycles since the previous admission (or the request)

    def to_json(self) -> Dict[str, int]:
        return {"dir": self.dir_id, "admit_time": self.admit_time,
                "dwell": self.dwell}


@dataclass
class CommitPath:
    """The reconstructed critical path of one commit attempt."""

    cid: Any
    core: int
    dirs: List[int]
    request_time: int
    hops: List[Hop] = field(default_factory=list)
    formed_time: Optional[int] = None
    formed_dir: Optional[int] = None     #: leader module (None = agent)
    complete_time: Optional[int] = None
    outcome: str = UNRESOLVED

    # -- phase latencies ------------------------------------------------
    @property
    def request_latency(self) -> Optional[int]:
        if self.hops:
            return self.hops[0].admit_time - self.request_time
        if self.formed_time is not None:
            return self.formed_time - self.request_time
        if self.complete_time is not None:  # trivial commit: no group
            return self.complete_time - self.request_time
        return None

    @property
    def circulation_latency(self) -> Optional[int]:
        if not self.hops or self.formed_time is None:
            return None
        return self.formed_time - self.hops[0].admit_time

    @property
    def completion_latency(self) -> Optional[int]:
        if self.formed_time is None or self.complete_time is None:
            return None
        return self.complete_time - self.formed_time

    @property
    def total_latency(self) -> Optional[int]:
        end = self.complete_time
        if end is None and self.formed_time is not None:
            end = self.formed_time
        return None if end is None else end - self.request_time

    def to_json(self) -> Dict[str, Any]:
        return {
            "cid": ctag_str(self.cid),
            "core": self.core,
            "dirs": self.dirs,
            "outcome": self.outcome,
            "request_time": self.request_time,
            "formed_time": self.formed_time,
            "formed_dir": self.formed_dir,
            "complete_time": self.complete_time,
            "request_latency": self.request_latency,
            "circulation_latency": self.circulation_latency,
            "completion_latency": self.completion_latency,
            "total_latency": self.total_latency,
            "hops": [h.to_json() for h in self.hops],
        }


def _mean(values: List[int]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass
class CriticalPathReport:
    """All commit attempts of a run, with aggregate phase attribution."""

    paths: List[CommitPath]

    def committed(self) -> List[CommitPath]:
        return [p for p in self.paths if p.outcome == COMMITTED]

    def summary(self) -> Dict[str, Any]:
        done = self.committed()
        dwell: Dict[int, List[int]] = {}
        for p in done:
            for hop in p.hops[1:]:  # hop 0's dwell is the request phase
                dwell.setdefault(hop.dir_id, []).append(hop.dwell)
        outcomes: Dict[str, int] = {}
        for p in self.paths:
            outcomes[p.outcome] = outcomes.get(p.outcome, 0) + 1
        return {
            "attempts": len(self.paths),
            "outcomes": outcomes,
            "mean_request": _mean(
                [p.request_latency for p in done
                 if p.request_latency is not None]),
            "mean_circulation": _mean(
                [p.circulation_latency for p in done
                 if p.circulation_latency is not None]),
            "mean_completion": _mean(
                [p.completion_latency for p in done
                 if p.completion_latency is not None]),
            "mean_total": _mean(
                [p.total_latency for p in done
                 if p.total_latency is not None]),
            "mean_hop_dwell_by_dir": {
                f"dir{d}": _mean(v) for d, v in sorted(dwell.items())},
        }

    def to_json(self) -> Dict[str, Any]:
        return {"summary": self.summary(),
                "paths": [p.to_json() for p in self.paths]}

    def render(self, limit: int = 20) -> str:
        """Human-readable per-attempt breakdown plus the aggregate line."""
        s = self.summary()
        lines = [
            f"commit critical path: {s['attempts']} attempts, "
            f"outcomes {s['outcomes']}",
            f"  mean committed latency: request {s['mean_request']:.1f} + "
            f"circulation {s['mean_circulation']:.1f} + "
            f"completion {s['mean_completion']:.1f} "
            f"= {s['mean_total']:.1f} cy",
        ]
        shown = self.paths[:limit]
        for p in shown:
            hops = "".join(
                f" ->d{h.dir_id}(+{h.dwell})" for h in p.hops)
            lines.append(
                f"  {str(ctag_str(p.cid)):16s} core{p.core} {p.outcome:10s} "
                f"t={p.request_time}{hops}"
                + (f" formed@{p.formed_time}" if p.formed_time is not None
                   else "")
                + (f" done@{p.complete_time}"
                   if p.complete_time is not None else ""))
        if len(self.paths) > limit:
            lines.append(f"  ... {len(self.paths) - limit} more attempts "
                         f"(use to_json() for all)")
        return "\n".join(lines)


def analyze_commit_paths(bus: InstrumentationBus) -> CriticalPathReport:
    """Reconstruct every commit attempt recorded on ``bus``."""
    return analyze_events(bus.events)


def analyze_events(events: List[ObsEvent]) -> CriticalPathReport:
    paths: Dict[Any, CommitPath] = {}        # keyed by cid, insertion order
    complete_by_tag: Dict[Any, int] = {}
    squash_by_tag: Dict[Any, int] = {}
    last_attempt: Dict[Any, Any] = {}        # tag -> latest cid seen

    for ev in events:
        if ev.kind == COMMIT_COMPLETE:
            complete_by_tag.setdefault(ev.ctag, ev.time)
        elif ev.kind == SQUASH:
            squash_by_tag.setdefault(ev.ctag, ev.time)

    for ev in events:
        cid = ev.ctag
        if ev.kind == COMMIT_REQUEST:
            if cid not in paths:
                paths[cid] = CommitPath(
                    cid=cid, core=ev.fields["core"],
                    dirs=list(ev.fields["dirs"]), request_time=ev.time)
                if isinstance(cid, tuple):
                    last_attempt[cid[0]] = cid
        elif ev.kind == GRAB_ADMIT:
            path = paths.get(cid)
            if path is not None and path.formed_time is None:
                prev = (path.hops[-1].admit_time if path.hops
                        else path.request_time)
                path.hops.append(Hop(dir_id=ev.fields["dir"],
                                     admit_time=ev.time,
                                     dwell=ev.time - prev))
        elif ev.kind == GROUP_FORMED:
            path = paths.get(cid)
            if path is not None and path.formed_time is None:
                path.formed_time = ev.time
                path.formed_dir = ev.fields["dir"]
        elif ev.kind in (GROUP_FAILED, COMMIT_RETRY):
            path = paths.get(cid)
            if path is not None and path.outcome == UNRESOLVED:
                path.outcome = FAILED

    for cid, path in paths.items():
        tag = cid[0] if isinstance(cid, tuple) else cid
        done = complete_by_tag.get(tag)
        if done is not None and last_attempt.get(tag, cid) == cid:
            path.outcome = COMMITTED
            path.complete_time = done
        elif path.outcome == UNRESOLVED and tag in squash_by_tag:
            path.outcome = SQUASHED

    return CriticalPathReport(paths=list(paths.values()))


__all__ = [
    "COMMITTED", "CommitPath", "CriticalPathReport", "FAILED", "Hop",
    "SQUASHED", "UNRESOLVED", "analyze_commit_paths", "analyze_events",
]
