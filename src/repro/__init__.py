"""ScalableBulk reproduction: scalable cache coherence for atomic blocks.

A cycle-level, discrete-event reproduction of *ScalableBulk: Scalable
Cache Coherence for Atomic Blocks in a Lazy Environment* (Qian, Ahn,
Torrellas — MICRO 2010), including the three baseline protocols the paper
compares against (BulkSC, Scalable TCC, SEQ-PRO) and synthetic workload
models of the 11 SPLASH-2 and 7 PARSEC applications it evaluates.

Quickstart::

    from repro import run_app, ProtocolKind

    result = run_app("Radix", n_cores=16, protocol=ProtocolKind.SCALABLEBULK)
    print(result.breakdown_fractions())
    print(result.mean_commit_latency, result.mean_dirs_per_commit)

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.config import CacheConfig, ProtocolKind, SystemConfig, table2_config
from repro.harness.runner import Machine, RunResult, SimulationRunner, run_app
from repro.signatures import BulkSignature, SignatureFactory
from repro.workloads import (
    APP_PROFILES,
    PARSEC_APPS,
    SPLASH2_APPS,
    AppProfile,
    SyntheticWorkload,
    TraceFileWorkload,
    get_profile,
)

__version__ = "1.0.0"

__all__ = [
    "APP_PROFILES",
    "AppProfile",
    "BulkSignature",
    "CacheConfig",
    "Machine",
    "PARSEC_APPS",
    "ProtocolKind",
    "RunResult",
    "SPLASH2_APPS",
    "SignatureFactory",
    "SimulationRunner",
    "SyntheticWorkload",
    "SystemConfig",
    "TraceFileWorkload",
    "get_profile",
    "run_app",
    "table2_config",
    "__version__",
]
