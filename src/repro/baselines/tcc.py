"""Scalable TCC (Table 3, row 2).

Commit sequence, per Section 2.1 of the paper:

1. the committing processor obtains a transaction ID (TID) from a
   centralized agent;
2. it sends a *probe* to every directory in the chunk's read/write-sets
   and a *skip* to every other directory in the machine (a broadcast);
3. it sends one *mark* per written cache line to that line's home
   directory.

Each directory processes TIDs strictly in ascending order: a probe for TID
t can only be serviced after every TID below t has been probed-or-skipped
there, and while a directory services one commit (invalidations + acks) it
services nothing else.  Two chunks that touch the same directory therefore
serialize even when their addresses are disjoint — the limitation
ScalableBulk removes.

Model simplifications (documented in DESIGN.md): once a processor holds a
TID, an incoming conflicting invalidation still squashes its chunk; probed
directories that have not yet reached the TID treat the abort notice as a
skip, and any directory that already applied the chunk's marks keeps the
(value-free) directory state — a second-order effect for a baseline.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import Chunk, ChunkState
from repro.cpu.core import Core
from repro.memory.directory import DirectoryModule
from repro.network.message import (
    Message, MessageType, arbiter_node, core_node, dir_node,
)
from repro.protocols.base import Protocol, ProcessorEngine
from repro.protocols.spec import ProtocolSpec


class TidVendor:
    """The centralized TID agent: a serial FIFO counter service."""

    def __init__(self, protocol: "ScalableTCCProtocol") -> None:
        self.protocol = protocol
        self.config = protocol.config
        self.sim = protocol.sim
        self.network = protocol.network
        center = self.network.topology.center_tile()
        self.node = arbiter_node(center)
        self.network.register(self.node, self.handle_message)
        self._next_tid = 1
        self._busy_until = 0
        self.grants = 0

    def handle_message(self, msg: Message) -> None:
        if msg.mtype is not MessageType.TID_REQ:
            raise NotImplementedError(f"TID vendor cannot handle {msg.mtype}")
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + self.config.tid_vendor_service_cycles
        proc = msg.payload["proc"]
        cid = msg.ctag
        self.sim.schedule(self._busy_until - self.sim.now,
                          lambda: self._grant(cid, proc))

    def _grant(self, cid, proc: int) -> None:
        tid = self._next_tid
        self._next_tid += 1
        self.grants += 1
        self.network.unicast(MessageType.TID_GRANT, self.node,
                             core_node(proc), ctag=cid, tid=tid)


class TCCDirectory(DirectoryModule):
    """Directory under Scalable TCC: strict in-TID-order commit service."""

    def __init__(self, dir_id: int, config: SystemConfig, sim, network,
                 protocol) -> None:
        super().__init__(dir_id, config, sim, network)
        self.protocol = protocol
        self.expected_tid = 1
        #: tid -> ("probe", info) | ("skip", None); info holds cid/proc/lines
        self.pending: Dict[int, Tuple[str, Optional[dict]]] = {}
        self.marks: Dict[object, List[int]] = {}  #: cid -> written lines here
        self.busy_with: Optional[int] = None      #: tid being serviced
        self._active: Optional[dict] = None
        self._aborted_tids: Set[int] = set()
        self._waiting_for_marks: Optional[dict] = None
        self._service_overhead = 0
        self.commits_serviced = 0

    # ------------------------------------------------------------------
    def read_blocked(self, line_addr: int) -> bool:
        if self._active is None:
            return False
        return line_addr in self._active["lines"]

    def queued_cids(self) -> Set[object]:
        """Probes waiting for their TID's turn (chunk-queue metric)."""
        out = set()
        for tid, (kind, info) in self.pending.items():
            if kind == "probe" and tid != self.busy_with:
                out.add(info["cid"])
        return out

    # ------------------------------------------------------------------
    def handle_protocol_message(self, msg: Message) -> None:
        mtype = msg.mtype
        if mtype is MessageType.TCC_PROBE:
            self._on_probe(msg)
        elif mtype is MessageType.TCC_SKIP:
            self._on_skip(msg)
        elif mtype is MessageType.TCC_MARK:
            self.marks.setdefault(msg.ctag, []).append(msg.payload["line"])
            if (self._waiting_for_marks is not None
                    and self._waiting_for_marks["cid"] == msg.ctag):
                self.busy_with = None
                self._begin_service(self._waiting_for_marks)
        elif mtype is MessageType.TCC_INV_ACK:
            self._on_inv_ack(msg)
        elif mtype is MessageType.TCC_COMMIT_DONE:
            self._on_abort(msg)
        else:
            raise NotImplementedError(f"unexpected {mtype} at TCC dir")

    def _on_probe(self, msg: Message) -> None:
        tid = msg.payload["tid"]
        if tid in self._aborted_tids:
            self.pending[tid] = ("skip", None)
        else:
            info = {"cid": msg.ctag, "proc": msg.payload["proc"], "tid": tid,
                    "n_marks": msg.payload.get("n_marks", 0)}
            self.pending[tid] = ("probe", info)
        if self.obs.enabled:
            self.obs.dir_occupancy(self.sim.now, self.dir_id,
                                   len(self.queued_cids()))
        self._advance()

    def _on_skip(self, msg: Message) -> None:
        self.pending[msg.payload["tid"]] = ("skip", None)
        self._advance()

    def _on_abort(self, msg: Message) -> None:
        """The processor aborted: treat its TID as a skip if still pending."""
        tid = msg.payload["tid"]
        if self.busy_with == tid:
            if (self._waiting_for_marks is not None
                    and self._waiting_for_marks["tid"] == tid):
                # Stalled waiting for marks that will never arrive.
                self._waiting_for_marks = None
                self.busy_with = None
                self._aborted_tids.add(tid)
                self.marks.pop(msg.ctag, None)
                self.expected_tid = tid + 1
                self._advance()
            return  # mid-service; it will complete as normal
        self._aborted_tids.add(tid)
        self.pending[tid] = ("skip", None)
        self.marks.pop(msg.ctag, None)
        self._advance()

    def _advance(self) -> None:
        """Service pending TIDs in order until a probe occupies us."""
        while self.busy_with is None and self.expected_tid in self.pending:
            kind, info = self.pending.pop(self.expected_tid)
            if kind == "skip":
                self.expected_tid += 1
                continue
            self._begin_service(info)

    def _begin_service(self, info: dict) -> None:
        cid = info["cid"]
        expected_marks = info.get("n_marks", 0)
        got = len(self.marks.get(cid, ()))
        if got < expected_marks:
            # Cannot service the commit until every mark message for our
            # lines has arrived; re-check when the next mark lands.
            self.busy_with = info["tid"]
            self._waiting_for_marks = info
            return
        self._waiting_for_marks = None
        self.busy_with = info["tid"]
        proc = info["proc"]
        lines = self.marks.pop(cid, [])
        # Without signatures the directory handles each marked line as a
        # separate write-transaction: look up sharers, invalidate, collect
        # the acks, then move to the next line.  (ScalableBulk's single
        # signature-driven transaction per chunk is exactly what removes
        # this serialization — Section 3.1.)
        self._active = {"cid": cid, "proc": proc, "lines": set(lines),
                        "todo": sorted(lines), "acks_left": 0,
                        "tid": info["tid"]}
        self.protocol.note_processing_started(cid)
        self.sim.schedule(self.config.dir_lookup_cycles,
                          lambda: self._service_next_line(cid))

    def _service_next_line(self, cid) -> None:
        active = self._active
        if active is None or active["cid"] != cid:
            return
        if not active["todo"]:
            self._finish_service()
            return
        line = active["todo"].pop(0)
        proc = active["proc"]
        sharers = self.sharers_to_invalidate([line], proc)
        self.apply_commit([line], proc)
        delay = self.config.dir_line_update_cycles
        if not sharers:
            self.sim.schedule(delay, lambda: self._service_next_line(cid))
            return
        active["acks_left"] = len(sharers)
        for s in sorted(sharers):
            self.network.unicast(
                MessageType.TCC_INV, self.node, core_node(s), ctag=cid,
                write_lines=(line,), committer=proc)

    def _on_inv_ack(self, msg: Message) -> None:
        if self._active is None or self._active["cid"] != msg.ctag:
            return
        self._active["acks_left"] -= 1
        if self._active["acks_left"] <= 0:
            self.sim.schedule(self.config.dir_line_update_cycles,
                              lambda cid=msg.ctag: self._service_next_line(cid))

    def _finish_service(self) -> None:
        active = self._active
        if active is None:
            return
        self._active = None
        self.busy_with = None
        self.expected_tid = active["tid"] + 1
        self.commits_serviced += 1
        if self.obs.enabled:
            self.obs.dir_occupancy(self.sim.now, self.dir_id,
                                   len(self.queued_cids()))
        self.network.unicast(MessageType.TCC_DIR_DONE, self.node,
                             core_node(active["proc"]), ctag=active["cid"],
                             dir_id=self.dir_id)
        self._advance()


class TCCEngine(ProcessorEngine):
    """Processor side of Scalable TCC."""

    def __init__(self, protocol, core: Core) -> None:
        super().__init__(protocol, core)
        self._current_cid = None
        self._current_chunk: Optional[Chunk] = None
        self._tid: Optional[int] = None
        self._dirs_left: Set[int] = set()
        self._first_service_seen = False

    def starts_queued(self) -> bool:
        return False  # phase flips to COMMITTING at first directory service

    def send_commit_request(self, chunk: Chunk) -> None:
        cid = (chunk.tag, chunk.commit_failures)
        self._current_cid = cid
        self._current_chunk = chunk
        self._tid = None
        self._dirs_left = set(chunk.dirs)
        self._first_service_seen = False
        self.network.unicast(MessageType.TID_REQ, self.node,
                             self.protocol.vendor.node, ctag=cid,
                             proc=self.core.core_id)

    def handle_protocol_message(self, msg: Message) -> None:
        mtype = msg.mtype
        if mtype is MessageType.TID_GRANT:
            self._on_grant(msg)
        elif mtype is MessageType.TCC_DIR_DONE:
            self._on_dir_done(msg)
        elif mtype is MessageType.TCC_INV:
            self._on_inv(msg)
        else:
            raise NotImplementedError(f"unexpected {mtype} at TCC proc")

    def _on_grant(self, msg: Message) -> None:
        if msg.ctag != self._current_cid:
            # Grant for an attempt squashed while the TID request was in
            # flight: the TID must still be resolved at every directory or
            # the whole machine stalls behind it.
            self._abort_tid(msg.ctag, msg.payload["tid"], set())
            return
        chunk = self._current_chunk
        if chunk is None or chunk.state is not ChunkState.COMMITTING:
            self._abort_tid(msg.ctag, msg.payload["tid"], set())
            return
        tid = msg.payload["tid"]
        self._tid = tid
        # Probe the participating directories, skip all others (broadcast),
        # and mark every written line at its home.
        participating = set(chunk.dirs)
        marks_by_dir = {}
        for line in sorted(chunk.write_lines):
            home = self.protocol.home_of_line(line, self.core.core_id)
            marks_by_dir.setdefault(home, []).append(line)
        for d in range(self.config.n_directories):
            if d in participating:
                self.network.unicast(MessageType.TCC_PROBE, self.node,
                                     dir_node(d), ctag=msg.ctag, tid=tid,
                                     proc=self.core.core_id,
                                     n_marks=len(marks_by_dir.get(d, ())))
            else:
                self.network.unicast(MessageType.TCC_SKIP, self.node,
                                     dir_node(d), ctag=msg.ctag, tid=tid)
        for home, lines in sorted(marks_by_dir.items()):
            for line in lines:
                self.network.unicast(MessageType.TCC_MARK, self.node,
                                     dir_node(home), ctag=msg.ctag, line=line)

    def note_processing_started(self, cid) -> None:
        """A directory began servicing our probe: the 'group formed' analog."""
        if cid == self._current_cid and not self._first_service_seen:
            self._first_service_seen = True
            if self.obs.enabled:
                chunk = self._current_chunk
                dirs = sorted(chunk.dirs) if chunk is not None else []
                self.obs.group_formed(self.sim.now, None, cid,
                                      self.core.core_id, dirs)
            self.stats.attempt_group_formed(cid)

    def _on_dir_done(self, msg: Message) -> None:
        if msg.ctag != self._current_cid:
            return
        self._dirs_left.discard(msg.payload["dir_id"])
        if not self._dirs_left:
            chunk = self._current_chunk
            self._clear()
            self.finish_commit_success(chunk)

    def _on_inv(self, msg: Message) -> None:
        write_lines: Set[int] = set(msg.payload["write_lines"])
        self.core.apply_invalidation(write_lines)
        victim = self.find_exact_conflict(write_lines)
        if victim is not None:
            if victim is self._current_chunk:
                self._abort_current()
            self.squash(victim, write_lines)
        # The ack returns to the directory that sent the invalidation.
        self.network.unicast(MessageType.TCC_INV_ACK, self.node,
                             msg.src, ctag=msg.ctag)

    def _abort_current(self) -> None:
        """Our committing chunk was violated mid-commit: tell the dirs."""
        cid = self._current_cid
        tid = self._tid
        dirs = set(self._current_chunk.dirs) if self._current_chunk else set()
        self.stats.attempt_finished(cid, success=False)
        self._clear()
        if tid is not None:
            self._abort_tid(cid, tid, dirs)

    def _abort_tid(self, cid, tid: int, dirs: Set[int]) -> None:
        """Convert our probes into skips so directories keep advancing."""
        for d in dirs or range(self.config.n_directories):
            self.network.unicast(MessageType.TCC_COMMIT_DONE, self.node,
                                 dir_node(d), ctag=cid, tid=tid)

    def _clear(self) -> None:
        self._current_cid = None
        self._current_chunk = None
        self._tid = None
        self._dirs_left = set()


class ScalableTCCProtocol(Protocol):
    """Machine-level Scalable TCC wiring."""

    kind = ProtocolKind.TCC

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.vendor: Optional[TidVendor] = None
        self.stats.queue_probe = self._queued_chunks

    def setup_agents(self) -> None:
        self.vendor = TidVendor(self)

    def create_directory(self, dir_id: int) -> TCCDirectory:
        d = TCCDirectory(dir_id, self.config, self.sim, self.network, self)
        self.directories.append(d)
        return d

    def create_engine(self, core: Core) -> TCCEngine:
        e = TCCEngine(self, core)
        self.engines.append(e)
        return e

    def note_processing_started(self, cid) -> None:
        core = getattr(cid[0], "core", None)
        if core is not None and core < len(self.engines):
            self.engines[core].note_processing_started(cid)

    def _queued_chunks(self) -> int:
        """Distinct chunks with a probe waiting at some directory."""
        queued = set()
        for d in self.directories:
            queued |= d.queued_cids()
        return len(queued)


#: Scalable TCC's conversation: a TID from the central vendor totally
#: orders commits; probe/skip/mark drive the per-directory write
#: transactions.  Checked by `repro lint --flows` (SB6xx).
PROTOCOL_SPEC = ProtocolSpec(
    family="tcc",
    edges=(
        ("core", "TID_REQ", "agent"),
        ("agent", "TID_GRANT", "core"),
        ("core", "TCC_PROBE", "dir"),
        ("core", "TCC_SKIP", "dir"),
        ("core", "TCC_MARK", "dir"),
        ("dir", "TCC_INV", "core"),
        ("core", "TCC_INV_ACK", "dir"),
        ("dir", "TCC_DIR_DONE", "core"),
        ("core", "TCC_COMMIT_DONE", "dir"),
    ),
    replies={
        "TID_REQ": ("TID_GRANT",),
        "TCC_PROBE": ("TCC_DIR_DONE",),
        "TCC_INV": ("TCC_INV_ACK",),
    },
)

__all__ = ["PROTOCOL_SPEC", "ScalableTCCProtocol", "TCCDirectory",
           "TCCEngine", "TidVendor"]
