"""SEQ (SEQ-PRO from the SRC paper) — Table 3, row 3.

A committing processor *occupies* the directory modules in its read- and
write-sets strictly in ascending module order: it sends an occupy request
to the lowest module, waits for the grant, then moves to the next.  An
occupied module queues later occupy requests FIFO.  Once every module is
occupied the processor broadcasts a commit order to them; each module
invalidates the sharers of the locally homed written lines, collects acks,
reports done, and frees itself (granting the next queued request).

Properties this reproduces: no TID centralization and no broadcast (an
improvement over Scalable TCC), but sequential occupation latency
proportional to the group size, and — the key limitation ScalableBulk
removes — full serialization of any two chunks that touch the same
directory module, address-disjoint or not.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import Chunk, ChunkState
from repro.cpu.core import Core
from repro.memory.directory import DirectoryModule
from repro.network.message import Message, MessageType, core_node, dir_node
from repro.protocols.base import Protocol, ProcessorEngine
from repro.protocols.spec import ProtocolSpec


class SeqDirectory(DirectoryModule):
    """Directory under SEQ: a single-occupant lock with a FIFO queue."""

    def __init__(self, dir_id: int, config: SystemConfig, sim, network,
                 protocol) -> None:
        super().__init__(dir_id, config, sim, network)
        self.protocol = protocol
        self.occupant: Optional[object] = None      #: cid holding the module
        self.occupant_proc: int = -1
        self.queue: Deque[Tuple[object, int]] = deque()  #: (cid, proc) waiting
        self._active: Optional[dict] = None          #: invalidation in progress
        self.occupations = 0

    # ------------------------------------------------------------------
    def read_blocked(self, line_addr: int) -> bool:
        return (self._active is not None
                and line_addr in self._active["lines"])

    def queued_cids(self) -> Set[object]:
        return {cid for cid, _proc in self.queue}

    # ------------------------------------------------------------------
    def handle_protocol_message(self, msg: Message) -> None:
        mtype = msg.mtype
        if mtype is MessageType.SEQ_OCCUPY:
            self._on_occupy(msg)
        elif mtype is MessageType.SEQ_COMMIT:
            self._on_commit(msg)
        elif mtype is MessageType.SEQ_INV_ACK:
            self._on_inv_ack(msg)
        elif mtype is MessageType.SEQ_RELEASE:
            self._on_release(msg)
        else:
            raise NotImplementedError(f"unexpected {mtype} at SEQ dir")

    def _on_occupy(self, msg: Message) -> None:
        cid = msg.ctag
        proc = msg.payload["proc"]
        if self.occupant is None:
            self._grant(cid, proc)
        else:
            self.queue.append((cid, proc))
        if self.obs.enabled:
            self.obs.dir_occupancy(self.sim.now, self.dir_id,
                                   len(self.queue) + 1)

    def _grant(self, cid, proc: int) -> None:
        self.occupant = cid
        self.occupant_proc = proc
        self.occupations += 1
        self.sim.schedule(self.config.dir_lookup_cycles,
                          lambda: self.network.unicast(
                              MessageType.SEQ_GRANT, self.node,
                              core_node(proc), ctag=cid, dir_id=self.dir_id))

    def _on_commit(self, msg: Message) -> None:
        if msg.ctag != self.occupant:
            return  # stale commit order for an attempt we no longer hold
        write_lines = msg.payload["write_lines"]
        proc = self.occupant_proc
        local = [l for l in write_lines if self._homed_here(l)]
        # Like Scalable TCC, SEQ has no signatures: the occupied module
        # services each written line as its own write-transaction.
        self._active = {"cid": msg.ctag, "proc": proc, "lines": set(local),
                        "todo": sorted(local), "acks_left": 0}
        self.sim.schedule(self.config.dir_lookup_cycles,
                          lambda: self._service_next_line(msg.ctag))

    def _service_next_line(self, cid) -> None:
        active = self._active
        if active is None or active["cid"] != cid:
            return
        if not active["todo"]:
            self._finish()
            return
        line = active["todo"].pop(0)
        proc = active["proc"]
        sharers = self.sharers_to_invalidate([line], proc)
        self.apply_commit([line], proc)
        delay = self.config.dir_line_update_cycles
        if not sharers:
            self.sim.schedule(delay, lambda: self._service_next_line(cid))
            return
        active["acks_left"] = len(sharers)
        for s in sorted(sharers):
            self.network.unicast(MessageType.SEQ_INV, self.node,
                                 core_node(s), ctag=cid, write_lines=(line,))

    def _homed_here(self, line_addr: int) -> bool:
        page = line_addr * self.config.line_bytes // self.config.page_bytes
        return self.protocol.page_mapper.lookup(page) == self.dir_id

    def _on_inv_ack(self, msg: Message) -> None:
        if self._active is None or self._active["cid"] != msg.ctag:
            return
        self._active["acks_left"] -= 1
        if self._active["acks_left"] <= 0:
            self.sim.schedule(self.config.dir_line_update_cycles,
                              lambda cid=msg.ctag: self._service_next_line(cid))

    def _finish(self) -> None:
        active = self._active
        self._active = None
        self.network.unicast(MessageType.SEQ_DONE, self.node,
                             core_node(self.occupant_proc),
                             ctag=active["cid"], dir_id=self.dir_id)
        self._free()

    def _on_release(self, msg: Message) -> None:
        """Abort: the occupant (or a queued requester) gives up."""
        if msg.ctag == self.occupant:
            self._active = None
            self._free()
        else:
            self.queue = deque((c, p) for c, p in self.queue if c != msg.ctag)

    def _free(self) -> None:
        self.occupant = None
        self.occupant_proc = -1
        if self.queue:
            cid, proc = self.queue.popleft()
            self._grant(cid, proc)
        if self.obs.enabled:
            self.obs.dir_occupancy(
                self.sim.now, self.dir_id,
                len(self.queue) + (1 if self.occupant is not None else 0))


class SeqEngine(ProcessorEngine):
    """Processor side of SEQ-PRO: sequential occupation, then commit."""

    def __init__(self, protocol, core: Core) -> None:
        super().__init__(protocol, core)
        self._current_cid = None
        self._current_chunk: Optional[Chunk] = None
        self._order: Tuple[int, ...] = ()
        self._granted: List[int] = []
        self._done_left: Set[int] = set()

    def starts_queued(self) -> bool:
        return False

    def send_commit_request(self, chunk: Chunk) -> None:
        cid = (chunk.tag, chunk.commit_failures)
        self._current_cid = cid
        self._current_chunk = chunk
        self._order = tuple(sorted(chunk.dirs))
        self._granted = []
        self._done_left = set(self._order)
        self._occupy_next()

    def _occupy_next(self) -> None:
        nxt = self._order[len(self._granted)]
        self.network.unicast(MessageType.SEQ_OCCUPY, self.node, dir_node(nxt),
                             ctag=self._current_cid, proc=self.core.core_id)

    def handle_protocol_message(self, msg: Message) -> None:
        mtype = msg.mtype
        if mtype is MessageType.SEQ_GRANT:
            self._on_grant(msg)
        elif mtype is MessageType.SEQ_DONE:
            self._on_done(msg)
        elif mtype is MessageType.SEQ_INV:
            self._on_inv(msg)
        else:
            raise NotImplementedError(f"unexpected {mtype} at SEQ proc")

    def _on_grant(self, msg: Message) -> None:
        if msg.ctag != self._current_cid:
            # Grant for an aborted attempt: free the module immediately.
            self.network.unicast(MessageType.SEQ_RELEASE, self.node,
                                 msg.src, ctag=msg.ctag)
            return
        self._granted.append(msg.payload["dir_id"])
        if len(self._granted) < len(self._order):
            self._occupy_next()
            return
        # Everything occupied: the SEQ analog of "group formed".
        if self.obs.enabled:
            self.obs.group_formed(self.sim.now, None, msg.ctag,
                                  self.core.core_id, self._order)
        self.stats.attempt_group_formed(msg.ctag)
        chunk = self._current_chunk
        write_lines = frozenset(chunk.write_lines)
        for d in self._order:
            self.network.unicast(MessageType.SEQ_COMMIT, self.node,
                                 dir_node(d), ctag=msg.ctag,
                                 write_lines=write_lines)

    def _on_done(self, msg: Message) -> None:
        if msg.ctag != self._current_cid:
            return
        self._done_left.discard(msg.payload["dir_id"])
        if not self._done_left:
            chunk = self._current_chunk
            self._clear()
            self.finish_commit_success(chunk)

    def _on_inv(self, msg: Message) -> None:
        write_lines: Set[int] = set(msg.payload["write_lines"])
        self.core.apply_invalidation(write_lines)
        victim = self.find_exact_conflict(write_lines)
        if victim is not None:
            if victim is self._current_chunk:
                self._abort_current()
            self.squash(victim, write_lines)
        self.network.unicast(MessageType.SEQ_INV_ACK, self.node, msg.src,
                             ctag=msg.ctag)

    def _abort_current(self) -> None:
        """Mid-occupation squash: release every module we hold or asked for."""
        cid = self._current_cid
        self.stats.attempt_finished(cid, success=False)
        touched = set(self._granted)
        if len(self._granted) < len(self._order):
            touched.add(self._order[len(self._granted)])  # occupy in flight
        for d in sorted(touched):
            self.network.unicast(MessageType.SEQ_RELEASE, self.node,
                                 dir_node(d), ctag=cid)
        self._clear()

    def _clear(self) -> None:
        self._current_cid = None
        self._current_chunk = None
        self._order = ()
        self._granted = []
        self._done_left = set()


class SeqProtocol(Protocol):
    """Machine-level SEQ-PRO wiring."""

    kind = ProtocolKind.SEQ

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stats.queue_probe = self._queued_chunks

    def create_directory(self, dir_id: int) -> SeqDirectory:
        d = SeqDirectory(dir_id, self.config, self.sim, self.network, self)
        self.directories.append(d)
        return d

    def create_engine(self, core: Core) -> SeqEngine:
        e = SeqEngine(self, core)
        self.engines.append(e)
        return e

    def _queued_chunks(self) -> int:
        queued = set()
        for d in self.directories:
            queued |= d.queued_cids()
        return len(queued)


#: SEQ-PRO's conversation: occupy the written modules one by one in
#: ascending order, then commit; RELEASE frees modules on abort or on a
#: stale grant.  Checked by `repro lint --flows` (SB6xx).
PROTOCOL_SPEC = ProtocolSpec(
    family="seq",
    edges=(
        ("core", "SEQ_OCCUPY", "dir"),
        ("dir", "SEQ_GRANT", "core"),
        ("core", "SEQ_COMMIT", "dir"),
        ("dir", "SEQ_INV", "core"),
        ("core", "SEQ_INV_ACK", "dir"),
        ("dir", "SEQ_DONE", "core"),
        ("core", "SEQ_RELEASE", "dir"),
    ),
    replies={
        "SEQ_OCCUPY": ("SEQ_GRANT",),
        "SEQ_COMMIT": ("SEQ_DONE",),
        "SEQ_INV": ("SEQ_INV_ACK",),
    },
)

__all__ = ["PROTOCOL_SPEC", "SeqDirectory", "SeqEngine", "SeqProtocol"]
