"""The three baseline commit protocols of Table 3.

* :mod:`repro.baselines.bulksc` — BulkSC [Ceze et al., ISCA'07]: a single
  arbiter in the centre of the chip grants commit permission using
  signature checks.  Scales poorly: every commit crosses the centre and
  queues at one agent.
* :mod:`repro.baselines.tcc` — Scalable TCC [Chafi et al., HPCA'07]: a
  central TID vendor orders commits; the committing processor probes its
  directories, *skips* every other directory (broadcast), and *marks*
  every written line.  Directories process TIDs strictly in order, so
  same-directory commits serialize even when address-disjoint.
* :mod:`repro.baselines.seq` — SEQ-PRO from SRC [Pugsley et al., PACT'08]:
  the committing processor occupies its directories one by one in
  ascending order; an occupied directory queues later requests, again
  serializing address-disjoint commits that share a module.
"""

from repro.baselines.bulksc import BulkSCProtocol
from repro.baselines.tcc import ScalableTCCProtocol
from repro.baselines.seq import SeqProtocol

__all__ = ["BulkSCProtocol", "ScalableTCCProtocol", "SeqProtocol"]
