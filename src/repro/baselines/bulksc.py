"""BulkSC: centralized-arbiter chunk commit (Table 3, row 4).

The arbiter sits at the centre tile.  A committing processor sends its
(R, W) signature pair there; the arbiter serially checks them against all
in-flight committing W signatures.  Disjoint -> OK (the processor treats
the chunk as committed, per BulkSC's arbiter-ordered semantics) and the
arbiter pushes W to the relevant directories, which invalidate sharers and
report back; overlapping -> NACK, the processor backs off and retries.

While a processor waits for its OK/NACK it nacks incoming bulk
invalidations (the conservative behaviour ScalableBulk's OCI removes,
Section 3.3).

The scalability pathologies this reproduces: a single service point whose
queue explodes with core count, and commit traffic funnelling through the
centre links of the torus.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import Chunk, ChunkState
from repro.cpu.core import Core
from repro.memory.directory import DirectoryModule
from repro.network.message import (
    Message, MessageType, arbiter_node, core_node, dir_node,
)
from repro.obs.bus import NULL_BUS, NullBus
from repro.protocols.base import Protocol, ProcessorEngine
from repro.protocols.spec import ProtocolSpec


class _InFlight:
    """One granted commit being applied at the directories."""

    __slots__ = ("cid", "proc", "w_sig", "r_sig", "write_lines",
                 "dirs_pending")

    def __init__(self, cid, proc, w_sig, r_sig, write_lines,
                 dirs_pending) -> None:
        self.cid = cid
        self.proc = proc
        self.w_sig = w_sig
        self.r_sig = r_sig
        self.write_lines = write_lines
        self.dirs_pending = dirs_pending


def _in_flight_scan_key(entry: _InFlight):
    """Total order for conflict scans: chunk tag then retry attempt —
    independent of dict insertion order."""
    tag = entry.cid[0]
    return (tag.core, tag.seq, tag.gen, entry.cid[1])


class BulkSCArbiter:
    """The central commit arbiter: a single FIFO service point."""

    def __init__(self, protocol: "BulkSCProtocol") -> None:
        self.protocol = protocol
        self.config = protocol.config
        self.sim = protocol.sim
        self.network = protocol.network
        center = self.network.topology.center_tile()
        self.node = arbiter_node(center)
        self.network.register(self.node, self.handle_message)
        self.in_flight: Dict[object, _InFlight] = {}
        self._busy_until = 0
        self.requests = 0
        self.nacks = 0
        self.obs: NullBus = NULL_BUS  #: instrumentation sink (repro.obs)

    def handle_message(self, msg: Message) -> None:
        if msg.mtype is MessageType.BSC_COMMIT_REQ:
            self._enqueue_request(msg)
        elif msg.mtype is MessageType.BSC_DIR_DONE:
            self._on_dir_done(msg)
        else:
            raise NotImplementedError(f"arbiter cannot handle {msg.mtype}")

    def _enqueue_request(self, msg: Message) -> None:
        """Serial service: each decision costs base + per-in-flight check."""
        self.requests += 1
        service = (self.config.arbiter_base_service_cycles
                   + self.config.arbiter_per_chunk_cycles * len(self.in_flight))
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + service
        self.sim.schedule(self._busy_until - self.sim.now,
                          lambda: self._decide(msg))

    def _decide(self, msg: Message) -> None:
        cid = msg.ctag
        proc = msg.payload["proc"]
        w_sig = msg.payload["w_sig"]
        r_sig = msg.payload["r_sig"]
        write_lines = msg.payload["write_lines"]
        for other in sorted(self.in_flight.values(), key=_in_flight_scan_key):
            if self._conflicts(w_sig, r_sig, write_lines, other):
                self.nacks += 1
                if self.obs.enabled:
                    self.obs.arbiter_decision(self.sim.now, cid, False,
                                              len(self.in_flight))
                self.network.unicast(MessageType.BSC_NACK, self.node,
                                     core_node(proc), ctag=cid)
                return
        if self.obs.enabled:
            self.obs.arbiter_decision(self.sim.now, cid, True,
                                      len(self.in_flight))
        dirs = msg.payload["dirs"]
        self.in_flight[cid] = _InFlight(cid, proc, w_sig, r_sig, write_lines,
                                        set(dirs))
        self.network.unicast(MessageType.BSC_OK, self.node,
                             core_node(proc), ctag=cid)
        if not dirs:
            del self.in_flight[cid]
            return
        for d in dirs:
            self.network.unicast(
                MessageType.BSC_W_TO_DIR, self.node, dir_node(d), ctag=cid,
                proc=proc, w_sig=w_sig,
                write_lines=msg.payload["write_lines"])

    @staticmethod
    def _conflicts(w_sig, r_sig, write_lines, other: _InFlight) -> bool:
        """Signature-based overlap check, per expanded line (as in Bulk)."""
        for line in write_lines:
            if other.w_sig.contains(line) or other.r_sig.contains(line):
                return True
        for line in other.write_lines:
            if r_sig.contains(line) or w_sig.contains(line):
                return True
        return False

    def _on_dir_done(self, msg: Message) -> None:
        """Final-ack bookkeeping occupies the serial service port too.

        The arbiter is a single FIFO pipeline: retiring a directory ack
        contends with commit decisions for the same port (base cost only —
        no signature scan is needed to retire an ack), so a commit-heavy
        phase also slows ack retirement.  Retiring in zero time would let
        the entry vanish "for free" while a decision is mid-service.
        """
        if msg.ctag not in self.in_flight:
            return
        service = self.config.arbiter_base_service_cycles
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + service
        self.sim.schedule(
            self._busy_until - self.sim.now,
            lambda: self._retire(msg.ctag, msg.payload["dir_id"]))

    def _retire(self, cid, dir_id: int) -> None:
        entry = self.in_flight.get(cid)
        if entry is None:
            return
        entry.dirs_pending.discard(dir_id)
        if not entry.dirs_pending:
            del self.in_flight[cid]


class BulkSCDirectory(DirectoryModule):
    """Directory role under BulkSC: apply granted W sets, invalidate sharers."""

    def __init__(self, dir_id: int, config: SystemConfig, sim, network,
                 protocol) -> None:
        super().__init__(dir_id, config, sim, network)
        self.protocol = protocol
        #: cid -> {w_sig, lines, proc, acks_left, payload}
        self.applying: Dict[object, dict] = {}

    def read_blocked(self, line_addr: int) -> bool:
        return any(st["w_sig"].contains(line_addr)
                   for st in self.applying.values())

    def handle_protocol_message(self, msg: Message) -> None:
        if msg.mtype is MessageType.BSC_W_TO_DIR:
            self._on_w(msg)
        elif msg.mtype is MessageType.BULK_INV_ACK:
            self._on_ack(msg)
        elif msg.mtype is MessageType.BULK_INV_NACK:
            self._on_inv_nack(msg)
        else:
            raise NotImplementedError(f"unexpected {msg.mtype} at BulkSC dir")

    def _on_w(self, msg: Message) -> None:
        cid = msg.ctag
        proc = msg.payload["proc"]
        w_sig = msg.payload["w_sig"]
        write_lines = msg.payload["write_lines"]
        local = [l for l in write_lines if self._homed_here(l)]
        sharers = self.sharers_to_invalidate(local, proc)
        self.apply_commit(local, proc)
        payload = {
            "w_sig": w_sig, "write_lines": write_lines,
            "winner_order": (), "leader": self.dir_id,
        }
        state = {"w_sig": w_sig, "proc": proc, "acks_left": len(sharers),
                 "payload": payload}
        self.applying[cid] = state
        if not sharers:
            self.sim.schedule(self.config.dir_lookup_cycles,
                              lambda: self._done(cid))
            return
        for s in sorted(sharers):
            self.network.unicast(MessageType.BULK_INV, self.node,
                                 core_node(s), ctag=cid, **payload)

    def _homed_here(self, line_addr: int) -> bool:
        page = line_addr * self.config.line_bytes // self.config.page_bytes
        return self.protocol.page_mapper.lookup(page) == self.dir_id

    def _on_ack(self, msg: Message) -> None:
        state = self.applying.get(msg.ctag)
        if state is None:
            return
        state["acks_left"] -= 1
        if state["acks_left"] <= 0:
            self._done(msg.ctag)

    def _on_inv_nack(self, msg: Message) -> None:
        state = self.applying.get(msg.ctag)
        if state is None:
            return
        self.protocol.stats.bulk_inv_nacks += 1
        proc = msg.payload["proc"]
        # jittered retry: a fixed period can phase-lock with the nacking
        # processor's own retry loop and never land in its open window
        state["nack_retries"] = state.get("nack_retries", 0) + 1
        base = self.config.nack_retry_backoff_cycles
        jitter = (state["nack_retries"] * 11 + self.dir_id * 5) % (2 * base)
        self.sim.schedule(base + jitter,
                          lambda: self._resend(msg.ctag, proc))

    def _resend(self, cid, proc: int) -> None:
        state = self.applying.get(cid)
        if state is None:
            return
        self.network.unicast(MessageType.BULK_INV, self.node,
                             core_node(proc), ctag=cid, **state["payload"])

    def _done(self, cid) -> None:
        if self.applying.pop(cid, None) is None:
            return
        self.network.unicast(MessageType.BSC_DIR_DONE, self.node,
                             self.protocol.arbiter.node, ctag=cid,
                             dir_id=self.dir_id)


class BulkSCEngine(ProcessorEngine):
    """Processor side of BulkSC."""

    def __init__(self, protocol, core: Core) -> None:
        super().__init__(protocol, core)
        self._current_cid = None
        self._current_chunk: Optional[Chunk] = None

    @property
    def awaiting_outcome(self) -> bool:
        return self._current_cid is not None

    def send_commit_request(self, chunk: Chunk) -> None:
        cid = (chunk.tag, chunk.commit_failures)
        self._current_cid = cid
        self._current_chunk = chunk
        self.network.unicast(
            MessageType.BSC_COMMIT_REQ, self.node, self.protocol.arbiter.node,
            ctag=cid, proc=self.core.core_id, r_sig=chunk.r_sig,
            w_sig=chunk.w_sig, dirs=tuple(sorted(chunk.dirs)),
            write_lines=frozenset(chunk.write_lines),
        )

    def handle_protocol_message(self, msg: Message) -> None:
        if msg.mtype is MessageType.BSC_OK:
            self._on_ok(msg)
        elif msg.mtype is MessageType.BSC_NACK:
            self._on_nack(msg)
        elif msg.mtype is MessageType.BULK_INV:
            self._on_bulk_inv(msg)
        else:
            raise NotImplementedError(f"unexpected {msg.mtype} at BulkSC proc")

    def _on_ok(self, msg: Message) -> None:
        if msg.ctag != self._current_cid:
            return
        chunk = self._current_chunk
        self._current_cid = None
        self._current_chunk = None
        # BulkSC semantics: the arbiter's OK orders the chunk; the
        # invalidations complete in the background.
        if self.obs.enabled:
            self.obs.group_formed(self.sim.now, None, msg.ctag,
                                  self.core.core_id, sorted(chunk.dirs))
        self.stats.attempt_group_formed(msg.ctag)
        self.finish_commit_success(chunk)

    def _on_nack(self, msg: Message) -> None:
        if msg.ctag != self._current_cid:
            return
        chunk = self._current_chunk
        self._current_cid = None
        self._current_chunk = None
        if chunk.state is ChunkState.COMMITTING:
            self.retry_commit_later(chunk)

    def _on_bulk_inv(self, msg: Message) -> None:
        leader = msg.payload["leader"]
        if self.awaiting_outcome:
            # Conservative: nack everything while our request is pending.
            self.network.unicast(
                MessageType.BULK_INV_NACK, self.node, dir_node(leader),
                ctag=msg.ctag, proc=self.core.core_id)
            return
        write_lines: Set[int] = set(msg.payload["write_lines"])
        self.core.apply_invalidation(write_lines)
        victim = self.find_inv_conflict(write_lines)
        if victim is not None:
            self.squash(victim, write_lines)
        self.network.unicast(MessageType.BULK_INV_ACK, self.node,
                             dir_node(leader), ctag=msg.ctag)


class BulkSCProtocol(Protocol):
    """Machine-level BulkSC wiring: one arbiter, plain directories."""

    kind = ProtocolKind.BULKSC

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.arbiter: Optional[BulkSCArbiter] = None

    def setup_agents(self) -> None:
        self.arbiter = BulkSCArbiter(self)

    def create_directory(self, dir_id: int) -> BulkSCDirectory:
        d = BulkSCDirectory(dir_id, self.config, self.sim, self.network, self)
        self.directories.append(d)
        return d

    def create_engine(self, core: Core) -> BulkSCEngine:
        e = BulkSCEngine(self, core)
        self.engines.append(e)
        return e


#: BulkSC's conversation: every commit permission flows through the
#: central arbiter; invalidation traffic reuses the shared BULK_INV
#: sub-conversation.  Checked by `repro lint --flows` (SB6xx).
PROTOCOL_SPEC = ProtocolSpec(
    family="bulksc",
    edges=(
        ("core", "BSC_COMMIT_REQ", "agent"),
        ("agent", "BSC_OK", "core"),
        ("agent", "BSC_NACK", "core"),
        ("agent", "BSC_W_TO_DIR", "dir"),
        ("dir", "BSC_DIR_DONE", "agent"),
        ("dir", "BULK_INV", "core"),
        ("core", "BULK_INV_ACK", "dir"),
        ("core", "BULK_INV_NACK", "dir"),
    ),
    replies={
        "BSC_COMMIT_REQ": ("BSC_OK", "BSC_NACK"),
        "BSC_W_TO_DIR": ("BSC_DIR_DONE",),
        "BULK_INV": ("BULK_INV_ACK", "BULK_INV_NACK"),
    },
    retries=("BSC_NACK", "BULK_INV_NACK"),
)

__all__ = ["BulkSCArbiter", "BulkSCDirectory", "BulkSCEngine",
           "BulkSCProtocol", "PROTOCOL_SPEC"]
