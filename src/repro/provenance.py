"""Result provenance: git revision and configuration fingerprints.

Every exported result document (``BENCH_*.json``, profile reports,
streaming-metrics snapshots, sweep cache records) is keyed by *where the
code was* and *what machine was simulated* when it was produced, so the
future result-store/dashboard work can join documents across time:

* :func:`git_rev` — the short commit hash of the working tree that
  produced the run (``None`` outside a git checkout; never raises);
* :func:`config_hash` — a stable content hash over every field of a
  :class:`~repro.config.SystemConfig`, including nested cache geometry
  and the protocol kind.  Two configs hash equal iff every architectural
  parameter matches, so a record's hash pins the exact simulated machine.

Both are additive schema fields: readers of the existing ``repro-bench-v1``
and sweep-cache documents ignore unknown keys.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
from pathlib import Path
from typing import Any, Optional

from repro.config import SystemConfig


#: per-process memo for :func:`git_rev`, keyed by the resolved cwd.  At
#: campaign scale every sweep cell stamps provenance; without the memo
#: each cell would spawn its own ``git rev-parse`` subprocess.
_GIT_REV_CACHE: dict = {}


def git_rev(cwd: Optional[Path] = None) -> Optional[str]:
    """Short git revision of ``cwd`` (default: this package's checkout).

    Returns ``None`` when git is unavailable or the tree is not a
    repository — provenance is best-effort and must never fail a run.
    The answer is memoized per process (the working tree's HEAD cannot
    move under a run we are stamping), so only the first call pays the
    subprocess.
    """
    if cwd is None:
        cwd = Path(__file__).resolve().parent
    if cwd in _GIT_REV_CACHE:
        return _GIT_REV_CACHE[cwd]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        _GIT_REV_CACHE[cwd] = None
        return None
    rev = out.stdout.strip()
    result = rev if out.returncode == 0 and rev else None
    _GIT_REV_CACHE[cwd] = result
    return result


def _jsonable(value: Any) -> Any:
    """Canonical JSON form for config field values (enums by value)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if hasattr(value, "value") and not isinstance(value, (int, float, str)):
        return value.value  # Enum members (ProtocolKind)
    return value


def config_hash(config: SystemConfig) -> str:
    """Stable 12-hex-digit fingerprint of a full machine configuration.

    Hashes the canonical JSON of every dataclass field (nested cache
    configs included), so any architectural change — protocol, core
    count, latencies, signature geometry, seed — yields a new hash while
    re-running the same config reproduces the old one.
    """
    doc = _jsonable(config)
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


def provenance(config: Optional[SystemConfig] = None) -> dict:
    """The standard additive provenance fields for a result document."""
    out: dict = {"git_rev": git_rev()}
    if config is not None:
        out["config_hash"] = config_hash(config)
    return out


__all__ = ["config_hash", "git_rev", "provenance"]
