"""Structured event tracing for debugging protocol behaviour.

Attach a :class:`ChunkTracer` to a machine before running and every
chunk-level event (execution start/finish, commit request/outcome, squash,
group formation at directories) is recorded as a typed event with a
timestamp.  The trace can be filtered, rendered as a per-chunk timeline,
or dumped as JSON Lines for external tooling.

Tracing works by wrapping the relevant methods; it never changes protocol
behaviour or timing (wall-clock aside).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.cpu.chunk import Chunk, ChunkState


@dataclass
class TraceEvent:
    """One recorded event."""

    time: int
    kind: str          #: exec_start | exec_done | commit_request |
                       #: commit_success | commit_failure | squash |
                       #: group_formed | group_failed
    core: int
    tag: str
    detail: str = ""

    def to_json(self) -> str:
        return json.dumps(asdict(self))


class ChunkTracer:
    """Records the lifecycle of every chunk on a machine."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.events: List[TraceEvent] = []
        for core in machine.cores:
            self._wrap_core(core)
        for directory in machine.directories:
            self._wrap_directory(directory)

    # ------------------------------------------------------------------
    def _emit(self, kind: str, core: int, tag, detail: str = "") -> None:
        self.events.append(TraceEvent(
            time=self.machine.sim.now, kind=kind, core=core,
            tag=str(tag), detail=detail))

    def _wrap_core(self, core) -> None:
        orig_burst = core._run_burst

        def traced_burst():
            ctx = core._exec
            if ctx is not None and ctx.idx == 0:
                self._emit("exec_start", core.core_id, ctx.chunk.tag)
            orig_burst()

        core._run_burst = traced_burst

        orig_complete = core._exec_complete

        def traced_complete(epoch):
            ctx = core._exec
            live = ctx is not None and ctx.epoch == epoch
            tag = ctx.chunk.tag if live else None
            orig_complete(epoch)
            if live:
                self._emit("exec_done", core.core_id, tag)

        core._exec_complete = traced_complete

        orig_success = core.on_commit_success

        def traced_success(chunk):
            self._emit("commit_success", core.core_id, chunk.tag)
            orig_success(chunk)

        core.on_commit_success = traced_success

        orig_squash = core.squash_from

        def traced_squash(chunk, *, true_conflict):
            victims = orig_squash(chunk, true_conflict=true_conflict)
            for v in victims:
                self._emit("squash", core.core_id, v.tag,
                           "conflict" if true_conflict else "alias")
            return victims

        core.squash_from = traced_squash

        engine = core.engine
        if engine is not None:
            orig_request = engine.request_commit

            def traced_request(chunk):
                self._emit("commit_request", core.core_id, chunk.tag,
                           f"dirs={sorted(chunk.dirs)}")
                orig_request(chunk)

            engine.request_commit = traced_request

    def _wrap_directory(self, directory) -> None:
        confirm = getattr(directory, "_confirm_group", None)
        if confirm is not None:
            def traced_confirm(entry, _orig=confirm, _dir=directory):
                self._emit("group_formed", entry.proc, entry.cid[0],
                           f"leader=dir{_dir.dir_id} order={entry.order}")
                _orig(entry)

            directory._confirm_group = traced_confirm
        fail = getattr(directory, "_fail_group", None)
        if fail is not None:
            def traced_fail(entry, genuine=True, _orig=fail, _dir=directory):
                self._emit("group_failed", entry.proc, entry.cid[0],
                           f"collision=dir{_dir.dir_id}")
                _orig(entry, genuine)

            directory._fail_group = traced_fail

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def for_tag(self, tag) -> List[TraceEvent]:
        return [e for e in self.events if e.tag == str(tag)]

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind in kinds]

    def timeline(self, tag) -> str:
        """Readable per-chunk timeline."""
        lines = [f"timeline for {tag}:"]
        for e in self.for_tag(tag):
            lines.append(f"  t={e.time:>8d} {e.kind:15s} {e.detail}")
        return "\n".join(lines)

    def dump_jsonl(self, path) -> int:
        """Write all events as JSON Lines; returns the event count."""
        with open(path, "w") as fh:
            for e in self.events:
                fh.write(e.to_json() + "\n")
        return len(self.events)

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


def attach_tracer(machine) -> ChunkTracer:
    """Attach tracing to a machine (call before ``machine.run()``)."""
    return ChunkTracer(machine)


__all__ = ["ChunkTracer", "TraceEvent", "attach_tracer"]
