"""Legacy chunk-lifecycle tracing — a compat shim over :mod:`repro.obs`.

.. deprecated::
    New code should use :class:`repro.obs.InstrumentationBus` directly
    (``attach_bus`` + the typed event stream); it records strictly more
    (messages, grab circulation, gauges) and feeds the critical-path
    analyzer and the Perfetto exporter.  This module remains so existing
    scripts and tests keep their ``ChunkTracer`` vocabulary: the tracer
    now attaches a real instrumentation bus and *translates* its events
    into the historical :class:`TraceEvent` records instead of wrapping
    component methods.

The legacy event kinds are: ``exec_start``, ``exec_done``,
``commit_request``, ``commit_success``, ``commit_failure``, ``squash``,
``group_formed`` and ``group_failed``.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Union

from repro.obs.bus import (
    COMMIT_COMPLETE,
    COMMIT_REQUEST,
    COMMIT_RETRY,
    EXEC_DONE,
    EXEC_START,
    GROUP_FAILED,
    GROUP_FORMED,
    SQUASH,
    InstrumentationBus,
    ObsEvent,
    attach_bus,
)


@dataclass
class TraceEvent:
    """One recorded event (legacy schema)."""

    time: int
    kind: str          #: exec_start | exec_done | commit_request |
                       #: commit_success | commit_failure | squash |
                       #: group_formed | group_failed
    core: int
    tag: str
    detail: str = ""

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def _translate(ev: ObsEvent) -> Optional[TraceEvent]:
    """One bus event -> one legacy event (or None for kinds the legacy
    tracer never recorded, e.g. grab circulation)."""
    f = ev.fields
    if ev.kind == EXEC_START:
        return TraceEvent(ev.time, "exec_start", f["core"], str(ev.ctag))
    if ev.kind == EXEC_DONE:
        return TraceEvent(ev.time, "exec_done", f["core"], str(ev.ctag))
    if ev.kind == SQUASH:
        return TraceEvent(ev.time, "squash", f["core"], str(ev.ctag),
                          f["reason"])
    if ev.kind == COMMIT_COMPLETE:
        return TraceEvent(ev.time, "commit_success", f["core"], str(ev.ctag))
    if ev.kind == COMMIT_REQUEST:
        # cid = (tag, attempt); the legacy tracer keyed on the bare tag
        return TraceEvent(ev.time, "commit_request", f["core"],
                          str(ev.ctag[0]), f"dirs={f['dirs']}")
    if ev.kind == COMMIT_RETRY:
        return TraceEvent(ev.time, "commit_failure", f["core"],
                          str(ev.ctag[0]), "retry")
    if ev.kind == GROUP_FORMED:
        leader = "agent" if f["dir"] is None else f"dir{f['dir']}"
        return TraceEvent(ev.time, "group_formed", f["proc"],
                          str(ev.ctag[0]),
                          f"leader={leader} order={tuple(f['order'])}")
    if ev.kind == GROUP_FAILED:
        return TraceEvent(ev.time, "group_failed", f["proc"],
                          str(ev.ctag[0]), f"collision=dir{f['dir']}")
    return None


_warned = False


def _warn_deprecated() -> None:
    """One DeprecationWarning per process — the shim works, but new code
    should attach :class:`repro.obs.InstrumentationBus` directly."""
    global _warned
    if _warned:
        return
    _warned = True
    warnings.warn(
        "repro.tracing.ChunkTracer is a compatibility shim; use "
        "repro.obs (attach_bus + InstrumentationBus) instead",
        DeprecationWarning, stacklevel=3)


class ChunkTracer:
    """Records the lifecycle of every chunk on a machine.

    Attaching (before ``machine.run()``) installs an
    :class:`~repro.obs.InstrumentationBus` with message recording off; the
    legacy event list is a translated view over the bus's event stream.
    The underlying bus stays reachable as ``tracer.bus`` for callers who
    want the richer stream, the gauges or the exporters.
    """

    def __init__(self, machine) -> None:
        _warn_deprecated()
        self.machine = machine
        self.bus: InstrumentationBus = attach_bus(
            machine, InstrumentationBus(record_messages=False))

    @property
    def events(self) -> List[TraceEvent]:
        return [te for te in map(_translate, self.bus.events)
                if te is not None]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def for_tag(self, tag) -> List[TraceEvent]:
        return [e for e in self.events if e.tag == str(tag)]

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind in kinds]

    def timeline(self, tag) -> str:
        """Readable per-chunk timeline."""
        lines = [f"timeline for {tag}:"]
        for e in self.for_tag(tag):
            lines.append(f"  t={e.time:>8d} {e.kind:15s} {e.detail}")
        return "\n".join(lines)

    def dump_jsonl(self, path: Union[str, "os.PathLike[str]"]) -> int:
        """Write all events as JSON Lines (UTF-8, sorted keys); returns
        the event count."""
        events = self.events
        with open(path, "w", encoding="utf-8") as fh:
            for e in events:
                fh.write(e.to_json() + "\n")
        return len(events)

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


def attach_tracer(machine) -> ChunkTracer:
    """Attach tracing to a machine (call before ``machine.run()``)."""
    return ChunkTracer(machine)


__all__ = ["ChunkTracer", "TraceEvent", "attach_tracer"]
