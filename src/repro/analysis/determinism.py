"""Pass 3: determinism lint (rules SB301-SB304).

Walks every module under ``src/repro/`` and flags constructs that make a
run depend on anything other than (configuration, seed):

* **SB301** iteration over a set (or dict view) that sends messages or
  schedules events — directly or through a same-class helper — inside the
  loop body, unless the iterable is wrapped in ``sorted(...)``;
* **SB302** use of the ``random`` module (or ``numpy.random``) outside
  ``engine/rng.py``, bypassing the seed-derived stream splitting;
* **SB303** ``id()`` used as an ordering key (sort keys, comparisons);
* **SB304** wall-clock reads (``time.time``, ``datetime.now``, …).

Set iteration order depends on hashing; dict iteration is insertion-
ordered but couples event order to arrival order with no explicit key —
both are flagged where the order can reach the scheduler, and known-
benign instances live in the baseline file with a justification.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding

RNG_MODULE = "engine/rng.py"

_SEND_OR_SCHED = {"schedule", "schedule_at", "unicast", "multicast",
                  "broadcast"}
_WALL_CLOCK = {("time", "time"), ("time", "monotonic"),
               ("time", "perf_counter"), ("time", "process_time"),
               ("time", "time_ns"), ("time", "monotonic_ns"),
               ("datetime", "now"), ("datetime", "utcnow"),
               ("date", "today")}
_ORDERED_WRAPPERS = {"sorted", "list", "tuple", "min", "max", "sum", "len",
                     "any", "all", "enumerate"}
# list()/tuple() preserve the underlying (unordered) order, but by far the
# most common wrapped form is list(sorted(...)); we look through one level.


def _qualname_map(tree: ast.Module) -> Dict[int, str]:
    """Map every AST node id to its enclosing Class.method qualname."""
    out: Dict[int, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            name = prefix
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                name = f"{prefix}.{child.name}" if prefix else child.name
            out[id(child)] = name or "<module>"
            visit(child, name)

    out[id(tree)] = "<module>"
    visit(tree, "")
    return out


class _ModuleScan(ast.NodeVisitor):
    """Single-file scan collecting typing facts and per-method summaries."""

    def __init__(self, tree: ast.Module) -> None:
        self.set_typed: Set[str] = set()
        self.dict_typed: Set[str] = set()
        #: Class -> method -> same-class callees
        self.calls: Dict[str, Dict[str, Set[str]]] = {}
        #: Class -> methods that directly send/schedule
        self.direct: Dict[str, Set[str]] = {}
        self._collect(tree)

    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and node.annotation is not None:
                text = ast.unparse(node.annotation)
                target = node.target
                name = None
                if isinstance(target, ast.Name):
                    name = target.id
                elif (isinstance(target, ast.Attribute)
                      and isinstance(target.value, ast.Name)
                      and target.value.id == "self"):
                    name = target.attr
                if name:
                    if "Set" in text or text.startswith("set"):
                        self.set_typed.add(name)
                    if "Dict" in text or text.startswith("dict"):
                        self.dict_typed.add(name)
        for cnode in tree.body:
            if not isinstance(cnode, ast.ClassDef):
                continue
            calls: Dict[str, Set[str]] = {}
            direct: Set[str] = set()
            for item in cnode.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                callees: Set[str] = set()
                for sub in ast.walk(item):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)):
                        if sub.func.attr in _SEND_OR_SCHED:
                            direct.add(item.name)
                        if (isinstance(sub.func.value, ast.Name)
                                and sub.func.value.id == "self"):
                            callees.add(sub.func.attr)
                calls[item.name] = callees
            self.calls[cnode.name] = calls
            self.direct[cnode.name] = direct

    def reaches_scheduler(self, cls: str, method: str) -> bool:
        calls = self.calls.get(cls, {})
        direct = self.direct.get(cls, set())
        seen: Set[str] = set()
        stack = [method]
        while stack:
            m = stack.pop()
            if m in seen or m not in calls:
                continue
            seen.add(m)
            if m in direct:
                return True
            stack.extend(calls[m])
        return False


def _terminal_name(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _unordered_kind(expr: ast.AST, scan: _ModuleScan) -> Optional[str]:
    """'set' / 'dict' if ``expr`` iterates an unordered container."""
    if isinstance(expr, ast.Call):
        fname = (expr.func.id if isinstance(expr.func, ast.Name)
                 else getattr(expr.func, "attr", None))
        if fname in ("set", "frozenset"):
            return "set"
        if fname in ("sorted",):
            return None
        if fname in ("list", "tuple") and expr.args:
            return _unordered_kind(expr.args[0], scan)
        if fname in ("keys", "values", "items"):
            return "dict"
        return None
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_unordered_kind(expr.left, scan)
                or _unordered_kind(expr.right, scan))
    name = _terminal_name(expr)
    if name in scan.set_typed:
        return "set"
    if name in scan.dict_typed:
        return "dict"
    return None


def _loop_reaches_scheduler(loop: ast.For, scan: _ModuleScan,
                            cls: Optional[str]) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _SEND_OR_SCHED:
                return True
            if (cls is not None
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and scan.reaches_scheduler(cls, node.func.attr)):
                return True
    return False


def _id_in_ordering(node: ast.AST) -> bool:
    """id() used as a sort key or inside an ordering comparison."""
    if isinstance(node, ast.Call):
        fname = (node.func.id if isinstance(node.func, ast.Name)
                 else getattr(node.func, "attr", None))
        if fname in ("sorted", "min", "max"):
            for kw in node.keywords:
                if kw.arg == "key":
                    for sub in ast.walk(kw.value):
                        if (isinstance(sub, ast.Call)
                                and isinstance(sub.func, ast.Name)
                                and sub.func.id == "id"):
                            return True
    if isinstance(node, ast.Compare):
        ordering = any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                       for op in node.ops)
        if ordering:
            for sub in ast.walk(node):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "id"):
                    return True
    return False


def lint_source(rel_path: str, source: str,
                allow_random: bool = False) -> List[Finding]:
    """Run the determinism rules over one module's source text."""
    tree = ast.parse(source)
    qualnames = _qualname_map(tree)
    scan = _ModuleScan(tree)
    findings: List[Finding] = []

    def anchor_of(node: ast.AST) -> str:
        return qualnames.get(id(node), "<module>")

    def cls_of(node: ast.AST) -> Optional[str]:
        qn = anchor_of(node)
        if "." in qn:
            head = qn.split(".")[0]
            if head in scan.calls:
                return head
        return None

    for node in ast.walk(tree):
        # -- SB301 -------------------------------------------------------
        if isinstance(node, ast.For):
            kind = _unordered_kind(node.iter, scan)
            if kind and _loop_reaches_scheduler(node, scan, cls_of(node)):
                findings.append(Finding(
                    code="SB301", path=rel_path, line=node.lineno,
                    anchor=anchor_of(node),
                    message=(f"loop over unordered {kind} "
                             f"`{ast.unparse(node.iter)}` sends/schedules "
                             f"inside the body; iterate a sorted view")))
        # -- SB302 -------------------------------------------------------
        if not allow_random:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        findings.append(Finding(
                            code="SB302", path=rel_path, line=node.lineno,
                            anchor=anchor_of(node),
                            message="`import random`: use "
                                    "engine.rng.DeterministicRng"))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    findings.append(Finding(
                        code="SB302", path=rel_path, line=node.lineno,
                        anchor=anchor_of(node),
                        message="`from random import ...`: use "
                                "engine.rng.DeterministicRng"))
            elif (isinstance(node, ast.Attribute)
                  and isinstance(node.value, ast.Attribute)
                  and _terminal_name(node.value) == "random"
                  and isinstance(node.value.value, ast.Name)
                  and node.value.value.id in ("np", "numpy")):
                findings.append(Finding(
                    code="SB302", path=rel_path, line=node.lineno,
                    anchor=anchor_of(node),
                    message="numpy.random.*: use a seeded Generator via "
                            "engine.rng"))
        # -- SB303 -------------------------------------------------------
        if _id_in_ordering(node):
            findings.append(Finding(
                code="SB303", path=rel_path, line=node.lineno,
                anchor=anchor_of(node),
                message="id() used for ordering; ids vary run to run"))
        # -- SB304 -------------------------------------------------------
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            owner = _terminal_name(node.func.value)
            if (owner, node.func.attr) in _WALL_CLOCK:
                findings.append(Finding(
                    code="SB304", path=rel_path, line=node.lineno,
                    anchor=anchor_of(node),
                    message=(f"wall-clock read {owner}.{node.func.attr}(); "
                             f"simulated time must come from sim.now")))

    return findings


def lint_determinism(pkg_dir: Optional[Path] = None,
                     source_overrides: Optional[Dict[str, str]] = None
                     ) -> List[Finding]:
    """Run the determinism pass over every module in ``src/repro/``."""
    if pkg_dir is None:
        import repro
        pkg_dir = Path(repro.__file__).resolve().parent
    findings: List[Finding] = []
    rels = sorted(f.relative_to(pkg_dir).as_posix()
                  for f in pkg_dir.rglob("*.py"))
    if source_overrides:
        rels = sorted(set(rels) | set(source_overrides))
    for rel in rels:
        if source_overrides and rel in source_overrides:
            source = source_overrides[rel]
        else:
            source = (pkg_dir / rel).read_text()
        findings.extend(lint_source("src/repro/" + rel, source,
                                    allow_random=(rel == RNG_MODULE)))
    return findings


__all__ = ["lint_determinism", "lint_source"]
