"""``python -m repro lint``: run the analysis passes and gate on them.

Exit status is 0 when every finding is either fixed, suppressed by an
inline ``# repro: allow SB***`` pragma on its own line, or recorded in the
baseline file — non-zero otherwise.  CI fails PRs that introduce new
``SB***`` findings while the pre-existing, justified ones stay suppressed.

``--races`` adds the SB5xx state-access race pass
(:mod:`repro.analysis.races`); ``--confirm`` additionally labels each
SB5xx finding CONFIRMED (with a replayable schedule) or UNOBSERVED by
running the access sanitizer over the explore scenarios.  ``--jobs N``
runs the passes in parallel worker processes with a deterministic merge.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.determinism import lint_determinism
from repro.analysis.findings import (Baseline, Finding, RULES, apply_pragmas,
                                     repo_paths)
from repro.analysis.group_check import check_group_order
from repro.analysis.handler_lint import lint_handlers
from repro.harness.parallel import run_ordered

DEFAULT_BASELINE = "lint-baseline.txt"

_PassPayload = Tuple[str, Optional[Path], int]


def _run_pass(payload: _PassPayload) -> List[Finding]:
    """One analysis pass; top-level so ``--jobs`` can pickle it."""
    name, pkg_dir, max_dirs = payload
    if name == "handlers":
        return lint_handlers(pkg_dir)
    if name == "group":
        return check_group_order(max_dirs=max_dirs)
    if name == "determinism":
        return lint_determinism(pkg_dir)
    if name == "races":
        from repro.analysis.races.rules import lint_races
        return lint_races(pkg_dir)
    raise ValueError(f"unknown analysis pass {name!r}")


def run_all(pkg_dir: Optional[Path] = None, max_dirs: int = 4, *,
            races: bool = False, jobs: int = 1) -> List[Finding]:
    """All analysis passes over the installed ``repro`` package.

    The merge is deterministic regardless of ``jobs``: results come back
    in pass-declaration order and each pass is internally ordered.
    """
    passes = ["handlers", "group", "determinism"]
    if races:
        passes.append("races")
    payloads: List[_PassPayload] = [(name, pkg_dir, max_dirs)
                                    for name in passes]
    batches = run_ordered(_run_pass, payloads, jobs=jobs)
    return [f for batch in batches for f in batch]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="protocol linter + determinism/race static analysis")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"suppression file (default: "
                             f"<repo>/{DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, suppressing nothing")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the baseline "
                             "(existing per-key justifications are kept)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule-code prefixes, e.g. "
                             "'SB3' or 'SB001,SB2'")
    parser.add_argument("--max-dirs", type=int, default=4,
                        help="model-checker configuration bound (default 4; "
                             "CI uses 5)")
    parser.add_argument("--races", action="store_true",
                        help="also run the SB5xx state-access race pass")
    parser.add_argument("--confirm", action="store_true",
                        help="label SB5xx findings CONFIRMED/UNOBSERVED by "
                             "running the access sanitizer (implies --races; "
                             "slow)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the analysis passes "
                             "(deterministic merge; default 1)")
    parser.add_argument("--explain", action="store_true",
                        help="list the rule codes and exit")
    parser.add_argument("--pkg-dir", type=Path, default=None,
                        help=argparse.SUPPRESS)  # test fixtures only
    args = parser.parse_args(argv)
    races = args.races or args.confirm

    if args.explain:
        for code, (title, why) in sorted(RULES.items()):
            print(f"{code}  {title}\n       {why}")
        return 0

    if args.pkg_dir is not None:
        pkg_dir = args.pkg_dir.resolve()
        repo_root = pkg_dir.parent.parent
    else:
        pkg_dir, repo_root = repo_paths()
    baseline_path = args.baseline or repo_root / DEFAULT_BASELINE

    findings = run_all(pkg_dir, max_dirs=args.max_dirs, races=races,
                       jobs=args.jobs)
    if args.rules:
        prefixes = tuple(p.strip() for p in args.rules.split(",") if p.strip())
        findings = [f for f in findings if f.code.startswith(prefixes)]
    findings, pragma_suppressed = apply_pragmas(findings, repo_root)
    findings.sort(key=lambda f: (f.path, f.line, f.code))

    if args.write_baseline:
        previous = Baseline.load(baseline_path)
        baseline_path.write_text(
            Baseline.render(findings, previous.justifications))
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baseline = (Baseline() if args.no_baseline
                else Baseline.load(baseline_path))
    fresh, suppressed, stale = baseline.split(findings)
    if not races:
        # SB5xx baseline entries are not stale just because the (opt-in)
        # race pass did not run this invocation.
        stale = {key for key in stale if not key.startswith("SB5")}

    witnesses = []
    if args.confirm:
        from repro.analysis.races.confirm import confirm_findings
        witnesses = confirm_findings(
            [f for f in findings if f.code.startswith("SB5")],
            runs_per_scenario=4)

    if args.format == "json":
        print(json.dumps({
            "findings": [{"code": f.code, "path": f.path, "line": f.line,
                          "anchor": f.anchor, "message": f.message,
                          "why": f.why} for f in fresh],
            "suppressed": len(suppressed),
            "pragma_suppressed": len(pragma_suppressed),
            "stale_baseline_keys": sorted(stale),
            **({"witnesses": [w.to_json() for w in witnesses]}
               if args.confirm else {}),
        }, indent=2))
    else:
        for f in fresh:
            print(f.render())
            print(f"    why: {f.why}")
        for key in sorted(stale):
            print(f"warning: stale baseline entry (no longer found): {key}")
        for w in witnesses:
            print(f"{w.status}: {w.key}")
            if w.detail:
                print(f"    {w.detail}")
        print(f"repro lint: {len(fresh)} finding(s), "
              f"{len(suppressed)} suppressed by baseline, "
              f"{len(pragma_suppressed)} by inline pragma, "
              f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}")
    return 1 if fresh else 0


__all__ = ["main", "run_all"]
