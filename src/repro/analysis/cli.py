"""``python -m repro lint``: run the analysis passes and gate on them.

Exit status is 0 when every finding is either fixed, suppressed by an
inline ``# repro: allow SB***`` pragma on its own line, or recorded in the
baseline file — non-zero otherwise.  CI fails PRs that introduce new
``SB***`` findings while the pre-existing, justified ones stay suppressed.

``--races`` adds the SB5xx state-access race pass
(:mod:`repro.analysis.races`); ``--flows`` adds the SB6xx protocol-flow
pass (:mod:`repro.analysis.flows`); ``--confirm`` additionally labels each
SB5xx finding CONFIRMED (with a replayable schedule) or UNOBSERVED by
running the access sanitizer over the explore scenarios.  ``--jobs N``
runs the passes in parallel worker processes with a deterministic merge.
``--select SB6`` (any rule-code prefix) runs exactly the passes that can
emit matching codes and reports/baselines only those findings — baseline
entries owned by unselected passes are neither stale nor rewritten.

Exit status: 0 when every finding is suppressed (or none exist), 1 when
fresh findings remain, 2 on usage errors (argparse).  ``--format json``
emits the machine-readable report documented in docs/analysis.md.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.determinism import lint_determinism
from repro.analysis.findings import (Baseline, Finding, RULES, apply_pragmas,
                                     repo_paths)
from repro.analysis.group_check import check_group_order
from repro.analysis.handler_lint import lint_handlers
from repro.harness.parallel import run_ordered

DEFAULT_BASELINE = "lint-baseline.txt"

#: analysis pass -> the rule codes it can emit.  Drives ``--select`` (which
#: passes must run for a code prefix) and the stale-baseline exemption
#: (entries owned by a pass that did not run are not stale).
PASS_RULES: Dict[str, Tuple[str, ...]] = {
    "handlers": ("SB001", "SB002", "SB003", "SB004"),
    "group": ("SB201", "SB202", "SB203", "SB204"),
    "determinism": ("SB301", "SB302", "SB303", "SB304"),
    "races": ("SB501", "SB502", "SB503", "SB504"),
    "flows": ("SB601", "SB602", "SB603", "SB604"),
}

_PassPayload = Tuple[str, Optional[Path], int]


def _run_pass(payload: _PassPayload) -> List[Finding]:
    """One analysis pass; top-level so ``--jobs`` can pickle it."""
    name, pkg_dir, max_dirs = payload
    if name == "handlers":
        return lint_handlers(pkg_dir)
    if name == "group":
        return check_group_order(max_dirs=max_dirs)
    if name == "determinism":
        return lint_determinism(pkg_dir)
    if name == "races":
        from repro.analysis.races.rules import lint_races
        return lint_races(pkg_dir)
    if name == "flows":
        from repro.analysis.flows.rules import lint_flows
        return lint_flows(pkg_dir)
    raise ValueError(f"unknown analysis pass {name!r}")


def run_all(pkg_dir: Optional[Path] = None, max_dirs: int = 4, *,
            races: bool = False, flows: bool = False, jobs: int = 1,
            only: Optional[Sequence[str]] = None) -> List[Finding]:
    """Analysis passes over the installed ``repro`` package, merged sorted.

    ``only`` names the exact passes to run (``--select``); otherwise the
    three always-on passes run plus ``races``/``flows`` on request.  The
    result is sorted by ``(code, path, anchor)``, so the report is
    byte-identical regardless of ``jobs`` or pass scheduling.
    """
    if only is not None:
        passes = [name for name in PASS_RULES if name in set(only)]
    else:
        passes = ["handlers", "group", "determinism"]
        if races:
            passes.append("races")
        if flows:
            passes.append("flows")
    payloads: List[_PassPayload] = [(name, pkg_dir, max_dirs)
                                    for name in passes]
    batches = run_ordered(_run_pass, payloads, jobs=jobs)
    findings = [f for batch in batches for f in batch]
    findings.sort(key=lambda f: (f.code, f.path, f.anchor))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="protocol linter + determinism/race static analysis")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"suppression file (default: "
                             f"<repo>/{DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, suppressing nothing")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the baseline "
                             "(existing per-key justifications are kept)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule-code prefixes, e.g. "
                             "'SB3' or 'SB001,SB2'")
    parser.add_argument("--max-dirs", type=int, default=4,
                        help="model-checker configuration bound (default 4; "
                             "CI uses 5)")
    parser.add_argument("--races", action="store_true",
                        help="also run the SB5xx state-access race pass")
    parser.add_argument("--flows", action="store_true",
                        help="also run the SB6xx protocol-flow pass "
                             "(extracted automata vs declared specs)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule-code prefixes; run only "
                             "the passes that can emit matching codes and "
                             "report only matching findings, e.g. 'SB6' or "
                             "'SB301,SB5'")
    parser.add_argument("--confirm", action="store_true",
                        help="label SB5xx findings CONFIRMED/UNOBSERVED by "
                             "running the access sanitizer (implies --races; "
                             "slow)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the analysis passes "
                             "(deterministic merge; default 1)")
    parser.add_argument("--explain", action="store_true",
                        help="list the rule codes and exit")
    parser.add_argument("--pkg-dir", type=Path, default=None,
                        help=argparse.SUPPRESS)  # test fixtures only
    args = parser.parse_args(argv)
    races = args.races or args.confirm

    if args.explain:
        for code, (title, why) in sorted(RULES.items()):
            print(f"{code}  {title}\n       {why}")
        return 0

    if args.pkg_dir is not None:
        pkg_dir = args.pkg_dir.resolve()
        repo_root = pkg_dir.parent.parent
    else:
        pkg_dir, repo_root = repo_paths()
    baseline_path = args.baseline or repo_root / DEFAULT_BASELINE

    select = (tuple(p.strip() for p in args.select.split(",") if p.strip())
              if args.select else ())
    rule_prefixes = (tuple(p.strip() for p in args.rules.split(",")
                           if p.strip()) if args.rules else ())
    if select:
        only = [name for name, codes in PASS_RULES.items()
                if any(code.startswith(select) for code in codes)]
        if not only:
            parser.error(f"--select {args.select!r} matches no analysis pass")
        ran = only
        findings = run_all(pkg_dir, max_dirs=args.max_dirs, jobs=args.jobs,
                           only=only)
        findings = [f for f in findings if f.code.startswith(select)]
    else:
        ran = ["handlers", "group", "determinism"]
        if races:
            ran.append("races")
        if args.flows:
            ran.append("flows")
        findings = run_all(pkg_dir, max_dirs=args.max_dirs, races=races,
                           flows=args.flows, jobs=args.jobs)
    if rule_prefixes:
        findings = [f for f in findings if f.code.startswith(rule_prefixes)]
    findings, pragma_suppressed = apply_pragmas(findings, repo_root)

    unchecked_codes: Set[str] = {code for name in PASS_RULES
                                 if name not in ran
                                 for code in PASS_RULES[name]}

    def _checked(key: str) -> bool:
        """Could this baseline key have been (re-)found this invocation?

        Keys owned by a pass that did not run, or filtered out by
        ``--select``/``--rules``, were never looked for — they are not
        stale and must survive ``--write-baseline``.  Keys with a code no
        pass emits are garbage and always count as stale.
        """
        code = key.split(" ", 1)[0]
        if code in unchecked_codes:
            return False
        if select and not code.startswith(select):
            return False
        if rule_prefixes and not code.startswith(rule_prefixes):
            return False
        return True

    if args.write_baseline:
        previous = Baseline.load(baseline_path)
        found_keys = {f.key for f in findings}
        keep = sorted(k for k in previous.keys
                      if not _checked(k) and k not in found_keys)
        baseline_path.write_text(
            Baseline.render(findings, previous.justifications,
                            keep_keys=keep))
        kept = f" (+{len(keep)} kept from unselected passes)" if keep else ""
        print(f"wrote {len(findings)} finding(s) to {baseline_path}{kept}")
        return 0

    baseline = (Baseline() if args.no_baseline
                else Baseline.load(baseline_path))
    fresh, suppressed, stale = baseline.split(findings)
    stale = {key for key in stale if _checked(key)}

    witnesses = []
    if args.confirm:
        from repro.analysis.races.confirm import confirm_findings
        witnesses = confirm_findings(
            [f for f in findings if f.code.startswith("SB5")],
            runs_per_scenario=4)

    if args.format == "json":
        print(json.dumps({
            "findings": [{"code": f.code, "path": f.path, "line": f.line,
                          "anchor": f.anchor, "message": f.message,
                          "why": f.why} for f in fresh],
            "suppressed": len(suppressed),
            "pragma_suppressed": len(pragma_suppressed),
            "stale_baseline_keys": sorted(stale),
            **({"witnesses": [w.to_json() for w in witnesses]}
               if args.confirm else {}),
        }, indent=2))
    else:
        for f in fresh:
            print(f.render())
            print(f"    why: {f.why}")
        for key in sorted(stale):
            print(f"warning: stale baseline entry (no longer found): {key}")
        for w in witnesses:
            print(f"{w.status}: {w.key}")
            if w.detail:
                print(f"    {w.detail}")
        print(f"repro lint: {len(fresh)} finding(s), "
              f"{len(suppressed)} suppressed by baseline, "
              f"{len(pragma_suppressed)} by inline pragma, "
              f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}")
    return 1 if fresh else 0


__all__ = ["main", "run_all"]
