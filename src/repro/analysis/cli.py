"""``python -m repro lint``: run all three analysis passes and gate on them.

Exit status is 0 when every finding is either fixed or recorded in the
baseline file, non-zero otherwise — so CI can fail PRs that introduce new
``SB***`` findings while the pre-existing, justified ones stay suppressed.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.determinism import lint_determinism
from repro.analysis.findings import Baseline, Finding, RULES, repo_paths
from repro.analysis.group_check import check_group_order
from repro.analysis.handler_lint import lint_handlers

DEFAULT_BASELINE = "lint-baseline.txt"


def run_all(pkg_dir: Optional[Path] = None, max_dirs: int = 4
            ) -> List[Finding]:
    """All three passes over the installed ``repro`` package."""
    findings: List[Finding] = []
    findings.extend(lint_handlers(pkg_dir))
    findings.extend(check_group_order(max_dirs=max_dirs))
    findings.extend(lint_determinism(pkg_dir))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="protocol linter + determinism/race static analysis")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"suppression file (default: "
                             f"<repo>/{DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, suppressing nothing")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the baseline")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule-code prefixes, e.g. "
                             "'SB3' or 'SB001,SB2'")
    parser.add_argument("--max-dirs", type=int, default=4,
                        help="model-checker configuration bound (default 4; "
                             "CI uses 5)")
    parser.add_argument("--explain", action="store_true",
                        help="list the rule codes and exit")
    args = parser.parse_args(argv)

    if args.explain:
        for code, (title, why) in sorted(RULES.items()):
            print(f"{code}  {title}\n       {why}")
        return 0

    pkg_dir, repo_root = repo_paths()
    baseline_path = args.baseline or repo_root / DEFAULT_BASELINE

    findings = run_all(pkg_dir, max_dirs=args.max_dirs)
    if args.rules:
        prefixes = tuple(p.strip() for p in args.rules.split(",") if p.strip())
        findings = [f for f in findings if f.code.startswith(prefixes)]
    findings.sort(key=lambda f: (f.path, f.line, f.code))

    if args.write_baseline:
        baseline_path.write_text(Baseline.render(findings))
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baseline = (Baseline() if args.no_baseline
                else Baseline.load(baseline_path))
    fresh, suppressed, stale = baseline.split(findings)

    if args.format == "json":
        print(json.dumps({
            "findings": [{"code": f.code, "path": f.path, "line": f.line,
                          "anchor": f.anchor, "message": f.message,
                          "why": f.why} for f in fresh],
            "suppressed": len(suppressed),
            "stale_baseline_keys": sorted(stale),
        }, indent=2))
    else:
        for f in fresh:
            print(f.render())
            print(f"    why: {f.why}")
        for key in sorted(stale):
            print(f"warning: stale baseline entry (no longer found): {key}")
        print(f"repro lint: {len(fresh)} finding(s), "
              f"{len(suppressed)} suppressed by baseline, "
              f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}")
    return 1 if fresh else 0


__all__ = ["main", "run_all"]
