"""Findings, rule registry and the suppression baseline.

Every analysis pass reports :class:`Finding` objects.  A finding carries a
rule code (``SB001``…), the file and line it anchors to, a *stable anchor*
(the enclosing ``Class.method`` qualname, or a symbolic location for model
-checker findings) and a short explanation of why the pattern is a problem.

Suppression works on the *key* ``"<code> <path>::<anchor>"`` — deliberately
line-number free, so a baseline entry survives unrelated edits to the file.
The baseline file (``lint-baseline.txt`` at the repo root) lets the linter
land before the codebase is fully clean: existing findings are recorded
there with a justification and only *new* findings fail the gate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: rule code -> (title, one-line rationale).  Documented in docs/analysis.md.
RULES: Dict[str, Tuple[str, str]] = {
    # -- pass 1: handler-coverage linter --------------------------------
    "SB001": ("unhandled message",
              "a message type is sent to this role but no handler branch "
              "dispatches it; at runtime it raises NotImplementedError "
              "mid-simulation"),
    "SB002": ("dead handler",
              "an _on_* handler method is never referenced by any dispatch "
              "table nor called by another method; it is unreachable code "
              "masquerading as protocol surface"),
    "SB003": ("silent state mutation",
              "a directory/agent handler mutates module state but neither "
              "schedules an event nor sends a message, so the state change "
              "costs zero simulated time and is invisible to the timeline"),
    "SB004": ("orphan message type",
              "a message type is declared in network/message.py but never "
              "put on the wire by any protocol"),
    # -- pass 2: group-order model checker ------------------------------
    "SB201": ("traversal order not total",
              "order_gvec must return a permutation of the group sorted by "
              "priority rank with the leader first (Section 3.2)"),
    "SB202": ("priority inversion",
              "a g message must only flow from higher-priority to lower-"
              "priority modules (deadlock-freedom argument, Section 3.2)"),
    "SB203": ("ambiguous collision module",
              "two colliding groups must agree on a single Collision module "
              "— the highest-priority common module — or a group can be "
              "failed at two places (or none)"),
    "SB204": ("group deadlock",
              "a reachable hold-and-wait state exists in which no group can "
              "complete; grab acquisition must follow one global priority "
              "order"),
    # -- schedule exploration (repro.analysis.explore) -------------------
    "SB401": ("serializability violation",
              "under this message interleaving a chunk that read data later "
              "overwritten by an earlier-committed chunk itself committed "
              "without being squashed, or two conflicting groups were held "
              "or confirmed concurrently at one directory — atomic-block "
              "semantics are broken"),
    "SB402": ("lost invalidation",
              "a group was confirmed whose accumulated inval_vec misses a "
              "core holding a truly conflicting active chunk (the "
              "invalidation-completeness oracle fired under exploration)"),
    "SB403": ("deadlock",
              "the simulation quiesced with unfinished cores: some chunk "
              "can never commit under this interleaving (e.g. an ack that "
              "is never re-solicited)"),
    "SB404": ("livelock",
              "the schedule exceeded the event budget without finishing: "
              "the protocol keeps exchanging messages without making "
              "commit progress"),
    "SB405": ("ordering violation",
              "a Tables 4/5 message-ordering rule was broken under this "
              "interleaving (runtime conformance checker fired)"),
    "SB406": ("commit accounting mismatch",
              "a core finished with the wrong number of committed chunks, "
              "a squash-pending (OCI alias) chunk was never resolved, or a "
              "commit was double-counted — the OCI re-validation path "
              "mis-resolved under this interleaving"),
    # -- pass 4: state-access race analysis (repro.analysis.races) -------
    "SB501": ("unsynchronized concurrent access",
              "two handlers of one module class can be in flight for the "
              "same chunk with no causal ordering (no dominance in the "
              "message-causality graph) and their footprints conflict on a "
              "state attribute — write/write or read/write"),
    "SB502": ("send before state update",
              "a method emits a message and afterwards mutates state the "
              "message's audience reads; the receiver's reaction can race "
              "the late write and observe either version"),
    "SB503": ("re-entrant handler cycle",
              "a handler sits on a causal cycle (its downstream effects "
              "can trigger it again for the same chunk) while mutating "
              "non-commutative state; a re-entry can observe torn "
              "intermediate state"),
    "SB504": ("unreconciled state growth",
              "a state attribute starting empty is grown by handler-"
              "reachable code but no handler-reachable path ever shrinks "
              "or releases it — squash/abort reconciliation is missing "
              "(the reservation-leak family)"),
    # -- pass 5: protocol-flow analysis (repro.analysis.flows) -----------
    "SB601": ("dangling message flow",
              "a message type is sent but no class of the destination role "
              "dispatches it, or a dispatch branch waits for a type nothing "
              "ever sends — half a conversation, dead on arrival either "
              "way"),
    "SB602": ("spec conformance break",
              "the flow automaton extracted from the code and the declared "
              "ProtocolSpec disagree: a (sender, type, receiver) edge "
              "exists in code but not in the spec, or a declared edge has "
              "no implementing send site"),
    "SB603": ("conversation deadlock candidate",
              "a request type has no static reply path back to the "
              "requester role: no chain of handler reactions from the "
              "receiver ever emits one of the spec's declared reply/retry "
              "types toward the sender, so the requester can wait forever"),
    "SB604": ("non-exhaustive dispatch",
              "a handler's if/elif chain over the message type has no "
              "terminal else (raise or delegation): an unexpected type is "
              "silently dropped instead of failing loudly"),
    # -- pass 3: determinism lint ----------------------------------------
    "SB301": ("unordered iteration reaches scheduler",
              "iterating a set/dict and scheduling events or sending "
              "messages inside the loop makes event order depend on hash/"
              "insertion order instead of an explicit sort key"),
    "SB302": ("unseeded randomness",
              "random draws outside engine/rng.py bypass the seed-derived "
              "stream splitting and break run-to-run reproducibility"),
    "SB303": ("id()-based ordering",
              "CPython id() values vary run to run; using them as a sort "
              "key or in comparisons makes event order non-reproducible"),
    "SB304": ("wall-clock read",
              "time.time()/datetime.now() and friends leak host time into "
              "the simulation, which must depend only on (config, seed)"),
}


@dataclass(frozen=True)
class Finding:
    """One report from an analysis pass."""

    code: str          #: rule code, e.g. "SB001"
    path: str          #: repo-relative, forward-slash path
    line: int          #: 1-based line (0 for whole-file/model findings)
    anchor: str        #: stable location key (qualname or symbolic)
    message: str       #: what is wrong, specifically

    @property
    def why(self) -> str:
        return RULES.get(self.code, ("", "unknown rule"))[1]

    @property
    def key(self) -> str:
        """Line-number-free identity used for suppression."""
        return f"{self.code} {self.path}::{self.anchor}"

    def render(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else self.path
        title = RULES.get(self.code, ("?",))[0]
        return f"{loc}: {self.code} [{title}] {self.message}"


class Baseline:
    """The suppression file: one ``<code> <path>::<anchor>`` key per line.

    Anything after the key on a line is a free-form justification; it is
    kept (per key) so ``--write-baseline`` can regenerate the file without
    destroying the reasons humans wrote down.  Lines starting with ``#``
    and blank lines are ignored.
    """

    def __init__(self, keys: Optional[Set[str]] = None,
                 justifications: Optional[Dict[str, str]] = None) -> None:
        self.keys: Set[str] = set(keys or ())
        self.justifications: Dict[str, str] = dict(justifications or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        keys: Set[str] = set()
        justifications: Dict[str, str] = {}
        for raw in path.read_text().splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) >= 2:
                key = f"{parts[0]} {parts[1]}"
                keys.add(key)
                if len(parts) == 3 and parts[2].strip():
                    justifications[key] = parts[2].strip()
        return cls(keys, justifications)

    def split(self, findings: Sequence[Finding]
              ) -> Tuple[List[Finding], List[Finding], Set[str]]:
        """Partition into (fresh, suppressed) and report stale keys."""
        fresh, suppressed = [], []
        seen: Set[str] = set()
        for f in findings:
            seen.add(f.key)
            (suppressed if f.key in self.keys else fresh).append(f)
        stale = self.keys - seen
        return fresh, suppressed, stale

    @staticmethod
    def render(findings: Iterable[Finding],
               justifications: Optional[Dict[str, str]] = None,
               keep_keys: Iterable[str] = ()) -> str:
        """Serialize findings as a fresh baseline file body.

        ``justifications`` (typically the previous baseline's) are carried
        over per key; keys without one get a TODO marker so the reviewer
        can see which entries still owe an explanation.  ``keep_keys`` are
        previous-baseline keys to carry over verbatim — entries owned by
        passes that did not run this invocation (``--select``/``--rules``),
        which the current findings therefore cannot vouch for.
        """
        justifications = justifications or {}
        lines = [
            "# lint-baseline.txt — accepted findings of `python -m repro lint`.",
            "# One `<code> <path>::<anchor>` key per line; the rest of the",
            "# line is a justification (preserved across --write-baseline).",
            "",
        ]
        keys = {f.key for f in findings}
        keys.update(keep_keys)
        for key in sorted(keys):
            reason = justifications.get(key, "TODO: justify this entry")
            lines.append(f"{key}  {reason}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Inline suppression pragmas
# ----------------------------------------------------------------------
#: ``# repro: allow SB304`` (one or more codes, comma/space separated) on
#: the finding's own line suppresses it at the source instead of in the
#: central baseline file — the justification lives next to the code.
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\s+(SB\d+(?:[,\s]+SB\d+)*)")


def file_pragmas(source: str) -> Dict[int, Set[str]]:
    """1-based line -> rule codes allowed by an inline pragma there."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = PRAGMA_RE.search(line)
        if match:
            out[lineno] = set(re.findall(r"SB\d+", match.group(1)))
    return out


def apply_pragmas(findings: Sequence[Finding], repo_root: Path
                  ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (kept, pragma-suppressed).

    A finding is suppressed when the line it anchors to carries a
    ``# repro: allow <code>`` pragma for its rule code.  Whole-file and
    model findings (line 0) cannot be pragma-suppressed — they have no
    single source line to annotate.
    """
    pragmas: Dict[str, Dict[int, Set[str]]] = {}
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for f in findings:
        if not f.line:
            kept.append(f)
            continue
        if f.path not in pragmas:
            target = repo_root / f.path
            try:
                pragmas[f.path] = file_pragmas(target.read_text())
            except OSError:
                pragmas[f.path] = {}
        if f.code in pragmas[f.path].get(f.line, ()):
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


def repo_paths() -> Tuple[Path, Path]:
    """(package dir of ``repro``, repo root guess).

    The repo root is the parent of the ``src`` directory when the package
    is run from a checkout; otherwise the package dir's grandparent.
    """
    import repro
    pkg = Path(repro.__file__).resolve().parent
    return pkg, pkg.parent.parent


def rel_path(pkg_dir: Path, file: Path) -> str:
    """Stable repo-relative path ``src/repro/...`` for a package file."""
    return "src/repro/" + file.resolve().relative_to(pkg_dir).as_posix()


__all__ = ["Baseline", "Finding", "PRAGMA_RE", "RULES", "apply_pragmas",
           "file_pragmas", "rel_path", "repo_paths"]
