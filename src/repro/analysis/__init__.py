"""Static analysis for the reproduction: protocol linter + determinism lint.

Five passes, each usable as a library, via ``python -m repro lint``, and
as a pytest tier (``tests/test_analysis_*.py``):

1. **Handler-coverage linter** (:mod:`repro.analysis.handler_lint`) —
   recovers the message dispatch tables and send sites from the AST and
   reports unhandled (role, message) pairs, dead handlers, silent state
   mutations and orphan message types (SB001-SB004).
2. **Group-order model checker** (:mod:`repro.analysis.group_check`) —
   exhaustively verifies Section 3.2's deadlock/livelock-freedom
   conditions over all small configurations (SB201-SB204).
3. **Determinism lint** (:mod:`repro.analysis.determinism`) — flags
   nondeterminism sources that would break reproducible runs
   (SB301-SB304).
4. **State-access race analysis** (:mod:`repro.analysis.races`, opt-in
   via ``--races``) — conflicting handler footprints without causal
   ordering (SB501-SB504).
5. **Protocol-flow analysis** (:mod:`repro.analysis.flows`, opt-in via
   ``--flows``) — per-family message-flow automata extracted from the
   AST and checked against each protocol's declared
   :class:`~repro.protocols.spec.ProtocolSpec` (SB601-SB604).

Rule codes are documented in ``docs/analysis.md``; accepted findings live
in ``lint-baseline.txt`` at the repo root.
"""

from repro.analysis.determinism import lint_determinism, lint_source
from repro.analysis.findings import Baseline, Finding, RULES
from repro.analysis.flows import lint_flows
from repro.analysis.group_check import check_group_order
from repro.analysis.handler_lint import lint_handlers

__all__ = [
    "Baseline",
    "Finding",
    "RULES",
    "check_group_order",
    "lint_determinism",
    "lint_flows",
    "lint_handlers",
    "lint_source",
]
