"""Delta-minimize a failing schedule to its shortest failing core.

Classic ddmin over the schedule's *non-default decisions* (tie-break picks
other than 0, nonzero delays): try removing chunks of decisions, keep any
reduction that still reproduces the original violation code, then finish
with a one-at-a-time greedy pass.  The minimized schedule is re-run once
more at the end so the returned result is the trace that actually ships.

:func:`ddmin` is the generic core — a list of items plus a ``reproduces``
predicate — shared with the fault-injection campaign (``repro.faults``),
which shrinks failing :class:`~repro.faults.plan.FaultPlan` fault lists
with the exact same algorithm.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, TypeVar

_Item = TypeVar("_Item")

from repro.analysis.explore.controller import Schedule
from repro.analysis.explore.driver import ScheduleResult, run_schedule
from repro.analysis.explore.mutations import Mutation
from repro.analysis.explore.scenarios import Scenario

#: one non-default decision: ("tie", choice point, pick) or ("delay", send, extra)
_Decision = Tuple[str, int, int]


def _decisions(schedule: Schedule) -> List[_Decision]:
    out: List[_Decision] = []
    for k, pick in enumerate(schedule.ties):
        if pick:
            out.append(("tie", k, pick))
    for idx in sorted(schedule.delays):
        if schedule.delays[idx]:
            out.append(("delay", idx, schedule.delays[idx]))
    return out


def _assemble(decisions: List[_Decision]) -> Schedule:
    ties: List[int] = []
    delays = {}
    for kind, key, value in decisions:
        if kind == "tie":
            if len(ties) <= key:
                ties.extend([0] * (key + 1 - len(ties)))
            ties[key] = value
        else:
            delays[key] = value
    return Schedule(ties=ties, delays=delays)


def ddmin(items: List[_Item],
          reproduces: Callable[[List[_Item]], bool]) -> List[_Item]:
    """Shrink ``items`` to a small sublist for which ``reproduces`` holds.

    The caller owns the run budget: ``reproduces`` must simply return
    False once its budget is exhausted, and the best list found so far is
    returned.  The input list is assumed to reproduce; the result always
    does (it is never grown, only shrunk).
    """
    current = list(items)
    # ddmin proper: remove complement chunks at increasing granularity.
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate != current and reproduces(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0
            else:
                start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    # Greedy single-item sweep to catch stragglers.
    i = 0
    while i < len(current):
        candidate = current[:i] + current[i + 1:]
        if reproduces(candidate):
            current = candidate
        else:
            i += 1
    return current


def minimize_schedule(scenario: Scenario,
                      schedule: Schedule,
                      mutation: Optional[Mutation] = None, *,
                      target_code: Optional[str] = None,
                      max_runs: int = 200) -> ScheduleResult:
    """Shrink ``schedule`` while it still triggers ``target_code``.

    ``target_code`` defaults to the first violation code of the original
    run.  Returns the result of re-running the minimized schedule (which
    therefore carries the violation evidence for the trace).
    """
    runs = 0

    def reproduces(candidate: List[_Decision]) -> bool:
        nonlocal runs, target_code
        if runs >= max_runs:
            return False
        runs += 1
        result = run_schedule(scenario, _assemble(candidate), mutation)
        return target_code in result.codes

    if target_code is None:
        baseline = run_schedule(scenario, schedule, mutation)
        runs += 1
        if not baseline.failed:
            return baseline  # nothing to minimize; caller sees the clean run
        target_code = baseline.codes[0]

    current = ddmin(_decisions(schedule), reproduces)
    return run_schedule(scenario, _assemble(current), mutation)


__all__ = ["ddmin", "minimize_schedule"]
