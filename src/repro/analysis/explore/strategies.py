"""Exploration strategies: exhaustive DFS and seeded random sampling.

*Exhaustive* walks the tie-break decision tree depth-first by prefix
extension: run the empty schedule, learn the branching factor at every
choice point it encountered, then for each choice point within ``depth``
enqueue the non-default alternatives.  Each decision vector is generated
by exactly one parent prefix, so the walk never runs a schedule twice.
Delays stay off: tie-breaks already cover every same-cycle ordering, and
the tree stays small enough to finish within the CI budget.

*Random* draws both tie-breaks and (optionally) bounded delivery delays
from per-iteration :class:`DeterministicRng` streams, so any iteration of
any seed is independently reproducible; the realized schedule in the
result replays without the RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.explore.controller import Schedule
from repro.analysis.explore.driver import ScheduleResult, run_schedule
from repro.analysis.explore.mutations import Mutation
from repro.analysis.explore.scenarios import Scenario
from repro.engine.rng import DeterministicRng


@dataclass
class ExplorationReport:
    """Outcome of one exploration sweep over one scenario."""

    scenario: Scenario
    mode: str                                #: "exhaustive" | "random" | "delay"
    schedules_run: int
    violation: Optional[ScheduleResult] = None   #: first failing run, if any
    mutation: Optional[str] = None

    @property
    def clean(self) -> bool:
        return self.violation is None


def explore_exhaustive(scenario: Scenario,
                       mutation: Optional[Mutation] = None, *,
                       max_schedules: int = 512,
                       depth: int = 12) -> ExplorationReport:
    """DFS over tie-break vectors, bounded by depth and schedule count.

    ``depth`` caps which choice points may deviate from the default order;
    ``max_schedules`` caps total runs so a mutated protocol with a huge
    tree still fails fast in CI.
    """
    frontier: List[List[int]] = [[]]
    runs = 0
    while frontier and runs < max_schedules:
        ties = frontier.pop()
        result = run_schedule(scenario, Schedule(ties=list(ties)),
                              mutation)
        runs += 1
        if result.failed:
            return ExplorationReport(
                scenario=scenario, mode="exhaustive", schedules_run=runs,
                violation=result, mutation=result.mutation)
        # Extend only at choice points at/after this vector's length: each
        # deeper vector then has a unique generating prefix (no dup runs).
        horizon = min(len(result.choice_counts), depth)
        for k in range(len(ties), horizon):
            for alt in range(result.choice_counts[k] - 1, 0, -1):
                frontier.append(ties + [0] * (k - len(ties)) + [alt])
    return ExplorationReport(
        scenario=scenario, mode="exhaustive", schedules_run=runs,
        mutation=mutation.name if mutation is not None else None)


def explore_random(scenario: Scenario,
                   mutation: Optional[Mutation] = None, *,
                   n_schedules: int = 64,
                   seed: int = 0,
                   with_delays: bool = False,
                   delay_prob: float = 0.15,
                   max_delay: int = 24) -> ExplorationReport:
    """Seeded random sampling; ``with_delays`` adds delay-bounded jitter."""
    mode = "delay" if with_delays else "random"
    for i in range(n_schedules):
        root = DeterministicRng(seed, f"explore/{i}")
        tie_rng = root.split("ties")
        delay_rng = root.split("delays") if with_delays else None
        result = run_schedule(
            scenario, None, mutation, tie_rng=tie_rng, delay_rng=delay_rng,
            delay_prob=delay_prob, max_delay=max_delay)
        if result.failed:
            return ExplorationReport(
                scenario=scenario, mode=mode, schedules_run=i + 1,
                violation=result, mutation=result.mutation)
    return ExplorationReport(
        scenario=scenario, mode=mode, schedules_run=n_schedules,
        mutation=mutation.name if mutation is not None else None)


__all__ = ["ExplorationReport", "explore_exhaustive", "explore_random"]
