"""Run one schedule against one scenario: the model checker's inner loop.

Stateless-model-checking style: every schedule gets a freshly built
machine, the controller replays (or extends) the decision vector, the
invariant monitor watches the run, and the result carries the *realized*
schedule so any run — exhaustive, random or replayed — reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.analysis.explore.controller import Schedule, ScheduleController
from repro.analysis.explore.invariants import ExploreViolation, InvariantMonitor
from repro.analysis.explore.mutations import Mutation
from repro.analysis.explore.scenarios import Scenario, build_machine
from repro.engine.rng import DeterministicRng
from repro.obs.bus import InstrumentationBus, attach_bus


@dataclass
class ScheduleResult:
    """Everything one schedule run produced."""

    scenario: Scenario
    schedule: Schedule                 #: realized decisions, canonical form
    violations: List[ExploreViolation] = field(default_factory=list)
    choice_counts: List[int] = field(default_factory=list)
    sends: int = 0                     #: messages injected
    cycles: int = 0                    #: simulated cycles at end of run
    mutation: Optional[str] = None     #: mutation name, if one was applied

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    @property
    def codes(self) -> List[str]:
        """Violation rule codes, first occurrence order, deduplicated."""
        seen: List[str] = []
        for v in self.violations:
            if v.code not in seen:
                seen.append(v.code)
        return seen


def run_schedule(scenario: Scenario,
                 schedule: Optional[Schedule] = None,
                 mutation: Optional[Mutation] = None, *,
                 tie_rng: Optional[DeterministicRng] = None,
                 delay_rng: Optional[DeterministicRng] = None,
                 delay_prob: float = 0.15,
                 max_delay: int = 24,
                 bus: Optional[InstrumentationBus] = None) -> ScheduleResult:
    """Build, patch, monitor, run — and collect what happened.

    ``bus`` attaches an instrumentation bus (repro.obs) to the freshly
    built machine, so a replayed counterexample can be traced and its
    commit critical path analyzed.
    """
    machine = build_machine(scenario)
    if mutation is not None:
        mutation.apply(machine)
    if bus is not None:
        attach_bus(machine, bus)
    monitor = InvariantMonitor(machine,
                               expected_per_core=scenario.chunks_per_core)
    controller = ScheduleController(
        schedule, tie_rng=tie_rng, delay_rng=delay_rng,
        delay_prob=delay_prob, max_delay=max_delay)
    controller.attach(machine)
    try:
        machine.run(max_events=scenario.max_events, prewarm=False)
    except RuntimeError as err:
        monitor.note_abnormal_end(str(err))
    else:
        monitor.finalize()
    return ScheduleResult(
        scenario=scenario,
        schedule=controller.realized.trimmed(),
        violations=list(monitor.violations),
        choice_counts=list(controller.choice_counts),
        sends=controller.sends,
        cycles=int(machine.sim.now),
        mutation=mutation.name if mutation is not None else None,
    )


__all__ = ["ScheduleResult", "run_schedule"]
