"""Schedule exploration: a stateless model checker for the real engines.

The packages under here drive the *actual* protocol implementations (not an
abstract model) through systematically varied message interleavings on tiny
configurations, checking serializability, invalidation completeness,
deadlock/livelock freedom and commit accounting on every schedule.  A
violating schedule is emitted as a JSON trace, delta-minimized to the
shortest failing decision vector, and can be replayed deterministically
with ``python -m repro explore --replay``.

See ``docs/verification.md`` for the exploration modes, the SB4xx rule
codes and the trace format.
"""

from __future__ import annotations

from repro.analysis.explore.controller import Schedule, ScheduleController
from repro.analysis.explore.driver import ScheduleResult, run_schedule
from repro.analysis.explore.invariants import ExploreViolation, InvariantMonitor
from repro.analysis.explore.minimize import ddmin, minimize_schedule
from repro.analysis.explore.mutations import (MUTATIONS, NOMINAL_MUTATIONS,
                                              Mutation)
from repro.analysis.explore.scenarios import SCENARIOS, Scenario, build_machine
from repro.analysis.explore.strategies import (
    ExplorationReport,
    explore_exhaustive,
    explore_random,
)
from repro.analysis.explore.trace import load_trace, replay_trace, save_trace

__all__ = [
    "ExplorationReport",
    "ExploreViolation",
    "InvariantMonitor",
    "MUTATIONS",
    "Mutation",
    "NOMINAL_MUTATIONS",
    "SCENARIOS",
    "Scenario",
    "Schedule",
    "ScheduleController",
    "ScheduleResult",
    "build_machine",
    "ddmin",
    "explore_exhaustive",
    "explore_random",
    "load_trace",
    "minimize_schedule",
    "replay_trace",
    "run_schedule",
    "save_trace",
]
