"""Tiny, fully pinned machine configurations for schedule exploration.

A :class:`Scenario` describes a 2–4 core machine running a hand-built
micro-workload whose page homes are premapped, so every run of the same
scenario sees the identical program and memory layout and the *only*
degree of freedom is the schedule.

Two access patterns cover the conflict classes the protocol must survive:

* ``cross`` — every core blind-writes one shared line (homed at the
  highest-numbered directory) and reads a private line homed at its own
  tile.  Groups span {own dir, shared dir} with *distinct leaders*, so
  W∩W group collisions pile up at the shared directory.
* ``mixed`` — even cores write the shared line, odd cores read it.  The
  readers register as sharers, so winning commits send bulk invalidations
  that squash reader chunks: the R∩W, OCI-recall and (with ``oci=False``)
  conservative-nack paths all fire.

Commit conflicts need concurrency, not luck: all cores start at cycle 0
with identically shaped chunks, so their commit requests overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.config import ProtocolKind, SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.harness.runner import Machine

#: page numbers far from anything else the simulator touches
_SHARED_PAGE = 64
_PRIVATE_PAGE_BASE = 128

_PROTO_BY_VALUE = {p.value: p for p in ProtocolKind}


@dataclass(frozen=True)
class Scenario:
    """One explorable configuration: machine + micro-workload, fully pinned."""

    name: str
    protocol: ProtocolKind = ProtocolKind.SCALABLEBULK
    n_cores: int = 3
    chunks_per_core: int = 2
    oci: bool = True
    seed: int = 2010
    pattern: str = "mixed"          #: "cross" or "mixed" (see module docstring)
    max_events: int = 150_000       #: per-schedule livelock bound

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "protocol": self.protocol.value,
            "n_cores": self.n_cores,
            "chunks_per_core": self.chunks_per_core,
            "oci": self.oci,
            "seed": self.seed,
            "pattern": self.pattern,
            "max_events": self.max_events,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Scenario":
        return cls(
            name=str(data["name"]),
            protocol=_PROTO_BY_VALUE[str(data["protocol"])],
            n_cores=int(data["n_cores"]),
            chunks_per_core=int(data["chunks_per_core"]),
            oci=bool(data["oci"]),
            seed=int(data["seed"]),
            pattern=str(data["pattern"]),
            max_events=int(data["max_events"]),
        )


@dataclass
class _SpecSource:
    """Per-core chunk queues behind the ``next_spec`` callback."""

    queues: Dict[int, List[ChunkSpec]] = field(default_factory=dict)

    def __call__(self, core_id: int) -> Optional[ChunkSpec]:
        queue = self.queues.get(core_id)
        if not queue:
            return None
        return queue.pop(0)


def _writes_shared(pattern: str, core_id: int) -> bool:
    if pattern == "cross":
        return True
    if pattern == "mixed":
        return core_id % 2 == 0
    raise ValueError(f"unknown scenario pattern {pattern!r}")


def _build_specs(scenario: Scenario, config: SystemConfig) -> _SpecSource:
    shared_addr = _SHARED_PAGE * config.page_bytes
    source = _SpecSource()
    for core in range(scenario.n_cores):
        is_writer = _writes_shared(scenario.pattern, core)
        queue: List[ChunkSpec] = []
        for k in range(scenario.chunks_per_core):
            private_addr = ((_PRIVATE_PAGE_BASE + core) * config.page_bytes
                            + k * config.line_bytes)
            accesses = [
                ChunkAccess(gap=2, byte_addr=private_addr, is_write=False),
                ChunkAccess(gap=2, byte_addr=shared_addr, is_write=is_writer),
            ]
            queue.append(ChunkSpec(n_instructions=10, accesses=accesses))
        source.queues[core] = queue
    return source


def build_machine(scenario: Scenario) -> Machine:
    """A fresh, fully deterministic machine for one schedule run."""
    config = SystemConfig(
        n_cores=scenario.n_cores,
        protocol=scenario.protocol,
        oci=scenario.oci,
        seed=scenario.seed,
    )
    machine = Machine(config, next_spec=_build_specs(scenario, config))
    # Pin every page home: a first-touch race would make the memory layout
    # itself schedule-dependent, and then schedules would not be comparable.
    machine.page_mapper.premap(_SHARED_PAGE, scenario.n_cores - 1)
    for core in range(scenario.n_cores):
        machine.page_mapper.premap(_PRIVATE_PAGE_BASE + core, core)
    return machine


def _scalablebulk_scenarios() -> List[Scenario]:
    return [
        Scenario(name="pair", n_cores=2, pattern="mixed"),
        Scenario(name="cross2", n_cores=2, pattern="cross"),
        Scenario(name="cross3", n_cores=3, pattern="cross"),
        Scenario(name="mixed3", n_cores=3, pattern="mixed"),
        Scenario(name="mixed4", n_cores=4, pattern="mixed"),
        Scenario(name="nack2", n_cores=2, pattern="mixed", oci=False),
        Scenario(name="nack3", n_cores=3, pattern="mixed", oci=False),
    ]


#: every named scenario, keyed by name
SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in _scalablebulk_scenarios() + [
        Scenario(name="tcc3", protocol=ProtocolKind.TCC, n_cores=3),
        Scenario(name="bulksc3", protocol=ProtocolKind.BULKSC, n_cores=3),
        Scenario(name="seq3", protocol=ProtocolKind.SEQ, n_cores=3),
    ]
}

#: the bounded CI tier: exhaustively swept scenarios (small choice trees)
SMOKE_SCENARIOS: List[str] = [
    "pair", "cross2", "cross3", "mixed3", "nack3", "tcc3", "bulksc3",
]

__all__ = ["SCENARIOS", "SMOKE_SCENARIOS", "Scenario", "build_machine"]
