"""The schedule controller: replayable tie-break and delay decisions.

A :class:`Schedule` is a pure decision vector:

* ``ties[k]`` — at the *k*-th same-cycle choice point, the index (into the
  filtered candidate list, see :func:`reorder_candidates`) of the event to
  run first.  ``0`` is always the default insertion order, so the empty
  schedule reproduces the seed behaviour byte for byte.
* ``delays[i]`` — extra delivery cycles added to the *i*-th message send of
  the run.  Send index — not ``Message.uid`` — keys the decision because
  uids come from a process-global counter and are not stable across the
  many runs a single exploration performs.

:class:`ScheduleController` turns a schedule into the two engine hooks
(``Simulator.tie_breaker`` and ``Network.delay_hook``) and records the
*realized* schedule — including any decisions drawn from the exploration
RNGs past the end of the prescribed vector — so every run, random or not,
can be replayed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.engine.events import Event
from repro.engine.rng import DeterministicRng
from repro.network.message import Message


def reorder_candidates(batch: List[Event]) -> List[int]:
    """Indices of events in ``batch`` that may legally run first.

    ``batch`` is the set of live events due at the current cycle, in
    insertion (seq) order.  Any non-delivery event is a candidate.  Of the
    message deliveries, only the *earliest* per (src, dst) flow is a
    candidate: real links do not reorder packets between the same pair of
    endpoints, and the conformance rules of Tables 4/5 assume exactly that
    FIFO property.

    Index 0 is always a candidate, so picking ``candidates[0]`` is always
    the default insertion order.
    """
    out: List[int] = []
    seen_flows: Set[Tuple[Any, Any]] = set()
    for i, ev in enumerate(batch):
        tag = ev.tag
        if isinstance(tag, tuple) and len(tag) == 4 and tag[0] == "deliver":
            flow = (tag[1], tag[2])
            if flow in seen_flows:
                continue
            seen_flows.add(flow)
        out.append(i)
    return out


@dataclass
class Schedule:
    """One reproducible scheduling decision vector (see module docstring)."""

    ties: List[int] = field(default_factory=list)
    delays: Dict[int, int] = field(default_factory=dict)

    def decision_count(self) -> int:
        """Number of non-default decisions (what minimization shrinks)."""
        return (sum(1 for t in self.ties if t)
                + sum(1 for v in self.delays.values() if v))

    def trimmed(self) -> "Schedule":
        """Drop trailing default picks and zero delays (canonical form)."""
        ties = list(self.ties)
        while ties and ties[-1] == 0:
            ties.pop()
        return Schedule(ties=ties,
                        delays={k: v for k, v in self.delays.items() if v})

    def to_json(self) -> Dict[str, Any]:
        return {
            "ties": list(self.ties),
            "delays": [[k, v] for k, v in sorted(self.delays.items())],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Schedule":
        ties = [int(t) for t in data.get("ties", ())]
        delays = {int(k): int(v) for k, v in data.get("delays", ())}
        return cls(ties=ties, delays=delays)


class ScheduleController:
    """Bridges a :class:`Schedule` to the simulator/network hooks.

    Decisions beyond the prescribed schedule come from the optional
    exploration RNGs (random / delay-bounded sampling); with no RNGs the
    controller extends the schedule with defaults.  Either way every
    decision taken is appended to :attr:`realized`.
    """

    def __init__(self, schedule: Optional[Schedule] = None, *,
                 tie_rng: Optional[DeterministicRng] = None,
                 delay_rng: Optional[DeterministicRng] = None,
                 delay_prob: float = 0.15, max_delay: int = 24) -> None:
        self.schedule = schedule if schedule is not None else Schedule()
        self.tie_rng = tie_rng
        self.delay_rng = delay_rng
        self.delay_prob = delay_prob
        self.max_delay = max_delay
        #: every decision actually taken this run (replayable)
        self.realized = Schedule()
        #: candidate count at each choice point (DFS branching factors)
        self.choice_counts: List[int] = []
        self._sends = 0

    # ------------------------------------------------------------------
    def attach(self, machine: Any) -> None:
        """Install both hooks on a freshly built machine."""
        machine.sim.tie_breaker = self.tie_break
        machine.network.delay_hook = self.delay

    # ------------------------------------------------------------------
    # Simulator.tie_breaker
    # ------------------------------------------------------------------
    def tie_break(self, batch: List[Event]) -> int:
        cands = reorder_candidates(batch)
        if len(cands) <= 1:
            # Not a choice point: every reordering is FIFO-equivalent.
            return cands[0]
        k = len(self.choice_counts)
        self.choice_counts.append(len(cands))
        if k < len(self.schedule.ties):
            pick = self.schedule.ties[k]
        elif self.tie_rng is not None:
            pick = self.tie_rng.randint(0, len(cands) - 1)
        else:
            pick = 0
        if not 0 <= pick < len(cands):
            pick = 0  # schedule from a different prefix: clamp to default
        self.realized.ties.append(pick)
        return cands[pick]

    # ------------------------------------------------------------------
    # Network.delay_hook
    # ------------------------------------------------------------------
    def delay(self, msg: Message, latency: int) -> int:
        idx = self._sends
        self._sends += 1
        extra = self.schedule.delays.get(idx)
        if extra is None:
            if (self.delay_rng is not None
                    and self.max_delay > 0
                    and self.delay_rng.bernoulli(self.delay_prob)):
                extra = self.delay_rng.randint(1, self.max_delay)
            else:
                extra = 0
        if extra:
            self.realized.delays[idx] = extra
        return extra

    @property
    def sends(self) -> int:
        """Messages injected this run (the delay-decision key space)."""
        return self._sends


__all__ = ["Schedule", "ScheduleController", "reorder_candidates"]
