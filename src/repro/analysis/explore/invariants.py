"""Per-schedule invariants, reported under the SB4xx rule codes.

The monitor composes the existing runtime validators with checks that only
matter under adversarial scheduling:

* **co-held incompatibility** (SB401) — no directory may simultaneously
  hold two groups whose signatures collide; the collision rule must have
  failed one of them.  Checked after every admission/confirmation with the
  directory's own ``incompatible_with`` test, so the unmutated protocol
  cannot false-positive: admission runs the identical test.
* **doomed-chunk commit** (SB401) — when a group confirms, any *other*
  core's active chunk that has consumed a line the group is overwriting
  while being a **registered sharer** of it is doomed: the protocol
  promises to invalidate registered sharers and squash their conflicting
  chunks, so that attempt — tag including the squash generation — must
  never reach ``on_commit_success``.  The exemptions keep the check
  exact.  A chunk whose own group already formed is serialized *before*
  the committer.  A line whose read is still in flight is served the
  post-commit value.  Pure write/write overlap does not doom: blind
  writes serialize behind the committer.  And an *unregistered* stale
  copy (the fill crossed a concurrent commit that reset the sharer list)
  is excluded because the execution stays serializable — a chunk that
  only read the line's previous version orders legally before the
  committer, which is not something the commit-timestamp order can see.
* **commit accounting** (SB406) — at quiescence every core committed
  exactly its scripted number of chunks, exactly once per (core, seq),
  with no unresolved squash-pending (OCI alias) chunk.

The invalidation oracle maps to SB402 — filtered to the chunks the same
confirm doomed, because the oracle's global view counts a conflict the
moment a line enters a chunk's read-set, one message round-trip before
the data (fresh or stale) actually arrives and regardless of sharer
registration.  A
deadlocked quiescence maps to SB403, an exceeded event budget to SB404,
and every runtime conformance break (Tables 4/5) to SB405.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from repro.core.cst import CstEntry
from repro.core.directory_engine import ScalableBulkDirectory
from repro.validation.oracle import attach_oracle
from repro.validation.orderings import attach_conformance_checker


@dataclass(frozen=True)
class ExploreViolation:
    """One invariant break observed during a schedule run."""

    code: str     #: SB4xx rule code (see repro.analysis.findings.RULES)
    rule: str     #: short rule name
    time: int     #: simulated cycle of detection
    detail: str   #: what broke, specifically

    def to_json(self) -> Dict[str, Any]:
        return {"code": self.code, "rule": self.rule,
                "time": self.time, "detail": self.detail}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ExploreViolation":
        return cls(code=str(data["code"]), rule=str(data["rule"]),
                   time=int(data["time"]), detail=str(data["detail"]))


class InvariantMonitor:
    """Attaches every checker to a machine and collects violations."""

    def __init__(self, machine: Any, expected_per_core: int) -> None:
        self.machine = machine
        self.expected_per_core = expected_per_core
        self.violations: List[ExploreViolation] = []
        # The conversation rules and the invalidation oracle encode
        # ScalableBulk semantics (leaders, groups, CSTs); the baseline
        # protocols reuse some message types with different roles, so
        # those two validators only attach to ScalableBulk machines.
        # Commit accounting and deadlock/livelock apply to every protocol.
        self._scalablebulk = any(
            isinstance(d, ScalableBulkDirectory) for d in machine.directories)
        self.conformance = (attach_conformance_checker(machine)
                            if self._scalablebulk else None)
        self.oracle = attach_oracle(machine) if self._scalablebulk else None
        #: chunk tags (core, seq, gen) whose group formed — exempt from doom
        self._confirmed_tags: Set[Any] = set()
        #: doomed attempt tag -> why it must not commit
        self._doomed: Dict[Any, str] = {}
        #: (core, seq) -> commit_success deliveries observed
        self._commit_counts: Dict[Tuple[int, int], int] = {}
        self._coheld_seen: Set[Tuple[int, Any, Any]] = set()
        for directory in machine.directories:
            if isinstance(directory, ScalableBulkDirectory):
                self._wrap_directory(directory)
        for core in machine.cores:
            self._wrap_core(core)

    # ------------------------------------------------------------------
    def _flag(self, code: str, rule: str, detail: str) -> None:
        self.violations.append(ExploreViolation(
            code=code, rule=rule, time=int(self.machine.sim.now),
            detail=detail))

    def _cached(self, core: Any, line: int) -> bool:
        """Is ``line`` present in the core's local hierarchy right now?"""
        return (core.hierarchy.l1.peek(line) is not None
                or core.hierarchy.l2.peek(line) is not None)

    # ------------------------------------------------------------------
    # ScalableBulk directory taps
    # ------------------------------------------------------------------
    def _wrap_directory(self, directory: ScalableBulkDirectory) -> None:
        inner_advance = directory._maybe_advance
        inner_confirm = directory._confirm_group

        def advance(entry: CstEntry) -> None:
            inner_advance(entry)
            self._scan_coheld(directory)

        def confirm(entry: CstEntry) -> None:
            self._confirmed_tags.add(entry.cid[0])
            # Doom-marking must read the sharer lists *before* the commit
            # applies (apply_commit resets them to just the writer).
            doomed_now = self._mark_doomed(entry)
            self._scan_coheld(directory)
            oracle = self.oracle
            oracle_mark = len(oracle.violations) if oracle is not None else 0
            inner_confirm(entry)
            if oracle is not None:
                self._filter_oracle(oracle_mark, doomed_now)

        directory._maybe_advance = advance
        directory._confirm_group = confirm

    def _scan_coheld(self, directory: ScalableBulkDirectory) -> None:
        held = [e for e in directory.cst.values() if e.held]
        for i, a in enumerate(held):
            for b in held[i + 1:]:
                if not a.incompatible_with(b):
                    continue
                key = (directory.dir_id, a.cid, b.cid)
                if key in self._coheld_seen:
                    continue
                self._coheld_seen.add(key)
                self._flag(
                    "SB401", "co-held incompatible groups",
                    f"dir {directory.dir_id} holds {a.cid} and {b.cid} "
                    f"although their signatures collide")

    def _registered(self, core_id: int, line: int) -> bool:
        """Is ``core_id`` a registered sharer/owner of ``line`` at its home?"""
        config = self.machine.config
        page = line * config.line_bytes // config.page_bytes
        home = self.machine.page_mapper.lookup(page)
        if home is None:
            return False
        info = self.machine.directories[home].lines.get(line)
        if info is None:
            return False
        return core_id in info.sharers or info.owner == core_id

    def _mark_doomed(self, entry: CstEntry) -> Set[Any]:
        """Mark chunks this confirm dooms; returns the tags marked now."""
        marked: Set[Any] = set()
        write_lines = set(entry.write_lines)
        if not write_lines:
            return marked
        for core in self.machine.cores:
            if core.core_id == entry.proc:
                continue
            for chunk in core.active_chunks():
                if chunk.tag in self._confirmed_tags:
                    continue  # its group formed first: ordered before us
                stale = {line for line in write_lines & chunk.read_lines
                         if self._cached(core, line)
                         and self._registered(core.core_id, line)}
                if stale:
                    marked.add(chunk.tag)
                    self._doomed.setdefault(
                        chunk.tag,
                        f"it read lines {sorted(stale)[:4]} overwritten by "
                        f"commit {entry.cid}")
        return marked

    def _filter_oracle(self, mark: int, doomed_now: Set[Any]) -> None:
        """Keep only oracle violations whose victim this confirm doomed."""
        if self.oracle is None:
            return
        fresh = self.oracle.violations[mark:]
        del self.oracle.violations[mark:]
        self.oracle.violations.extend(
            v for v in fresh if v.conflicting_tag in doomed_now)

    # ------------------------------------------------------------------
    # Core taps: doomed commits, double commits
    # ------------------------------------------------------------------
    def _wrap_core(self, core: Any) -> None:
        inner_success = core.on_commit_success

        def on_commit_success(chunk: Any) -> None:
            doom = self._doomed.get(chunk.tag)
            if doom is not None:
                self._flag(
                    "SB401", "doomed chunk committed",
                    f"P{chunk.tag.core} committed {chunk.tag} although {doom}")
            ident = (chunk.tag.core, chunk.tag.seq)
            count = self._commit_counts.get(ident, 0) + 1
            self._commit_counts[ident] = count
            if count > 1:
                self._flag(
                    "SB406", "double commit",
                    f"chunk {ident} reported committed {count} times")
            inner_success(chunk)

        core.on_commit_success = on_commit_success

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def note_abnormal_end(self, message: str) -> None:
        """Map the runner's RuntimeErrors to deadlock/livelock findings."""
        self._drain_validators()
        if "max_events" in message:
            self._flag("SB404", "livelock", message)
        else:
            self._flag("SB403", "deadlock", message)

    def finalize(self) -> None:
        """Run the quiescence-time checks after a normal completion."""
        self._drain_validators()
        for core in self.machine.cores:
            committed = int(core.stats.chunks_committed)
            if committed != self.expected_per_core:
                self._flag(
                    "SB406", "commit count mismatch",
                    f"P{core.core_id} committed {committed} chunks, "
                    f"expected {self.expected_per_core}")
            for chunk in core.active_chunks():
                if chunk.squash_pending:
                    self._flag(
                        "SB406", "unresolved squash-pending chunk",
                        f"P{core.core_id} quiesced with {chunk.tag} still "
                        f"awaiting its OCI alias outcome")

    def _drain_validators(self) -> None:
        if self.oracle is not None:
            for v in self.oracle.violations:
                self._flag("SB402", "lost invalidation", str(v))
            self.oracle.violations.clear()
        if self.conformance is not None:
            for ov in self.conformance.violations:
                self._flag("SB405", ov.rule, str(ov))
            self.conformance.violations.clear()


__all__ = ["ExploreViolation", "InvariantMonitor"]
