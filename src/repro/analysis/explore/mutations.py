"""Injected protocol bugs that prove the explorer has teeth.

Each mutation patches *instance* methods of the freshly built machine's
ScalableBulk directories — never the shared class or ``CstEntry`` — so the
invariant monitor keeps checking against the unmutated semantics while the
protocol under test misbehaves.  The CI smoke tier requires every mutation
here to be caught by its paired scenario within the bounded sweep.

The three bugs (from the issue):

* ``drop-commit-nack`` — the directory ignores BULK_INV_NACK from a
  conservative (non-OCI) processor.  The invalidation is never resent, the
  nacking processor's ack never arrives, the leader holds its module
  forever while everyone else retries into it: livelock (SB404).
* ``skip-w-intersection`` — the admission test omits the W∩W signature
  probe, so two blind writers of the same line are co-held (SB401) and one
  of them commits without invalidating or squashing the other.
* ``collision-wrong-winner`` — a collision is resolved toward the
  *newcomer* when its leader has the higher ring priority, revoking a
  group the module already admitted.  Revocation is unsound by design
  (Section 3.2.1: grants are irrevocable): a revoked group may already be
  confirmed elsewhere, so its processor can observe both outcomes (SB405)
  or the protocol wedges on the orphaned state (SB403/404).

A fourth bug is registered with ``chaos_only=True`` and excluded from the
nominal exploration suites (``--mutations`` / ``--ci-smoke``):

* ``reservation-leak`` — a module never releases its starvation
  reservation once the reserved chunk commits (Section 3.2.2).  The bug
  is *invisible* until a reservation actually forms, which takes
  ``starvation_max_squashes`` genuine collisions of one chunk — far more
  than the tiny exploration scenarios produce under nominal timing.  The
  fault-injection campaign (``repro.faults``) reaches it with a squash
  storm: the reservation forms, the reserved chunk commits, the stale
  reservation then defers every later group forever (SB403/SB404).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.core.cst import CstEntry
from repro.core.directory_engine import ScalableBulkDirectory
from repro.network.message import Message


@dataclass(frozen=True)
class Mutation:
    """One injectable protocol bug."""

    name: str
    description: str
    scenario: str                    #: scenario name the CI sweep pairs it with
    expected: str                    #: SB4xx codes that count as detection
    apply: Callable[[Any], None]     #: patches a freshly built machine
    #: True: only the chaos campaign can reach the bug; the nominal
    #: exploration suites skip it (and a test asserts they would miss it).
    chaos_only: bool = False


def _sb_directories(machine: Any) -> List[ScalableBulkDirectory]:
    dirs = [d for d in machine.directories
            if isinstance(d, ScalableBulkDirectory)]
    if not dirs:
        raise ValueError(
            "mutations require a ScalableBulk machine; got protocol "
            f"{machine.config.protocol.value!r}")
    return dirs


def apply_drop_commit_nack(machine: Any) -> None:
    for directory in _sb_directories(machine):
        def on_nack(msg: Message) -> None:
            del msg  # bug: the nack vanishes; the inval is never resent
        directory._on_bulk_inv_nack = on_nack


def apply_skip_w_intersection(machine: Any) -> None:
    for directory in _sb_directories(machine):
        def collides(entry: CstEntry, other: CstEntry) -> bool:
            # Bug: only R-signature probes; the W/W intersection of
            # CstEntry.incompatible_with is skipped entirely.
            if entry.w_sig is None or other.w_sig is None:
                return False
            for line in entry.write_lines:
                if other.r_sig.contains(line):
                    return True
            for line in other.write_lines:
                if entry.r_sig.contains(line):
                    return True
            return False
        directory._collides = collides


def apply_collision_wrong_winner(machine: Any) -> None:
    for directory in _sb_directories(machine):
        def resolve(entry: CstEntry, other: CstEntry,
                    d: ScalableBulkDirectory = directory) -> None:
            if entry.order and other.order and entry.order[0] < other.order[0]:
                # Bug: revoke the already-admitted group in favour of the
                # newcomer whose leader has the higher ring priority.
                d._fail_group(other)
                d._maybe_advance(entry)
            else:
                d._fail_group(entry)
        directory._resolve_collision = resolve


def apply_reservation_leak(machine: Any) -> None:
    for directory in _sb_directories(machine):
        def release(cid: Any) -> None:
            del cid  # bug: the reservation (and its tally) outlive the commit
        directory._release_reservation = release


#: every mutation, keyed by name, with its paired scenario
MUTATIONS: Dict[str, Mutation] = {
    m.name: m
    for m in (
        Mutation(
            name="drop-commit-nack",
            description="directory drops BULK_INV_NACK instead of resending",
            scenario="nack3",
            expected="SB403/SB404",
            apply=apply_drop_commit_nack,
        ),
        Mutation(
            name="skip-w-intersection",
            description="admission test skips the W/W signature probe",
            scenario="cross3",
            expected="SB401/SB402",
            apply=apply_skip_w_intersection,
        ),
        Mutation(
            name="collision-wrong-winner",
            description="collision revokes the held group for a "
                        "higher-priority newcomer",
            scenario="cross3",
            expected="SB403/SB404/SB405",
            apply=apply_collision_wrong_winner,
        ),
        Mutation(
            name="reservation-leak",
            description="starvation reservation never released after the "
                        "reserved chunk commits",
            scenario="cross3",
            expected="SB403/SB404",
            apply=apply_reservation_leak,
            chaos_only=True,
        ),
    )
}

#: the nominal suites' view: every mutation exploration must catch
NOMINAL_MUTATIONS: Dict[str, Mutation] = {
    name: m for name, m in MUTATIONS.items() if not m.chaos_only
}

__all__ = ["MUTATIONS", "Mutation", "NOMINAL_MUTATIONS",
           "apply_collision_wrong_winner", "apply_drop_commit_nack",
           "apply_reservation_leak", "apply_skip_w_intersection"]
