"""``python -m repro explore``: drive the schedule-exploration checker.

Modes:

* default — explore one scenario (``--scenario``) with ``--mode``
  exhaustive (DFS over tie-breaks), random (seeded tie-break sampling) or
  delay (random plus bounded delivery delays).  Exit 1 on a violation;
  the failing schedule is minimized and written to ``--save`` (or shown).
* ``--mutate NAME`` — same, against a protocol with one injected bug.
* ``--mutations`` — the teeth test: every registered mutation must be
  *caught* on its paired scenario.  Exit 1 if any survives.
* ``--ci-smoke`` — the bounded CI tier: the unmutated smoke sweep must
  explore clean AND every mutation must be caught.
* ``--replay TRACE`` — re-run a saved trace; exit 0 iff the replay
  reproduces the trace's primary violation code.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.explore.driver import ScheduleResult
from repro.analysis.explore.minimize import minimize_schedule
from repro.analysis.explore.mutations import (MUTATIONS, NOMINAL_MUTATIONS,
                                              Mutation)
from repro.analysis.explore.scenarios import SCENARIOS, SMOKE_SCENARIOS, Scenario
from repro.analysis.explore.strategies import (
    ExplorationReport,
    explore_exhaustive,
    explore_random,
)
from repro.analysis.explore.trace import load_trace, replay_trace, save_trace, trace_json


def _explore(scenario: Scenario, mutation: Optional[Mutation],
             args: argparse.Namespace) -> ExplorationReport:
    if args.mode == "exhaustive":
        return explore_exhaustive(scenario, mutation,
                                  max_schedules=args.schedules,
                                  depth=args.depth)
    return explore_random(scenario, mutation,
                          n_schedules=args.schedules, seed=args.seed,
                          with_delays=args.mode == "delay")


def _explore_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool worker: explore one (scenario, mutation) pair.

    Returns only plain data — the exploration verdict plus, on failure,
    the (optionally minimized) counterexample in its JSON trace form —
    so results cross the process boundary without pickling any machine
    state.  Minimization runs inside the worker: it is the expensive
    part, which is exactly why it should be fanned out.
    """
    scenario = SCENARIOS[payload["scenario"]]
    mutation = MUTATIONS.get(payload["mutation"]) if payload["mutation"] else None
    args = argparse.Namespace(**payload["knobs"])
    report = _explore(scenario, mutation, args)
    out: Dict[str, Any] = {
        "scenario": payload["scenario"], "mutation": payload["mutation"],
        "clean": report.clean, "schedules_run": report.schedules_run}
    if not report.clean:
        assert report.violation is not None
        result = report.violation
        out["codes"] = list(result.codes)
        if payload["minimize"]:
            result = minimize_schedule(result.scenario, result.schedule,
                                       MUTATIONS.get(result.mutation or ""))
        out["trace"] = trace_json(result)
    return out


def _knobs(args: argparse.Namespace) -> Dict[str, Any]:
    return {"mode": args.mode, "schedules": args.schedules,
            "depth": args.depth, "seed": args.seed}


def _emit_violation_data(data: Dict[str, Any],
                         args: argparse.Namespace) -> None:
    """Render a worker-produced JSON counterexample (already minimized)."""
    trace = data["trace"]
    if args.save:
        with open(args.save, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"trace written to {args.save}")
    if args.format == "json":
        print(json.dumps(trace, indent=2, sort_keys=True))
    else:
        for v in trace["violations"]:
            print(f"  {v['code']} [{v['rule']}] t={v['time']}: {v['detail']}")
        sched = trace["schedule"]
        print(f"  schedule: ties={sched['ties']} "
              f"delays={dict(sched['delays'])}")


def _emit_violation(result: ScheduleResult, args: argparse.Namespace) -> None:
    if args.minimize:
        result = minimize_schedule(result.scenario, result.schedule,
                                   MUTATIONS.get(result.mutation or ""))
    if args.save:
        save_trace(result, args.save)
        print(f"trace written to {args.save}")
    if args.format == "json":
        print(json.dumps(trace_json(result), indent=2, sort_keys=True))
    else:
        for v in result.violations:
            print(f"  {v.code} [{v.rule}] t={v.time}: {v.detail}")
        print(f"  schedule: ties={result.schedule.ties} "
              f"delays={dict(sorted(result.schedule.delays.items()))}")


def _run_mutation_suite(args: argparse.Namespace) -> int:
    from repro.harness.parallel import run_ordered
    # chaos_only mutations need fault injection to become reachable; the
    # chaos campaign (python -m repro chaos --mutation-check) owns them.
    payloads = [{"scenario": m.scenario, "mutation": name,
                 "knobs": _knobs(args), "minimize": False}
                for name, m in NOMINAL_MUTATIONS.items()]
    missed: List[str] = []

    def show(_i: int, _payload: Dict[str, Any],
             data: Dict[str, Any]) -> None:
        name = data["mutation"]
        mutation = MUTATIONS[name]
        if data["clean"]:
            print(f"MISSED  {name} on {mutation.scenario} "
                  f"({data['schedules_run']} schedules, expected "
                  f"{mutation.expected})")
            missed.append(name)
        else:
            codes = "/".join(data["codes"])
            print(f"caught  {name} on {mutation.scenario} "
                  f"({data['schedules_run']} schedules): {codes}")

    run_ordered(_explore_worker, payloads, jobs=getattr(args, "jobs", 1),
                on_result=show)
    if missed:
        print(f"{len(missed)} mutation(s) survived exploration: "
              f"{', '.join(missed)}")
        return 1
    print(f"all {len(NOMINAL_MUTATIONS)} mutations caught")
    return 0


def _run_clean_sweep(names: Sequence[str], args: argparse.Namespace) -> int:
    from repro.harness.parallel import run_ordered
    payloads = [{"scenario": name, "mutation": None, "knobs": _knobs(args),
                 "minimize": args.minimize}
                for name in names]
    failures: List[str] = []

    def show(_i: int, _payload: Dict[str, Any],
             data: Dict[str, Any]) -> None:
        name = data["scenario"]
        if data["clean"]:
            print(f"clean   {name} ({data['schedules_run']} schedules)")
            return
        failures.append(name)
        print(f"FAIL    {name}: {'/'.join(data['codes'])} after "
              f"{data['schedules_run']} schedules")
        _emit_violation_data(data, args)

    run_ordered(_explore_worker, payloads, jobs=getattr(args, "jobs", 1),
                on_result=show)
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro explore",
        description="schedule-exploration model checker for the protocol "
                    "engines (see docs/verification.md)")
    parser.add_argument("--scenario", default=None,
                        help="scenario name (see --list); default: the "
                             "CI smoke set")
    parser.add_argument("--mode", choices=("exhaustive", "random", "delay"),
                        default="exhaustive")
    parser.add_argument("--schedules", type=int, default=200,
                        help="schedule budget per scenario (default 200)")
    parser.add_argument("--depth", type=int, default=12,
                        help="exhaustive mode: deepest choice point allowed "
                             "to deviate (default 12)")
    parser.add_argument("--seed", type=int, default=0,
                        help="random/delay mode sampling seed")
    parser.add_argument("--jobs", type=int, default=1,
                        help="explore scenarios/mutations on N worker "
                             "processes (0 = all cores); per-scenario "
                             "results and exit codes are unchanged")
    parser.add_argument("--mutate", default=None, metavar="NAME",
                        help="inject one protocol bug (see --list)")
    parser.add_argument("--mutations", action="store_true",
                        help="teeth test: every mutation must be caught")
    parser.add_argument("--ci-smoke", action="store_true",
                        help="bounded CI tier: clean sweep + mutation suite")
    parser.add_argument("--replay", default=None, metavar="TRACE",
                        help="re-run a saved trace and check it reproduces; "
                             "the replay is instrumented and its commit "
                             "critical path reported")
    parser.add_argument("--trace", default=None, metavar="OUT",
                        help="with --replay: also write a Perfetto trace "
                             "of the replayed run to OUT")
    parser.add_argument("--save", default=None, metavar="PATH",
                        help="write the (minimized) failing trace here")
    parser.add_argument("--no-minimize", dest="minimize",
                        action="store_false",
                        help="keep the raw failing schedule instead of "
                             "delta-minimizing it")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and mutations, then exit")
    args = parser.parse_args(argv)
    from repro.harness.parallel import resolve_jobs
    args.jobs = resolve_jobs(args.jobs)

    if args.list:
        print("scenarios:")
        for name, s in SCENARIOS.items():
            smoke = " [smoke]" if name in SMOKE_SCENARIOS else ""
            print(f"  {name:10s} {s.protocol.value:13s} {s.n_cores} cores, "
                  f"pattern={s.pattern}, oci={s.oci}{smoke}")
        print("mutations:")
        for name, m in MUTATIONS.items():
            chaos = " [chaos-only]" if m.chaos_only else ""
            print(f"  {name:24s} on {m.scenario}: {m.description} "
                  f"(expect {m.expected}){chaos}")
        return 0

    if args.replay:
        from repro.obs.bus import InstrumentationBus
        from repro.obs.critical_path import analyze_commit_paths
        data = load_trace(args.replay)
        bus = InstrumentationBus()
        result = replay_trace(data, bus=bus)
        want = [str(v["code"]) for v in data.get("violations", ())]
        got = result.codes
        print(f"replay of {args.replay}: expected {want or 'clean'}, "
              f"got {got or 'clean'}")
        print(analyze_commit_paths(bus).render())
        if args.trace:
            from repro.obs.export import to_perfetto
            doc = to_perfetto(bus, args.trace)
            print(f"trace: {len(doc['traceEvents'])} events -> {args.trace} "
                  f"(open in ui.perfetto.dev)")
        ok = (want[0] in got) if want else not got
        return 0 if ok else 1

    if args.ci_smoke:
        sweep = _run_clean_sweep(SMOKE_SCENARIOS, args)
        suite = _run_mutation_suite(args)
        return 1 if (sweep or suite) else 0

    if args.mutations:
        return _run_mutation_suite(args)

    mutation = None
    if args.mutate is not None:
        mutation = MUTATIONS.get(args.mutate)
        if mutation is None:
            parser.error(f"unknown mutation {args.mutate!r} "
                         f"(choices: {', '.join(MUTATIONS)})")

    if args.scenario is not None:
        if args.scenario not in SCENARIOS:
            parser.error(f"unknown scenario {args.scenario!r} "
                         f"(choices: {', '.join(SCENARIOS)})")
        names: Sequence[str] = [args.scenario]
    elif mutation is not None:
        names = [mutation.scenario]
    else:
        names = SMOKE_SCENARIOS

    if mutation is not None:
        failures = 0
        for name in names:
            report = _explore(SCENARIOS[name], mutation, args)
            if report.clean:
                print(f"MISSED  {mutation.name} on {name} "
                      f"({report.schedules_run} schedules)")
                failures += 1
            else:
                assert report.violation is not None
                print(f"caught  {mutation.name} on {name}: "
                      f"{'/'.join(report.violation.codes)}")
                _emit_violation(report.violation, args)
        return 1 if failures else 0

    return _run_clean_sweep(names, args)


__all__ = ["main"]
