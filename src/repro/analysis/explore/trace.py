"""Schedule traces: the JSON counterexample format and its replayer.

A trace is self-contained: it embeds the scenario, the mutation name (if
any) and the realized schedule, so ``python -m repro explore --replay``
needs nothing but the file.  ``version`` guards the format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.analysis.explore.controller import Schedule
from repro.analysis.explore.driver import ScheduleResult, run_schedule
from repro.analysis.explore.mutations import MUTATIONS
from repro.analysis.explore.scenarios import Scenario
from repro.obs.bus import InstrumentationBus

TRACE_VERSION = 1


def trace_json(result: ScheduleResult) -> Dict[str, Any]:
    """The serializable trace for a (usually failing) schedule run."""
    return {
        "version": TRACE_VERSION,
        "scenario": result.scenario.to_json(),
        "mutation": result.mutation,
        "schedule": result.schedule.to_json(),
        "violations": [v.to_json() for v in result.violations],
        "stats": {
            "choice_points": len(result.choice_counts),
            "sends": result.sends,
            "cycles": result.cycles,
        },
    }


def save_trace(result: ScheduleResult, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_json(result), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_trace(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    version = data.get("version")
    if version != TRACE_VERSION:
        raise ValueError(
            f"trace {path} has version {version!r}; this checker "
            f"reads version {TRACE_VERSION}")
    return data


def replay_trace(data: Dict[str, Any],
                 bus: Optional[InstrumentationBus] = None) -> ScheduleResult:
    """Re-run a loaded trace's schedule on its scenario (and mutation).

    ``bus`` attaches an instrumentation bus so the replay can be exported
    and critical-path analyzed (``repro explore --replay ... --trace``).
    """
    scenario = Scenario.from_json(data["scenario"])
    mutation_name = data.get("mutation")
    mutation = None
    if mutation_name is not None:
        mutation = MUTATIONS.get(str(mutation_name))
        if mutation is None:
            raise ValueError(f"trace names unknown mutation {mutation_name!r}")
    schedule = Schedule.from_json(data["schedule"])
    return run_schedule(scenario, schedule, mutation, bus=bus)


__all__ = ["TRACE_VERSION", "load_trace", "replay_trace", "save_trace",
           "trace_json"]
