"""Cross the extracted flow automata against the declared specs.

| code  | finding |
|-------|---------|
| SB601 | a type sent to a role with no dispatch branch for it, or a
|       | dispatch branch waiting for a type nothing sends |
| SB602 | code/spec disagreement: an extracted edge the spec does not
|       | declare, or a declared edge with no implementing send |
| SB603 | a request with no static reply path back to the requester role |
| SB604 | a message-type dispatch chain with no terminal else |

Findings use the shared :class:`repro.analysis.findings.Finding` keys, so
the baseline/pragma machinery applies unchanged.  Piggy-backed types
(``PIGGYBACKED_TYPES``) never travel standalone and are exempt from
SB601/SB602 — they are checked by the SB004 carrier rules instead.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flows.automaton import (FlowAutomaton, FlowSend,
                                            extract_flow_automaton)
from repro.analysis.flows.specs import (ParsedSpec, SPEC_SOURCES, SpecError,
                                        load_spec)
from repro.analysis.handler_lint import (MESSAGE_DECLS, _piggybacked_types,
                                         _read)
from repro.network.message import ROLES


def _dangling(auto: FlowAutomaton, exempt: Set[str]) -> List[Finding]:
    """SB601: sent-but-never-handled / handled-but-never-sent."""
    out: List[Finding] = []
    first_send: Dict[Tuple[str, str], FlowSend] = {}
    sent_types: Set[str] = set()
    for send in auto.sends:
        sent_types.add(send.mtype)
        first_send.setdefault((send.mtype, send.dst_role), send)

    for (mtype, dst), send in sorted(first_send.items()):
        if mtype in exempt:
            continue
        if dst in ROLES:
            handled_here = mtype in auto.handled.get(dst, {})
        else:  # unresolved destination: any handler anywhere will do
            handled_here = any(mtype in book
                               for book in auto.handled.values())
        if not handled_here:
            out.append(Finding(
                code="SB601", path=send.path, line=send.line,
                anchor=f"{auto.family}/{mtype}:never-handled",
                message=(f"{mtype} is sent to role '{dst}' by {send.via} "
                         f"but no {auto.family} handler at that role "
                         f"dispatches it")))

    for role in sorted(auto.handled):
        for mtype, site in sorted(auto.handled[role].items()):
            if mtype in exempt or mtype in sent_types:
                continue
            out.append(Finding(
                code="SB601", path=site.path, line=site.line,
                anchor=f"{auto.family}/{mtype}:never-sent",
                message=(f"{site.qualname} dispatches {mtype} but nothing "
                         f"in the {auto.family} conversation ever sends "
                         f"it")))
    return out


def _conformance(auto: FlowAutomaton, parsed: ParsedSpec,
                 exempt: Set[str]) -> List[Finding]:
    """SB602: extracted edges vs the declared spec, both directions."""
    out: List[Finding] = []
    spec_edges = set(parsed.spec.edges)

    first_edge: Dict[Tuple[str, str, str], FlowSend] = {}
    for send in auto.sends:
        if send.dst_role in ROLES:
            first_edge.setdefault(
                (send.src_role, send.mtype, send.dst_role), send)

    for edge, send in sorted(first_edge.items()):
        if send.mtype in exempt:
            continue
        if edge not in spec_edges:
            src, mtype, dst = edge
            out.append(Finding(
                code="SB602", path=send.path, line=send.line,
                anchor=f"{auto.family}/{src}-{mtype}->{dst}:undeclared",
                message=(f"{send.via} sends {mtype} from role '{src}' to "
                         f"role '{dst}' but the {auto.family} ProtocolSpec "
                         f"declares no such edge")))

    # a send with an unresolved destination conservatively implements
    # every declared (src, mtype, *) edge
    wildcards = {(s.src_role, s.mtype) for s in auto.unresolved()}
    covered = set(first_edge)
    covered |= {e for e in spec_edges if (e[0], e[1]) in wildcards}
    for edge in sorted(spec_edges - covered):
        src, mtype, dst = edge
        out.append(Finding(
            code="SB602", path=parsed.path, line=parsed.line,
            anchor=f"{auto.family}/{src}-{mtype}->{dst}:unimplemented",
            message=(f"the {auto.family} ProtocolSpec declares "
                     f"'{src}' --{mtype}--> '{dst}' but no code path "
                     f"implements that send")))
    return out


def _reply_paths(auto: FlowAutomaton, parsed: ParsedSpec) -> List[Finding]:
    """SB603: every declared request must statically reach a reply.

    BFS over the reaction relation from the request's delivery point: the
    conversation is live iff some chain of handler reactions delivers one
    of the declared reply (or retry) types back to the requester role.
    """
    out: List[Finding] = []
    spec = parsed.spec
    for request in sorted(spec.replies):
        accepted = set(spec.replies[request]) | set(spec.retries)
        req_sends = [s for s in auto.sends
                     if s.mtype == request and s.dst_role in ROLES]
        for send in sorted(req_sends, key=lambda s: (s.src_role, s.dst_role)):
            requester = send.src_role
            reachable: Set[Tuple[str, str]] = set()
            frontier: List[Tuple[str, str]] = [(send.dst_role, request)]
            while frontier:
                node = frontier.pop()
                if node in reachable:
                    continue
                reachable.add(node)
                for reaction in auto.reactions.get(node, ()):
                    dsts = ([reaction.dst_role]
                            if reaction.dst_role in ROLES else list(ROLES))
                    frontier.extend((d, reaction.mtype) for d in dsts)
            if not any((requester, t) in reachable for t in accepted):
                out.append(Finding(
                    code="SB603", path=send.path, line=send.line,
                    anchor=f"{auto.family}/{request}:no-reply-path",
                    message=(f"{request} (sent '{requester}' -> "
                             f"'{send.dst_role}' by {send.via}) has no "
                             f"static reply path: no reaction chain sends "
                             f"{' / '.join(sorted(accepted))} back to "
                             f"'{requester}'")))
    return out


def _dispatch_gaps(auto: FlowAutomaton) -> List[Finding]:
    """SB604: dispatch chains missing their terminal else."""
    return [Finding(
        code="SB604", path=gap.path, line=gap.line,
        anchor=f"{gap.qualname}:non-exhaustive",
        message=(f"{gap.qualname} dispatches on the message type but has "
                 f"no terminal else: an unexpected type is silently "
                 f"dropped"))
        for gap in auto.gaps]


def lint_flows(pkg_dir: Optional[Path] = None,
               source_overrides: Optional[Dict[str, str]] = None
               ) -> List[Finding]:
    """The SB6xx protocol-flow pass over every family plus the substrate.

    ``source_overrides`` maps package-relative paths to replacement
    source text (seeded-mutation fixtures).
    """
    if pkg_dir is None:
        import repro
        pkg_dir = Path(repro.__file__).resolve().parent

    decl_src = _read(pkg_dir, MESSAGE_DECLS, source_overrides)
    exempt = (set(_piggybacked_types(decl_src)) if decl_src is not None
              else set())

    out: Dict[str, Finding] = {}

    def add(findings: List[Finding]) -> None:
        for finding in findings:
            out.setdefault(finding.key, finding)

    for family in SPEC_SOURCES:
        auto = extract_flow_automaton(family, pkg_dir, source_overrides)
        add(_dangling(auto, exempt))
        add(_dispatch_gaps(auto))
        try:
            parsed = load_spec(family, pkg_dir, source_overrides)
        except SpecError as exc:
            add([Finding(
                code="SB602", path=exc.path, line=exc.line,
                anchor=f"{family}:invalid-spec",
                message=f"unusable {family} ProtocolSpec: {exc}")])
            continue
        if parsed is None:
            add([Finding(
                code="SB602", path="src/repro/" + SPEC_SOURCES[family],
                line=0, anchor=f"{family}:missing-spec",
                message=(f"no PROTOCOL_SPEC declared for the {family} "
                         f"family (expected in {SPEC_SOURCES[family]})"))])
            continue
        add(_conformance(auto, parsed, exempt))
        add(_reply_paths(auto, parsed))
    return [out[key] for key in sorted(out)]


__all__ = ["lint_flows"]
