"""Seeded conversation-shape bugs: proof the SB6xx pass has teeth.

Mirrors :mod:`repro.analysis.races.mutations`: each mutation is a small,
realistic string-level surgery on the *real* protocol source paired with
the exact finding key the flow pass must produce.  The tests (and the
flows-smoke CI job) apply each via ``source_overrides`` — nothing on disk
changes — and assert the expected key appears and is *new* relative to
the nominal tree.  Every transform raises ``ValueError`` when its anchor
text is missing, so silent rot of a mutation is impossible.

The four mutations cover one rule each:

* ``delete-handler`` — the directory stops dispatching ``G_SUCCESS``
  (SB601: sent but never handled);
* ``undeclared-send`` — the directory leaks ``G_SUCCESS`` to the
  committing *processor*, an edge no spec declares (SB602);
* ``drop-reply`` — the TID vendor absorbs ``TID_REQ`` without ever
  granting (SB603: conversation deadlock);
* ``strip-dispatch-default`` — the directory's dispatch chain loses its
  terminal ``raise`` (SB604: unexpected types silently dropped).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

_SB_DIR = "core/directory_engine.py"
_TCC = "baselines/tcc.py"


@dataclass(frozen=True)
class FlowMutation:
    """One seeded bug: a source transform plus its expected finding."""

    name: str
    description: str
    rel_path: str                       #: package-relative file to doctor
    transform: Callable[[str], str]
    expected_key: str                   #: finding key that must appear


def _must_replace(src: str, old: str, new: str, what: str) -> str:
    out = src.replace(old, new, 1)
    if out == src:
        raise ValueError(f"{what}: anchor text not found")
    return out


def _delete_handler(src: str) -> str:
    """The directory's dispatch chain loses its ``G_SUCCESS`` branch: the
    grab-success multicast still flies but lands on ``raise``."""
    return _must_replace(
        src,
        "        elif mtype is MessageType.G_SUCCESS:\n"
        "            self._on_g_success(msg)\n",
        "",
        "delete-handler")


def _undeclared_send(src: str) -> str:
    """``_on_g_success`` leaks the directory-internal ``G_SUCCESS`` on to
    the committing processor — an edge no spec declares."""
    block = ("        entry.state = ChunkCommitState.CONFIRMED\n"
             "        self.apply_commit(entry.local_write_lines, "
             "entry.proc)\n")
    return _must_replace(
        src, block,
        block + ("        self.network.unicast(MessageType.G_SUCCESS, "
                 "self.node,\n"
                 "                             core_node(entry.proc), "
                 "ctag=msg.ctag)\n"),
        "undeclared-send")


def _drop_reply(src: str) -> str:
    """The TID vendor swallows ``TID_REQ``: the grant send disappears, so
    no conversation ever returns to the requesting processor."""
    return _must_replace(
        src,
        "        self.network.unicast(MessageType.TID_GRANT, self.node,\n"
        "                             core_node(proc), ctag=cid, tid=tid)\n",
        "",
        "drop-reply")


def _strip_dispatch_default(src: str) -> str:
    """The directory's dispatch chain loses its terminal ``raise``:
    unexpected message types are silently dropped."""
    return _must_replace(
        src,
        "        else:\n"
        "            raise NotImplementedError("
        "f\"unexpected {mtype} at directory\")\n",
        "",
        "strip-dispatch-default")


FLOW_MUTATIONS: Dict[str, FlowMutation] = {
    m.name: m for m in (
        FlowMutation(
            name="delete-handler",
            description="directory stops dispatching G_SUCCESS",
            rel_path=_SB_DIR,
            transform=_delete_handler,
            expected_key=("SB601 src/repro/core/directory_engine.py::"
                          "scalablebulk/G_SUCCESS:never-handled")),
        FlowMutation(
            name="undeclared-send",
            description="directory leaks G_SUCCESS to the processor",
            rel_path=_SB_DIR,
            transform=_undeclared_send,
            expected_key=("SB602 src/repro/core/directory_engine.py::"
                          "scalablebulk/dir-G_SUCCESS->core:undeclared")),
        FlowMutation(
            name="drop-reply",
            description="TID vendor never answers TID_REQ",
            rel_path=_TCC,
            transform=_drop_reply,
            expected_key=("SB603 src/repro/baselines/tcc.py::"
                          "tcc/TID_REQ:no-reply-path")),
        FlowMutation(
            name="strip-dispatch-default",
            description="directory dispatch loses its terminal raise",
            rel_path=_SB_DIR,
            transform=_strip_dispatch_default,
            expected_key=("SB604 src/repro/core/directory_engine.py::"
                          "ScalableBulkDirectory.handle_protocol_message:"
                          "non-exhaustive")),
    )
}


def overrides_for(name: str, pkg_dir: Optional[Path] = None
                  ) -> Tuple[Dict[str, str], str]:
    """(source_overrides, expected finding key) for one mutation."""
    if pkg_dir is None:
        import repro
        pkg_dir = Path(repro.__file__).resolve().parent
    mutation = FLOW_MUTATIONS[name]
    source = (pkg_dir / mutation.rel_path).read_text()
    return ({mutation.rel_path: mutation.transform(source)},
            mutation.expected_key)


__all__ = ["FLOW_MUTATIONS", "FlowMutation", "overrides_for"]
