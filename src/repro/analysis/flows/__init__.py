"""SB6xx protocol-flow analysis: extracted automata vs declared specs.

The gate every protocol variant must pass before it reaches the dynamic
checkers: per family (ScalableBulk, BulkSC, TCC, SEQ, plus the coherence
substrate) this package

* extracts a **message-flow automaton** from the AST — which role
  dispatches which message type, which types each handler sends
  (helpers resolved through the SB5xx call-graph closure) and to which
  role, with ``msg.src`` replies resolved through the trigger's senders
  (:mod:`automaton`);
* reads the family's declarative :class:`repro.protocols.spec.ProtocolSpec`
  from the module source (:mod:`specs`); and
* crosses the two into findings SB601–SB604 (:mod:`rules`): dangling
  flows, spec conformance both directions, conversation-deadlock
  candidates, non-exhaustive dispatch.

:mod:`mutations` holds the seeded conversation bugs (a deleted handler,
a dropped reply, an undeclared send, a stripped dispatch default) that
prove each rule fires.  Entry point: :func:`lint_flows`, wired into
``python -m repro lint --flows`` / ``--select SB6``.
"""

from repro.analysis.flows.automaton import (FlowAutomaton, FlowSend,
                                            build_automaton,
                                            extract_flow_automaton)
from repro.analysis.flows.rules import lint_flows
from repro.analysis.flows.specs import SPEC_SOURCES, load_spec

__all__ = ["FlowAutomaton", "FlowSend", "SPEC_SOURCES", "build_automaton",
           "extract_flow_automaton", "lint_flows", "load_spec"]
