"""Extract one message-flow automaton per protocol family (tentpole).

Reuses the SB5xx state-access extraction (:mod:`repro.analysis.races.model`)
— dispatch tables, transitively-closed handler send sites, root sends —
and reduces it to the *conversation level*: which role consumes which
message type, and which ``(sender role, type, receiver role)`` edges the
code implements.

Two things the race model leaves open are resolved here:

* **Reply destinations.**  A send whose destination is ``msg.src`` (the
  race model's ``"reply"`` sentinel) goes back to whoever sent the
  triggering message.  The automaton resolves it through the definite
  senders of the handler's trigger type: if exactly one role ever sends
  the trigger, the reply's destination is that role.
* **Dispatch exhaustiveness** (SB604 input).  The raw if/elif chains are
  re-scanned for a terminal ``else`` — a ``raise``, or delegation to
  ``handle_protocol_message`` — so an unexpected message fails loudly
  instead of being silently dropped.  The negated-guard idiom
  (``if mtype is not X: raise``) counts as exhaustive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.handler_lint import (DISPATCH_METHODS, FAMILY_SOURCES,
                                         SUBSTRATE_SOURCES, _is_mtype_probe,
                                         _mtype_names, _read, _role_of_class)
from repro.analysis.races.model import ClassStateModel, _extract_source
from repro.network.message import ROLES


@dataclass(frozen=True)
class FlowSend:
    """One family-scoped send, reduced to conversation level."""

    src_role: str
    mtype: str
    dst_role: str                #: a role name, or "unknown" if unresolved
    path: str                    #: repo-relative source path
    line: int
    via: str                     #: "Class.method" the send is charged to
    triggers: Tuple[str, ...]    #: emitting handler's trigger types (root: ())


@dataclass(frozen=True)
class HandlerSite:
    """Where a (role, type) dispatch branch lives."""

    qualname: str                #: "Class.method"
    path: str
    line: int


@dataclass(frozen=True)
class DispatchGap:
    """A dispatch chain with no terminal else (SB604 raw material)."""

    qualname: str                #: "Class.method" of the dispatch function
    path: str
    line: int


@dataclass
class FlowAutomaton:
    """The per-family conversation automaton extracted from the code."""

    family: str
    types: Tuple[str, ...]       #: the family's message vocabulary
    #: role -> message type -> dispatching handler
    handled: Dict[str, Dict[str, HandlerSite]] = field(default_factory=dict)
    sends: List[FlowSend] = field(default_factory=list)
    #: (receiver role, trigger type) -> reacting sends
    reactions: Dict[Tuple[str, str], List[FlowSend]] = field(
        default_factory=dict)
    gaps: List[DispatchGap] = field(default_factory=list)

    def edges(self) -> Set[Tuple[str, str, str]]:
        """Resolved ``(sender role, type, receiver role)`` edges."""
        return {(s.src_role, s.mtype, s.dst_role) for s in self.sends
                if s.dst_role in ROLES}

    def unresolved(self) -> List[FlowSend]:
        return [s for s in self.sends if s.dst_role not in ROLES]


# ----------------------------------------------------------------------
# Dispatch exhaustiveness
# ----------------------------------------------------------------------
def _non_exhaustive_line(fn: ast.FunctionDef) -> Optional[int]:
    """Line of a dispatch chain missing its terminal else, else ``None``.

    Exhaustive shapes: a final ``else`` body (raise *or* delegation both
    count — delegation hands the type to the next dispatcher), and the
    negated guard ``if mtype is not X: raise`` (the guard is the
    default).  A function with no type-dispatch chain is exempt.
    """
    def is_probe(test: ast.expr) -> bool:
        return (isinstance(test, ast.Compare) and _is_mtype_probe(test.left)
                and bool(_mtype_names(test)))

    for stmt in fn.body:
        if not (isinstance(stmt, ast.If) and is_probe(stmt.test)):
            continue
        node = stmt
        while True:
            test = node.test
            if (isinstance(test, ast.Compare)
                    and isinstance(test.ops[0], (ast.IsNot, ast.NotEq))
                    and any(isinstance(s, (ast.Raise, ast.Return))
                            for s in node.body)):
                return None  # negated guard: the guard is the default
            orelse = node.orelse
            if (len(orelse) == 1 and isinstance(orelse[0], ast.If)
                    and is_probe(orelse[0].test)):
                node = orelse[0]
                continue
            if not orelse:
                return node.lineno
            return None  # terminal else present (raise or delegation)
    return None


def _scan_gaps(path_label: str, source: str) -> List[DispatchGap]:
    gaps: List[DispatchGap] = []
    for cnode in ast.parse(source).body:
        if not isinstance(cnode, ast.ClassDef):
            continue
        if _role_of_class(cnode) is None:
            continue
        for item in cnode.body:
            if (isinstance(item, ast.FunctionDef)
                    and item.name in DISPATCH_METHODS):
                line = _non_exhaustive_line(item)
                if line is not None:
                    gaps.append(DispatchGap(
                        qualname=f"{cnode.name}.{item.name}",
                        path=path_label, line=line))
    return gaps


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _family_rels(family: str) -> Tuple[str, ...]:
    if family == "substrate":
        return SUBSTRATE_SOURCES
    rels = list(FAMILY_SOURCES[family])
    rels.extend(r for r in SUBSTRATE_SOURCES if r not in rels)
    return tuple(rels)


def _resolve_reply(triggers: Tuple[str, ...],
                   senders: Dict[str, Set[str]]) -> str:
    """Destination of a ``msg.src`` reply: the unique sender role of the
    triggering type(s), or "unknown" when ambiguous or never sent."""
    roles: Set[str] = set()
    for trigger in triggers:
        roles |= senders.get(trigger, set())
    if len(roles) == 1:
        return roles.pop()
    return "unknown"


def build_automaton(family: str, types: Tuple[str, ...],
                    classes: List[ClassStateModel],
                    gaps: Optional[List[DispatchGap]] = None
                    ) -> FlowAutomaton:
    """Reduce extracted class models to the family's flow automaton.

    Exposed separately from :func:`extract_flow_automaton` so tests can
    drive it with synthetic toy-protocol classes.
    """
    auto = FlowAutomaton(family=family, types=types, gaps=list(gaps or ()))
    roleful = [c for c in classes if c.role is not None]

    for cls in roleful:
        assert cls.role is not None
        book = auto.handled.setdefault(cls.role, {})
        for mtype, method in sorted(cls.dispatch.items()):
            if mtype not in types:
                continue
            summary = cls.methods.get(method)
            book.setdefault(mtype, HandlerSite(
                qualname=f"{cls.name}.{method}", path=cls.path,
                line=summary.line if summary else cls.line))

    # pass 1: raw sends, with reply destinations left symbolic
    raw: List[FlowSend] = []
    senders: Dict[str, Set[str]] = {}
    for cls in roleful:
        role = cls.role
        assert role is not None
        seen_sites: Set[Tuple[str, str, int, Tuple[str, ...]]] = set()
        for method in sorted(cls.handlers):
            handler = cls.handlers[method]
            for site in handler.sends:
                for mtype in site.mtypes:
                    if mtype not in types:
                        continue
                    dedup = (mtype, site.dest, site.line, handler.triggers)
                    if dedup in seen_sites:
                        continue
                    seen_sites.add(dedup)
                    raw.append(FlowSend(
                        src_role=role, mtype=mtype, dst_role=site.dest,
                        path=cls.path, line=site.line,
                        via=f"{cls.name}.{site.via}",
                        triggers=handler.triggers))
                    senders.setdefault(mtype, set()).add(role)
        for site in cls.root_sends:
            for mtype in site.mtypes:
                if mtype not in types:
                    continue
                raw.append(FlowSend(
                    src_role=role, mtype=mtype, dst_role=site.dest,
                    path=cls.path, line=site.line,
                    via=f"{cls.name}.{site.via}", triggers=()))
                senders.setdefault(mtype, set()).add(role)

    # pass 2: resolve reply destinations through the triggers' senders
    for send in raw:
        dst = send.dst_role
        if dst == "reply":
            dst = _resolve_reply(send.triggers, senders)
        auto.sends.append(FlowSend(
            src_role=send.src_role, mtype=send.mtype, dst_role=dst,
            path=send.path, line=send.line, via=send.via,
            triggers=send.triggers))

    # reactions: (receiver role, trigger) -> the handler's resolved sends
    for send in auto.sends:
        for trigger in send.triggers:
            auto.reactions.setdefault(
                (send.src_role, trigger), []).append(send)
    return auto


def extract_flow_automaton(family: str, pkg_dir: Optional[Path] = None,
                           source_overrides: Optional[Dict[str, str]] = None
                           ) -> FlowAutomaton:
    """The flow automaton of one family (protocol files + substrate).

    ``source_overrides`` maps package-relative paths to replacement
    source text — the seeded flow mutations inject doctored modules this
    way, exactly like the SB5xx pass.
    """
    if pkg_dir is None:
        import repro
        pkg_dir = Path(repro.__file__).resolve().parent
    from repro.analysis.flows.specs import family_types
    vocabulary = family_types(pkg_dir, source_overrides)
    types = vocabulary.get(family, ())

    classes: List[ClassStateModel] = []
    gaps: List[DispatchGap] = []
    for rel in _family_rels(family):
        source = _read(pkg_dir, rel, source_overrides)
        if source is None:
            continue
        label = "src/repro/" + rel
        classes.extend(_extract_source(label, source))
        gaps.extend(_scan_gaps(label, source))
    return build_automaton(family, types, classes, gaps)


__all__ = ["DispatchGap", "FlowAutomaton", "FlowSend", "HandlerSite",
           "build_automaton", "extract_flow_automaton"]
