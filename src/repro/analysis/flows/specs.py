"""Read declared ``PROTOCOL_SPEC``/``FAMILY_TYPES`` from module sources.

Both declarations are parsed from the AST, never imported: the seeded
flow-mutation fixtures inject doctored module sources via
``source_overrides``, and an import would see the installed tree instead
of the fixture.  The parsed keyword literals are still fed through the
real :class:`repro.protocols.spec.ProtocolSpec` constructor so its
validation (role names, reply/edge consistency) applies to fixture specs
exactly as it does to the committed ones.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.analysis.handler_lint import MESSAGE_DECLS, _read
from repro.protocols.spec import ProtocolSpec

#: family -> module (package-relative) declaring its ``PROTOCOL_SPEC``.
#: ScalableBulk's conversation spans two files; the spec lives with the
#: directory engine, which owns every multi-party edge.
SPEC_SOURCES: Dict[str, str] = {
    "scalablebulk": "core/directory_engine.py",
    "bulksc": "baselines/bulksc.py",
    "tcc": "baselines/tcc.py",
    "seq": "baselines/seq.py",
    "substrate": "memory/directory.py",
}


class SpecError(ValueError):
    """A ``PROTOCOL_SPEC`` declaration that cannot be used."""

    def __init__(self, message: str, path: str, line: int) -> None:
        super().__init__(message)
        self.path = path
        self.line = line


@dataclass(frozen=True)
class ParsedSpec:
    """A spec plus where it was declared (for finding anchors)."""

    spec: ProtocolSpec
    path: str        #: repo-relative source path
    line: int


def parse_spec(path_label: str, source: str) -> Optional[ParsedSpec]:
    """The ``PROTOCOL_SPEC = ProtocolSpec(...)`` declaration, if any.

    The declaration must be keyword-only with literal values — exactly
    the shape :mod:`repro.protocols.spec` documents.  A malformed or
    invalid declaration raises :class:`SpecError` (surfaced as an SB602
    finding); a missing one returns ``None``.
    """
    tree = ast.parse(source)
    for node in tree.body:
        targets: Tuple[ast.expr, ...] = ()
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = tuple(node.targets), node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = (node.target,), node.value
        if not any(isinstance(t, ast.Name) and t.id == "PROTOCOL_SPEC"
                   for t in targets):
            continue
        line = node.lineno
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "ProtocolSpec"):
            raise SpecError("PROTOCOL_SPEC must be a ProtocolSpec(...) "
                            "literal", path_label, line)
        kwargs: Dict[str, Any] = {}
        if value.args:
            raise SpecError("PROTOCOL_SPEC arguments must be keyword-only",
                            path_label, line)
        for kw in value.keywords:
            if kw.arg is None:
                raise SpecError("PROTOCOL_SPEC must not use **kwargs",
                                path_label, line)
            try:
                kwargs[kw.arg] = ast.literal_eval(kw.value)
            except ValueError as exc:
                raise SpecError(
                    f"PROTOCOL_SPEC field {kw.arg!r} is not a pure literal",
                    path_label, line) from exc
        try:
            spec = ProtocolSpec(**kwargs)
        except (TypeError, ValueError) as exc:
            raise SpecError(str(exc), path_label, line) from exc
        return ParsedSpec(spec=spec, path=path_label, line=line)
    return None


def load_spec(family: str, pkg_dir: Path,
              source_overrides: Optional[Dict[str, str]] = None
              ) -> Optional[ParsedSpec]:
    """The declared spec of ``family`` from its home module."""
    rel = SPEC_SOURCES[family]
    source = _read(pkg_dir, rel, source_overrides)
    if source is None:
        return None
    return parse_spec("src/repro/" + rel, source)


def family_types(pkg_dir: Path,
                 source_overrides: Optional[Dict[str, str]] = None
                 ) -> Dict[str, Tuple[str, ...]]:
    """The ``FAMILY_TYPES`` vocabulary from ``network/message.py``.

    Keys are family names, values the ``MessageType`` member names that
    belong to that family's conversation.
    """
    source = _read(pkg_dir, MESSAGE_DECLS, source_overrides)
    if source is None:
        return {}

    def name_of(node: Optional[ast.expr]) -> Optional[str]:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "MessageType"):
            return node.attr
        return None

    tree = ast.parse(source)
    out: Dict[str, Tuple[str, ...]] = {}
    for node in tree.body:
        targets: Tuple[ast.expr, ...] = ()
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = tuple(node.targets), node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = (node.target,), node.value
        if not any(isinstance(t, ast.Name) and t.id == "FAMILY_TYPES"
                   for t in targets):
            continue
        if not isinstance(value, ast.Dict):
            continue
        for key, val in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                continue
            members: Tuple[str, ...] = ()
            if isinstance(val, (ast.Tuple, ast.List)):
                members = tuple(m for m in (name_of(e) for e in val.elts)
                                if m is not None)
            out[key.value] = members
    return out


__all__ = ["ParsedSpec", "SPEC_SOURCES", "SpecError", "family_types",
           "load_spec", "parse_spec"]
