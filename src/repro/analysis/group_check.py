"""Pass 2: group-order model checker (rules SB201-SB204).

Exhaustively enumerates every small configuration — up to ``max_dirs``
directory modules, every non-empty group subset, every rotation offset —
and checks the Section 3.2 deadlock/livelock-freedom conditions against
the actual ``core/group.py`` helpers:

* **SB201** the traversal order is a permutation of the group, sorted by
  priority rank with the leader (minimum rank) first;
* **SB202** ``g`` only flows toward lower priority along the successor
  chain, wrapping from the last member back to the leader, and ``is_last``
  is an honest ``bool`` that is true exactly at the last member;
* **SB203** every pair of colliding groups agrees on a unique Collision
  module: the highest-priority common module, identical from both sides;
* **SB204** no reachable hold-and-wait state deadlocks: enumerating the
  prefix-acquisition states of two (and, for small n, three) concurrent
  groups, some group can always take its next module or finish.

The check functions are injectable so tests can hand in a *broken*
synthetic group table (e.g. a priority-inverting successor) and watch the
checker catch it.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.core import group as group_mod

GROUP_PATH = "src/repro/core/group.py"

OrderFn = Callable[[Iterable[int], int, int], Tuple[int, ...]]
SuccessorFn = Callable[[Sequence[int], int], int]
CollisionFn = Callable[[Sequence[int], Iterable[int]], Optional[int]]


def _subsets(n: int) -> List[Tuple[int, ...]]:
    out: List[Tuple[int, ...]] = []
    for size in range(1, n + 1):
        out.extend(combinations(range(n), size))
    return out


def _deadlocked(orders: Sequence[Sequence[int]]) -> Optional[str]:
    """Search the prefix-acquisition state space for a stuck state.

    Each group holds a prefix of its traversal order; a state is feasible
    when no module is held twice.  A state deadlocks when *every* group
    still has modules to acquire and each one's next module is held by
    another group.  (A group holding its full order has formed: it commits
    and releases, so such states always make progress.)  Returns a
    description of the first deadlocked state, or None.
    """
    ranges = [range(len(o) + 1) for o in orders]
    for prefix_lens in product(*ranges):
        held = {}
        feasible = True
        for g, plen in enumerate(prefix_lens):
            for m in orders[g][:plen]:
                if m in held:
                    feasible = False
                    break
                held[m] = g
            if not feasible:
                break
        if not feasible:
            continue
        unfinished = [g for g, plen in enumerate(prefix_lens)
                      if plen < len(orders[g])]
        if len(unfinished) != len(orders):
            continue  # some group formed fully; it commits and releases
        if all(orders[g][prefix_lens[g]] in held
               and held[orders[g][prefix_lens[g]]] != g
               for g in unfinished):
            state = ", ".join(
                f"G{g}{tuple(orders[g])} holds {list(orders[g][:prefix_lens[g]])}"
                for g in range(len(orders)))
            return state
    return None


def check_group_order(max_dirs: int = 5,
                      order_fn: Optional[OrderFn] = None,
                      successor_fn: Optional[SuccessorFn] = None,
                      collision_fn: Optional[CollisionFn] = None,
                      is_last_fn=None,
                      leader_fn=None,
                      rank_fn=None,
                      check_triples_up_to: int = 4) -> List[Finding]:
    """Model-check the group table over all configurations up to max_dirs."""
    order_fn = order_fn or group_mod.order_gvec
    successor_fn = successor_fn or group_mod.successor
    collision_fn = collision_fn or group_mod.collision_module
    is_last_fn = is_last_fn or group_mod.is_last
    leader_fn = leader_fn or group_mod.leader_of
    rank_fn = rank_fn or group_mod.priority_rank

    findings: List[Finding] = []

    def report(code: str, anchor: str, message: str) -> None:
        findings.append(Finding(code=code, path=GROUP_PATH, line=0,
                                anchor=anchor, message=message))

    # The degenerate probe first: is_last on an empty order must be the
    # honest bool False, not a falsy sequence (the historical bug here).
    empty_probe = is_last_fn((), 0)
    if empty_probe is not False:
        report("SB202", "empty-order/is_last",
               f"is_last((), 0) returned {empty_probe!r} "
               f"({type(empty_probe).__name__}); must be the bool False")

    for n in range(1, max_dirs + 1):
        subsets = _subsets(n)
        for offset in range(n):
            orders = {}
            for dirs in subsets:
                order = tuple(order_fn(dirs, n, offset))
                orders[dirs] = order
                where = f"n={n}/off={offset}/{dirs}"

                # --- SB201: total order / permutation / leader-first ----
                if sorted(order) != sorted(set(dirs)):
                    report("SB201", where,
                           f"order {order} is not a permutation of {dirs}")
                    continue
                ranks = [rank_fn(d, n, offset) for d in order]
                if ranks != sorted(ranks) or len(set(ranks)) != len(ranks):
                    report("SB201", where,
                           f"order {order} not strictly sorted by priority "
                           f"rank (ranks {ranks})")
                if order and leader_fn(order) != order[0]:
                    report("SB201", where,
                           f"leader {leader_fn(order)} is not the first "
                           f"module of {order}")

                # --- SB202: g flows toward lower priority ---------------
                for i, d in enumerate(order):
                    nxt = successor_fn(order, d)
                    last = is_last_fn(order, d)
                    if not isinstance(last, bool):
                        report("SB202", where,
                               f"is_last({order}, {d}) returned "
                               f"{type(last).__name__}, not bool")
                    if i + 1 < len(order):
                        if last:
                            report("SB202", where,
                                   f"is_last true at non-last member {d}")
                        if rank_fn(nxt, n, offset) <= rank_fn(d, n, offset):
                            report("SB202", where,
                                   f"g flows {d}->{nxt} against priority "
                                   f"(ranks {rank_fn(d, n, offset)}->"
                                   f"{rank_fn(nxt, n, offset)})")
                    else:
                        if not last:
                            report("SB202", where,
                                   f"is_last false at last member {d}")
                        if nxt != order[0]:
                            report("SB202", where,
                                   f"last member {d} forwards g to {nxt}, "
                                   f"not back to leader {order[0]}")
                if findings and len(findings) > 200:
                    return findings  # defect storm: stop early

            # --- SB203: unique collision module ------------------------
            for a, b in combinations(subsets, 2):
                common = set(a) & set(b)
                if not common:
                    continue
                where = f"n={n}/off={offset}/{a}x{b}"
                expected = min(common, key=lambda d: rank_fn(d, n, offset))
                from_a = collision_fn(orders[a], b)
                from_b = collision_fn(orders[b], a)
                if from_a != expected or from_b != expected:
                    report("SB203", where,
                           f"collision module disagrees: loser-A sees "
                           f"{from_a}, loser-B sees {from_b}, highest-"
                           f"priority common module is {expected}")

            # --- SB204: deadlock freedom (pairs, then small triples) ----
            for a, b in combinations(subsets, 2):
                if not (set(a) & set(b)):
                    continue
                stuck = _deadlocked([orders[a], orders[b]])
                if stuck is not None:
                    report("SB204", f"n={n}/off={offset}/{a}x{b}",
                           f"hold-and-wait deadlock: {stuck}")
            if n <= check_triples_up_to:
                for a, b, c in combinations(subsets, 3):
                    if not (set(a) & set(b) or set(b) & set(c)
                            or set(a) & set(c)):
                        continue
                    stuck = _deadlocked([orders[a], orders[b], orders[c]])
                    if stuck is not None:
                        report("SB204", f"n={n}/off={offset}/{a}x{b}x{c}",
                               f"hold-and-wait deadlock: {stuck}")
        if len(findings) > 200:
            return findings

    return findings


__all__ = ["check_group_order"]
