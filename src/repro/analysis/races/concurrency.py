"""Concurrent reachability over the handler causality graph (tentpole 2).

Which handler pairs can be *in flight for the same chunk* at the same
module?  The dispatch tables plus the send sites induce a causal graph:
``h`` sends message type ``m`` to role ``r`` ⇒ edges to every handler a
class of role ``r`` dispatches ``m`` to.  Two handlers at a module are
**ordered** when one dominates the other in that graph (every causal path
from the protocol roots to the second passes through the first at the
same module); otherwise they **may interleave** and any overlapping
state footprint is a race candidate.

The directory role is expanded into two abstract instances before the
dominator pass — ``L`` (the module under analysis) and ``O`` (any other
group member) — because a module's *own* ``commit_request`` handler and a
*predecessor's* ``g`` are different causal sources even though both are
"the dir role".  Without the split, the grab ring would appear to order
``commit_request`` before ``g`` at every member, which the NoC does not
guarantee (a member can receive the predecessor's ``g`` first; the CST
buffers for exactly this reason — see
:mod:`repro.validation.orderings`).

Messages between one (src, dst) pair ride one NoC flow and cannot
overtake each other, so consecutive sends *within a single handler* to
the same destination role are kept in program order: the second send
gets a causal edge from the handlers the first triggers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.races.model import ClassStateModel, StateModel

ROOT = ("R", "", "<root>")

Node = Tuple[str, str, str]  #: (instance "L"/"O"/"R", class, method)


@dataclass
class ConcurrencyModel:
    """Dominator + cycle facts over one family's causal graph."""

    family: str
    nodes: Set[Node] = field(default_factory=set)
    edges: Dict[Node, Set[Node]] = field(default_factory=dict)
    dominators: Dict[Node, Set[Node]] = field(default_factory=dict)
    sccs: List[FrozenSet[Node]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def ordered(self, cls: str, m1: str, m2: str) -> bool:
        """Is one of the two handlers causally ordered before the other
        at the module under analysis (instance ``L``)?"""
        a: Node = ("L", cls, m1)
        b: Node = ("L", cls, m2)
        if a not in self.nodes or b not in self.nodes:
            return True  # unreachable handlers cannot interleave
        return a in self.dominators.get(b, set()) \
            or b in self.dominators.get(a, set())

    def may_interleave(self, cls: str, m1: str, m2: str) -> bool:
        return not self.ordered(cls, m1, m2)

    def reentrant(self, cls: str, method: str) -> Optional[FrozenSet[Node]]:
        """The causal cycle through this handler, if any — the handler can
        fire again for the same chunk while its own downstream effects are
        still propagating."""
        for scc in self.sccs:
            for node in scc:
                if node[1] == cls and node[2] == method:
                    return scc
        return None

    def reachable_readers(self, mtypes: Tuple[str, ...]
                          ) -> Set[Tuple[str, str]]:
        """All (class, handler) pairs transitively triggered by sending
        any of ``mtypes`` — the audience of a send site."""
        start: Set[Node] = set()
        for node in self.nodes:
            trig = self._triggers.get((node[1], node[2]), ())
            if any(m in trig for m in mtypes):
                start.add(node)
        seen: Set[Node] = set()
        stack = list(start)
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.edges.get(cur, ()))
        return {(n[1], n[2]) for n in seen}

    _triggers: Dict[Tuple[str, str], Tuple[str, ...]] = field(
        default_factory=dict)


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------
def _instances_for(role: Optional[str]) -> Tuple[str, ...]:
    """Abstract instances a role contributes: the directory is split into
    this-module/other-module; cores and agents act as singletons."""
    return ("L", "O") if role == "dir" else ("L",)


def _send_targets(src_inst: str, src_role: Optional[str],
                  dest: str, classes: List[ClassStateModel]
                  ) -> List[Tuple[str, ClassStateModel]]:
    """Abstract instances a send can land on.

    A directory talking to "the dir role" reaches *other* members (ring
    successor, group multicast) — and, from an ``O`` instance, possibly
    the module under analysis.  A core or agent multicasting to the dir
    role reaches every member, ``L`` and ``O`` alike.
    """
    out: List[Tuple[str, ClassStateModel]] = []
    for cls in classes:
        if cls.role is None or not cls.handlers:
            continue
        if dest not in ("unknown", "reply") and cls.role != dest:
            continue
        if cls.role == "dir":
            if src_role == "dir":
                insts = ("L", "O") if src_inst == "O" else ("O",)
            else:
                insts = ("L", "O")
        else:
            insts = ("L",)
        for inst in insts:
            out.append((inst, cls))
    return out


def build_concurrency_model(model: StateModel) -> ConcurrencyModel:
    cm = ConcurrencyModel(family=model.family)
    classes = model.classes

    # nodes: every handler at every abstract instance of its role
    handlers_by_mtype: Dict[str, List[Tuple[str, ClassStateModel, str]]] = {}
    for cls in classes:
        for mtype, method in cls.dispatch.items():
            if method in cls.handlers:
                for inst in _instances_for(cls.role):
                    handlers_by_mtype.setdefault(mtype, []).append(
                        (inst, cls, method))
        for method, handler in cls.handlers.items():
            cm._triggers[(cls.name, method)] = handler.triggers
            for inst in _instances_for(cls.role):
                cm.nodes.add((inst, cls.name, method))
    cm.nodes.add(ROOT)
    cm.edges = {n: set() for n in cm.nodes}

    def link(src: Node, src_role: Optional[str], mtypes: Tuple[str, ...],
             dest: str) -> List[Node]:
        hit: List[Node] = []
        for inst, cls in _send_targets(src[0], src_role, dest, classes):
            for mtype in mtypes:
                method = cls.dispatch.get(mtype)
                if method is None or method not in cls.handlers:
                    continue
                tgt: Node = (inst, cls.name, method)
                cm.edges[src].add(tgt)
                hit.append(tgt)
        return hit

    for cls in classes:
        # root sends: protocol entry points outside any handler
        for site in cls.root_sends:
            link(ROOT, None, site.mtypes, site.dest)
        for method, handler in cls.handlers.items():
            for inst in _instances_for(cls.role):
                src: Node = (inst, cls.name, method)
                prev_hits: List[Node] = []
                prev_dest = ""
                for site in handler.sends:
                    hits = link(src, cls.role, site.mtypes, site.dest)
                    # same-flow FIFO: a later send to the same role follows
                    # the earlier one's consequences, not just the handler
                    if prev_dest == site.dest:
                        for upstream in prev_hits:
                            for tgt in hits:
                                if tgt != upstream:
                                    cm.edges[upstream].add(tgt)
                    prev_hits, prev_dest = hits, site.dest

    # handlers with no incoming edge are externally triggered: root them
    has_incoming: Set[Node] = set()
    for targets in cm.edges.values():
        has_incoming |= targets
    for node in cm.nodes:
        if node is not ROOT and node not in has_incoming:
            cm.edges[ROOT].add(node)

    cm.dominators = _dominators(cm.nodes, cm.edges)
    cm.sccs = _sccs(cm.nodes, cm.edges)
    return cm


# ----------------------------------------------------------------------
# Classic iterative dominators + Tarjan SCCs (graphs are tiny)
# ----------------------------------------------------------------------
def _dominators(nodes: Set[Node], edges: Dict[Node, Set[Node]]
                ) -> Dict[Node, Set[Node]]:
    preds: Dict[Node, Set[Node]] = {n: set() for n in nodes}
    for src, targets in edges.items():
        for tgt in targets:
            preds[tgt].add(src)
    # only ROOT-reachable nodes participate
    reach: Set[Node] = set()
    stack = [ROOT]
    while stack:
        cur = stack.pop()
        if cur in reach:
            continue
        reach.add(cur)
        stack.extend(edges.get(cur, ()))
    dom: Dict[Node, Set[Node]] = {n: (set(reach) if n is not ROOT else {ROOT})
                                  for n in reach}
    changed = True
    while changed:
        changed = False
        for node in reach:
            if node is ROOT:
                continue
            pred_doms = [dom[p] for p in preds[node] if p in reach]
            new = set.intersection(*pred_doms) if pred_doms else set()
            new.add(node)
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


def _sccs(nodes: Set[Node], edges: Dict[Node, Set[Node]]
          ) -> List[FrozenSet[Node]]:
    """Tarjan, iterative; returns only non-trivial SCCs (cycles)."""
    index: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    out: List[FrozenSet[Node]] = []
    counter = [0]

    def strongconnect(v0: Node) -> None:
        work: List[Tuple[Node, List[Node]]] = [
            (v0, sorted(edges.get(v0, ())))]
        index[v0] = low[v0] = counter[0]
        counter[0] += 1
        stack.append(v0)
        on_stack.add(v0)
        while work:
            v, succs = work[-1]
            advanced = False
            while succs:
                w = succs.pop(0)
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, sorted(edges.get(w, ()))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                comp: Set[Node] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w == v:
                        break
                if len(comp) > 1 or v in edges.get(v, ()):
                    out.append(frozenset(comp))

    for node in sorted(nodes):
        if node not in index:
            strongconnect(node)
    out.sort(key=lambda c: sorted(c)[0])
    return out


__all__ = ["ConcurrencyModel", "Node", "ROOT", "build_concurrency_model"]
