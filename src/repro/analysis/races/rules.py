"""Pass 4: state-access race rules SB501–SB504 (tentpole part 3).

The cross product of the :mod:`model` footprints with the
:mod:`concurrency` reachability facts:

* **SB501 — unsynchronized concurrent access**: two handlers of the same
  module class may be in flight for the same chunk simultaneously (no
  dominance ordering in the causal graph) and their footprints conflict
  on a state attribute (write/write or read/write).  Reported per
  (class, attribute) with the offending handler pairs, so one baseline
  entry documents one attribute's synchronization story.
* **SB502 — send before state update**: a method emits a message and
  *then* mutates an attribute that the message's audience (the handlers
  the sent type dispatches to, in any class of the family) reads.  The
  receiver's reaction can race the sender's late write.
* **SB503 — re-entrant handler cycle**: a handler sits on a causal cycle
  (it can be triggered again for the same chunk by its own downstream
  effects) while mutating non-commutative state — a re-entry can observe
  torn intermediate state.
* **SB504 — unreconciled state growth**: an attribute is grown
  (container insert / assignment of a live value) by handler-reachable
  code, but no handler-reachable path ever shrinks or releases it — the
  squash/abort reconciliation the paper's failure paths owe is missing
  (the reservation-leak family).

Counters (``+= constant`` only) are exempt everywhere: their writes
commute.  Findings are deterministic: sorted by key, deduplicated across
families (the substrate is analyzed once per family but reported once).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.races.concurrency import (ConcurrencyModel,
                                              build_concurrency_model)
from repro.analysis.races.model import (ClassStateModel, StateModel,
                                        extract_all_models)


def _fmt_attrs(attrs: Set[str], limit: int = 4) -> str:
    ordered = sorted(attrs)
    if len(ordered) > limit:
        return ", ".join(ordered[:limit]) + f", … ({len(ordered)} attrs)"
    return ", ".join(ordered)


# ----------------------------------------------------------------------
# SB501: unsynchronized concurrent write/write and read/write pairs
# ----------------------------------------------------------------------
def _outcome_polarity(triggers: Tuple[str, ...]) -> Optional[str]:
    """Success-side vs failure-side outcome of a commit conversation.

    The runtime conformance rules (:mod:`repro.validation.orderings`)
    guarantee at most one outcome per commit instance reaches a module —
    ``g_success`` never follows ``g_failure``, ``commit_success`` and
    ``commit_failure`` are exclusive — so an opposite-polarity handler
    pair can never be in flight for the *same* chunk and is pruned."""
    text = " ".join(triggers)
    if "FAILURE" in text or "NACK" in text:
        return "abort"
    if ("SUCCESS" in text or "DONE" in text or "ACK" in text
            or "GRANT" in text or "OK" in text):
        return "commit"
    return None


def _check_concurrent_access(model: StateModel, cm: ConcurrencyModel
                             ) -> List[Finding]:
    """One finding per class: its full set of unordered conflicting pairs.

    Class granularity is deliberate — a baseline entry then documents the
    *synchronization story of the whole module class* (e.g. "per-cid CST
    entries buffer out-of-order arrivals"), which is how these races are
    actually argued away, rather than one entry per attribute."""
    findings: List[Finding] = []
    for cls in model.handler_classes():
        by_pair: Dict[Tuple[str, str], Set[str]] = {}
        handlers = sorted(cls.handlers)
        for i, m1 in enumerate(handlers):
            h1 = cls.handlers[m1]
            for m2 in handlers[i + 1:]:
                h2 = cls.handlers[m2]
                p1, p2 = (_outcome_polarity(h1.triggers),
                          _outcome_polarity(h2.triggers))
                if p1 and p2 and p1 != p2:
                    continue  # exclusive outcomes, never same-chunk-live
                if not cm.may_interleave(cls.name, m1, m2):
                    continue
                w1, w2 = set(h1.writes), set(h2.writes)
                touched = ((w1 & w2) | (w1 & set(h2.reads))
                           | (set(h1.reads) & w2)) - cls.counters
                if touched:
                    by_pair[(m1, m2)] = touched
        if not by_pair:
            continue
        attrs: Set[str] = set()
        for touched in by_pair.values():
            attrs |= touched
        pairs = sorted(by_pair)
        shown = ", ".join(f"{a}~{b}" for a, b in pairs[:4])
        more = f" and {len(pairs) - 4} more" if len(pairs) > 4 else ""
        findings.append(Finding(
            code="SB501", path=cls.path, line=cls.line,
            anchor=f"{cls.name}:concurrent-state",
            message=(f"{cls.name} has concurrently in-flight handler pairs "
                     f"with no causal ordering touching "
                     f"{_fmt_attrs(attrs, 6)}: {shown}{more}")))
    return findings


# ----------------------------------------------------------------------
# SB502: a send precedes a mutation the audience can observe racing
# ----------------------------------------------------------------------
def _audience_reads(model: StateModel, mtypes: Tuple[str, ...]) -> Set[str]:
    reads: Set[str] = set()
    for cls in model.handler_classes():
        for mtype in mtypes:
            method = cls.dispatch.get(mtype)
            if method in cls.handlers:
                reads |= set(cls.handlers[method].reads)
    return reads


def _check_send_before_update(model: StateModel) -> List[Finding]:
    findings: List[Finding] = []
    for cls in model.handler_classes():
        for name in sorted(cls.reachable):
            summary = cls.methods.get(name)
            if summary is None or not summary.sends:
                continue
            per_key: Dict[Tuple[str, ...], Set[str]] = {}
            first_line: Dict[Tuple[str, ...], int] = {}
            for site in summary.sends:
                if not site.mtypes:
                    continue
                audience = _audience_reads(model, site.mtypes)
                late: Set[str] = set()
                for attr, line in summary.writes.items():
                    if line > site.line and attr in audience:
                        late.add(attr)
                for local, line in summary.name_writes.items():
                    attr = summary.aliases.get(local)
                    if attr and line > site.line and attr in audience:
                        late.add(attr)
                late -= cls.counters
                if late:
                    key = tuple(sorted(site.mtypes))
                    per_key.setdefault(key, set()).update(late)
                    first_line.setdefault(key, site.line)
            for key, attrs in sorted(per_key.items()):
                findings.append(Finding(
                    code="SB502", path=cls.path, line=first_line[key],
                    anchor=f"{cls.name}.{name}->{'/'.join(key)}",
                    message=(f"{cls.name}.{name} sends {'/'.join(key)} and "
                             f"afterwards mutates {_fmt_attrs(attrs)}, which "
                             f"the message's audience reads — the reaction "
                             f"can race the late update")))
    return findings


# ----------------------------------------------------------------------
# SB503: re-entrant handler cycles over mutable state
# ----------------------------------------------------------------------
def _check_reentrant_cycles(model: StateModel, cm: ConcurrencyModel
                            ) -> List[Finding]:
    findings: List[Finding] = []
    by_cls: Dict[str, ClassStateModel] = {c.name: c for c in model.classes}
    for scc in cm.sccs:
        members = sorted({(n[1], n[2]) for n in scc})
        torn: Set[str] = set()
        for cname, method in members:
            cls = by_cls.get(cname)
            if cls is None or method not in cls.handlers:
                continue
            torn |= set(cls.handlers[method].writes) - cls.counters
        if not torn:
            continue
        cname, method = members[0]
        cls = by_cls[cname]
        cycle = " -> ".join(f"{c}.{m}" for c, m in members)
        findings.append(Finding(
            code="SB503", path=cls.path, line=cls.handlers[method].line,
            anchor=f"{cname}.{method}:cycle",
            message=(f"handler cycle {cycle} can re-enter for the same "
                     f"chunk while mutating {_fmt_attrs(torn)}; a re-entry "
                     f"can observe torn intermediate state")))
    return findings


# ----------------------------------------------------------------------
# SB504: state grown by handlers but never reconciled/released
# ----------------------------------------------------------------------
def _check_unreconciled_growth(model: StateModel) -> List[Finding]:
    findings: List[Finding] = []
    for cls in model.handler_classes():
        grown: Dict[str, str] = {}        #: attr -> first growing handler
        released: Set[str] = set()
        for method in sorted(cls.handlers):
            handler = cls.handlers[method]
            for attr in (handler.additive & cls.releasable) - cls.counters:
                grown.setdefault(attr, method)
            released |= handler.cleanup
        for attr, method in sorted(grown.items()):
            if attr in released:
                continue
            findings.append(Finding(
                code="SB504", path=cls.path,
                line=cls.handlers[method].writes.get(
                    attr, cls.handlers[method].line),
                anchor=f"{cls.name}:{attr}:leak",
                message=(f"{cls.name}.{attr} is grown by handler "
                         f"{method} (and possibly others) but no "
                         f"handler-reachable path ever shrinks or releases "
                         f"it — squash/abort reconciliation is missing")))
    return findings


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def lint_races(pkg_dir: Optional[Path] = None,
               source_overrides: Optional[Dict[str, str]] = None
               ) -> List[Finding]:
    """Run SB501–SB504 over every protocol family; deduplicated, sorted."""
    out: Dict[str, Finding] = {}
    for model in extract_all_models(pkg_dir, source_overrides).values():
        cm = build_concurrency_model(model)
        for finding in (_check_concurrent_access(model, cm)
                        + _check_send_before_update(model)
                        + _check_reentrant_cycles(model, cm)
                        + _check_unreconciled_growth(model)):
            out.setdefault(finding.key, finding)
    return sorted(out.values(), key=lambda f: f.key)


__all__ = ["lint_races"]
