"""Runtime access sanitizer: observe the races the static pass predicted.

The static model (:mod:`repro.analysis.races.model`) says which attributes
each handler *may* touch; this module watches what a real run *does*
touch.  :class:`AccessSanitizer` interposes on the NoC endpoint handlers
of a freshly built machine (the network holds the bound ``handle_message``
captured at build time, so wrapping happens at the registration table, not
on the instances) and fingerprints every tracked attribute before and
after each handler invocation.  Each observed change becomes an
:class:`AccessRecord` (op ``grow`` / ``release`` / ``write``), grouped
into per-invocation :class:`HandlerSpan` windows that also remember the
instrumentation-bus event indices at entry and exit — so a span can be
joined against the ``msg_send``/``msg_recv`` stream to ask "what was in
flight toward this module while it wrote?".

State mutated by *deferred* simulator callbacks (``sim.schedule`` closures
run outside any handler) is caught lazily: the next invocation on the same
object — or a final :meth:`AccessSanitizer.flush` — diffs against the last
known fingerprint and attributes the change to the pseudo-handler
``"<deferred>"``.

The sanitizer is strictly opt-in.  Nothing in the default run path imports
it; with it detached the machine is byte-identical to an uninstrumented
build (the NULL_BUS discipline, regression-tested in
``tests/test_races_sanitizer.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.races.model import extract_state_model
from repro.obs.bus import InstrumentationBus

#: pseudo-handler name for changes observed between handler invocations
DEFERRED = "<deferred>"

_Fingerprint = Tuple[str, int, str]  #: (kind, size, digest)


@dataclass(frozen=True)
class AccessRecord:
    """One observed change of one tracked attribute."""

    time: int
    src: str            #: endpoint label, e.g. "dir2" / "core0" / "agent4"
    cls: str            #: class name of the touched object
    handler: str        #: dispatched handler method, or ``"<deferred>"``
    attr: str
    op: str             #: "grow" | "release" | "write"
    ctag: Any = None    #: chunk tag / commit id of the triggering message


@dataclass
class HandlerSpan:
    """One handler invocation: its window and what it changed."""

    time: int
    src: str
    src_node: str       #: ``str(NodeRef)`` — joins against msg dst_node
    cls: str
    handler: str
    mtype: str          #: MessageType ``.value`` of the triggering message
    ctag: Any
    start_event: int    #: len(bus.events) at entry (0 without a bus)
    end_event: int = 0  #: len(bus.events) at exit, before sanitizer emits
    records: List[AccessRecord] = field(default_factory=list)

    @property
    def writes(self) -> List[AccessRecord]:
        return self.records


def _digest(value: Any, depth: int = 0) -> str:
    """A structural digest that sees *inside* mutable entries (CST entries
    mutate in place without changing container length or identity)."""
    if depth > 3:
        return "…"
    if value is None or isinstance(value, (int, float, bool, str, bytes)):
        return repr(value)
    if isinstance(value, (list, tuple, deque)):
        return "[" + ",".join(_digest(v, depth + 1) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_digest(v, depth + 1)
                                     for v in value)) + "}"
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        return "{" + ",".join(f"{_digest(k, depth + 1)}:{_digest(v, depth + 1)}"
                              for k, v in items) + "}"
    inner = getattr(value, "__dict__", None)
    if inner is not None:
        return "(" + ",".join(f"{k}={_digest(v, depth + 1)}"
                              for k, v in sorted(inner.items())) + ")"
    return repr(value)


def _probe(value: Any) -> _Fingerprint:
    if value is None:
        return ("none", 0, "")
    if isinstance(value, (dict, set, frozenset, list, tuple, deque)):
        return ("container", len(value), _digest(value))
    return ("scalar", 1, _digest(value))


def _classify(before: _Fingerprint, after: _Fingerprint) -> str:
    b_kind, b_size, _ = before
    a_kind, a_size, _ = after
    b_empty = b_kind == "none" or (b_kind == "container" and b_size == 0)
    a_empty = a_kind == "none" or (a_kind == "container" and a_size == 0)
    if b_empty and not a_empty:
        return "grow"
    if a_empty and not b_empty:
        return "release"
    if b_kind == "container" and a_kind == "container" and a_size != b_size:
        return "grow" if a_size > b_size else "release"
    return "write"


@dataclass
class _ClassMeta:
    attrs: Tuple[str, ...]
    dispatch: Dict[str, str]  #: MessageType *name* -> handler method


class AccessSanitizer:
    """Interpose on a machine's NoC endpoints and record state accesses.

    Build the machine, construct the sanitizer, run, then read
    ``sanitizer.records`` / ``sanitizer.spans`` (call :meth:`flush` first
    to pick up trailing deferred changes).  ``bus``, when given, receives
    a ``state_access`` hook call per record and provides the event indices
    that anchor spans in the message stream.
    """

    def __init__(self, machine: Any,
                 bus: Optional[InstrumentationBus] = None) -> None:
        self.machine = machine
        self.bus = bus
        self.records: List[AccessRecord] = []
        self.spans: List[HandlerSpan] = []
        self._meta: Dict[str, _ClassMeta] = {}
        self._targets: List[Tuple[str, str, Any, _ClassMeta]] = []
        self._originals: Dict[Any, Any] = {}
        self._last: Dict[int, Dict[str, _Fingerprint]] = {}
        self._live: Dict[int, Tuple[str, str, Any, _ClassMeta]] = {}

        family = machine.config.protocol.value.lower()
        model = extract_state_model(family)
        for cls in model.classes:
            if not cls.handlers:
                continue
            self._meta[cls.name] = _ClassMeta(
                attrs=tuple(sorted(cls.attrs - cls.counters)),
                dispatch=dict(cls.dispatch))
        self._attach()

    # ------------------------------------------------------------------
    def _attach(self) -> None:
        handlers = self.machine.network._handlers
        for node, handler in sorted(handlers.items(), key=lambda kv: str(kv[0])):
            obj = getattr(handler, "__self__", None)
            if obj is None:
                continue
            meta = self._meta.get(type(obj).__name__)
            if meta is None:
                continue
            src = f"{node.kind}{node.index}"
            self._originals[node] = handler
            self._targets.append((src, str(node), obj, meta))
            self._live[id(obj)] = (src, str(node), obj, meta)
            self._last[id(obj)] = self._fingerprint(obj, meta)
            handlers[node] = self._make_wrapper(src, str(node), obj, meta,
                                                handler)

    def detach(self) -> None:
        """Restore the original endpoint handlers."""
        handlers = self.machine.network._handlers
        for node, original in self._originals.items():
            handlers[node] = original
        self._originals.clear()

    # ------------------------------------------------------------------
    def _fingerprint(self, obj: Any, meta: _ClassMeta
                     ) -> Dict[str, _Fingerprint]:
        out: Dict[str, _Fingerprint] = {}
        for attr in meta.attrs:
            if hasattr(obj, attr):
                out[attr] = _probe(getattr(obj, attr))
        return out

    def _make_wrapper(self, src: str, src_node: str, obj: Any,
                      meta: _ClassMeta, original: Any) -> Any:
        def wrapped(msg: Any) -> None:
            now = int(self.machine.sim.now)
            handler = meta.dispatch.get(msg.mtype.name, "handle_message")
            before = self._fingerprint(obj, meta)
            # deferred callbacks may have run since the last span here
            self._emit_diff(now, src, src_node, obj, meta, DEFERRED, "", None,
                            self._last[id(obj)], before)
            span = HandlerSpan(
                time=now, src=src, src_node=src_node,
                cls=type(obj).__name__, handler=handler,
                mtype=msg.mtype.value, ctag=msg.ctag,
                start_event=len(self.bus.events) if self.bus else 0)
            original(msg)
            span.end_event = len(self.bus.events) if self.bus else 0
            after = self._fingerprint(obj, meta)
            self._diff_into(span, before, after)
            self._last[id(obj)] = after
            self.spans.append(span)
        return wrapped

    def _diff_into(self, span: HandlerSpan,
                   before: Dict[str, _Fingerprint],
                   after: Dict[str, _Fingerprint]) -> None:
        for attr in sorted(set(before) | set(after)):
            b = before.get(attr, ("none", 0, ""))
            a = after.get(attr, ("none", 0, ""))
            if b == a:
                continue
            record = AccessRecord(time=span.time, src=span.src, cls=span.cls,
                                  handler=span.handler, attr=attr,
                                  op=_classify(b, a), ctag=span.ctag)
            span.records.append(record)
            self.records.append(record)
            if self.bus is not None and self.bus.enabled:
                self.bus.state_access(span.time, span.src, span.cls,
                                      span.handler, attr, record.op,
                                      span.ctag)

    def _emit_diff(self, now: int, src: str, src_node: str, obj: Any,
                   meta: _ClassMeta, handler: str, mtype: str, ctag: Any,
                   before: Dict[str, _Fingerprint],
                   after: Dict[str, _Fingerprint]) -> None:
        if before == after:
            return
        span = HandlerSpan(
            time=now, src=src, src_node=src_node, cls=type(obj).__name__,
            handler=handler, mtype=mtype, ctag=ctag,
            start_event=len(self.bus.events) if self.bus else 0)
        span.end_event = span.start_event
        self._diff_into(span, before, after)
        self.spans.append(span)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Attribute any trailing deferred-callback changes; call after
        ``machine.run()`` and before inspecting the record stream."""
        now = int(self.machine.sim.now)
        for key, (src, src_node, obj, meta) in sorted(self._live.items(),
                                                      key=lambda kv: kv[1][0]):
            current = self._fingerprint(obj, meta)
            self._emit_diff(now, src, src_node, obj, meta, DEFERRED, "", None,
                            self._last[key], current)
            self._last[key] = current

    # -- end-state queries for the confirm pass ------------------------
    def end_nonempty(self, cls: str, attr: str) -> bool:
        """Does any tracked instance of ``cls`` end the run with ``attr``
        non-empty (a live leak witness for SB504)?"""
        for _, _, obj, _ in self._targets:
            if type(obj).__name__ != cls:
                continue
            value = getattr(obj, attr, None)
            kind, size, _ = _probe(value)
            if kind == "scalar" or (kind == "container" and size > 0):
                return True
        return False

    def grew(self, cls: str, attr: str) -> bool:
        return any(r.cls == cls and r.attr == attr and r.op == "grow"
                   for r in self.records)

    def leaked_at(self, cls: str, attr: str) -> List[str]:
        """Endpoints whose instance grew ``attr``, never released it, and
        ends the run with it non-empty — per-instance, so one module's
        back-off cannot mask another module's live leak."""
        grew: Dict[str, bool] = {}
        released: Dict[str, bool] = {}
        for r in self.records:
            if r.cls != cls or r.attr != attr:
                continue
            if r.op == "grow":
                grew[r.src] = True
            elif r.op == "release":
                released[r.src] = True
        out: List[str] = []
        for src, _, obj, _ in self._targets:
            if type(obj).__name__ != cls or not grew.get(src):
                continue
            if released.get(src):
                continue
            kind, size, _ = _probe(getattr(obj, attr, None))
            if kind == "scalar" or (kind == "container" and size > 0):
                out.append(src)
        return out

    def handler_for(self, cls: str, mtype_name: str) -> Optional[str]:
        """The handler method ``cls`` dispatches ``mtype_name`` to."""
        meta = self._meta.get(cls)
        return meta.dispatch.get(mtype_name) if meta else None


__all__ = ["AccessRecord", "AccessSanitizer", "DEFERRED", "HandlerSpan"]
