"""Label static race findings CONFIRMED or UNOBSERVED at runtime.

A static SB5xx finding is a *may* statement: the handler pair may
interleave, the leaked attribute may go unreconciled.  This pass hunts for
a run that actually exhibits the access pattern: it replays the explore
scenarios under randomized schedules with the
:class:`~repro.analysis.races.sanitizer.AccessSanitizer` attached and
evaluates a per-rule witness predicate against the recorded spans and the
message stream:

* **SB501** — a handler span wrote tracked state while another message
  bound for the *same module* (dispatching to a *different* handler) was
  in flight: the unordered pair was live simultaneously.
* **SB502** — one span both put the flagged message type on the wire and
  mutated tracked state: the send-then-update window executed.
* **SB503** — the flagged handler ran twice at one module for the same
  chunk (attempts collapse onto their base tag) and mutated state: the
  causal cycle closed.
* **SB504** — the flagged attribute grew during the run, was never
  released, and is still non-empty at quiesce: the leak is live.

A hit is delta-minimized (:func:`~repro.analysis.explore.minimize.ddmin`
over the realized schedule's non-default decisions, re-checking the
predicate, not a violation code) and shipped as a replayable
:class:`~repro.analysis.explore.controller.Schedule` in JSON form.  A
finding whose predicate never fires within the budget stays UNOBSERVED —
which is *evidence of absence only for the scenarios tried*, not a refutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.explore.controller import Schedule
from repro.analysis.explore.driver import run_schedule
from repro.analysis.explore.minimize import _assemble, _decisions, ddmin
from repro.analysis.explore.mutations import Mutation
from repro.analysis.explore.scenarios import SCENARIOS, Scenario
from repro.analysis.findings import Finding
from repro.analysis.races.sanitizer import AccessSanitizer
from repro.engine.rng import DeterministicRng
from repro.network.message import MessageType
from repro.obs.bus import MSG_RECV, MSG_SEND, InstrumentationBus, ctag_str

CONFIRMED = "CONFIRMED"
UNOBSERVED = "UNOBSERVED"

#: scenarios probed per finding, chosen by the file the finding anchors to
_SCENARIOS_BY_SOURCE: Dict[str, Tuple[str, ...]] = {
    "baselines/tcc.py": ("tcc3",),
    "baselines/bulksc.py": ("bulksc3",),
    "baselines/seq.py": ("seq3",),
}
_DEFAULT_SCENARIOS: Tuple[str, ...] = ("cross3", "mixed3", "nack3")


@dataclass
class Witness:
    """The runtime verdict for one static finding."""

    key: str
    code: str
    status: str                              #: CONFIRMED | UNOBSERVED
    scenario: Optional[str] = None
    schedule: Optional[Dict[str, Any]] = None  #: replayable Schedule JSON
    runs: int = 0                            #: probe runs spent
    detail: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {"key": self.key, "code": self.code, "status": self.status,
                "scenario": self.scenario, "schedule": self.schedule,
                "runs": self.runs, "detail": self.detail}


@dataclass
class _Probe:
    """One sanitized schedule run: the sanitizer plus its bus and result."""

    sanitizer: AccessSanitizer
    bus: InstrumentationBus
    result: Any
    #: (send_idx, recv_idx, dst_node, mtype value); unmatched sends stay open
    intervals: List[Tuple[int, int, str, str]] = field(default_factory=list)


def starvation_pressure(mutation: Optional[Mutation] = None,
                        threshold: int = 1) -> Mutation:
    """Compose ``mutation`` with per-directory starvation pressure.

    The reservation machinery only engages after
    ``starvation_max_squashes`` genuine failures of one chunk — far more
    than the tiny explore scenarios produce, which is why the runtime
    ``reservation-leak`` bug is chaos-only.  Lowering the threshold on the
    *instances* (the shared :class:`~repro.config.SystemConfig` stays
    frozen and untouched) makes reservations form on the first genuine
    collision, so the sanitizer can watch the leak inside the bounded
    confirm budget.
    """
    def _apply(machine: Any) -> None:
        if mutation is not None:
            mutation.apply(machine)
        for directory in machine.directories:
            if hasattr(directory, "reserved_for"):
                directory.config = replace(
                    directory.config, starvation_max_squashes=threshold)
    return Mutation(
        name=mutation.name if mutation else "starvation-pressure",
        description="lowered per-directory reservation threshold",
        scenario="", expected="", apply=_apply,
        chaos_only=mutation.chaos_only if mutation else False)


#: per-probe event cap: a livelocked probe (many seeded bugs wedge the
#: protocol) must not burn the scenario's full exploration budget with
#: fingerprinting enabled — the access pattern shows long before that.
PROBE_MAX_EVENTS = 30_000


def _run_probe(scenario: Scenario, schedule: Optional[Schedule],
               mutation: Optional[Mutation], seed: Optional[int]) -> _Probe:
    if scenario.max_events > PROBE_MAX_EVENTS:
        scenario = replace(scenario, max_events=PROBE_MAX_EVENTS)
    bus = InstrumentationBus()
    holder: Dict[str, AccessSanitizer] = {}

    def _apply(machine: Any) -> None:
        if mutation is not None:
            mutation.apply(machine)
        holder["san"] = AccessSanitizer(machine, bus)

    probe = Mutation(name=mutation.name if mutation else "sanitize",
                     description="attach the state-access sanitizer",
                     scenario=scenario.name, expected="", apply=_apply)
    tie_rng = DeterministicRng(seed, "confirm-ties") if seed is not None \
        else None
    delay_rng = DeterministicRng(seed + 1, "confirm-delays") \
        if seed is not None else None
    result = run_schedule(scenario, schedule, probe,
                          tie_rng=tie_rng, delay_rng=delay_rng, bus=bus)
    sanitizer = holder["san"]
    sanitizer.flush()
    return _Probe(sanitizer=sanitizer, bus=bus, result=result,
                  intervals=_inflight_intervals(bus))


def _inflight_intervals(bus: InstrumentationBus
                        ) -> List[Tuple[int, int, str, str]]:
    """Pair msg_send/msg_recv events into per-flow FIFO flight intervals."""
    open_sends: Dict[Tuple[str, str, str], List[int]] = {}
    out: List[Tuple[int, int, str, str]] = []
    for idx, event in enumerate(bus.events):
        if event.kind == MSG_SEND:
            key = (event.fields["src_node"], event.fields["dst_node"],
                   event.fields["mtype"])
            open_sends.setdefault(key, []).append(idx)
        elif event.kind == MSG_RECV:
            key = (event.fields["src_node"], event.fields["dst_node"],
                   event.fields["mtype"])
            pending = open_sends.get(key)
            if pending:
                out.append((pending.pop(0), idx, key[1], key[2]))
    end = len(bus.events)
    for (_, dst, mtype), pending in open_sends.items():
        for send_idx in pending:
            out.append((send_idx, end, dst, mtype))
    out.sort()
    return out


def _chunk_base(ctag: Any) -> Optional[str]:
    """Attempts of one chunk collapse onto the base tag: re-entry for the
    *same chunk* must not be satisfied by an ordinary retry."""
    text = ctag_str(ctag)
    return text.split("#")[0] if text else None


def _mtype_values(names: Sequence[str]) -> set:
    return {MessageType[n].value for n in names
            if n in MessageType.__members__}


# ----------------------------------------------------------------------
# Per-rule witness predicates
# ----------------------------------------------------------------------
def _predicate_for(finding: Finding
                   ) -> Optional[Callable[[_Probe], bool]]:
    if finding.code == "SB504":
        cls, attr = finding.anchor.split(":")[:2]

        def leak(probe: _Probe) -> bool:
            return bool(probe.sanitizer.leaked_at(cls, attr))
        return leak

    if finding.code == "SB503":
        qual = finding.anchor[:-len(":cycle")]
        cls, method = qual.split(".", 1)

        def reenter(probe: _Probe) -> bool:
            seen: Dict[Tuple[str, str], int] = {}
            hit = False
            for span in probe.sanitizer.spans:
                if span.cls != cls or span.handler != method:
                    continue
                base = _chunk_base(span.ctag)
                if base is None:
                    continue
                seen[(span.src, base)] = seen.get((span.src, base), 0) + 1
                if seen[(span.src, base)] >= 2 and span.records:
                    hit = True
            return hit
        return reenter

    if finding.code == "SB502":
        qual, _, mtypes = finding.anchor.partition("->")
        cls = qual.split(".", 1)[0]
        values = _mtype_values(mtypes.split("/"))

        def send_then_write(probe: _Probe) -> bool:
            for span in probe.sanitizer.spans:
                if span.cls != cls or not span.records:
                    continue
                for event in probe.bus.events[span.start_event:span.end_event]:
                    if (event.kind == MSG_SEND
                            and event.fields["mtype"] in values
                            and event.fields["src_node"] == span.src_node):
                        return True
            return False
        return send_then_write

    if finding.code == "SB501":
        cls = finding.anchor.split(":")[0]

        def concurrent(probe: _Probe) -> bool:
            san = probe.sanitizer
            for span in san.spans:
                if span.cls != cls or not span.records:
                    continue
                for send_idx, recv_idx, dst, mtype in probe.intervals:
                    if dst != span.src_node:
                        continue
                    if not send_idx < span.start_event < recv_idx:
                        continue
                    other = san.handler_for(cls, MessageType(mtype).name)
                    if other is not None and other != span.handler:
                        return True
            return False
        return concurrent

    return None


def _scenarios_for(finding: Finding) -> Tuple[str, ...]:
    for suffix, names in _SCENARIOS_BY_SOURCE.items():
        if finding.path.endswith(suffix):
            return names
    return _DEFAULT_SCENARIOS


# ----------------------------------------------------------------------
# The confirm loop
# ----------------------------------------------------------------------
def _shrink(scenario: Scenario, schedule: Schedule,
            mutation: Optional[Mutation],
            predicate: Callable[[_Probe], bool],
            budget: int) -> Schedule:
    runs = 0

    def reproduces(candidate: List[Any]) -> bool:
        nonlocal runs
        if runs >= budget:
            return False
        runs += 1
        probe = _run_probe(scenario, _assemble(candidate), mutation, None)
        return predicate(probe)

    return _assemble(ddmin(_decisions(schedule), reproduces)).trimmed()


def confirm_finding(finding: Finding, *,
                    mutation: Optional[Mutation] = None,
                    scenarios: Optional[Sequence[str]] = None,
                    runs_per_scenario: int = 8,
                    base_seed: int = 2112,
                    shrink_budget: int = 40) -> Witness:
    """Probe one finding; CONFIRMED comes with a shrunk replay schedule."""
    predicate = _predicate_for(finding)
    if predicate is None:
        return Witness(key=finding.key, code=finding.code, status=UNOBSERVED,
                       detail="no runtime predicate for this rule")
    names = tuple(scenarios) if scenarios else _scenarios_for(finding)
    runs = 0
    for name in names:
        scenario = SCENARIOS[name]
        for i in range(runs_per_scenario):
            # probe 0 is the nominal schedule; later probes randomize
            seed = None if i == 0 else base_seed + 997 * i
            probe = _run_probe(scenario, None, mutation, seed)
            runs += 1
            if not predicate(probe):
                continue
            witness = probe.result.schedule
            shrunk = _shrink(scenario, witness, mutation, predicate,
                             shrink_budget)
            return Witness(
                key=finding.key, code=finding.code, status=CONFIRMED,
                scenario=name, schedule=shrunk.to_json(), runs=runs,
                detail=(f"witness on scenario {name!r} after {runs} "
                        f"probe(s); schedule shrunk to "
                        f"{shrunk.decision_count()} non-default "
                        f"decision(s)"))
    return Witness(key=finding.key, code=finding.code, status=UNOBSERVED,
                   runs=runs,
                   detail=f"predicate never fired in {runs} probe(s) over "
                          f"{'/'.join(names)}")


def confirm_findings(findings: Sequence[Finding], *,
                     mutation: Optional[Mutation] = None,
                     scenarios: Optional[Sequence[str]] = None,
                     runs_per_scenario: int = 8,
                     base_seed: int = 2112) -> List[Witness]:
    """One witness per SB5xx finding, in finding-key order."""
    out = [confirm_finding(f, mutation=mutation, scenarios=scenarios,
                           runs_per_scenario=runs_per_scenario,
                           base_seed=base_seed)
           for f in sorted(findings, key=lambda f: f.key)
           if f.code.startswith("SB5")]
    return out


__all__ = ["CONFIRMED", "UNOBSERVED", "Witness", "confirm_finding",
           "confirm_findings", "starvation_pressure"]
