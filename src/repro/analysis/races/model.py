"""The static state-access model (tentpole part 1).

For every message handler of every protocol class — the dispatch tables
are recovered exactly as :mod:`repro.analysis.handler_lint` recovers them
— this module computes the *effective* footprint of the handler:

* the per-module state attributes it **reads** and **writes** (``self.X``
  loads, stores, ``del``, augmented assignment, and mutator-method calls
  like ``self.cst.pop(...)``), transitively closed over same-class helper
  calls: ``self._fail_group(entry)`` charges ``_fail_group``'s footprint
  to the dispatching handler;
* **alias-aware** container accesses: ``entry = self.cst.get(cid)``
  followed by ``entry.got_g = True`` is a write *to the CST* — locals and
  helper parameters bound to a state container are tracked and their
  accesses attributed to the owning attribute (CST entries are modeled at
  the granularity of the ``cst`` dict that owns them);
* the **growth direction** of each write — *additive* (``add``,
  ``append``, ``x[k] = v``, assignment of a real value) versus *cleanup*
  (``pop``, ``discard``, ``clear``, ``del``, assignment of a falsy
  constant) — which is what the SB504 reconciliation rule keys on;
* its **send sites** (``unicast``/``multicast``/``broadcast``) with the
  resolved message types, destination role and source line;
* whether each attribute is a pure **counter** (only ever written via
  ``+= <constant>``): commutative writes that cannot race by reordering.

Infrastructure attributes (``self.sim``, ``self.network``, ``self.obs``,
…) are excluded: the model tracks *protocol state*, the structures the
paper's Tables 4/5 orderings exist to protect.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.handler_lint import (DISPATCH_METHODS, FAMILY_SOURCES,
                                         _extract_dispatch, _read,
                                         _resolve_mtype_arg, _role_of_class)

#: the substrate module whose handlers guard shared line state
SUBSTRATE_MODULE = "memory/directory.py"

_SEND_METHODS = {"unicast", "multicast", "broadcast"}
_SCHED_METHODS = {"schedule", "schedule_at"}
_ADDITIVE_METHODS = {"add", "append", "appendleft", "update", "setdefault",
                     "extend", "insert"}
_CLEANUP_METHODS = {"pop", "popleft", "discard", "remove", "clear",
                    "popitem"}
_MUTATOR_METHODS = _ADDITIVE_METHODS | _CLEANUP_METHODS
#: plumbing attributes that are not protocol state
_INFRA_ATTRS = {"config", "sim", "network", "node", "obs", "protocol",
                "page_mapper", "dir_id", "core", "stats", "core_id",
                "hierarchy", "sig_factory", "workload"}

Root = Tuple[str, str]  #: ("attr", X) for self.X-rooted, ("name", n) local


@dataclass
class SendSite:
    """One message-emission site inside a method body."""

    mtypes: Tuple[str, ...]      #: resolved MessageType names
    #: "dir" | "core" | "agent" | "reply" (back to ``msg.src``) | "unknown"
    dest: str
    line: int
    via: str                     #: method the send syntactically lives in


@dataclass
class CallSite:
    """A ``self._helper(...)`` call, with the state roots of its args so
    the closure can bind helper parameters to state containers."""

    callee: str
    line: int
    arg_roots: Tuple[Optional[Root], ...]


@dataclass
class MethodSummary:
    """Direct (non-transitive) facts about one method."""

    name: str
    line: int
    params: Tuple[str, ...] = ()
    reads: Dict[str, int] = field(default_factory=dict)    #: attr -> 1st line
    writes: Dict[str, int] = field(default_factory=dict)   #: attr -> 1st line
    additive: Set[str] = field(default_factory=set)
    cleanup: Set[str] = field(default_factory=set)
    #: accesses through bare-name roots (params / unresolved locals)
    name_reads: Dict[str, int] = field(default_factory=dict)
    name_writes: Dict[str, int] = field(default_factory=dict)
    name_additive: Set[str] = field(default_factory=set)
    name_cleanup: Set[str] = field(default_factory=set)
    aliases: Dict[str, str] = field(default_factory=dict)  #: local -> attr
    sends: List[SendSite] = field(default_factory=list)
    schedules: List[int] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)

    def callees(self) -> Set[str]:
        return {c.callee for c in self.calls}


@dataclass
class HandlerModel:
    """One handler's transitive, alias-resolved footprint."""

    cls: str
    role: Optional[str]          #: "dir" | "core" | "agent" | None
    method: str
    line: int
    triggers: Tuple[str, ...]    #: MessageType names dispatched to it
    reads: Dict[str, int] = field(default_factory=dict)
    writes: Dict[str, int] = field(default_factory=dict)
    additive: Set[str] = field(default_factory=set)
    cleanup: Set[str] = field(default_factory=set)
    sends: List[SendSite] = field(default_factory=list)
    deferred: bool = False       #: reaches sim.schedule (callbacks run later)

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.method}"


@dataclass
class ClassStateModel:
    """Everything the race rules need about one protocol class."""

    name: str
    role: Optional[str]
    path: str                    #: repo-relative source path
    line: int
    attrs: Set[str] = field(default_factory=set)       #: tracked state attrs
    counters: Set[str] = field(default_factory=set)    #: commutative counters
    #: attrs initialized empty (None / empty container): they owe a release
    releasable: Set[str] = field(default_factory=set)
    methods: Dict[str, MethodSummary] = field(default_factory=dict)
    dispatch: Dict[str, str] = field(default_factory=dict)  #: mtype -> method
    handlers: Dict[str, HandlerModel] = field(default_factory=dict)
    #: methods transitively reachable from any handler
    reachable: Set[str] = field(default_factory=set)
    #: sends from methods not reachable from any handler (protocol roots,
    #: e.g. ``send_commit_request``)
    root_sends: List[SendSite] = field(default_factory=list)


@dataclass
class StateModel:
    """The whole-family model: classes of one protocol plus the substrate."""

    family: str
    classes: List[ClassStateModel] = field(default_factory=list)

    def handler_classes(self) -> List[ClassStateModel]:
        return [c for c in self.classes if c.handlers]


# ----------------------------------------------------------------------
# Per-method scan
# ----------------------------------------------------------------------
def _root_of(node: ast.AST) -> Optional[Root]:
    """The state root of an access path: ``self.cst[cid].w_sig`` has root
    ``("attr", "cst")``; ``entry.state`` has root ``("name", "entry")``."""
    probe = node
    while isinstance(probe, (ast.Subscript, ast.Attribute)):
        if (isinstance(probe, ast.Attribute)
                and isinstance(probe.value, ast.Name)):
            if probe.value.id == "self":
                return ("attr", probe.attr)
            return ("name", probe.value.id)
        probe = probe.value
    return None


def _is_cleanup_value(value: Optional[ast.AST]) -> bool:
    """Assigning None/0/False/-1/empty-literal releases state, it does not
    grow it — the distinction SB504 keys on."""
    if value is None:
        return False
    if isinstance(value, ast.Constant):
        return not value.value
    if (isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub)
            and isinstance(value.operand, ast.Constant)):
        return True  # negative sentinel, e.g. ``occupant_proc = -1``
    if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
        return not value.elts
    if isinstance(value, ast.Dict):
        return not value.keys
    return False


_EMPTY_CTORS = {"set", "dict", "list", "deque", "defaultdict"}


def _is_releasable_init(value: Optional[ast.AST]) -> bool:
    """Does ``__init__`` start the attribute in an *empty* state (None or
    an empty container)?  Only such attrs owe an eventual release — a
    scalar clock initialized to 0 does not (SB504 scope)."""
    if value is None:
        return False
    if isinstance(value, ast.Constant):
        return value.value is None
    if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
        return not value.elts
    if isinstance(value, ast.Dict):
        return not value.keys
    if isinstance(value, ast.Call) and not value.args:
        name = (value.func.id if isinstance(value.func, ast.Name)
                else getattr(value.func, "attr", ""))
        return name in _EMPTY_CTORS
    return False


def _note(book: Dict[str, int], key: str, line: int, *,
          infra_check: bool = True) -> None:
    if infra_check and key in _INFRA_ATTRS:
        return
    book.setdefault(key, line)


def _scan_method(fn: ast.FunctionDef) -> MethodSummary:
    s = MethodSummary(name=fn.name, line=fn.lineno,
                      params=tuple(a.arg for a in fn.args.args
                                   if a.arg != "self"))

    def record_store(target: ast.AST, line: int, cleanup: bool) -> None:
        root = _root_of(target)
        if root is None:
            return
        kind, key = root
        if kind == "attr":
            if key in _INFRA_ATTRS:
                return
            _note(s.writes, key, line)
            (s.cleanup if cleanup else s.additive).add(key)
            if isinstance(target, ast.Subscript):
                _note(s.reads, key, line)
        else:
            _note(s.name_writes, key, line, infra_check=False)
            (s.name_cleanup if cleanup else s.name_additive).add(key)

    def note_alias(target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        hits = set()
        for node in ast.walk(value):
            root = _root_of(node) if isinstance(node, ast.Attribute) else None
            if root and root[0] == "attr" and root[1] not in _INFRA_ATTRS:
                hits.add(root[1])
        if len(hits) == 1:
            s.aliases[target.id] = hits.pop()

    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                record_store(t, t.lineno, _is_cleanup_value(node.value))
                if node.value is not None:
                    note_alias(t, node.value)
        elif isinstance(node, ast.AugAssign):
            record_store(node.target, node.target.lineno, cleanup=False)
            root = _root_of(node.target)
            if root is not None:
                if root[0] == "attr":
                    _note(s.reads, root[1], node.target.lineno)
                else:
                    _note(s.name_reads, root[1], node.target.lineno,
                          infra_check=False)
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                record_store(t, t.lineno, cleanup=True)
        elif isinstance(node, ast.For):
            note_alias(node.target, node.iter)
        elif isinstance(node, ast.Call):
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self":
                s.calls.append(CallSite(
                    callee=func.attr, line=node.lineno,
                    arg_roots=tuple(_name_of(a) for a in node.args)))
            if func.attr in _SEND_METHODS and node.args:
                mtypes = tuple(_resolve_mtype_arg(node.args[0], fn))
                s.sends.append(SendSite(
                    mtypes=mtypes, dest=_send_dest(node), line=node.lineno,
                    via=fn.name))
            if func.attr in _SCHED_METHODS:
                s.schedules.append(node.lineno)
            if func.attr in _MUTATOR_METHODS:
                root = _root_of(base)
                if root is None:
                    continue
                cleanup = func.attr in _CLEANUP_METHODS
                kind, key = root
                if kind == "attr":
                    if key in _INFRA_ATTRS:
                        continue
                    _note(s.writes, key, node.lineno)
                    _note(s.reads, key, node.lineno)
                    (s.cleanup if cleanup else s.additive).add(key)
                else:
                    _note(s.name_writes, key, node.lineno, infra_check=False)
                    _note(s.name_reads, key, node.lineno, infra_check=False)
                    (s.name_cleanup if cleanup else s.name_additive).add(key)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            root = _root_of(node)
            if root is None:
                continue
            if root[0] == "attr":
                _note(s.reads, root[1], node.lineno)
            else:
                _note(s.name_reads, root[1], node.lineno, infra_check=False)
    return s


def _name_of(node: ast.AST) -> Optional[Root]:
    """Root for a bare-``Name`` argument (``self._helper(entry)``)."""
    if isinstance(node, ast.Name):
        return ("name", node.id)
    return _root_of(node)


def _send_dest(call: ast.Call) -> str:
    """Destination role of a send call (third positional arg by idiom).

    ``msg.src`` destinations are *replies*: the concrete role depends on
    who sent the triggering message, so they resolve to the sentinel
    ``"reply"`` (the flow analysis resolves it through the trigger's
    senders; the causality graph treats it like ``"unknown"``).
    """
    if len(call.args) < 3:
        return "unknown"
    dst = call.args[2]
    if isinstance(dst, ast.Attribute) and dst.attr == "src":
        return "reply"
    text = ast.unparse(dst)
    for node in ast.walk(call.args[2]):
        if isinstance(node, ast.Call):
            name = (node.func.id if isinstance(node.func, ast.Name)
                    else getattr(node.func, "attr", ""))
            if name == "dir_node":
                return "dir"
            if name == "core_node":
                return "core"
            if name == "arbiter_node":
                return "agent"
    if "arbiter" in text or "vendor" in text:
        return "agent"
    if "dir_node" in text:
        return "dir"
    if "core_node" in text:
        return "core"
    return "unknown"


def _is_counter_write(node: ast.AST) -> bool:
    """``self.x += <literal>`` — the commutative-counter idiom."""
    return (isinstance(node, ast.AugAssign)
            and isinstance(node.op, (ast.Add, ast.Sub))
            and isinstance(node.value, ast.Constant))


# ----------------------------------------------------------------------
# Transitive, alias-resolving closure
# ----------------------------------------------------------------------
def _closure(cls: "ClassStateModel", entry: str) -> HandlerModel:
    """Effective footprint of ``entry``: helper calls are inlined, helper
    parameters bound to state containers carry their accesses back to the
    owning attribute, and helper footprints are charged at the caller's
    call line so anchors stay stable under helper-internal edits."""
    out = HandlerModel(cls=cls.name, role=cls.role, method=entry,
                       line=cls.methods[entry].line, triggers=())
    seen: Set[Tuple[str, Tuple[Tuple[str, str], ...]]] = set()
    stack: List[Tuple[str, Dict[str, str], int]] = [(entry, {}, 0)]
    while stack:
        name, env, via = stack.pop()
        if name not in cls.methods:
            continue
        key = (name, tuple(sorted(env.items())))
        if key in seen:
            continue
        seen.add(key)
        s = cls.methods[name]
        scope = dict(env)
        scope.update(s.aliases)
        for attr, line in s.reads.items():
            out.reads.setdefault(attr, via or line)
        for attr, line in s.writes.items():
            out.writes.setdefault(attr, via or line)
        out.additive |= s.additive
        out.cleanup |= s.cleanup
        for local, line in s.name_reads.items():
            if local in scope:
                out.reads.setdefault(scope[local], via or line)
        for local, line in s.name_writes.items():
            if local in scope:
                out.writes.setdefault(scope[local], via or line)
        out.additive |= {scope[n] for n in s.name_additive if n in scope}
        out.cleanup |= {scope[n] for n in s.name_cleanup if n in scope}
        for site in s.sends:
            out.sends.append(site if not via else SendSite(
                mtypes=site.mtypes, dest=site.dest, line=via, via=site.via))
        if s.schedules:
            out.deferred = True
        for call in s.calls:
            callee_env: Dict[str, str] = {}
            if call.callee in cls.methods:
                params = cls.methods[call.callee].params
                for i, root in enumerate(call.arg_roots):
                    if root is None or i >= len(params):
                        continue
                    kind, val = root
                    attr = (val if kind == "attr" and val not in _INFRA_ATTRS
                            else scope.get(val) if kind == "name" else None)
                    if attr:
                        callee_env[params[i]] = attr
            stack.append((call.callee, callee_env, via or call.line))
    out.sends.sort(key=lambda site: (site.line, site.mtypes))
    return out


def _extract_class(cnode: ast.ClassDef, path: str) -> ClassStateModel:
    cls = ClassStateModel(name=cnode.name, role=_role_of_class(cnode),
                          path=path, line=cnode.lineno)
    counter_only: Dict[str, bool] = {}
    for item in cnode.body:
        if not isinstance(item, ast.FunctionDef):
            continue
        cls.methods[item.name] = _scan_method(item)
        if item.name in DISPATCH_METHODS:
            _extract_dispatch(item, cls.dispatch)
        for node in ast.walk(item):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for t in targets:
                    root = _root_of(t)
                    if (root is None or root[0] != "attr"
                            or root[1] in _INFRA_ATTRS):
                        continue
                    attr = root[1]
                    if isinstance(t, ast.Subscript):
                        counter_only[attr] = False
                        continue
                    cls.attrs.add(attr)
                    is_counter = _is_counter_write(node)
                    if item.name == "__init__" and not is_counter:
                        counter_only.setdefault(attr, True)
                        if _is_releasable_init(getattr(node, "value", None)):
                            cls.releasable.add(attr)
                    else:
                        counter_only[attr] = (
                            counter_only.get(attr, True) and is_counter)
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _MUTATOR_METHODS):
                    root = _root_of(func.value)
                    if root and root[0] == "attr":
                        counter_only[root[1]] = False
    cls.counters = {a for a, ok in counter_only.items()
                    if ok and a in cls.attrs}

    # handlers: one model per dispatched method (triggers grouped)
    triggers_of: Dict[str, List[str]] = {}
    for mtype, method in cls.dispatch.items():
        triggers_of.setdefault(method, []).append(mtype)
    for method, triggers in sorted(triggers_of.items()):
        if method not in cls.methods:
            continue
        handler = _closure(cls, method)
        handler.triggers = tuple(sorted(triggers))
        cls.handlers[method] = handler

    # reachability: which methods any handler can reach
    for method in cls.handlers:
        stack = [method]
        while stack:
            name = stack.pop()
            if name in cls.reachable or name not in cls.methods:
                continue
            cls.reachable.add(name)
            stack.extend(cls.methods[name].callees())

    # root sends: emitted by methods no handler reaches
    for name, summary in cls.methods.items():
        if name in cls.reachable or name == "__init__":
            continue
        cls.root_sends.extend(summary.sends)
    return cls


def _extract_source(path_label: str, source: str) -> List[ClassStateModel]:
    tree = ast.parse(source)
    return [_extract_class(node, path_label) for node in tree.body
            if isinstance(node, ast.ClassDef)]


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def extract_state_model(family: str, pkg_dir: Optional[Path] = None,
                        source_overrides: Optional[Dict[str, str]] = None
                        ) -> StateModel:
    """The state-access model for one protocol family plus the substrate.

    ``source_overrides`` maps package-relative paths to replacement source
    text — the seeded-mutation tests inject doctored modules this way.
    """
    if pkg_dir is None:
        import repro
        pkg_dir = Path(repro.__file__).resolve().parent
    model = StateModel(family=family)
    rels = list(FAMILY_SOURCES[family]) + [SUBSTRATE_MODULE]
    for rel in rels:
        src = _read(pkg_dir, rel, source_overrides)
        if src is None:
            continue
        model.classes.extend(_extract_source("src/repro/" + rel, src))
    return model


def extract_all_models(pkg_dir: Optional[Path] = None,
                       source_overrides: Optional[Dict[str, str]] = None
                       ) -> Dict[str, StateModel]:
    """One :class:`StateModel` per protocol family, in declaration order."""
    return {family: extract_state_model(family, pkg_dir, source_overrides)
            for family in FAMILY_SOURCES}


__all__ = ["CallSite", "ClassStateModel", "HandlerModel", "MethodSummary",
           "SendSite", "StateModel", "SUBSTRATE_MODULE", "extract_all_models",
           "extract_state_model"]
